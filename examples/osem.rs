//! The paper's second case study: list-mode OSEM PET reconstruction from
//! synthetic events, on 1/2/4 virtual GPUs, with reconstruction quality
//! checked against the known phantom.
//!
//! ```text
//! cargo run --release --example osem [-- --quick]
//! ```

use skelcl::Context;
use skelcl_osem::{metrics, phantom::Phantom, seq, skelcl_impl, OsemParams, Volume};
use vgpu::{Platform, PlatformConfig};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = if quick {
        OsemParams {
            volume: Volume::new(32, 32, 32, 6.0),
            total_events: 100_000,
            n_subsets: 5,
            seed: 2011,
        }
    } else {
        OsemParams {
            total_events: 400_000,
            ..OsemParams::bench_scale()
        }
    };
    println!(
        "list-mode OSEM: volume {:?}, {} events, {} subsets",
        params.volume.dims(),
        params.total_events,
        params.n_subsets
    );

    println!("generating synthetic events...");
    let subsets = params.generate_subsets();

    println!("sequential reference reconstruction...");
    let f_seq = seq::reconstruct(&params.volume, &subsets);

    let phantom = Phantom::for_volume(&params.volume);
    let truth = phantom.reference_image(&params.volume);
    println!(
        "  correlation with phantom: {:.3}",
        metrics::correlation(&f_seq, &truth)
    );

    let mut t1 = None;
    for n_gpus in [1usize, 2, 4] {
        let platform = Platform::new(
            PlatformConfig::default()
                .devices(n_gpus)
                .cache_tag("example-osem"),
        );
        let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
        // Warm-up with one subset (program builds).
        skelcl_impl::reconstruct(&ctx, &params.volume, &subsets[..1]).expect("warmup");

        platform.reset_clocks();
        let f = skelcl_impl::reconstruct(&ctx, &params.volume, &subsets).expect("skelcl osem");
        platform.sync_all();
        let t = platform.host_now_s();
        let speedup = t1.map(|t1: f64| t1 / t).unwrap_or(1.0);
        if t1.is_none() {
            t1 = Some(t);
        }

        let diff = metrics::relative_l2(&f, &f_seq);
        println!(
            "  {n_gpus} GPU(s): {:8.2} ms (virtual), speedup {speedup:4.2}, \
             rel. diff vs sequential {diff:.2e}",
            t * 1e3
        );
        assert!(diff < 1e-3, "parallel result diverged from the reference");
    }
    println!("done");
}
