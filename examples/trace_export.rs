//! Export a Chrome/Perfetto trace of a 4-device iterative stencil run.
//!
//! ```text
//! cargo run --release --example trace_export [out.json]
//! ```
//!
//! Runs 10 Jacobi heat-relaxation rounds over a row-block-distributed
//! plate on 4 virtual Tesla-C1060-class devices with skeleton spans and
//! the engine timeline enabled, then writes the merged trace as Chrome
//! trace-event JSON (load it at `ui.perfetto.dev` or `chrome://tracing`).
//! A roofline/utilization report for the same window prints to stdout.

use skelcl::report::{chrome_trace_json, RunReport};
use skelcl::{
    verify_span_nesting, Context, ContextConfig, Matrix, MatrixDistribution, Stencil2D,
    Stencil2DView, UserFn,
};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace_export.json".to_string());

    let ctx = Context::new(
        ContextConfig::default()
            .devices(4)
            .cache_tag("trace-export"),
    );
    ctx.enable_spans();
    ctx.platform().enable_timeline_trace();

    let heat = UserFn::new(
        "heat",
        "float heat(__global float* in, int r, int c, uint nr, uint nc) {\n\
             return 0.25f * (stencil_at(in, r, c, nr, nc, -1, 0)\n\
                           + stencil_at(in, r, c, nr, nc, 1, 0)\n\
                           + stencil_at(in, r, c, nr, nc, 0, -1)\n\
                           + stencil_at(in, r, c, nr, nc, 0, 1));\n\
         }",
        |v: &Stencil2DView<'_, f32>| {
            0.25 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1))
        },
    );
    let st = Stencil2D::new(heat, 1, skelcl::Boundary2D::Neumann);

    let (rows, cols) = (512usize, 512usize);
    let data: Vec<f32> = (0..rows * cols).map(|i| (i % 101) as f32).collect();
    let plate = Matrix::from_vec(&ctx, rows, cols, data);
    plate
        .set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .expect("distribution");

    // Pay the one-time program build outside the traced window, then start
    // a fresh clock epoch so the export covers only the run itself.
    st.iterate(&Matrix::from_vec(&ctx, 8, 8, vec![0.0f32; 64]), 1)
        .expect("warm");
    ctx.platform().reset_clocks();
    ctx.clear_spans();

    let platform = ctx.platform();
    let before = platform.stats_snapshot();
    let out = st.iterate(&plate, 10).expect("iterate");
    out.to_vec().expect("download");
    ctx.sync();

    let window_s = platform.host_now_s();
    let delta = platform.stats_snapshot() - before;
    let spans = ctx.take_spans();
    let trace = platform.take_timeline_trace();

    // The exported data must be internally consistent before it leaves.
    if let Some(v) = verify_span_nesting(&spans) {
        panic!("span nesting violated:\n{v}");
    }
    if let Some(v) = vgpu::verify_engine_exclusive(&trace) {
        panic!("engine exclusivity violated:\n{v}");
    }

    let json = chrome_trace_json(&spans, &trace);
    std::fs::write(&out_path, &json).expect("write trace");

    let report = RunReport::collect(
        "trace_export heat 512x512 n=10 x4",
        platform,
        ctx.profile().compute_efficiency,
        delta,
        &trace,
        window_s,
    );
    println!("{report}");
    println!(
        "wrote {} spans + {} engine records to {out_path}",
        spans.len(),
        trace.len()
    );
}
