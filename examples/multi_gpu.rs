//! Multi-GPU vector distributions (paper Section III-D): Single, Copy and
//! Block distributions, automatic redistribution, and the merge-with-
//! operator redistribution the OSEM application depends on.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use skelcl::{Context, ContextConfig, Distribution, KernelEnv, MapVoid, Reduce, UserFn, Vector};

fn main() {
    let ctx = Context::new(ContextConfig::default().devices(4));
    println!("context with {} virtual GPUs", ctx.n_devices());

    let n = 1 << 20;
    let v = Vector::from_vec(&ctx, (0..n).map(|i| (i % 97) as f32).collect());

    // Block distribution: each device owns a contiguous part.
    v.set_distribution(Distribution::Block).expect("block");
    v.ensure_on_devices().expect("upload");
    println!("uploaded {} elements block-distributed across 4 devices", n);

    // A reduction runs on all four devices and combines their partials.
    let sum = Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    let total = sum.apply(&v).expect("reduce").get_value();
    // Reference in f64: a sequential f32 sum of 2^20 terms carries visible
    // rounding error, while the device's tree reduction is better behaved.
    let expected: f64 = (0..n).map(|i| (i % 97) as f64).sum();
    assert!(
        (total as f64 - expected).abs() < expected * 1e-5,
        "reduce {total} vs {expected}"
    );
    println!("block-distributed reduce: {total}");

    // Redistribute to a single device — SkelCL moves the data itself.
    let before = ctx.platform().stats_snapshot();
    v.set_distribution(Distribution::Single(2)).expect("single");
    let moved = ctx.platform().stats_snapshot() - before;
    println!(
        "redistributed Block -> Single(2): {} inter-device transfers, {} bytes",
        moved.d2d_transfers, moved.d2d_bytes
    );

    // Copy distribution + side-effect kernel + merge with an operator:
    // the OSEM pattern. Each device's copy diverges, then `set_distribution
    // (Block, add)` folds all copies element-wise.
    let hist = Vector::from_vec(&ctx, vec![0.0f32; 16]);
    hist.set_distribution(Distribution::Copy).expect("copy");
    let scatter = MapVoid::new(
        UserFn::new(
            "scatter",
            "void scatter(uint x, __global float* hist) { atomic_add_f(&hist[x % 16], 1.0f); }",
            |x: u32, env: &KernelEnv<'_>| {
                env.vec::<f32>(0).atomic_add(x as usize % 16, 1.0);
            },
        ),
        1,
    );
    let items = Vector::from_vec(&ctx, (0..4096u32).collect::<Vec<_>>());
    items.set_distribution(Distribution::Block).expect("block");
    let mut args = skelcl::Arguments::new();
    args.push(&hist);
    scatter.apply(&items, &args).expect("scatter");
    hist.mark_devices_modified();

    let add = skelcl::skel_fn!(
        fn add(x: f32, y: f32) -> f32 {
            x + y
        }
    );
    hist.set_distribution_with(Distribution::Block, &add)
        .expect("merge");
    let h = hist.to_vec().expect("download");
    assert!(h.iter().all(|&c| c == 4096.0 / 16.0));
    println!("merged per-device histograms: {h:?}");

    ctx.sync();
    println!("total virtual time: {:.3} ms", ctx.host_now_s() * 1e3);
}
