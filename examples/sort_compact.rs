//! Applications of the Scan skeleton the paper names (Section III-B):
//! "Possible applications of the Scan skeleton are stream compaction or a
//! radix sort implementation." — both ship in `skelcl::algorithms`,
//! composed entirely from the public skeletons.
//!
//! ```text
//! cargo run --release --example sort_compact
//! ```

use skelcl::algorithms::{compact, radix_sort_u32};
use skelcl::{Context, Distribution, Scan, Vector};

fn main() {
    let ctx = Context::init(2);
    println!("scan applications on {} virtual GPUs", ctx.n_devices());

    // Deterministic pseudo-random input.
    let input: Vec<u32> = (0..100_000u32)
        .map(|i| i.wrapping_mul(2654435761) ^ (i << 7))
        .collect();

    // -- stream compaction ---------------------------------------------
    let evens = compact(&ctx, &input, |x: u32| x.is_multiple_of(2)).expect("compact");
    assert!(evens.iter().all(|x| x.is_multiple_of(2)));
    let expected: Vec<u32> = input
        .iter()
        .copied()
        .filter(|x| x.is_multiple_of(2))
        .collect();
    assert_eq!(evens, expected);
    println!(
        "stream compaction: kept {} of {} elements",
        evens.len(),
        input.len()
    );

    // -- radix sort -------------------------------------------------------
    let small: Vec<u32> = input.iter().copied().take(20_000).collect();
    let sorted = radix_sort_u32(&ctx, &small).expect("radix sort");
    let mut expected = small.clone();
    expected.sort_unstable();
    assert_eq!(sorted, expected);
    println!("radix sort: {} elements sorted correctly", sorted.len());

    // -- a raw multi-GPU scan, for good measure ---------------------------
    let v = Vector::from_vec(&ctx, vec![1u32; 1 << 18]);
    v.set_distribution(Distribution::Block).expect("dist");
    let scan = Scan::new(
        skelcl::skel_fn!(
            fn sum(x: u32, y: u32) -> u32 {
                x + y
            }
        ),
        0u32,
    );
    let (out, total) = scan.apply_with_total(&v).expect("scan");
    assert_eq!(total, 1 << 18);
    assert_eq!(out.to_vec().expect("download")[12345], 12345);
    println!("multi-GPU exclusive scan verified (total = {total})");

    ctx.sync();
    println!("total virtual time: {:.3} ms", ctx.host_now_s() * 1e3);
}
