//! Quickstart: the dot product of two vectors — the paper's Listing 1,
//! line for line.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use skelcl::{Context, Reduce, Vector, Zip};

const ARRAY_SIZE: usize = 1 << 20;

fn fill_array(data: &mut [f32], scale: f32) {
    for (i, v) in data.iter_mut().enumerate() {
        *v = ((i % 100) as f32) * scale;
    }
}

fn main() {
    // initialize SkelCL
    let ctx = Context::init(1);

    // create skeletons
    let sum = Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    let mult = Zip::new(skelcl::skel_fn!(
        fn mult(x: f32, y: f32) -> f32 {
            x * y
        }
    ));

    // allocate and initialize host arrays
    let mut a_host = vec![0.0f32; ARRAY_SIZE];
    let mut b_host = vec![0.0f32; ARRAY_SIZE];
    fill_array(&mut a_host, 0.01);
    fill_array(&mut b_host, 0.02);

    // create input vectors
    let a = Vector::from_vec(&ctx, a_host);
    let b = Vector::from_vec(&ctx, b_host);

    // execute skeletons: C = sum( mult( A, B ) )
    let c = sum
        .apply(&mult.apply(&a, &b).expect("zip failed"))
        .expect("reduce failed");

    // fetch result
    println!("dot product     = {:.3}", c.get_value());
    println!("virtual time    = {:.3} ms", ctx.host_now_s() * 1e3);
    println!(
        "transfers       = {} ({} bytes)",
        ctx.platform().stats_snapshot().total_transfers(),
        ctx.platform().stats_snapshot().total_transfer_bytes()
    );
}
