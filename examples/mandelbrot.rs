//! The paper's first case study: render a Mandelbrot fractal with all
//! three implementations (SkelCL / OpenCL / CUDA) on the same virtual GPU,
//! verify they agree, report the modeled runtimes, and write a PPM image.
//!
//! ```text
//! cargo run --release --example mandelbrot [-- --paper-scale]
//! ```

use skelcl::Context;
use skelcl_mandel::{cuda_impl, opencl_impl, reference, skelcl_impl, to_ppm, MandelParams};
use vgpu::{Platform, PlatformConfig};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper-scale");
    let params = if paper_scale {
        MandelParams::paper_scale()
    } else {
        MandelParams {
            max_iter: 2048,
            ..MandelParams::bench_scale()
        }
    };
    println!(
        "Mandelbrot {}x{}, max_iter {}",
        params.width, params.height, params.max_iter
    );

    let platform = Platform::new(PlatformConfig::default().cache_tag("example-mandel"));
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);

    // Warm-up (program builds / kernel cache).
    skelcl_impl::run(&ctx, &params).expect("skelcl warmup");
    opencl_impl::run(&platform, &params).expect("opencl warmup");
    cuda_impl::run(&platform, &params).expect("cuda warmup");

    let mut images = Vec::new();
    for (name, runner) in [
        (
            "SkelCL",
            Box::new(|| skelcl_impl::run(&ctx, &params).unwrap()) as Box<dyn Fn() -> Vec<u32>>,
        ),
        (
            "OpenCL",
            Box::new(|| opencl_impl::run(&platform, &params).unwrap()),
        ),
        (
            "CUDA",
            Box::new(|| cuda_impl::run(&platform, &params).unwrap()),
        ),
    ] {
        platform.reset_clocks();
        let before = platform.stats_snapshot();
        let img = runner();
        platform.sync_all();
        // Program (re)builds are one-time costs; report compute + transfer
        // like the figures harness (see EXPERIMENTS.md).
        let build = (platform.stats_snapshot() - before).build_virtual_ns as f64 * 1e-9;
        println!(
            "{name:>7}: {:8.2} ms (virtual, excl. build)",
            (platform.host_now_s() - build) * 1e3
        );
        images.push((name, img));
    }

    // All three must produce the identical image.
    let seq = reference(&params);
    for (name, img) in &images {
        assert_eq!(img, &seq, "{name} image differs from the reference");
    }
    println!("all variants match the sequential reference");

    let out = std::env::temp_dir().join("skelcl_mandelbrot.ppm");
    std::fs::write(&out, to_ppm(&params, &images[0].1)).expect("write ppm");
    println!("image written to {}", out.display());
}
