//! Export machine-readable telemetry from a multi-tenant executor run.
//!
//! ```text
//! cargo run --release --example telemetry_export [out.json [out.prom]]
//! ```
//!
//! Serves two tenants through the shared executor on 2 virtual devices
//! under a latency SLO, then exports everything the run produced in both
//! machine formats:
//!
//! * `out.json` — the schema-versioned `skelcl::telemetry::export_json`
//!   document: the full metrics snapshot (executor queue/batch counters,
//!   per-tenant SLO gauges, latency histogram with exact nearest-rank
//!   quantiles) plus the window's `RunReport` (roofline % of modeled peak,
//!   engine utilization, SLO accounting).
//! * `out.prom` — the same snapshot as a Prometheus text exposition.
//!
//! The human-oriented report still prints to stdout; the exported files
//! carry identical information for dashboards and CI gates.

use skelcl::report::RunReport;
use skelcl::{export_json, render_prometheus, Histogram};
use skelcl_executor::{Executor, ExecutorConfig, Job};

fn main() {
    let mut args = std::env::args().skip(1);
    let json_path = args
        .next()
        .unwrap_or_else(|| "telemetry_export.json".to_string());
    let prom_path = args
        .next()
        .unwrap_or_else(|| "telemetry_export.prom".to_string());

    let exec = Executor::new(
        ExecutorConfig::default()
            .devices(2)
            .max_batch(8)
            .queue_depth(32)
            .latency_slo(5e-3)
            .paused(),
    );
    let alice = exec.add_tenant("alice", 2);
    let bob = exec.add_tenant("bob", 1);
    // Scalars are fixed per tenant (each (a, b) pair specializes its own
    // generated program — warmed below, outside the measured window); the
    // payload varies per job.
    let job = |t: usize, j: usize| Job::Axpb {
        a: 1.5 + t as f32,
        b: 0.25 * t as f32,
        data: (0..4096).map(|i| ((i + 17 * j) % 251) as f32).collect(),
    };

    // Pay program builds outside the measured window.
    let warm = [
        exec.submit(alice, job(0, 0)).unwrap(),
        exec.submit(bob, job(1, 0)).unwrap(),
    ];
    exec.drain();
    for h in warm {
        h.wait().unwrap();
    }

    exec.pause();
    let ctx = exec.context().clone();
    let platform = ctx.platform();
    platform.enable_timeline_trace();
    platform.reset_clocks();
    let before = platform.stats_snapshot();

    let mut handles = Vec::new();
    for j in 1..=16 {
        handles.push(exec.submit(alice, job(0, j)).unwrap());
        handles.push(exec.submit(bob, job(1, j)).unwrap());
    }
    exec.drain();
    platform.sync_all();

    let latency = Histogram::default();
    for h in handles {
        let (_, report) = h.wait().unwrap();
        latency.observe(report.latency_s());
    }
    let window_s = platform.host_now_s();
    let delta = platform.stats_snapshot() - before;
    let trace = platform.take_timeline_trace();

    let mut report = RunReport::collect(
        "telemetry_export axpb 2-tenants x2",
        platform,
        ctx.profile().compute_efficiency,
        delta,
        &trace,
        window_s,
    )
    .with_latency(latency.snapshot());
    if let Some(slo) = exec.slo_summary() {
        report = report.with_slo(slo);
    }
    report.publish(ctx.metrics());
    println!("{report}");

    let snap = ctx.metrics_snapshot();
    std::fs::write(&json_path, export_json(&snap, &[report])).expect("write json");
    std::fs::write(&prom_path, render_prometheus(&snap)).expect("write prometheus");
    println!(
        "wrote {} metric(s) + 1 run report to {json_path} and {prom_path}",
        snap.len()
    );
}
