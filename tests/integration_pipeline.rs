//! Cross-crate integration tests: full pipelines exercising the skeleton
//! library, the virtual platform, the baselines and both applications
//! together.

use skelcl::{Context, ContextConfig, Distribution, Map, Reduce, Scan, Vector, Zip};
use skelcl_mandel::MandelParams;
use skelcl_osem::{metrics, OsemParams};
use vgpu::{DeviceSpec, Platform, PlatformConfig};

fn ctx(n: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n)
            .spec(DeviceSpec::tiny())
            .cache_tag("integration-pipeline"),
    )
}

#[test]
fn dot_product_pipeline_matches_host_math() {
    let ctx = ctx(2);
    let n = 10_000;
    let a_data: Vec<f32> = (0..n).map(|i| ((i * 31) % 11) as f32).collect();
    let b_data: Vec<f32> = (0..n).map(|i| ((i * 17) % 7) as f32).collect();

    let mult = Zip::new(skelcl::skel_fn!(
        fn mult(x: f32, y: f32) -> f32 {
            x * y
        }
    ));
    let sum = Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    let a = Vector::from_slice(&ctx, &a_data);
    let b = Vector::from_slice(&ctx, &b_data);
    let c = sum.apply(&mult.apply(&a, &b).unwrap()).unwrap();

    let want: f32 = a_data.iter().zip(&b_data).map(|(x, y)| x * y).sum();
    assert!((c.get_value() - want).abs() <= want.abs() * 1e-5);
}

#[test]
fn map_scan_reduce_chain_stays_on_device() {
    let ctx = ctx(1);
    let v = Vector::from_vec(&ctx, vec![1.0f32; 4096]);
    let inc = Map::new(skelcl::skel_fn!(
        fn inc(x: f32) -> f32 {
            x + 1.0
        }
    ));
    let scan = Scan::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    let total = Reduce::new(
        skelcl::skel_fn!(
            fn sum2(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );

    let doubled = inc.apply(&v).unwrap(); // all 2.0
    let before = ctx.platform().stats_snapshot();
    let prefix = scan.apply(&doubled).unwrap(); // [0, 2, 4, ...]
    let s = total.apply(&prefix).unwrap();
    let delta = ctx.platform().stats_snapshot() - before;

    // scan of [2.0; n] exclusive = 2*i; sum = 2 * n*(n-1)/2
    let n = 4096f64;
    assert_eq!(s.get_value() as f64, n * (n - 1.0));
    assert_eq!(
        delta.h2d_transfers, 0,
        "chained skeletons must not re-upload"
    );
}

#[test]
fn skeletons_work_across_all_distributions() {
    for dist in [
        Distribution::Single(0),
        Distribution::Copy,
        Distribution::Block,
    ] {
        let ctx = ctx(3);
        let data: Vec<f32> = (0..1000).map(|i| (i % 23) as f32).collect();
        let v = Vector::from_slice(&ctx, &data);
        v.set_distribution(dist).unwrap();

        let neg = Map::new(skelcl::skel_fn!(
            fn neg(x: f32) -> f32 {
                -x
            }
        ));
        let out = neg.apply(&v).unwrap();
        let want: Vec<f32> = data.iter().map(|x| -x).collect();
        assert_eq!(out.to_vec().unwrap(), want, "distribution {dist:?}");

        let sum = Reduce::new(
            skelcl::skel_fn!(
                fn sum(x: f32, y: f32) -> f32 {
                    x + y
                }
            ),
            0.0,
        );
        let expected: f32 = data.iter().sum();
        assert_eq!(sum.apply(&v).unwrap().get_value(), expected);
    }
}

#[test]
fn mandelbrot_all_variants_agree_on_shared_platform() {
    let platform = Platform::new(
        PlatformConfig::default()
            .spec(DeviceSpec::tiny())
            .cache_tag("integration-mandel"),
    );
    let ctx = Context::from_platform(platform.clone(), 64);
    let p = MandelParams::test_scale();
    let reference = skelcl_mandel::reference(&p);
    assert_eq!(
        skelcl_mandel::skelcl_impl::run(&ctx, &p).unwrap(),
        reference
    );
    assert_eq!(
        skelcl_mandel::opencl_impl::run(&platform, &p).unwrap(),
        reference
    );
    assert_eq!(
        skelcl_mandel::cuda_impl::run(&platform, &p).unwrap(),
        reference
    );
}

#[test]
fn osem_all_variants_converge_to_the_same_image() {
    let params = OsemParams::test_scale();
    let subsets = params.generate_subsets();
    let seq = skelcl_osem::seq::reconstruct(&params.volume, &subsets);

    let platform = Platform::new(
        PlatformConfig::default()
            .devices(2)
            .spec(DeviceSpec::tiny())
            .cache_tag("integration-osem"),
    );
    let ctx = Context::from_platform(platform.clone(), 64);

    let skelcl_img = skelcl_osem::skelcl_impl::reconstruct(&ctx, &params.volume, &subsets).unwrap();
    let opencl_img =
        skelcl_osem::opencl_impl::reconstruct(&platform, &params.volume, &subsets).unwrap();
    let cuda_img =
        skelcl_osem::cuda_impl::reconstruct(&platform, &params.volume, &subsets).unwrap();

    for (name, img) in [
        ("skelcl", &skelcl_img),
        ("opencl", &opencl_img),
        ("cuda", &cuda_img),
    ] {
        let d = metrics::relative_l2(img, &seq);
        assert!(d < 1e-3, "{name} diverged from sequential: {d}");
    }
}

#[test]
fn virtual_time_orderings_match_the_paper() {
    // The headline comparative claims, checked end to end at test scale:
    // CUDA < OpenCL on the compute-bound Mandelbrot; SkelCL within a
    // modest factor of OpenCL.
    let platform = Platform::new(PlatformConfig::default().cache_tag("integration-ordering"));
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let p = MandelParams {
        width: 256,
        height: 192,
        max_iter: 512,
        ..MandelParams::default()
    };
    // Warm builds.
    skelcl_mandel::skelcl_impl::run(&ctx, &p).unwrap();
    skelcl_mandel::opencl_impl::run(&platform, &p).unwrap();
    skelcl_mandel::cuda_impl::run(&platform, &p).unwrap();

    let time = |f: &dyn Fn()| {
        platform.reset_clocks();
        let before = platform.stats_snapshot();
        f();
        platform.sync_all();
        let build = (platform.stats_snapshot() - before).build_virtual_ns as f64 * 1e-9;
        platform.host_now_s() - build
    };
    let t_skel = time(&|| {
        skelcl_mandel::skelcl_impl::run(&ctx, &p).unwrap();
    });
    let t_ocl = time(&|| {
        skelcl_mandel::opencl_impl::run(&platform, &p).unwrap();
    });
    let t_cuda = time(&|| {
        skelcl_mandel::cuda_impl::run(&platform, &p).unwrap();
    });

    assert!(t_cuda < t_ocl, "cuda={t_cuda} opencl={t_ocl}");
    assert!(t_ocl < t_skel, "opencl={t_ocl} skelcl={t_skel}");
    // At this deliberately tiny test size SkelCL's fixed costs (position
    // vector upload, skeleton dispatch) are a large fraction; at the
    // figure scale (1024x768, max_iter 4096) the overhead is <10 % and at
    // the paper's scale <5 % — see EXPERIMENTS.md.
    assert!(
        t_skel < t_ocl * 1.8,
        "skelcl overhead too large even for test scale: {t_skel} vs {t_ocl}"
    );
}

#[test]
fn multi_gpu_context_device_counts() {
    for n in [1usize, 2, 4] {
        let c = ctx(n);
        assert_eq!(c.n_devices(), n);
        let v = Vector::from_vec(&c, vec![1u32; 100]);
        v.set_distribution(Distribution::Block).unwrap();
        v.ensure_on_devices().unwrap();
        assert_eq!(v.to_vec().unwrap(), vec![1u32; 100]);
    }
}
