//! Property-based tests: the algebraic laws of the skeletons (the paper's
//! equations (1)–(4)) hold for arbitrary inputs, lengths, distributions and
//! device counts.

use proptest::prelude::*;
use skelcl::{Context, ContextConfig, Distribution, Map, Reduce, Scan, Vector, Zip};
use vgpu::DeviceSpec;

fn ctx(n_devices: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n_devices)
            .spec(DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("proptests"),
    )
}

fn dist_strategy() -> impl Strategy<Value = Distribution> {
    prop_oneof![
        Just(Distribution::Single(0)),
        Just(Distribution::Copy),
        Just(Distribution::Block),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Eq. (1): map f [x0..] = [f(x0)..]
    #[test]
    fn map_matches_host_map(
        data in prop::collection::vec(-1e3f32..1e3, 0..400),
        devices in 1usize..4,
        dist in dist_strategy(),
    ) {
        let c = ctx(devices);
        let v = Vector::from_slice(&c, &data);
        v.set_distribution(dist).unwrap();
        let m = Map::new(skelcl::skel_fn!(fn f(x: f32) -> f32 { x * 2.0 + 1.0 }));
        let got = m.apply(&v).unwrap().to_vec().unwrap();
        let want: Vec<f32> = data.iter().map(|x| x * 2.0 + 1.0).collect();
        prop_assert_eq!(got, want);
    }

    // Eq. (2): zip ⊕ xs ys = [x0⊕y0, ...]
    #[test]
    fn zip_matches_host_zip(
        pairs in prop::collection::vec((-1e3f32..1e3, -1e3f32..1e3), 0..400),
        devices in 1usize..4,
    ) {
        let c = ctx(devices);
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let a = Vector::from_slice(&c, &xs);
        let b = Vector::from_slice(&c, &ys);
        let z = Zip::new(skelcl::skel_fn!(fn f(x: f32, y: f32) -> f32 { x - y }));
        let got = z.apply(&a, &b).unwrap().to_vec().unwrap();
        let want: Vec<f32> = xs.iter().zip(&ys).map(|(x, y)| x - y).collect();
        prop_assert_eq!(got, want);
    }

    // Eq. (3): reduce ⊕ [x0..] = x0 ⊕ ... ⊕ xn-1, for associative ⊕.
    // Integer addition avoids float-reassociation noise.
    #[test]
    fn reduce_matches_host_fold(
        data in prop::collection::vec(0u32..1000, 1..500),
        devices in 1usize..4,
        dist in dist_strategy(),
    ) {
        let c = ctx(devices);
        let v = Vector::from_slice(&c, &data);
        v.set_distribution(dist).unwrap();
        let r = Reduce::new(skelcl::skel_fn!(fn add(x: u32, y: u32) -> u32 { x + y }), 0u32);
        let got = r.apply(&v).unwrap().get_value();
        prop_assert_eq!(got, data.iter().sum::<u32>());
    }

    #[test]
    fn reduce_max_is_order_insensitive(
        data in prop::collection::vec(-1e6f32..1e6, 1..300),
        devices in 1usize..4,
    ) {
        let c = ctx(devices);
        let v = Vector::from_slice(&c, &data);
        let r = Reduce::new(
            skelcl::skel_fn!(fn mx(x: f32, y: f32) -> f32 { if x > y { x } else { y } }),
            f32::NEG_INFINITY,
        );
        let got = r.apply(&v).unwrap().get_value();
        let want = data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        prop_assert_eq!(got, want);
    }

    // Eq. (4): scan ⊕ [x0..] = [id, x0, x0⊕x1, ...]
    #[test]
    fn scan_matches_host_prefix(
        data in prop::collection::vec(0u32..1000, 0..600),
        devices in 1usize..4,
    ) {
        let c = ctx(devices);
        let v = Vector::from_slice(&c, &data);
        let s = Scan::new(skelcl::skel_fn!(fn add(x: u32, y: u32) -> u32 { x + y }), 0u32);
        let (out, total) = s.apply_with_total(&v).unwrap();
        let got = out.to_vec().unwrap();
        let mut acc = 0u32;
        let mut want = Vec::with_capacity(data.len());
        for &x in &data {
            want.push(acc);
            acc += x;
        }
        prop_assert_eq!(got, want);
        prop_assert_eq!(total, acc);
    }

    // scan ∘ shift law: inclusive[i] = exclusive[i] ⊕ x[i]
    #[test]
    fn scan_inclusive_relation(
        data in prop::collection::vec(0u64..100, 1..300),
    ) {
        let c = ctx(1);
        let v = Vector::from_slice(&c, &data);
        let s = Scan::new(skelcl::skel_fn!(fn add(x: u64, y: u64) -> u64 { x + y }), 0u64);
        let z = Zip::new(skelcl::skel_fn!(fn add2(x: u64, y: u64) -> u64 { x + y }));
        let exclusive = s.apply(&v).unwrap();
        let inclusive = z.apply(&exclusive, &v).unwrap().to_vec().unwrap();
        let mut acc = 0u64;
        for (i, &x) in data.iter().enumerate() {
            acc += x;
            prop_assert_eq!(inclusive[i], acc);
        }
    }

    // map g ∘ map f = map (g ∘ f): skeleton fusion law.
    #[test]
    fn map_composition_law(
        data in prop::collection::vec(-100i32..100, 0..300),
        devices in 1usize..4,
    ) {
        let c = ctx(devices);
        let v = Vector::from_slice(&c, &data);
        let f = Map::new(skelcl::skel_fn!(fn f(x: i32) -> i32 { x + 3 }));
        let g = Map::new(skelcl::skel_fn!(fn g(x: i32) -> i32 { x * 2 }));
        let gf = Map::new(skelcl::skel_fn!(fn gf(x: i32) -> i32 { (x + 3) * 2 }));
        let chained = g.apply(&f.apply(&v).unwrap()).unwrap().to_vec().unwrap();
        let fused = gf.apply(&v).unwrap().to_vec().unwrap();
        prop_assert_eq!(chained, fused);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Distribution round trips never lose data, whatever the path taken.
    #[test]
    fn distribution_round_trips_preserve_data(
        data in prop::collection::vec(0u32..u32::MAX, 0..300),
        devices in 1usize..4,
        path in prop::collection::vec(dist_strategy(), 1..5),
    ) {
        let c = ctx(devices);
        let v = Vector::from_slice(&c, &data);
        v.ensure_on_devices().unwrap();
        v.mark_devices_modified(); // force device data to be the truth
        for d in path {
            v.set_distribution(d).unwrap();
        }
        prop_assert_eq!(v.to_vec().unwrap(), data);
    }

    // The dot product composed from skeletons equals the host dot product.
    #[test]
    fn dot_product_law(
        pairs in prop::collection::vec((0f32..10.0, 0f32..10.0), 1..256),
        devices in 1usize..4,
    ) {
        let c = ctx(devices);
        let xs: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let a = Vector::from_slice(&c, &xs);
        let b = Vector::from_slice(&c, &ys);
        let mult = Zip::new(skelcl::skel_fn!(fn mult(x: f32, y: f32) -> f32 { x * y }));
        let sum = Reduce::new(skelcl::skel_fn!(fn sum(x: f32, y: f32) -> f32 { x + y }), 0.0);
        let got = sum.apply(&mult.apply(&a, &b).unwrap()).unwrap().get_value();
        let want: f32 = xs.iter().zip(&ys).map(|(x, y)| x * y).sum();
        let tol = want.abs() * 1e-4 + 1e-3;
        prop_assert!((got - want).abs() <= tol, "got {got}, want {want}");
    }
}
