//! Failure injection: the library must surface platform failures as
//! errors (never corrupt state or panic on recoverable conditions), and
//! device-memory exhaustion must roll back cleanly.

use skelcl::{Context, ContextConfig, Distribution, Map, Reduce, Vector, Zip};
use vgpu::{DeviceSpec, Platform, PlatformConfig};

/// A device so small that realistic vectors exhaust its memory.
fn cramped_spec() -> DeviceSpec {
    DeviceSpec {
        mem_bytes: 256 << 10, // 256 KiB
        ..DeviceSpec::tiny()
    }
}

fn cramped_ctx() -> Context {
    Context::new(
        ContextConfig::default()
            .spec(cramped_spec())
            .work_group(64)
            .cache_tag("failure-injection"),
    )
}

#[test]
fn upload_larger_than_device_memory_errors_cleanly() {
    let ctx = cramped_ctx();
    // 128K floats = 512 KiB > 256 KiB device memory.
    let v = Vector::from_vec(&ctx, vec![0.0f32; 128 << 10]);
    let err = v.ensure_on_devices().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "unexpected error: {msg}");
    // The vector is still usable from the host.
    assert_eq!(v.to_vec().unwrap().len(), 128 << 10);
}

#[test]
fn skeleton_oom_propagates_as_error_not_panic() {
    let ctx = cramped_ctx();
    // Input fits (128 KiB) but input + output does not.
    let v = Vector::from_vec(&ctx, vec![1.0f32; 48 << 10]);
    let m = Map::new(skelcl::skel_fn!(
        fn triple(x: f32) -> f32 {
            x * 3.0
        }
    ));
    // First apply allocates input (192 KiB) + output (192 KiB) > 256 KiB.
    let result = m.apply(&v);
    assert!(result.is_err(), "expected OOM error");
}

#[test]
fn failed_allocations_do_not_leak_device_memory() {
    let ctx = cramped_ctx();
    let dev = ctx.device(0);
    let baseline = dev.used_bytes();
    for _ in 0..5 {
        let v = Vector::from_vec(&ctx, vec![0u8; 512 << 10]);
        assert!(v.ensure_on_devices().is_err());
        drop(v);
    }
    assert_eq!(
        dev.used_bytes(),
        baseline,
        "failed uploads must not leak device memory"
    );
}

#[test]
fn memory_is_reclaimed_when_vectors_drop() {
    let ctx = cramped_ctx();
    let dev = ctx.device(0);
    let before = dev.used_bytes();
    {
        let v = Vector::from_vec(&ctx, vec![1.0f32; 8 << 10]);
        v.ensure_on_devices().unwrap();
        assert!(dev.used_bytes() > before);
    }
    assert_eq!(dev.used_bytes(), before, "drop must free device buffers");
    // And the freed memory is reusable.
    let v = Vector::from_vec(&ctx, vec![1.0f32; 8 << 10]);
    v.ensure_on_devices().unwrap();
}

#[test]
fn reduce_after_recovered_oom_still_works() {
    let ctx = cramped_ctx();
    let too_big = Vector::from_vec(&ctx, vec![1.0f32; 512 << 10]);
    assert!(too_big.ensure_on_devices().is_err());
    drop(too_big);

    let ok = Vector::from_vec(&ctx, (0..1000).map(|i| i as f32).collect());
    let sum = Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    assert_eq!(sum.apply(&ok).unwrap().get_value(), 499500.0);
}

#[test]
fn zip_length_mismatch_leaves_vectors_intact() {
    let ctx = cramped_ctx();
    let a = Vector::from_vec(&ctx, vec![1.0f32; 10]);
    let b = Vector::from_vec(&ctx, vec![2.0f32; 11]);
    let z = Zip::new(skelcl::skel_fn!(
        fn add(x: f32, y: f32) -> f32 {
            x + y
        }
    ));
    assert!(z.apply(&a, &b).is_err());
    // Both vectors still fully usable.
    assert_eq!(a.to_vec().unwrap(), vec![1.0f32; 10]);
    assert_eq!(b.to_vec().unwrap(), vec![2.0f32; 11]);
}

#[test]
fn invalid_distribution_target_is_rejected_up_front() {
    let ctx = cramped_ctx();
    let v = Vector::from_vec(&ctx, vec![1u32; 16]);
    assert!(v.set_distribution(Distribution::Single(7)).is_err());
    assert_eq!(v.distribution(), Distribution::Single(0), "state unchanged");
}

#[test]
fn empty_program_source_is_a_build_error() {
    let platform = Platform::new(
        PlatformConfig::default()
            .spec(DeviceSpec::tiny())
            .cache_tag("failure-empty-source"),
    );
    let queue = platform.queue(0, vgpu::DriverProfile::opencl());
    let program = vgpu::Program::from_source("empty", "  \n  ");
    let body: vgpu::KernelBody = std::sync::Arc::new(|_wg: &vgpu::WorkGroup| {});
    assert!(queue.build_kernel(&program, body).is_err());
}

#[test]
fn launch_validation_rejects_oversized_work_groups() {
    let platform = Platform::new(
        PlatformConfig::default()
            .spec(DeviceSpec::tiny())
            .cache_tag("failure-launch"),
    );
    let queue = platform.queue(0, vgpu::DriverProfile::opencl());
    let program = vgpu::Program::from_source("noop", "__kernel void noop() {}");
    let body: vgpu::KernelBody = std::sync::Arc::new(|_wg: &vgpu::WorkGroup| {});
    let kernel = queue.build_kernel(&program, body).unwrap();
    let too_big = vgpu::NDRange::linear(1024, platform.device(0).spec().max_work_group + 1);
    assert!(queue.launch(&kernel, too_big).is_err());
    // Valid launch still succeeds afterwards.
    assert!(queue
        .launch(&kernel, vgpu::NDRange::linear(128, 64))
        .is_ok());
}

#[test]
fn cross_device_buffer_use_is_rejected() {
    let platform = Platform::new(
        PlatformConfig::default()
            .devices(2)
            .spec(DeviceSpec::tiny())
            .cache_tag("failure-cross-device"),
    );
    let q0 = platform.queue(0, vgpu::DriverProfile::opencl());
    let buf1 = platform.device(1).alloc::<f32>(16).unwrap();
    let mut out = vec![0.0f32; 16];
    assert!(q0.enqueue_read(&buf1, &mut out).is_err());
    assert!(q0.enqueue_write(&buf1, &out).is_err());
    assert!(q0.enqueue_fill(&buf1, 0.0).is_err());
}
