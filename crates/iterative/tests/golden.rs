//! Golden-state tests for the iterative workloads: periodic life patterns,
//! glider translation, heat monotone convergence — and bit-identical
//! sequential / 1-device / 2-device / 4-device runs throughout.

use skelcl::{Context, ContextConfig, Matrix, MatrixDistribution};
use skelcl_iterative::{blinker, glider, heat_plate, life_soup, seq, shift_torus, skelcl_impl};

fn ctx(n: usize) -> Context {
    Context::new(
        ContextConfig::default()
            .devices(n)
            .spec(vgpu::DeviceSpec::tiny())
            .work_group(64)
            .cache_tag("iterative-tests"),
    )
}

/// Run the SkelCL life implementation on `devices` devices.
fn life_on_devices(grid: &[u8], rows: usize, cols: usize, n: usize, devices: usize) -> Vec<u8> {
    let c = ctx(devices);
    let m = Matrix::from_vec(&c, rows, cols, grid.to_vec());
    if devices > 1 {
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
    }
    skelcl_impl::life_run(&m, n).unwrap().to_vec().unwrap()
}

/// Run the SkelCL heat implementation on `devices` devices.
fn heat_on_devices(grid: &[f32], rows: usize, cols: usize, n: usize, devices: usize) -> Vec<f32> {
    let c = ctx(devices);
    let m = Matrix::from_vec(&c, rows, cols, grid.to_vec());
    if devices > 1 {
        m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
    }
    skelcl_impl::heat_run(&m, n).unwrap().to_vec().unwrap()
}

#[test]
fn blinker_has_period_two() {
    let (rows, cols) = (9, 7);
    let vertical = blinker(rows, cols, 4, 3);
    let horizontal = seq::life_run(&vertical, rows, cols, 1);
    // One step turns the vertical bar horizontal, the next restores it.
    assert_ne!(horizontal, vertical);
    assert_eq!(
        horizontal,
        skelcl_iterative::life_grid(rows, cols, &[(4, 2), (4, 3), (4, 4)])
    );
    assert_eq!(seq::life_run(&vertical, rows, cols, 2), vertical);
    // The device runs reproduce both golden states on every device count.
    for devices in [1usize, 2, 4] {
        assert_eq!(
            life_on_devices(&vertical, rows, cols, 1, devices),
            horizontal,
            "{devices}-device single step"
        );
        assert_eq!(
            life_on_devices(&vertical, rows, cols, 2, devices),
            vertical,
            "{devices}-device full period"
        );
        assert_eq!(
            life_on_devices(&vertical, rows, cols, 11, devices),
            horizontal,
            "{devices}-device odd generation count"
        );
    }
}

#[test]
fn glider_translates_one_cell_diagonally_every_four_generations() {
    let (rows, cols) = (9, 11);
    let start = glider(rows, cols, 1, 1);
    // Four generations: the same shape, one cell to the south-east.
    let want = shift_torus(&start, rows, cols, 1, 1);
    assert_eq!(seq::life_run(&start, rows, cols, 4), want);
    // Twelve generations wrap the translation further (still on the torus).
    let want3 = shift_torus(&start, rows, cols, 3, 3);
    assert_eq!(seq::life_run(&start, rows, cols, 12), want3);
    for devices in [1usize, 2, 4] {
        assert_eq!(
            life_on_devices(&start, rows, cols, 4, devices),
            want,
            "{devices}-device glider"
        );
        assert_eq!(
            life_on_devices(&start, rows, cols, 12, devices),
            want3,
            "{devices}-device long glider run"
        );
    }
}

#[test]
fn life_soup_is_bit_identical_across_device_counts() {
    let (rows, cols) = (18, 13);
    let soup = life_soup(rows, cols, 42);
    let want = seq::life_run(&soup, rows, cols, 8);
    for devices in [1usize, 2, 4] {
        assert_eq!(
            life_on_devices(&soup, rows, cols, 8, devices),
            want,
            "{devices} devices"
        );
    }
}

#[test]
fn heat_relaxation_is_monotone_and_converges() {
    let (rows, cols) = (16, 12);
    let plate = heat_plate(rows, cols);
    let range = |g: &[f32]| -> (f32, f32) {
        g.iter()
            .fold((f32::MAX, f32::MIN), |(lo, hi), &v| (lo.min(v), hi.max(v)))
    };
    let (lo0, hi0) = range(&plate);
    // Per-step invariant: the update is a convex combination, so the
    // maximum never rises and the minimum never falls (up to one rounding
    // ulp, covered by the tolerance).
    let tol = (hi0 - lo0) * 1e-6;
    let mut cur = plate.clone();
    let (mut lo_prev, mut hi_prev) = (lo0, hi0);
    for step in 1..=60 {
        cur = seq::heat_step(&cur, rows, cols);
        let (lo, hi) = range(&cur);
        assert!(
            hi <= hi_prev + tol,
            "max rose at step {step}: {hi_prev} -> {hi}"
        );
        assert!(
            lo >= lo_prev - tol,
            "min fell at step {step}: {lo_prev} -> {lo}"
        );
        (lo_prev, hi_prev) = (lo, hi);
    }
    // And the transient genuinely contracts toward the uniform state.
    assert!(
        hi_prev - lo_prev < 0.5 * (hi0 - lo0),
        "60 steps must at least halve the temperature range"
    );
}

#[test]
fn heat_matches_the_sequential_reference_bit_for_bit() {
    let (rows, cols) = (16, 12);
    let plate = heat_plate(rows, cols);
    for n in [1usize, 5, 25] {
        let want: Vec<u32> = seq::heat_run(&plate, rows, cols, n)
            .iter()
            .map(|v| v.to_bits())
            .collect();
        for devices in [1usize, 2, 4] {
            let got: Vec<u32> = heat_on_devices(&plate, rows, cols, n, devices)
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(got, want, "{n} steps on {devices} devices");
        }
    }
}

#[test]
fn device_iteration_stays_on_the_devices() {
    let (rows, cols) = (16, 8);
    let c = ctx(4);
    let m = Matrix::from_vec(&c, rows, cols, heat_plate(rows, cols));
    m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .unwrap();
    m.ensure_on_devices().unwrap();
    let before = c.platform().stats_snapshot();
    let out = skelcl_impl::heat_run(&m, 12).unwrap();
    let delta = c.platform().stats_snapshot() - before;
    assert_eq!(delta.h2d_transfers, 0, "no re-upload between iterations");
    assert_eq!(delta.d2h_transfers, 0, "no intermediate download");
    assert!(delta.d2d_transfers > 0, "halo exchange crosses devices");
    assert_eq!(
        out.to_vec().unwrap(),
        seq::heat_run(&heat_plate(rows, cols), rows, cols, 12)
    );
}
