//! # skelcl-iterative — iterative simulation workloads over
//! `Matrix`/`Stencil2D::iterate`
//!
//! The workload class `Stencil2D::iterate(n)` was built for: simulations
//! that apply the *same* stencil hundreds of times, where the cost is
//! dominated by per-iteration halo exchanges rather than any single pass.
//! Two classics from the SkelCL stencil suite, implemented twice each:
//!
//! * [`seq`] — plain sequential host references,
//! * [`skelcl_impl`] — matrices + one iterated 2D stencil, ping-ponging
//!   two device-resident buffers with one batched halo exchange per
//!   iteration and no host round trips.
//!
//! The workloads:
//!
//! * **Heat relaxation** — Jacobi relaxation of the steady-state heat
//!   equation: every cell moves to the mean of its four neighbours
//!   ([`heat_at`]), edges insulated (`Neumann`). The update is a convex
//!   combination, so the grid's maximum never rises and its minimum never
//!   falls — the monotone-convergence invariant the golden tests check.
//! * **Game of life** — Conway's rules ([`life_at`]) on a torus (`Wrap`),
//!   with the standard period-2 (blinker) and translating (glider)
//!   golden states.
//!
//! Both paths evaluate every cell through the same per-cell function, so
//! their results are **bit-identical** — sequentially, on one device and
//! on many devices.

pub mod seq;
pub mod skelcl_impl;

/// One Jacobi relaxation step of the steady-state heat equation at the
/// getter's origin: the mean of the four direct neighbours. The weight is
/// an exact power of two, so the update is a floating-point-friendly
/// convex combination (max non-increasing, min non-decreasing). The
/// summation order is fixed and shared by both implementations — do not
/// "simplify" the expression.
#[inline]
pub fn heat_at(get: impl Fn(isize, isize) -> f32) -> f32 {
    0.25 * (get(-1, 0) + get(1, 0) + get(0, -1) + get(0, 1))
}

/// One game-of-life step at the getter's origin: Conway's B3/S23 rules
/// over the 8-neighbourhood, cells encoded as `0`/`1`.
#[inline]
pub fn life_at(get: impl Fn(isize, isize) -> u8) -> u8 {
    let mut neighbours = 0u32;
    for dr in -1isize..=1 {
        for dc in -1isize..=1 {
            if dr != 0 || dc != 0 {
                neighbours += u32::from(get(dr, dc));
            }
        }
    }
    let alive = get(0, 0) != 0;
    u8::from(neighbours == 3 || (alive && neighbours == 2))
}

/// A `rows × cols` plate at temperature 0 with a hot square in the upper
/// left and a cold square in the lower right — enough contrast that the
/// relaxation has a long monotone transient.
pub fn heat_plate(rows: usize, cols: usize) -> Vec<f32> {
    let mut grid = vec![0.0f32; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            if r < rows / 3 && c < cols / 3 {
                grid[r * cols + c] = 100.0;
            } else if r >= 2 * rows / 3 && c >= 2 * cols / 3 {
                grid[r * cols + c] = -100.0;
            }
        }
    }
    grid
}

/// An empty life grid with the given cells (as `(row, col)`) alive.
pub fn life_grid(rows: usize, cols: usize, alive: &[(usize, usize)]) -> Vec<u8> {
    let mut grid = vec![0u8; rows * cols];
    for &(r, c) in alive {
        grid[r * cols + c] = 1;
    }
    grid
}

/// A vertical period-2 blinker centred at `(row, col)`.
pub fn blinker(rows: usize, cols: usize, row: usize, col: usize) -> Vec<u8> {
    life_grid(rows, cols, &[(row - 1, col), (row, col), (row + 1, col)])
}

/// The standard south-east-bound glider with its 3×3 bounding box at
/// `(row, col)`: after every 4 generations the pattern reappears
/// translated by `(+1, +1)` (wrapping on the torus).
pub fn glider(rows: usize, cols: usize, row: usize, col: usize) -> Vec<u8> {
    life_grid(
        rows,
        cols,
        &[
            (row, col + 1),
            (row + 1, col + 2),
            (row + 2, col),
            (row + 2, col + 1),
            (row + 2, col + 2),
        ],
    )
}

/// A deterministic random-soup life grid (~37 % alive), for the
/// device-count determinism tests.
pub fn life_soup(rows: usize, cols: usize, salt: u32) -> Vec<u8> {
    (0..rows * cols)
        .map(|i| {
            let h = (i as u32)
                .wrapping_mul(0x9E3779B9)
                .wrapping_add(salt.wrapping_mul(0x85EBCA6B));
            u8::from(h % 8 < 3)
        })
        .collect()
}

/// Translate a wrapped grid by `(dr, dc)` (torus shift) — the expected
/// state of a glider run.
pub fn shift_torus<T: Copy>(grid: &[T], rows: usize, cols: usize, dr: usize, dc: usize) -> Vec<T> {
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let sr = (r + rows - dr) % rows;
            let sc = (c + cols - dc) % cols;
            out.push(grid[sr * cols + sc]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get_of(grid: &[u8], cols: usize, r: usize, c: usize) -> impl Fn(isize, isize) -> u8 + '_ {
        move |dr, dc| {
            let rr = r as isize + dr;
            let cc = c as isize + dc;
            if rr < 0 || cc < 0 {
                return 0;
            }
            grid.get(rr as usize * cols + cc as usize)
                .copied()
                .unwrap_or(0)
        }
    }

    #[test]
    fn life_rules_birth_survival_death() {
        // Row-major 3×3 neighbourhoods around the centre cell (1, 1).
        let born = [0, 1, 0, 1, 0, 0, 0, 1, 0]; // 3 neighbours, dead centre
        assert_eq!(life_at(get_of(&born, 3, 1, 1)), 1);
        let survives = [1, 1, 0, 0, 1, 0, 0, 0, 1]; // 3 neighbours, alive
        assert_eq!(life_at(get_of(&survives, 3, 1, 1)), 1);
        let lonely = [0, 0, 0, 1, 1, 0, 0, 0, 0]; // 1 neighbour
        assert_eq!(life_at(get_of(&lonely, 3, 1, 1)), 0);
        let crowded = [1, 1, 1, 1, 1, 0, 0, 1, 0]; // 5 neighbours
        assert_eq!(life_at(get_of(&crowded, 3, 1, 1)), 0);
    }

    #[test]
    fn heat_update_is_the_neighbour_mean() {
        let grid = [0.0f32, 8.0, 0.0, 4.0, 99.0, 12.0, 0.0, 16.0, 0.0];
        let get = |dr: isize, dc: isize| grid[((1 + dr) * 3 + (1 + dc)) as usize];
        assert_eq!(heat_at(get), 10.0); // (8 + 4 + 12 + 16) / 4
    }

    #[test]
    fn shift_torus_wraps() {
        let g = [1u8, 0, 0, 0];
        assert_eq!(shift_torus(&g, 2, 2, 1, 1), vec![0, 0, 0, 1]);
        assert_eq!(shift_torus(&shift_torus(&g, 2, 2, 1, 1), 2, 2, 1, 1), g);
    }
}
