//! The SkelCL implementation of the iterative workloads: one `Stencil2D`
//! per simulation, driven by `iterate(n)`.
//!
//! Everything device-resident: the `n` passes ping-pong two buffers per
//! device with one batched halo exchange per iteration; the host sees the
//! grid again only when the caller downloads the result.

use crate::{heat_at, life_at};
use skelcl::{Boundary2D, Matrix, Result, Stencil2D, Stencil2DView, UserFn};

/// The Jacobi heat-relaxation skeleton (radius 1, insulated edges).
pub fn heat_skeleton() -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "heat4",
        "float heat4(__global float* in, int r, int c, uint nr, uint nc) {\n\
         #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
             return 0.25f * (AT(-1,0) + AT(1,0) + AT(0,-1) + AT(0,1));\n\
         #undef AT\n\
         }",
        |v: &Stencil2DView<'_, f32>| heat_at(|dr, dc| v.get(dr, dc)),
    );
    // <<< kernel
    Stencil2D::new(user, 1, Boundary2D::Neumann)
}

/// The game-of-life skeleton (radius 1, toroidal world).
pub fn life_skeleton() -> Stencil2D<u8, u8, impl Fn(&Stencil2DView<'_, u8>) -> u8 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "life",
        "uchar life(__global uchar* in, int r, int c, uint nr, uint nc) {\n\
         #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
             int n = AT(-1,-1) + AT(-1,0) + AT(-1,1)\n\
                   + AT(0,-1)             + AT(0,1)\n\
                   + AT(1,-1)  + AT(1,0)  + AT(1,1);\n\
             return (n == 3 || (AT(0,0) && n == 2)) ? 1 : 0;\n\
         #undef AT\n\
         }",
        |v: &Stencil2DView<'_, u8>| life_at(|dr, dc| v.get(dr, dc)),
    );
    // <<< kernel
    Stencil2D::new(user, 1, Boundary2D::Wrap)
}

/// Relax the plate for `n` Jacobi steps on the devices.
pub fn heat_run(plate: &Matrix<f32>, n: usize) -> Result<Matrix<f32>> {
    heat_skeleton().iterate(plate, n)
}

/// Advance the world by `n` generations on the devices.
pub fn life_run(world: &Matrix<u8>, n: usize) -> Result<Matrix<u8>> {
    life_skeleton().iterate(world, n)
}
