//! Sequential references for the iterative workloads.
//!
//! Shares the per-cell functions with the SkelCL implementation so the two
//! agree bit-for-bit; only the iteration and boundary plumbing live here.

use crate::{heat_at, life_at};
use skelcl::Boundary2D;
use vgpu::Scalar;

/// Apply one radius-1 stencil `f` over the whole grid under `boundary`.
fn step<T: Scalar, F: Fn(&dyn Fn(isize, isize) -> T) -> T>(
    grid: &[T],
    rows: usize,
    cols: usize,
    boundary: Boundary2D,
    f: F,
) -> Vec<T> {
    let at = |r: isize, c: isize| -> T {
        let (r, c) = match boundary {
            Boundary2D::Neumann => (r.clamp(0, rows as isize - 1), c.clamp(0, cols as isize - 1)),
            Boundary2D::Wrap => (r.rem_euclid(rows as isize), c.rem_euclid(cols as isize)),
            Boundary2D::Zero => {
                if r < 0 || r >= rows as isize || c < 0 || c >= cols as isize {
                    return T::default();
                }
                (r, c)
            }
        };
        grid[r as usize * cols + c as usize]
    };
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows as isize {
        for c in 0..cols as isize {
            out.push(f(&|dr, dc| at(r + dr, c + dc)));
        }
    }
    out
}

/// One Jacobi heat-relaxation step (insulated edges).
pub fn heat_step(grid: &[f32], rows: usize, cols: usize) -> Vec<f32> {
    step(grid, rows, cols, Boundary2D::Neumann, |get| heat_at(get))
}

/// `n` Jacobi heat-relaxation steps.
pub fn heat_run(grid: &[f32], rows: usize, cols: usize, n: usize) -> Vec<f32> {
    let mut cur = grid.to_vec();
    for _ in 0..n {
        cur = heat_step(&cur, rows, cols);
    }
    cur
}

/// One game-of-life generation on the torus.
pub fn life_step(grid: &[u8], rows: usize, cols: usize) -> Vec<u8> {
    step(grid, rows, cols, Boundary2D::Wrap, |get| life_at(get))
}

/// `n` game-of-life generations on the torus.
pub fn life_run(grid: &[u8], rows: usize, cols: usize, n: usize) -> Vec<u8> {
    let mut cur = grid.to_vec();
    for _ in 0..n {
        cur = life_step(&cur, rows, cols);
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_block_is_a_still_life() {
        let g = crate::life_grid(6, 6, &[(2, 2), (2, 3), (3, 2), (3, 3)]);
        assert_eq!(life_run(&g, 6, 6, 5), g);
    }

    #[test]
    fn heat_conserves_a_uniform_plate() {
        let g = vec![7.5f32; 5 * 4];
        assert_eq!(heat_run(&g, 5, 4, 10), g);
    }
}
