//! # skelcl-mandel — the Mandelbrot case study (paper Section IV-A)
//!
//! "The Mandelbrot set are all complex numbers c for which the sequence
//! z_{i+1} = z_i² + c starting with z_0 = 0 does not escape to infinity
//! [...] We created three similar parallel implementations for computing a
//! Mandelbrot fractal using CUDA, OpenCL, and SkelCL."
//!
//! This crate provides the shared math (escape iteration, colouring, the
//! sequential reference) plus the three parallel variants, each in its own
//! module/file so the program-size experiment can count them separately:
//!
//! * [`skelcl_impl`] — `Map` skeleton over a vector of complex numbers,
//!   SkelCL's default 1-D work-groups of 256;
//! * [`opencl_impl`] — full OpenCL boilerplate, 16×16 work-groups;
//! * [`cuda_impl`] — CUDA runtime style, 16×16 thread blocks.

pub mod cuda_impl;
pub mod opencl_impl;
pub mod skelcl_impl;

/// A complex number pixel; the SkelCL variant maps over a vector of these
/// ("A Vector of complex numbers, each of which is represented by a pixel
/// of the Mandelbrot fractal, is passed to the Map skeleton").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Complex {
    pub re: f32,
    pub im: f32,
}

vgpu::impl_scalar!(Complex);

/// Fractal parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MandelParams {
    pub width: usize,
    pub height: usize,
    pub re_min: f32,
    pub re_max: f32,
    pub im_min: f32,
    pub im_max: f32,
    pub max_iter: u32,
}

impl MandelParams {
    /// The paper's full-size experiment: "a Mandelbrot fractal of size
    /// 4096×3072 pixels".
    pub fn paper_scale() -> Self {
        MandelParams {
            width: 4096,
            height: 3072,
            ..MandelParams::default()
        }
    }

    /// A reduced size for quick benchmarking; same aspect ratio and region,
    /// so per-pixel behaviour (and all runtime *ratios*) are preserved.
    pub fn bench_scale() -> Self {
        MandelParams::default()
    }

    /// A tiny size for unit tests.
    pub fn test_scale() -> Self {
        MandelParams {
            width: 64,
            height: 48,
            max_iter: 64,
            ..MandelParams::default()
        }
    }

    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// The complex number of pixel `(x, y)`.
    #[inline]
    pub fn pixel_to_complex(&self, x: usize, y: usize) -> Complex {
        let re =
            self.re_min + (self.re_max - self.re_min) * (x as f32 / (self.width - 1).max(1) as f32);
        let im = self.im_min
            + (self.im_max - self.im_min) * (y as f32 / (self.height - 1).max(1) as f32);
        Complex { re, im }
    }

    /// The host-side complex grid the SkelCL variant maps over.
    pub fn complex_grid(&self) -> Vec<Complex> {
        let mut grid = Vec::with_capacity(self.pixels());
        for y in 0..self.height {
            for x in 0..self.width {
                grid.push(self.pixel_to_complex(x, y));
            }
        }
        grid
    }
}

impl Default for MandelParams {
    fn default() -> Self {
        MandelParams {
            width: 1024,
            height: 768,
            re_min: -2.0,
            re_max: 1.0,
            im_min: -1.125,
            im_max: 1.125,
            max_iter: 1024,
        }
    }
}

/// Arithmetic operations one escape-loop iteration costs (z² + c plus the
/// magnitude test: 5 multiplies, 3 adds, 1 compare).
pub const OPS_PER_ITER: u64 = 9;

/// The escape iteration shared by every variant: the number of steps until
/// |z| > 2, or `max_iter` if the point is (presumed) in the set.
#[inline]
pub fn escape_iterations(c: Complex, max_iter: u32) -> u32 {
    let mut zr = 0.0f32;
    let mut zi = 0.0f32;
    let mut i = 0u32;
    while i < max_iter {
        let zr2 = zr * zr;
        let zi2 = zi * zi;
        if zr2 + zi2 > 4.0 {
            break;
        }
        zi = 2.0 * zr * zi + c.im;
        zr = zr2 - zi2 + c.re;
        i += 1;
    }
    i
}

/// Map an iteration count to a pixel colour: members of the set are painted
/// black, others get a colour derived from the iteration count.
#[inline]
pub fn color(iters: u32, max_iter: u32) -> u32 {
    if iters >= max_iter {
        return 0x000000;
    }
    let t = iters.wrapping_mul(2654435761);
    let r = (iters * 7) & 0xff;
    let g = (t >> 8) & 0xff;
    let b = t & 0xff;
    (r << 16) | (g << 8) | b
}

/// The sequential reference implementation.
pub fn reference(p: &MandelParams) -> Vec<u32> {
    let mut out = Vec::with_capacity(p.pixels());
    for y in 0..p.height {
        for x in 0..p.width {
            let c = p.pixel_to_complex(x, y);
            out.push(color(escape_iterations(c, p.max_iter), p.max_iter));
        }
    }
    out
}

/// Render the image as a binary PPM (P6) byte stream — lets the examples
/// write an actual picture.
pub fn to_ppm(p: &MandelParams, pixels: &[u32]) -> Vec<u8> {
    assert_eq!(pixels.len(), p.pixels());
    let mut out = format!("P6\n{} {}\n255\n", p.width, p.height).into_bytes();
    out.reserve(pixels.len() * 3);
    for &px in pixels {
        out.push((px >> 16) as u8);
        out.push((px >> 8) as u8);
        out.push(px as u8);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn origin_is_in_the_set() {
        let c = Complex { re: 0.0, im: 0.0 };
        assert_eq!(escape_iterations(c, 1000), 1000);
    }

    #[test]
    fn far_points_escape_immediately() {
        let c = Complex { re: 2.5, im: 2.5 };
        assert!(escape_iterations(c, 1000) <= 1);
    }

    #[test]
    fn period_2_bulb_is_in_the_set() {
        let c = Complex { re: -1.0, im: 0.0 };
        assert_eq!(escape_iterations(c, 1000), 1000);
    }

    #[test]
    fn members_are_black() {
        assert_eq!(color(100, 100), 0x000000);
        assert_ne!(color(50, 100), 0x000000);
    }

    #[test]
    fn pixel_mapping_covers_the_region() {
        let p = MandelParams::test_scale();
        let tl = p.pixel_to_complex(0, 0);
        let br = p.pixel_to_complex(p.width - 1, p.height - 1);
        assert_eq!(tl.re, p.re_min);
        assert_eq!(tl.im, p.im_min);
        assert!((br.re - p.re_max).abs() < 1e-5);
        assert!((br.im - p.im_max).abs() < 1e-5);
    }

    #[test]
    fn reference_image_has_set_members_and_escapees() {
        let p = MandelParams::test_scale();
        let img = reference(&p);
        assert_eq!(img.len(), p.pixels());
        let black = img.iter().filter(|&&c| c == 0).count();
        assert!(black > 0, "some pixels must be in the set");
        assert!(black < img.len(), "some pixels must escape");
    }

    #[test]
    fn ppm_has_correct_size_and_header() {
        let p = MandelParams::test_scale();
        let img = reference(&p);
        let ppm = to_ppm(&p, &img);
        assert!(ppm.starts_with(b"P6\n64 48\n255\n"));
        assert_eq!(ppm.len(), 13 + 3 * p.pixels());
    }

    #[test]
    fn complex_grid_is_row_major() {
        let p = MandelParams::test_scale();
        let grid = p.complex_grid();
        assert_eq!(grid.len(), p.pixels());
        assert_eq!(grid[0], p.pixel_to_complex(0, 0));
        assert_eq!(grid[p.width], p.pixel_to_complex(0, 1));
    }
}
