//! Mandelbrot with the CUDA runtime: "In CUDA, the kernel is called like an
//! ordinary function. A proprietary syntax is used to specify the size of
//! work-groups" (paper Section IV-A-1). One line of initialization, typed
//! launches, but the data transfer and grid sizing stay manual.

use crate::{color, escape_iterations, MandelParams, OPS_PER_ITER};
use skelcl_baselines::cuda::*;
use std::sync::Arc;
use vgpu::{Platform, Result, WorkGroup};

/// The `__global__` kernel nvcc would compile offline.
// >>> kernel
pub const KERNEL_SOURCE: &str = r#"
__global__ void mandelbrot(uint* out, uint width, uint height,
                           float4 region, uint max_iter) {
    uint x = blockIdx.x * blockDim.x + threadIdx.x;
    uint y = blockIdx.y * blockDim.y + threadIdx.y;
    if (x >= width || y >= height) {
        return;
    }
    float re = region.x + (region.y - region.x) * ((float)x / (float)(width - 1));
    float im = region.z + (region.w - region.z) * ((float)y / (float)(height - 1));
    float zr = 0.0f;
    float zi = 0.0f;
    uint iter = 0;
    while (iter < max_iter) {
        float zr2 = zr * zr;
        float zi2 = zi * zi;
        if (zr2 + zi2 > 4.0f) {
            break;
        }
        zi = 2.0f * zr * zi + im;
        zr = zr2 - zi2 + re;
        iter = iter + 1;
    }
    uint t = iter * 2654435761u;
    uint col = ((iter * 7u) & 0xffu) << 16 | (((t >> 8) & 0xffu) << 8) | (t & 0xffu);
    out[y * width + x] = (iter >= max_iter) ? 0u : col;
}
"#;
// <<< kernel

/// The thread-block shape the paper's CUDA version hand-picks.
pub const BLOCK: (usize, usize) = (16, 16);

/// Compute the fractal through the CUDA runtime API.
pub fn run(platform: &Platform, p: &MandelParams) -> Result<Vec<u32>> {
    let rt = CudaRuntime::new(platform);
    rt.set_device(0)?;

    let out = rt.malloc::<u32>(p.pixels())?;

    let module = CudaModule::new(&rt);
    let params = *p;
    let mandel = module.kernel(
        "mandelbrot",
        KERNEL_SOURCE,
        // >>> kernel
        Arc::new(move |wg: &WorkGroup, args: &CudaArgs| {
            let out = args.get_ptr::<u32>(0);
            let width = args.get_scalar::<u32>(1) as usize;
            let height = args.get_scalar::<u32>(2) as usize;
            let max_iter = args.get_scalar::<u32>(3);
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let (x, y) = (it.global_id(0), it.global_id(1));
                if x >= width || y >= height {
                    return;
                }
                let c = params.pixel_to_complex(x, y);
                let iters = escape_iterations(c, max_iter);
                it.work(iters as u64 * OPS_PER_ITER);
                it.write(out, y * width + x, color(iters, max_iter));
            });
        }),
        // <<< kernel
    )?;

    // mandelbrot<<<grid, block>>>(out, width, height, region, max_iter)
    let grid = (p.width.div_ceil(BLOCK.0), p.height.div_ceil(BLOCK.1));
    rt.launch_kernel_2d(
        &mandel,
        grid,
        BLOCK,
        CudaArgs::new()
            .ptr(&out)
            .scalar(p.width as u32)
            .scalar(p.height as u32)
            .scalar(p.max_iter),
    )?;
    rt.device_synchronize();

    let mut image = vec![0u32; p.pixels()];
    rt.memcpy_d2h(&mut image, &out)?;
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{DeviceSpec, PlatformConfig};

    #[test]
    fn matches_the_sequential_reference() {
        let platform = Platform::new(
            PlatformConfig::default()
                .spec(DeviceSpec::tiny())
                .cache_tag("mandel-cuda-test"),
        );
        let p = MandelParams::test_scale();
        let got = run(&platform, &p).unwrap();
        assert_eq!(got, crate::reference(&p));
    }

    #[test]
    fn cuda_beats_opencl_on_the_same_hardware() {
        // The compute-bound kernel exposes the compiler-efficiency gap the
        // paper reports ("CUDA was usually faster than OpenCL").
        let platform = Platform::new(
            PlatformConfig::default()
                .spec(DeviceSpec::tiny())
                .cache_tag("mandel-cuda-test"),
        );
        let p = MandelParams::test_scale();
        // warm the binary cache so compile time is excluded
        crate::opencl_impl::run(&platform, &p).unwrap();

        platform.reset_clocks();
        crate::opencl_impl::run(&platform, &p).unwrap();
        let t_ocl = platform.host_now_s();

        platform.reset_clocks();
        run(&platform, &p).unwrap();
        let t_cuda = platform.host_now_s();

        assert!(t_cuda < t_ocl, "cuda={t_cuda} should beat opencl={t_ocl}");
    }
}
