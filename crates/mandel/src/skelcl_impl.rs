//! Mandelbrot with SkelCL: the whole host program is "create a Map
//! skeleton, hand it the vector of pixel positions" (paper Section IV-A-1:
//! "In SkelCL, the kernel \[is\] passed to a newly created instance of a Map
//! skeleton [...] Specifying the work-group size is [...] optional in
//! SkelCL" — the default of 256 is used here, as in the paper's runs).

use crate::{color, escape_iterations, Complex, MandelParams, OPS_PER_ITER};
use skelcl::{Context, Map, Result, UserFn, Vector};

/// The customizing function's OpenCL-C source, as a SkelCL user would write
/// it (counted as this variant's kernel share in the program-size figure).
// >>> kernel
pub const KERNEL_SOURCE: &str = r#"
typedef struct { float re; float im; } Complex;
uint mandelbrot(Complex c) {
    float zr = 0.0f;
    float zi = 0.0f;
    uint iter = 0;
    while (iter < MAX_ITER) {
        float zr2 = zr * zr;
        float zi2 = zi * zi;
        if (zr2 + zi2 > 4.0f) {
            break;
        }
        zi = 2.0f * zr * zi + c.im;
        zr = zr2 - zi2 + c.re;
        iter = iter + 1;
    }
    if (iter >= MAX_ITER) {
        return 0;
    }
    uint t = iter * 2654435761u;
    uint r = (iter * 7u) & 0xffu;
    uint g = (t >> 8) & 0xffu;
    uint b = t & 0xffu;
    return (r << 16) | (g << 8) | b;
}
"#;
// <<< kernel

/// Compute the fractal with the Map skeleton; returns the pixel colours.
pub fn run(ctx: &Context, p: &MandelParams) -> Result<Vec<u32>> {
    let max_iter = p.max_iter;
    let mandel = UserFn::new(
        "mandelbrot",
        KERNEL_SOURCE,
        // >>> kernel
        move |c: Complex| -> u32 {
            let iters = escape_iterations(c, max_iter);
            skelcl::work(iters as u64 * OPS_PER_ITER);
            color(iters, max_iter)
        },
        // <<< kernel
    );
    let map = Map::new(mandel);
    let positions = Vector::from_vec(ctx, p.complex_grid());
    let image = map.apply(&positions)?;
    image.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skelcl::ContextConfig;

    #[test]
    fn matches_the_sequential_reference() {
        let ctx = Context::new(
            ContextConfig::default()
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("mandel-skelcl-test"),
        );
        let p = MandelParams::test_scale();
        let got = run(&ctx, &p).unwrap();
        assert_eq!(got, crate::reference(&p));
    }

    #[test]
    fn multi_device_run_matches_too() {
        let ctx = Context::new(
            ContextConfig::default()
                .devices(3)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("mandel-skelcl-test"),
        );
        let p = MandelParams::test_scale();
        let got = run(&ctx, &p).unwrap();
        assert_eq!(got, crate::reference(&p));
    }
}
