//! Mandelbrot with raw OpenCL: "a lengthy creation and initialization of
//! different data structures" (paper Section IV-A-1). Context, queue,
//! buffer, program, build, kernel, five argument bindings, an explicitly
//! sized 2-D launch with hand-chosen 16×16 work-groups, and an explicit
//! read-back — the boilerplate SkelCL hides.

use crate::{color, escape_iterations, MandelParams, OPS_PER_ITER};
use skelcl_baselines::opencl::*;
use std::sync::Arc;
use vgpu::{Platform, Result, WorkGroup};

/// The kernel source handed to `clCreateProgramWithSource` (the positions
/// are computed from the global IDs — unlike SkelCL, "no positions are
/// passed to the kernel").
// >>> kernel
pub const KERNEL_SOURCE: &str = r#"
__kernel void mandelbrot(__global uint* out,
                         const uint width,
                         const uint height,
                         const float4 region,
                         const uint max_iter) {
    uint x = get_global_id(0);
    uint y = get_global_id(1);
    if (x >= width || y >= height) {
        return;
    }
    float re = region.x + (region.y - region.x) * ((float)x / (float)(width - 1));
    float im = region.z + (region.w - region.z) * ((float)y / (float)(height - 1));
    float zr = 0.0f;
    float zi = 0.0f;
    uint iter = 0;
    while (iter < max_iter) {
        float zr2 = zr * zr;
        float zi2 = zi * zi;
        if (zr2 + zi2 > 4.0f) {
            break;
        }
        zi = 2.0f * zr * zi + im;
        zr = zr2 - zi2 + re;
        iter = iter + 1;
    }
    uint t = iter * 2654435761u;
    uint col = ((iter * 7u) & 0xffu) << 16 | (((t >> 8) & 0xffu) << 8) | (t & 0xffu);
    out[y * width + x] = (iter >= max_iter) ? 0u : col;
}
"#;
// <<< kernel

/// The 2-D work-group size the paper's OpenCL version hand-picks.
pub const WORK_GROUP: (usize, usize) = (16, 16);

/// Compute the fractal through the OpenCL host API.
pub fn run(platform: &Platform, p: &MandelParams) -> Result<Vec<u32>> {
    // -- initialization boilerplate ------------------------------------
    let platform_ids = cl_get_platform_ids(platform);
    let device_ids = cl_get_device_ids_for(platform, platform_ids[0]);
    let context = cl_create_context(platform, &device_ids)?;
    let queue = cl_create_command_queue(&context, 0)?;

    // -- memory objects -------------------------------------------------
    let out_mem = cl_create_buffer::<u32>(&context, 0, p.pixels())?;

    // -- program + kernel -----------------------------------------------
    let program = cl_create_program_with_source(&context, "mandelbrot_cl", KERNEL_SOURCE);
    cl_build_program(&queue, &program)?;
    let build_log = cl_get_program_build_log(&program);
    if !build_log.contains("successful") {
        panic!("kernel build failed: {build_log}");
    }
    let params = *p;
    let kernel = cl_create_kernel(
        &program,
        // >>> kernel
        Arc::new(move |wg: &WorkGroup, args: &ClArgs| {
            let out = args.buf::<u32>(0);
            let width = args.scalar::<u32>(1) as usize;
            let height = args.scalar::<u32>(2) as usize;
            let max_iter = args.scalar::<u32>(3);
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let (x, y) = (it.global_id(0), it.global_id(1));
                if x >= width || y >= height {
                    return;
                }
                let c = params.pixel_to_complex(x, y);
                let iters = escape_iterations(c, max_iter);
                it.work(iters as u64 * OPS_PER_ITER);
                it.write(out, y * width + x, color(iters, max_iter));
            });
        }),
        // <<< kernel
    )?;

    // -- argument binding ------------------------------------------------
    cl_set_kernel_arg_mem(&kernel, 0, &out_mem);
    cl_set_kernel_arg_scalar(&kernel, 1, p.width as u32);
    cl_set_kernel_arg_scalar(&kernel, 2, p.height as u32);
    cl_set_kernel_arg_scalar(&kernel, 3, p.max_iter);

    // -- launch with explicit global/local sizes -------------------------
    let global = (
        p.width.next_multiple_of(WORK_GROUP.0),
        p.height.next_multiple_of(WORK_GROUP.1),
    );
    cl_enqueue_nd_range_kernel_2d(&queue, &kernel, global, WORK_GROUP)?;
    cl_finish(&queue);

    // -- explicit download -------------------------------------------------
    let mut image = vec![0u32; p.pixels()];
    cl_enqueue_read_buffer(&queue, &out_mem, &mut image)?;

    // -- explicit teardown (the C API requires releasing every object) ----
    cl_release_kernel(kernel);
    cl_release_program(program);
    cl_release_mem_object(out_mem);
    cl_release_command_queue(queue);
    cl_release_context(context);
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{DeviceSpec, PlatformConfig};

    #[test]
    fn matches_the_sequential_reference() {
        let platform = Platform::new(
            PlatformConfig::default()
                .spec(DeviceSpec::tiny())
                .cache_tag("mandel-opencl-test"),
        );
        let p = MandelParams::test_scale();
        let got = run(&platform, &p).unwrap();
        assert_eq!(got, crate::reference(&p));
    }
}
