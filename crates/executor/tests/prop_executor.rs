//! Property suite of the multi-tenant executor: for all job mixes, tenant
//! counts, device counts, scheduling modes and batch limits,
//!
//! * results delivered through the concurrent service are **bit-identical**
//!   to running each tenant's jobs serially on a private context,
//! * the shared virtual timeline stays physical under contention (no two
//!   commands overlap on one engine of one device),
//! * the timeline is race-free: no unordered pair of commands conflicts on
//!   any buffer bytes (`skelcheck::verify_no_buffer_hazards`),
//! * and each tenant's jobs are dispatched in its submission order.
//!
//! Runs under the pinned-seed CI job (`PROPTEST_SEED`).

use proptest::prelude::*;
use skelcl::{Context, ContextConfig};
use skelcl_executor::{
    run_job, Executor, ExecutorConfig, Job, JobHandle, JobOutput, SchedulingMode,
};
use vgpu::{verify_engine_exclusive, DeviceSpec};

fn test_data(n: usize, seed: u32) -> Vec<f32> {
    (0..n)
        .map(|i| {
            ((((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) % 2000) as f32) / 8.0 - 125.0
        })
        .collect()
}

fn job_strategy() -> impl Strategy<Value = Job> {
    prop_oneof![
        (1usize..32, 0u32..1000, -4i32..5, -4i32..5).prop_map(|(n, seed, a, b)| Job::Axpb {
            a: a as f32 * 0.75,
            b: b as f32 * 0.5,
            data: test_data(n, seed),
        }),
        (1usize..48, 0u32..1000).prop_map(|(n, seed)| Job::RowSum {
            data: test_data(n, seed),
        }),
        (2usize..8, 2usize..8, 0usize..3, 0u32..1000).prop_map(|(rows, cols, iters, seed)| {
            Job::Jacobi {
                rows,
                cols,
                iters,
                data: test_data(rows * cols, seed),
            }
        }),
        (1usize..6, 1usize..6, 1usize..6, 0u32..1000).prop_map(|(m, k, n, seed)| Job::MatMul {
            m,
            k,
            n,
            a: test_data(m * k, seed),
            b: test_data(k * n, seed.wrapping_add(7)),
        }),
    ]
}

fn executor(devices: usize, max_batch: usize, fifo: bool, paused: bool) -> Executor {
    let mut cfg = ExecutorConfig::default()
        .devices(devices)
        .max_batch(max_batch)
        .scheduling(if fifo {
            SchedulingMode::Fifo
        } else {
            SchedulingMode::WeightedRoundRobin
        });
    cfg.spec = DeviceSpec::tiny();
    if paused {
        cfg = cfg.paused();
    }
    Executor::from_platform(
        vgpu::Platform::new(
            vgpu::PlatformConfig::default()
                .devices(devices)
                .spec(DeviceSpec::tiny()),
        ),
        cfg,
    )
}

/// Serial reference: the same job on a private single-tenant context,
/// homed on the same device the executor would pick.
fn serial_reference(devices: usize, tenant_index: usize, jobs: &[Job]) -> Vec<JobOutput> {
    let ctx = Context::new(
        ContextConfig::default()
            .devices(devices)
            .spec(DeviceSpec::tiny()),
    );
    jobs.iter()
        .map(|j| run_job(&ctx, tenant_index % devices, j).unwrap().0)
        .collect()
}

fn bits(out: &JobOutput) -> Vec<u32> {
    match out {
        JobOutput::Scalar(s) => vec![s.to_bits()],
        JobOutput::Vector(v) => v.iter().map(|x| x.to_bits()).collect(),
        JobOutput::Matrix { data, .. } => data.iter().map(|x| x.to_bits()).collect(),
    }
}

/// Submit every tenant's jobs from its own client thread, racing each
/// other and the dispatcher; wait for all handles.
fn submit_concurrently(
    exec: &Executor,
    tenant_jobs: &[Vec<Job>],
) -> Vec<Vec<(JobOutput, skelcl_executor::JobReport)>> {
    let ids: Vec<_> = tenant_jobs
        .iter()
        .enumerate()
        .map(|(i, _)| exec.add_tenant(format!("t{i}"), 1 + i % 3))
        .collect();
    std::thread::scope(|s| {
        let clients: Vec<_> = ids
            .iter()
            .zip(tenant_jobs)
            .map(|(&id, jobs)| {
                s.spawn(move || {
                    jobs.iter()
                        .map(|j| exec.submit(id, j.clone()).unwrap())
                        .collect::<Vec<JobHandle>>()
                })
            })
            .collect();
        let handles: Vec<Vec<JobHandle>> = clients.into_iter().map(|c| c.join().unwrap()).collect();
        // `drain` resumes a paused dispatcher, so pre-loaded-queue runs
        // release here with every queue already full.
        exec.drain();
        handles
            .into_iter()
            .map(|hs| hs.into_iter().map(|h| h.wait().unwrap()).collect())
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Outputs through the racing multi-tenant service == serial per-tenant
    // runs, bit for bit, for every mix / mode / batch limit / device count.
    #[test]
    fn concurrent_submissions_are_bit_identical_to_serial(
        devices in 1usize..4,
        max_batch in 1usize..6,
        fifo in any::<bool>(),
        tenant_jobs in prop::collection::vec(
            prop::collection::vec(job_strategy(), 1..6),
            1..4,
        ),
    ) {
        let exec = executor(devices, max_batch, fifo, false);
        let served = submit_concurrently(&exec, &tenant_jobs);
        for (ti, jobs) in tenant_jobs.iter().enumerate() {
            let expect = serial_reference(devices, ti, jobs);
            for (ji, (want, (got, _))) in expect.iter().zip(&served[ti]).enumerate() {
                prop_assert_eq!(
                    bits(got),
                    bits(want),
                    "tenant {} job {} diverged from serial run",
                    ti,
                    ji
                );
            }
        }
    }

    // Under contention the shared timeline stays physical, and each
    // tenant's jobs start in its submission order (per-tenant FIFO).
    #[test]
    fn contended_timeline_is_physical_and_per_tenant_ordered(
        devices in 1usize..4,
        max_batch in 1usize..6,
        fifo in any::<bool>(),
        tenant_jobs in prop::collection::vec(
            prop::collection::vec(job_strategy(), 1..5),
            2..4,
        ),
    ) {
        let exec = executor(devices, max_batch, fifo, true);
        exec.context().platform().enable_timeline_trace();
        // Queues fill while paused, then the dispatcher races a full
        // backlog across every tenant at once.
        let served = submit_concurrently(&exec, &tenant_jobs);
        let trace = exec.context().platform().take_timeline_trace();
        prop_assert!(!trace.is_empty(), "contended run must schedule device work");
        if let Some(violation) = verify_engine_exclusive(&trace) {
            return Err(TestCaseError::fail(format!(
                "engine exclusivity violated under contention:\n{violation}"
            )));
        }
        // Cross-tenant buffer reuse must never produce an unordered
        // conflicting pair anywhere in the contended timeline.
        if let Some(hazard) = skelcheck::verify_no_buffer_hazards(&trace) {
            return Err(TestCaseError::fail(format!(
                "buffer hazard under contention:\n{hazard}"
            )));
        }
        for (ti, reports) in served.iter().enumerate() {
            for window in reports.windows(2) {
                let (a, b) = (&window[0].1, &window[1].1);
                prop_assert!(
                    a.start_s <= b.start_s,
                    "tenant {} dispatched out of submission order ({} then {})",
                    ti,
                    a.start_s,
                    b.start_s
                );
                prop_assert!(a.ready_s >= a.start_s);
            }
        }
    }
}
