//! Structural round-trip of the executor's per-job tracing: every
//! completed job must emit a whole-job span with queue-wait and service
//! children, and the Chrome exporter must route them onto per-tenant
//! lanes (one process per tenant, threads: jobs / queue wait / service).
//! Mirrors the skeleton-span round-trip suite in `skelcl/tests/trace_export.rs`.

use skelcl::report::json::{parse, Json};
use skelcl::{chrome_trace_json, verify_span_nesting};
use skelcl_executor::{Executor, ExecutorConfig, Job};

fn ramp(n: usize, salt: f32) -> Vec<f32> {
    (0..n).map(|i| (i as f32).mul_add(0.25, salt)).collect()
}

/// Run a small two-tenant workload with spans on and return the recorded
/// spans plus the engine timeline.
fn traced_run() -> (Vec<skelcl::SpanRecord>, Vec<vgpu::CommandRecord>) {
    let exec = Executor::new(
        ExecutorConfig::default()
            .devices(2)
            .max_batch(1)
            .latency_slo(10.0)
            .paused(),
    );
    let alice = exec.add_tenant("alice", 1);
    let bob = exec.add_tenant("bob", 1);

    // Warm programs so the traced window is pure dispatch + service.
    let warm = [
        exec.submit(
            alice,
            Job::RowSum {
                data: ramp(64, 0.0),
            },
        )
        .unwrap(),
        exec.submit(
            bob,
            Job::RowSum {
                data: ramp(64, 1.0),
            },
        )
        .unwrap(),
    ];
    exec.drain();
    for h in warm {
        h.wait().unwrap();
    }

    exec.pause();
    let ctx = exec.context().clone();
    ctx.enable_spans();
    ctx.platform().enable_timeline_trace();
    ctx.platform().reset_clocks();
    ctx.clear_spans();

    let mut handles = Vec::new();
    for j in 0..3 {
        handles.push(
            exec.submit(
                alice,
                Job::RowSum {
                    data: ramp(64, j as f32),
                },
            )
            .unwrap(),
        );
        handles.push(
            exec.submit(
                bob,
                Job::RowSum {
                    data: ramp(64, 10.0 + j as f32),
                },
            )
            .unwrap(),
        );
    }
    exec.drain();
    for h in handles {
        h.wait().unwrap();
    }
    ctx.platform().sync_all();
    (ctx.take_spans(), ctx.platform().take_timeline_trace())
}

#[test]
fn every_job_emits_queue_wait_and_service_children() {
    let (spans, _) = traced_run();
    if let Some(violations) = verify_span_nesting(&spans) {
        panic!("span nesting violated:\n{violations}");
    }
    let jobs: Vec<_> = spans.iter().filter(|s| s.name == "executor.job").collect();
    assert_eq!(jobs.len(), 6, "3 jobs per tenant, 2 tenants");
    for job in &jobs {
        let tenant = job
            .attrs
            .iter()
            .find(|(k, _)| *k == "tenant")
            .map(|(_, v)| v.as_str())
            .expect("job span carries its tenant");
        assert!(tenant == "alice" || tenant == "bob", "{tenant}");
        let children: Vec<_> = spans.iter().filter(|s| s.parent == Some(job.id)).collect();
        assert_eq!(children.len(), 2, "queue_wait + service per job");
        let wait = children
            .iter()
            .find(|s| s.name == "executor.job.queue_wait")
            .expect("queue_wait child");
        let service = children
            .iter()
            .find(|s| s.name == "executor.job.service")
            .expect("service child");
        // The two children partition the job: submit ≤ dispatch ≤ ready.
        assert_eq!(wait.start_s, job.start_s);
        assert!((wait.end_s - service.start_s).abs() < 1e-12);
        assert_eq!(service.end_s, job.end_s);
        assert!(service.duration_s() > 0.0, "service does real work");
    }
}

#[test]
fn chrome_export_routes_jobs_onto_tenant_lanes() {
    let (spans, trace) = traced_run();
    let out = chrome_trace_json(&spans, &trace);
    let doc = parse(&out).expect("exporter emits valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();

    // One named process per tenant, above the device pid range.
    let tenant_pids: Vec<(f64, String)> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .filter_map(|e| {
            let name = e.get("args")?.get("name")?.as_str()?;
            let pid = e.get("pid")?.as_num()?;
            name.strip_prefix("tenant:").map(|t| (pid, t.to_string()))
        })
        .collect();
    assert_eq!(tenant_pids.len(), 2, "{tenant_pids:?}");
    for (pid, _) in &tenant_pids {
        assert!(*pid >= 100.0, "tenant lanes sit above device pids: {pid}");
    }
    let pid_of = |tenant: &str| {
        tenant_pids
            .iter()
            .find(|(_, t)| t == tenant)
            .map(|(p, _)| *p)
            .expect("tenant lane")
    };

    // Serving events land on their tenant's pid with the lane encoding
    // jobs=0 / queue wait=1 / service=2; none leak onto the span track.
    let serving: Vec<_> = events
        .iter()
        .filter(|e| e.get("cat").and_then(Json::as_str) == Some("serving"))
        .collect();
    assert_eq!(serving.len(), 18, "3 spans per job × 6 jobs");
    for e in &serving {
        let name = e.get("name").unwrap().as_str().unwrap();
        let tenant = e
            .get("args")
            .unwrap()
            .get("tenant")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(e.get("pid").unwrap().as_num(), Some(pid_of(tenant)));
        let want_tid = match name {
            "executor.job" => 0.0,
            "executor.job.queue_wait" => 1.0,
            "executor.job.service" => 2.0,
            other => panic!("unexpected serving span {other}"),
        };
        assert_eq!(e.get("tid").unwrap().as_num(), Some(want_tid), "{name}");
    }
    assert!(
        !events
            .iter()
            .any(|e| e.get("cat").and_then(Json::as_str) == Some("skeleton")
                && e.get("name")
                    .unwrap()
                    .as_str()
                    .unwrap_or("")
                    .starts_with("executor.job")),
        "job spans must not also appear on the depth-stacked track"
    );

    // Engine events still occupy the device pids untouched by the lanes.
    assert!(events
        .iter()
        .any(|e| e.get("cat").and_then(Json::as_str) == Some("engine")
            && e.get("pid")
                .unwrap()
                .as_num()
                .is_some_and(|p| (1.0..100.0).contains(&p))));
}
