//! The typed job surface of the executor service.
//!
//! A [`Job`] is a self-contained work request: the kind of skeleton to run
//! plus **owned** input data, so a client thread can hand it to the service
//! and walk away. Execution happens on the dispatcher thread through
//! [`run_batch`], which is the *only* launch primitive — a single job is a
//! batch of one, so coalesced and uncoalesced dispatch share every code
//! path that touches the device and results are bit-identical either way.
//!
//! Batching model: jobs that report the same [`Job::coalesce_key`] (same
//! kind, same shape, same scalar parameters) may be merged into one launch.
//! The merge stacks each job's vector as one row of a `k × n` matrix and
//! runs the matrix form of the skeleton once: `k` small `Map`s become one
//! `Map::apply_matrix`, `k` small row-sums become one `ReduceRows::apply`
//! over `k` rows. Because `Map` is element-wise and `ReduceRows` folds each
//! row independently in a canonical ascending order, row `i` of the fused
//! launch is bit-identical to running job `i` alone.

use skelcl::{Context, Matrix, MatrixDistribution, Result};

/// One unit of work a tenant can submit.
///
/// Inputs are owned (`Vec<f32>`) so submission transfers the data to the
/// service; nothing borrows from the client after `submit` returns.
#[derive(Debug, Clone)]
pub enum Job {
    /// Element-wise `a·x + b` over a vector (Map skeleton).
    Axpb { a: f32, b: f32, data: Vec<f32> },
    /// Sum of a vector via the canonical row-fold (ReduceRows skeleton).
    RowSum { data: Vec<f32> },
    /// `iters` Jacobi heat-relaxation steps over a `rows × cols` plate
    /// (Stencil2D skeleton, device-resident ping-pong).
    Jacobi {
        rows: usize,
        cols: usize,
        iters: usize,
        data: Vec<f32>,
    },
    /// `m×k · k×n` matrix product (AllPairs skeleton, streamed
    /// B-replication when B is host-fresh).
    MatMul {
        m: usize,
        k: usize,
        n: usize,
        a: Vec<f32>,
        b: Vec<f32>,
    },
}

/// The result payload of a finished job.
#[derive(Debug, Clone, PartialEq)]
pub enum JobOutput {
    Vector(Vec<f32>),
    Scalar(f32),
    Matrix {
        rows: usize,
        cols: usize,
        data: Vec<f32>,
    },
}

impl Job {
    /// Short static label for spans and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Job::Axpb { .. } => "axpb",
            Job::RowSum { .. } => "rowsum",
            Job::Jacobi { .. } => "jacobi",
            Job::MatMul { .. } => "matmul",
        }
    }

    /// Two jobs with equal keys may ride the same fused launch; `None`
    /// means the job never coalesces. Scalar parameters enter the key by
    /// bit pattern because each distinct `(a, b)` pair is a distinct
    /// generated program.
    pub fn coalesce_key(&self) -> Option<(u8, usize, u32, u32)> {
        match self {
            Job::Axpb { a, b, data } => Some((0, data.len(), a.to_bits(), b.to_bits())),
            Job::RowSum { data } => Some((1, data.len(), 0, 0)),
            Job::Jacobi { .. } | Job::MatMul { .. } => None,
        }
    }
}

fn axpb_user_fn(a: f32, b: f32) -> skelcl::UserFn<impl Fn(f32) -> f32 + Clone> {
    // One generated program per (a, b) pair: the scalars are baked into the
    // kernel body, so distinct pairs exercise the shared program registry
    // (and its admission control) rather than one kernel with arguments.
    let name = format!("axpb_{:08x}_{:08x}", a.to_bits(), b.to_bits());
    let source = format!("float {name}(float x) {{ return {a:?}f * x + {b:?}f; }}");
    skelcl::UserFn::new(name, source, move |x: f32| a * x + b)
}

/// Run one job. Defined as a batch of one so the single-job path *is* the
/// batched path — the bit-identity guarantee is structural, not tested-in.
pub fn run_job(ctx: &Context, home: usize, job: &Job) -> Result<(JobOutput, f64)> {
    let mut out = run_batch(ctx, home, std::slice::from_ref(job))?;
    Ok(out.pop().expect("run_batch returns one output per job"))
}

/// Execute `jobs` as one fused launch on `ctx`, homed on device `home` for
/// the coalescable kinds. All jobs must share the first job's
/// `coalesce_key` (the dispatcher guarantees this; non-coalescable kinds
/// arrive as batches of one). Returns `(output, ready_s)` per job in
/// submission order, where `ready_s` is the virtual time the result's
/// read-back completes — obtained via `read_back_async`, so the host clock
/// is never synced and concurrent tenants keep overlapping.
pub fn run_batch(ctx: &Context, home: usize, jobs: &[Job]) -> Result<Vec<(JobOutput, f64)>> {
    assert!(!jobs.is_empty(), "run_batch needs at least one job");
    match &jobs[0] {
        Job::Axpb { a, b, data } => {
            let n = data.len();
            if n == 0 {
                let now = ctx.host_now_s();
                return Ok(jobs
                    .iter()
                    .map(|_| (JobOutput::Vector(vec![]), now))
                    .collect());
            }
            let mut flat = Vec::with_capacity(jobs.len() * n);
            for job in jobs {
                match job {
                    Job::Axpb { data, .. } => flat.extend_from_slice(data),
                    other => panic!("mixed batch: axpb with {}", other.kind()),
                }
            }
            let input = Matrix::from_vec(ctx, jobs.len(), n, flat);
            input.set_distribution(MatrixDistribution::Single(home))?;
            let out = skelcl::Map::new(axpb_user_fn(*a, *b)).apply_matrix(&input)?;
            let (flat, ready_s) = out.read_back_async()?;
            Ok(flat
                .chunks(n)
                .map(|row| (JobOutput::Vector(row.to_vec()), ready_s))
                .collect())
        }
        Job::RowSum { data } => {
            let n = data.len();
            if n == 0 {
                let now = ctx.host_now_s();
                return Ok(jobs.iter().map(|_| (JobOutput::Scalar(0.0), now)).collect());
            }
            let mut flat = Vec::with_capacity(jobs.len() * n);
            for job in jobs {
                match job {
                    Job::RowSum { data } => flat.extend_from_slice(data),
                    other => panic!("mixed batch: rowsum with {}", other.kind()),
                }
            }
            let input = Matrix::from_vec(ctx, jobs.len(), n, flat);
            input.set_distribution(MatrixDistribution::Single(home))?;
            let sums = skelcl::ReduceRows::new(
                skelcl::skel_fn!(
                    fn sum(x: f32, y: f32) -> f32 {
                        x + y
                    }
                ),
                0.0f32,
            )
            .apply(&input)?;
            let (vals, ready_s) = sums.read_back_async()?;
            Ok(vals
                .into_iter()
                .map(|s| (JobOutput::Scalar(s), ready_s))
                .collect())
        }
        Job::Jacobi {
            rows,
            cols,
            iters,
            data,
        } => {
            assert_eq!(jobs.len(), 1, "jacobi jobs never coalesce");
            let plate = Matrix::from_vec(ctx, *rows, *cols, data.clone());
            let relaxed = skelcl_iterative::skelcl_impl::heat_skeleton().iterate(&plate, *iters)?;
            let (out, ready_s) = relaxed.read_back_async()?;
            Ok(vec![(
                JobOutput::Matrix {
                    rows: *rows,
                    cols: *cols,
                    data: out,
                },
                ready_s,
            )])
        }
        Job::MatMul { m, k, n, a, b } => {
            assert_eq!(jobs.len(), 1, "matmul jobs never coalesce");
            let a_mat = Matrix::from_vec(ctx, *m, *k, a.clone());
            let b_mat = Matrix::from_vec(ctx, *k, *n, b.clone());
            let c = skelcl_linalg::skelcl_impl::matmul_skeleton().apply(&a_mat, &b_mat)?;
            let (out, ready_s) = c.read_back_async()?;
            Ok(vec![(
                JobOutput::Matrix {
                    rows: *m,
                    cols: *n,
                    data: out,
                },
                ready_s,
            )])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, salt: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32).mul_add(0.125, salt)).collect()
    }

    #[test]
    fn coalesce_keys_separate_kinds_shapes_and_scalars() {
        let a = Job::Axpb {
            a: 2.0,
            b: 1.0,
            data: ramp(8, 0.0),
        };
        let a2 = Job::Axpb {
            a: 2.0,
            b: 1.0,
            data: ramp(8, 3.0),
        };
        let a3 = Job::Axpb {
            a: 2.5,
            b: 1.0,
            data: ramp(8, 0.0),
        };
        let a4 = Job::Axpb {
            a: 2.0,
            b: 1.0,
            data: ramp(9, 0.0),
        };
        let s = Job::RowSum { data: ramp(8, 0.0) };
        assert_eq!(a.coalesce_key(), a2.coalesce_key());
        assert_ne!(a.coalesce_key(), a3.coalesce_key());
        assert_ne!(a.coalesce_key(), a4.coalesce_key());
        assert_ne!(a.coalesce_key(), s.coalesce_key());
        assert!(Job::Jacobi {
            rows: 4,
            cols: 4,
            iters: 1,
            data: ramp(16, 0.0)
        }
        .coalesce_key()
        .is_none());
    }

    #[test]
    fn batched_axpb_matches_singletons_bitwise() {
        let ctx = Context::init(2);
        let jobs: Vec<Job> = (0..5)
            .map(|i| Job::Axpb {
                a: 1.5,
                b: -0.25,
                data: ramp(64, i as f32),
            })
            .collect();
        let fused = run_batch(&ctx, 1, &jobs).unwrap();
        for (job, (out, _)) in jobs.iter().zip(&fused) {
            let (solo, _) = run_job(&ctx, 1, job).unwrap();
            assert_eq!(*out, solo);
        }
    }

    #[test]
    fn batched_rowsum_matches_singletons_bitwise() {
        let ctx = Context::init(2);
        let jobs: Vec<Job> = (0..4)
            .map(|i| Job::RowSum {
                data: ramp(100, 0.5 + i as f32),
            })
            .collect();
        let fused = run_batch(&ctx, 0, &jobs).unwrap();
        for (job, (out, _)) in jobs.iter().zip(&fused) {
            let (solo, _) = run_job(&ctx, 0, job).unwrap();
            assert_eq!(*out, solo);
        }
    }

    #[test]
    fn jacobi_and_matmul_jobs_run_and_match_references() {
        let ctx = Context::init(2);
        let plate = skelcl_iterative::heat_plate(12, 16);
        let (out, _) = run_job(
            &ctx,
            0,
            &Job::Jacobi {
                rows: 12,
                cols: 16,
                iters: 3,
                data: plate.clone(),
            },
        )
        .unwrap();
        let expect = skelcl_iterative::seq::heat_run(&plate, 12, 16, 3);
        match out {
            JobOutput::Matrix { rows, cols, data } => {
                assert_eq!((rows, cols), (12, 16));
                for (got, want) in data.iter().zip(&expect) {
                    assert!((got - want).abs() < 1e-5);
                }
            }
            other => panic!("expected matrix, got {other:?}"),
        }

        let a = skelcl_linalg::test_matrix(6, 5, 1);
        let b = skelcl_linalg::test_matrix(5, 7, 2);
        let (out, _) = run_job(
            &ctx,
            0,
            &Job::MatMul {
                m: 6,
                k: 5,
                n: 7,
                a: a.clone(),
                b: b.clone(),
            },
        )
        .unwrap();
        let expect = skelcl_linalg::seq::matmul(&a, &b, 6, 5, 7);
        assert_eq!(
            out,
            JobOutput::Matrix {
                rows: 6,
                cols: 7,
                data: expect
            }
        );
    }

    #[test]
    fn empty_inputs_complete_without_device_work() {
        let ctx = Context::init(1);
        let (out, _) = run_job(
            &ctx,
            0,
            &Job::Axpb {
                a: 2.0,
                b: 0.0,
                data: vec![],
            },
        )
        .unwrap();
        assert_eq!(out, JobOutput::Vector(vec![]));
        let (out, _) = run_job(&ctx, 0, &Job::RowSum { data: vec![] }).unwrap();
        assert_eq!(out, JobOutput::Scalar(0.0));
    }
}
