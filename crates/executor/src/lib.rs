//! # skelcl-executor — multi-tenant skeleton serving
//!
//! The crates below this one answer "how do I run *one* skeleton fast on
//! the virtual platform?". This crate answers the serving question: many
//! clients, each with a stream of small jobs, sharing one set of devices
//! without trampling each other.
//!
//! Three layers:
//!
//! - **[`Job`] / [`JobHandle`]** — the typed job surface. A job owns its
//!   inputs (`Axpb`, `RowSum`, `Jacobi`, `MatMul` over the existing Map,
//!   ReduceRows, Stencil2D and AllPairs skeletons); `submit` returns a
//!   future the client `wait`s on for the output plus a [`JobReport`] with
//!   virtual-time latency accounting.
//! - **[`Executor`]** — per-tenant in-order streams forked off one shared
//!   platform ([`skelcl::Context::fork_streams`]): tenants share the
//!   device engines, the compiled-program registry (with per-tenant
//!   admission quotas) and the metrics registry, but their command streams
//!   are ordered independently, so one tenant's backlog does not order
//!   another tenant's work.
//! - **Scheduling** — bounded per-tenant queues with shed-on-full
//!   backpressure, weighted round-robin dispatch (a flooding tenant only
//!   grows its own queue), and batch coalescing that fuses consecutive
//!   same-kernel/same-shape jobs into one launch. Single jobs run through
//!   the same fused path (a batch of one), so coalescing is bit-transparent
//!   by construction.
//!
//! Observability rides the `skelcl` metrics registry: `executor.*`
//! counters, per-tenant `executor.tenant.<name>.*` series (including a
//! `queue_depth` gauge) and `executor.latency_s` histograms with
//! p50/p90/p99, which the `fig_executor` bench feeds into `RunReport`.

pub mod handle;
pub mod job;
pub mod service;

pub use handle::{JobError, JobHandle, JobReport, SubmitError};
pub use job::{run_batch, run_job, Job, JobOutput};
pub use service::{Executor, ExecutorConfig, SchedulingMode, TenantId};
