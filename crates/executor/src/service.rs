//! The multi-tenant executor: bounded per-tenant queues in front of one
//! dispatcher thread that multiplexes tenants onto the shared virtual
//! platform.
//!
//! # Threading model
//!
//! Client threads call [`Executor::submit`] concurrently; submission only
//! takes the scheduler lock, stamps the job with the current virtual time
//! and clock epoch, and enqueues it — no device commands are issued on
//! client threads. A single dispatcher thread pops batches and runs them
//! through [`crate::job::run_batch`], so every device command is issued
//! from one thread in a deterministic order per schedule, while the
//! *modeled* timeline still overlaps across tenants because each tenant
//! owns its own in-order streams (`Context::fork_streams`) and results are
//! materialized with `read_back_async` (the host clock is never synced to
//! device completion).
//!
//! # Scheduling
//!
//! [`SchedulingMode::WeightedRoundRobin`] visits backlogged tenants in a
//! cycle; each visit grants the tenant `weight` launches before the cursor
//! moves on, and each launch may coalesce up to `max_batch` consecutive
//! same-key jobs from that tenant's queue into one fused call. A tenant
//! that floods its queue therefore only lengthens *its own* backlog — other
//! tenants still get their launches every cycle. [`SchedulingMode::Fifo`]
//! dispatches in global arrival order instead and exists as the fairness
//! baseline: under it, one flooding tenant head-of-line-blocks everyone.
//!
//! # Backpressure
//!
//! Each tenant's queue is bounded at `queue_depth`; `submit` against a full
//! queue returns [`SubmitError::QueueFull`] immediately (shed, not
//! blocked) and bumps the tenant's `rejected` counter.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use skelcl::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use skelcl::{Context, ContextConfig, ProgramRegistry, SloSummary};
use vgpu::Platform;

use crate::handle::{JobError, JobHandle, JobReport, Slot, SubmitError};
use crate::job::{run_batch, Job};

/// Scheduler policy for draining tenant queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulingMode {
    /// Fair: cycle over backlogged tenants, `weight` launches per visit.
    WeightedRoundRobin,
    /// Baseline: strict global arrival order (no fairness isolation).
    Fifo,
}

/// Configuration for [`Executor::new`].
#[derive(Debug, Clone)]
pub struct ExecutorConfig {
    /// Number of virtual devices.
    pub devices: usize,
    /// Device model for every device.
    pub spec: vgpu::DeviceSpec,
    /// Work-group size handed to skeleton launches.
    pub work_group: usize,
    /// Optional on-disk kernel-cache tag (shared across tenants).
    pub cache_tag: Option<String>,
    /// Per-tenant queue bound; `submit` sheds beyond this depth.
    pub queue_depth: usize,
    /// Max jobs fused into one launch; `1` disables coalescing.
    pub max_batch: usize,
    /// Queue-drain policy.
    pub scheduling: SchedulingMode,
    /// Program-registry global capacity (`0` = unbounded).
    pub program_capacity: usize,
    /// Program-registry per-tenant quota (`0` = unbounded).
    pub program_quota: usize,
    /// Start with the dispatcher paused (tests/benches pre-load queues,
    /// then `resume` for a deterministic dispatch schedule).
    pub paused: bool,
    /// Optional per-job latency target (virtual seconds). When set, each
    /// completed job whose submit→ready latency exceeds the target bumps
    /// its tenant's `executor.tenant.<name>.slo_miss` counter and the
    /// service-wide `executor.slo_misses`; [`Executor::slo_summary`]
    /// aggregates the verdict for [`skelcl::RunReport::with_slo`].
    pub latency_slo_s: Option<f64>,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            devices: 2,
            spec: vgpu::DeviceSpec::default(),
            work_group: skelcl::DEFAULT_WORK_GROUP,
            cache_tag: None,
            queue_depth: 64,
            max_batch: 16,
            scheduling: SchedulingMode::WeightedRoundRobin,
            program_capacity: 0,
            program_quota: 0,
            paused: false,
            latency_slo_s: None,
        }
    }
}

impl ExecutorConfig {
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n;
        self
    }

    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    pub fn max_batch(mut self, n: usize) -> Self {
        self.max_batch = n.max(1);
        self
    }

    pub fn scheduling(mut self, mode: SchedulingMode) -> Self {
        self.scheduling = mode;
        self
    }

    pub fn program_limits(mut self, capacity: usize, per_tenant_quota: usize) -> Self {
        self.program_capacity = capacity;
        self.program_quota = per_tenant_quota;
        self
    }

    pub fn paused(mut self) -> Self {
        self.paused = true;
        self
    }

    /// Set the per-job latency SLO target (virtual seconds).
    pub fn latency_slo(mut self, target_s: f64) -> Self {
        self.latency_slo_s = Some(target_s);
        self
    }
}

/// Opaque tenant identifier returned by [`Executor::add_tenant`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TenantId(pub(crate) usize);

struct Queued {
    job: Job,
    slot: Arc<Slot>,
    submit_s: f64,
    epoch: u64,
    /// Span id allocated at submit when span collection is on — the job's
    /// trace identity, so its queue-wait and service intervals land in the
    /// Chrome trace as children of one per-job span.
    span: Option<u64>,
}

struct Tenant {
    name: String,
    weight: usize,
    home: usize,
    ctx: Context,
    queue: VecDeque<Queued>,
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    depth: Gauge,
    latency: Histogram,
    slo_miss: Counter,
    shed_rate: Gauge,
}

struct SchedState {
    tenants: Vec<Tenant>,
    /// Global arrival order (tenant index per queued job) — Fifo mode only.
    fifo: VecDeque<usize>,
    /// WRR cursor: current tenant index and launches left in its quantum.
    rr_cursor: usize,
    rr_turns_left: usize,
    pending: usize,
    in_flight: usize,
    paused: bool,
    shutdown: bool,
}

struct ServiceMetrics {
    submitted: Counter,
    completed: Counter,
    rejected: Counter,
    batches: Counter,
    coalesced_jobs: Counter,
    stale_epoch_jobs: Counter,
    latency: Histogram,
    slo_miss: Counter,
    shed_rate: Gauge,
}

impl ServiceMetrics {
    fn new(reg: &MetricsRegistry) -> ServiceMetrics {
        ServiceMetrics {
            submitted: reg.counter("executor.jobs.submitted"),
            completed: reg.counter("executor.jobs.completed"),
            rejected: reg.counter("executor.jobs.rejected"),
            batches: reg.counter("executor.batches"),
            coalesced_jobs: reg.counter("executor.coalesced_jobs"),
            stale_epoch_jobs: reg.counter("executor.stale_epoch_jobs"),
            latency: reg.histogram("executor.latency_s"),
            slo_miss: reg.counter("executor.slo_misses"),
            shed_rate: reg.gauge("executor.shed_rate"),
        }
    }

    /// Recompute the service-wide shed-rate gauge (shed / arrivals).
    fn update_shed_rate(&self) {
        let accepted = self.submitted.get();
        let shed = self.rejected.get();
        let total = accepted + shed;
        if total > 0 {
            self.shed_rate.set(shed as f64 / total as f64);
        }
    }
}

struct Shared {
    root: Context,
    cfg: ExecutorConfig,
    state: Mutex<SchedState>,
    /// Signalled on submit / resume / shutdown — wakes the dispatcher.
    work: Condvar,
    /// Signalled when the service goes idle — wakes `drain`.
    idle: Condvar,
    metrics: ServiceMetrics,
}

/// Recompute a tenant's shed-rate gauge (shed / arrivals).
fn update_tenant_shed_rate(t: &Tenant) {
    let accepted = t.submitted.get();
    let shed = t.rejected.get();
    let total = accepted + shed;
    if total > 0 {
        t.shed_rate.set(shed as f64 / total as f64);
    }
}

/// One batch popped from the scheduler, with everything `execute` needs so
/// the lock is not held across device work.
struct BatchPlan {
    jobs: Vec<Queued>,
    ctx: Context,
    home: usize,
    tenant: String,
    completed: Counter,
    latency: Histogram,
    slo_miss: Counter,
}

/// The multi-tenant executor service. See the module docs for the model.
pub struct Executor {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Executor {
    /// Build a fresh virtual platform per `cfg` and start the dispatcher.
    pub fn new(cfg: ExecutorConfig) -> Executor {
        let mut cc = ContextConfig::default()
            .devices(cfg.devices)
            .spec(cfg.spec)
            .work_group(cfg.work_group);
        if let Some(tag) = &cfg.cache_tag {
            cc = cc.cache_tag(tag.clone());
        }
        // Round-trip through a plain Context to reuse its platform wiring,
        // then rebuild with the admission-controlled registry.
        let platform = Context::new(cc).platform().clone();
        Executor::from_platform(platform, cfg)
    }

    /// Wrap an existing platform (benches share one platform between the
    /// executor and hand-rolled baselines).
    pub fn from_platform(platform: Platform, cfg: ExecutorConfig) -> Executor {
        let programs = if cfg.program_capacity > 0 || cfg.program_quota > 0 {
            let cap = if cfg.program_capacity == 0 {
                usize::MAX
            } else {
                cfg.program_capacity
            };
            let quota = if cfg.program_quota == 0 {
                usize::MAX
            } else {
                cfg.program_quota
            };
            ProgramRegistry::with_limits(cap, quota)
        } else {
            ProgramRegistry::unbounded()
        };
        let root = Context::from_platform_shared(platform, cfg.work_group, Arc::new(programs));
        let metrics = ServiceMetrics::new(root.metrics());
        let shared = Arc::new(Shared {
            root,
            state: Mutex::new(SchedState {
                tenants: Vec::new(),
                fifo: VecDeque::new(),
                rr_cursor: 0,
                rr_turns_left: 0,
                pending: 0,
                in_flight: 0,
                paused: cfg.paused,
                shutdown: false,
            }),
            cfg,
            work: Condvar::new(),
            idle: Condvar::new(),
            metrics,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("skelcl-executor".into())
                .spawn(move || dispatch_loop(&shared))
                .expect("spawn dispatcher thread")
        };
        Executor {
            shared,
            dispatcher: Some(dispatcher),
        }
    }

    /// Register a tenant: forks per-tenant in-order streams off the root
    /// context and pins a home device (round-robin over devices) for the
    /// coalescable small-job kinds. `weight` is the tenant's launches per
    /// round-robin visit (min 1).
    pub fn add_tenant(&self, name: impl Into<String>, weight: usize) -> TenantId {
        let name = name.into();
        let ctx = self.shared.root.fork_streams(name.clone());
        let reg = self.shared.root.metrics();
        let mut st = self.shared.state.lock().unwrap();
        let id = st.tenants.len();
        st.tenants.push(Tenant {
            home: id % self.shared.root.n_devices(),
            ctx,
            weight: weight.max(1),
            queue: VecDeque::new(),
            submitted: reg.counter(&format!("executor.tenant.{name}.submitted")),
            completed: reg.counter(&format!("executor.tenant.{name}.completed")),
            rejected: reg.counter(&format!("executor.tenant.{name}.rejected")),
            depth: reg.gauge(&format!("executor.tenant.{name}.queue_depth")),
            latency: reg.histogram(&format!("executor.tenant.{name}.latency_s")),
            slo_miss: reg.counter(&format!("executor.tenant.{name}.slo_miss")),
            shed_rate: reg.gauge(&format!("executor.tenant.{name}.shed_rate")),
            name,
        });
        TenantId(id)
    }

    /// Submit a job for `tenant`. Returns a [`JobHandle`] future, or sheds
    /// with [`SubmitError::QueueFull`] when the tenant's queue is at depth.
    /// Thread-safe; never blocks on device work.
    pub fn submit(&self, tenant: TenantId, job: Job) -> Result<JobHandle, SubmitError> {
        let submit_s = self.shared.root.host_now_s();
        let epoch = self.shared.root.platform().clock_epoch();
        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let depth_limit = self.shared.cfg.queue_depth;
        let fifo_mode = self.shared.cfg.scheduling == SchedulingMode::Fifo;
        let t = st
            .tenants
            .get_mut(tenant.0)
            .ok_or(SubmitError::UnknownTenant)?;
        if t.queue.len() >= depth_limit {
            t.rejected.inc();
            update_tenant_shed_rate(t);
            self.shared.metrics.rejected.inc();
            self.shared.metrics.update_shed_rate();
            return Err(SubmitError::QueueFull {
                tenant: t.name.clone(),
                depth: depth_limit,
            });
        }
        let slot = Slot::new();
        t.queue.push_back(Queued {
            job,
            slot: Arc::clone(&slot),
            submit_s,
            epoch,
            span: self.shared.root.alloc_span_id(),
        });
        t.submitted.inc();
        t.depth.set(t.queue.len() as f64);
        update_tenant_shed_rate(t);
        self.shared.metrics.submitted.inc();
        self.shared.metrics.update_shed_rate();
        st.pending += 1;
        if fifo_mode {
            st.fifo.push_back(tenant.0);
        }
        drop(st);
        self.shared.work.notify_one();
        Ok(JobHandle { slot })
    }

    /// Halt dispatch (queued jobs stay queued; submissions still accepted).
    pub fn pause(&self) {
        self.shared.state.lock().unwrap().paused = true;
    }

    /// Resume dispatch after [`Executor::pause`].
    pub fn resume(&self) {
        self.shared.state.lock().unwrap().paused = false;
        self.shared.work.notify_all();
    }

    /// Block until every queued and in-flight job has completed. Resumes a
    /// paused dispatcher (draining while paused would never finish).
    pub fn drain(&self) {
        let mut st = self.shared.state.lock().unwrap();
        if st.paused {
            st.paused = false;
            self.shared.work.notify_all();
        }
        while st.pending > 0 || st.in_flight > 0 {
            st = self.shared.idle.wait(st).unwrap();
        }
    }

    /// The shared root context (platform, metrics registry, span collector).
    pub fn context(&self) -> &Context {
        &self.shared.root
    }

    /// The shared metrics registry (per-tenant `executor.tenant.*` series,
    /// service-wide `executor.*` counters and the latency histogram).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.shared.root.metrics()
    }

    /// Service-wide latency histogram handle.
    pub fn latency_histogram(&self) -> Histogram {
        self.shared.metrics.latency.clone()
    }

    /// Current queue depth for a tenant (0 for unknown ids).
    pub fn queue_depth(&self, tenant: TenantId) -> usize {
        let st = self.shared.state.lock().unwrap();
        st.tenants.get(tenant.0).map_or(0, |t| t.queue.len())
    }

    /// Service-wide SLO verdict so far: deadline misses against the
    /// configured [`ExecutorConfig::latency_slo`] target, completed jobs,
    /// and shed submissions. `None` when no target was configured. Attach
    /// to a [`skelcl::RunReport`] via `with_slo` so serving figures (and
    /// the telemetry JSON export) carry it.
    pub fn slo_summary(&self) -> Option<SloSummary> {
        let target_s = self.shared.cfg.latency_slo_s?;
        Some(SloSummary {
            target_s,
            deadline_misses: self.shared.metrics.slo_miss.get(),
            jobs: self.shared.metrics.completed.get(),
            shed: self.shared.metrics.rejected.get(),
        })
    }
}

impl Drop for Executor {
    /// Graceful shutdown: mark, wake, and join — the dispatcher drains
    /// every already-queued job before exiting, so no accepted job is
    /// left pending.
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(h) = self.dispatcher.take() {
            let _ = h.join();
        }
    }
}

fn dispatch_loop(shared: &Shared) {
    loop {
        let plan = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.pending == 0 && st.shutdown {
                    return;
                }
                // Shutdown overrides pause: queued jobs must drain.
                if st.pending > 0 && (!st.paused || st.shutdown) {
                    break;
                }
                st = shared.work.wait(st).unwrap();
            }
            let plan = take_batch(shared, &mut st);
            st.pending -= plan.jobs.len();
            st.in_flight += plan.jobs.len();
            plan
        };
        let n = plan.jobs.len();
        execute(shared, plan);
        let mut st = shared.state.lock().unwrap();
        st.in_flight -= n;
        if st.pending == 0 && st.in_flight == 0 {
            shared.idle.notify_all();
        }
    }
}

/// Pop the next launch batch under the scheduler lock. Both modes pop at
/// least one job, then extend with *consecutive* same-key jobs from the
/// same tenant (up to `max_batch`) so per-tenant FIFO order is preserved.
fn take_batch(shared: &Shared, st: &mut SchedState) -> BatchPlan {
    let max_batch = shared.cfg.max_batch.max(1);
    let ti = match shared.cfg.scheduling {
        SchedulingMode::Fifo => st.fifo.pop_front().expect("pending > 0 implies fifo entry"),
        SchedulingMode::WeightedRoundRobin => {
            let n = st.tenants.len();
            let start = st.rr_cursor.min(n.saturating_sub(1));
            let ti = (0..n)
                .map(|off| (start + off) % n)
                .find(|&t| !st.tenants[t].queue.is_empty())
                .expect("pending > 0 implies a backlogged tenant");
            if ti != st.rr_cursor || st.rr_turns_left == 0 {
                st.rr_cursor = ti;
                st.rr_turns_left = st.tenants[ti].weight;
            }
            ti
        }
    };
    let key = st.tenants[ti]
        .queue
        .front()
        .expect("tenant selected with work")
        .job
        .coalesce_key();
    let mut jobs = vec![st.tenants[ti].queue.pop_front().expect("checked above")];
    while jobs.len() < max_batch {
        let next_matches = key.is_some()
            && st.tenants[ti]
                .queue
                .front()
                .is_some_and(|q| q.job.coalesce_key() == key);
        if !next_matches {
            break;
        }
        jobs.push(st.tenants[ti].queue.pop_front().expect("front checked"));
        if shared.cfg.scheduling == SchedulingMode::Fifo {
            // Every queued job has one fifo entry; the coalesced followers'
            // entries are this tenant's oldest remaining ones.
            let pos = st
                .fifo
                .iter()
                .position(|&t| t == ti)
                .expect("fifo entry per queued job");
            st.fifo.remove(pos);
        }
    }
    if shared.cfg.scheduling == SchedulingMode::WeightedRoundRobin {
        st.rr_turns_left = st.rr_turns_left.saturating_sub(1);
        if st.tenants[ti].queue.is_empty() {
            // The tenant drained mid-quantum. Forfeit the leftover turns:
            // the cursor parks here while the service idles, and without
            // this the stale `rr_turns_left` would shortchange the
            // tenant's *next* visit (it resumed the old quantum instead of
            // starting a fresh `weight`-sized one).
            st.rr_turns_left = 0;
        }
        if st.rr_turns_left == 0 {
            st.rr_cursor = (ti + 1) % st.tenants.len().max(1);
        }
    }
    let t = &st.tenants[ti];
    t.depth.set(t.queue.len() as f64);
    BatchPlan {
        jobs,
        ctx: t.ctx.clone(),
        home: t.home,
        tenant: t.name.clone(),
        completed: t.completed.clone(),
        latency: t.latency.clone(),
        slo_miss: t.slo_miss.clone(),
    }
}

/// Run one batch outside the scheduler lock and fill its slots.
fn execute(shared: &Shared, plan: BatchPlan) {
    let BatchPlan {
        jobs,
        ctx,
        home,
        tenant,
        completed,
        latency,
        slo_miss,
    } = plan;
    let kind = jobs[0].job.kind();
    let batched = jobs.len();
    let start_s = ctx.host_now_s();
    let epoch_now = ctx.platform().clock_epoch();
    let mut span = shared.root.span("executor.batch");
    span.attr("tenant", tenant.clone());
    span.attr("kind", kind);
    span.attr("jobs", batched.to_string());
    let job_refs: Vec<Job> = jobs.iter().map(|q| q.job.clone()).collect();
    let result = run_batch(&ctx, home, &job_refs);
    drop(span);
    shared.metrics.batches.inc();
    if batched > 1 {
        shared.metrics.coalesced_jobs.add(batched as u64 - 1);
    }
    match result {
        Ok(outputs) => {
            for (q, (out, ready_s)) in jobs.into_iter().zip(outputs) {
                let stale_epoch = q.epoch != epoch_now;
                if stale_epoch {
                    shared.metrics.stale_epoch_jobs.inc();
                }
                let report = JobReport {
                    tenant: tenant.clone(),
                    kind,
                    submit_s: q.submit_s,
                    start_s,
                    ready_s,
                    batched,
                    stale_epoch,
                };
                latency.observe(report.latency_s());
                shared.metrics.latency.observe(report.latency_s());
                if let Some(target) = shared.cfg.latency_slo_s {
                    if report.latency_s() > target {
                        slo_miss.inc();
                        shared.metrics.slo_miss.inc();
                    }
                }
                record_job_spans(shared, &q, &report);
                completed.inc();
                shared.metrics.completed.inc();
                q.slot.fill(Ok((out, report)));
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for q in jobs {
                q.slot.fill(Err(JobError::Failed(msg.clone())));
            }
        }
    }
}

/// Emit the job's trace spans: a whole-job `executor.job` span over
/// `[submit, ready]` with `executor.job.queue_wait` and
/// `executor.job.service` children, all tagged with the tenant so the
/// Chrome exporter routes them to the tenant's lane. The job span is a
/// *root* span — its interval starts at submit time, before the dispatch
/// batch opened, so parenting it under `executor.batch` would violate the
/// nesting invariant. Stale-epoch jobs are skipped (their submit timestamp
/// belongs to a dead clock).
fn record_job_spans(shared: &Shared, q: &Queued, report: &JobReport) {
    let Some(span_id) = q.span else { return };
    if report.stale_epoch {
        return;
    }
    let tag = |extra: bool| {
        let mut attrs = vec![
            ("tenant", report.tenant.clone()),
            ("kind", report.kind.to_string()),
        ];
        if extra {
            attrs.push(("batched", report.batched.to_string()));
        }
        attrs
    };
    let ctx = &shared.root;
    let id = ctx.record_interval_span(
        Some(span_id),
        "executor.job",
        None,
        report.submit_s,
        report.ready_s,
        tag(true),
    );
    ctx.record_interval_span(
        None,
        "executor.job.queue_wait",
        id,
        report.submit_s,
        report.start_s,
        tag(false),
    );
    ctx.record_interval_span(
        None,
        "executor.job.service",
        id,
        report.start_s,
        report.ready_s,
        tag(false),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobOutput;

    fn ramp(n: usize, salt: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32).mul_add(0.5, salt)).collect()
    }

    #[test]
    fn submit_wait_roundtrip_matches_direct_run() {
        let exec = Executor::new(ExecutorConfig::default());
        let t = exec.add_tenant("alice", 1);
        let h = exec
            .submit(
                t,
                Job::Axpb {
                    a: 3.0,
                    b: 1.0,
                    data: ramp(32, 0.0),
                },
            )
            .unwrap();
        let (out, report) = h.wait().unwrap();
        let expect: Vec<f32> = ramp(32, 0.0).iter().map(|x| 3.0 * x + 1.0).collect();
        assert_eq!(out, JobOutput::Vector(expect));
        assert_eq!(report.tenant, "alice");
        assert_eq!(report.kind, "axpb");
        assert!(report.ready_s >= report.submit_s);
        assert_eq!(
            exec.metrics().counter_value("executor.jobs.completed"),
            Some(1)
        );
    }

    #[test]
    fn backpressure_sheds_beyond_queue_depth() {
        let exec = Executor::new(ExecutorConfig::default().queue_depth(4).paused());
        let t = exec.add_tenant("bursty", 1);
        let mut handles = Vec::new();
        for i in 0..4 {
            handles.push(
                exec.submit(
                    t,
                    Job::RowSum {
                        data: ramp(16, i as f32),
                    },
                )
                .unwrap(),
            );
        }
        let err = exec
            .submit(
                t,
                Job::RowSum {
                    data: ramp(16, 9.0),
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            SubmitError::QueueFull {
                tenant: "bursty".into(),
                depth: 4
            }
        );
        assert_eq!(
            exec.metrics()
                .counter_value("executor.tenant.bursty.rejected"),
            Some(1)
        );
        assert_eq!(exec.queue_depth(t), 4);
        exec.drain();
        // Draining frees the queue: the shed job can now be resubmitted.
        for h in handles {
            h.wait().unwrap();
        }
        exec.submit(
            t,
            Job::RowSum {
                data: ramp(16, 9.0),
            },
        )
        .unwrap();
        exec.drain();
        assert_eq!(
            exec.metrics().counter_value("executor.jobs.completed"),
            Some(5)
        );
    }

    #[test]
    fn paused_executor_coalesces_same_key_jobs() {
        let exec = Executor::new(ExecutorConfig::default().max_batch(8).paused());
        let t = exec.add_tenant("batcher", 1);
        let handles: Vec<_> = (0..6)
            .map(|i| {
                exec.submit(
                    t,
                    Job::Axpb {
                        a: 2.0,
                        b: 0.5,
                        data: ramp(16, i as f32),
                    },
                )
                .unwrap()
            })
            .collect();
        exec.drain();
        for (i, h) in handles.into_iter().enumerate() {
            let (out, report) = h.wait().unwrap();
            assert_eq!(report.batched, 6, "all six jobs fused into one launch");
            let expect: Vec<f32> = ramp(16, i as f32).iter().map(|x| 2.0 * x + 0.5).collect();
            assert_eq!(out, JobOutput::Vector(expect));
        }
        assert_eq!(exec.metrics().counter_value("executor.batches"), Some(1));
        assert_eq!(
            exec.metrics().counter_value("executor.coalesced_jobs"),
            Some(5)
        );
    }

    #[test]
    fn coalescing_stops_at_key_boundaries_preserving_fifo() {
        let exec = Executor::new(ExecutorConfig::default().max_batch(8).paused());
        let t = exec.add_tenant("mixed", 1);
        let a1 = exec
            .submit(
                t,
                Job::Axpb {
                    a: 1.0,
                    b: 0.0,
                    data: ramp(8, 0.0),
                },
            )
            .unwrap();
        let s1 = exec.submit(t, Job::RowSum { data: ramp(8, 1.0) }).unwrap();
        let a2 = exec
            .submit(
                t,
                Job::Axpb {
                    a: 1.0,
                    b: 0.0,
                    data: ramp(8, 2.0),
                },
            )
            .unwrap();
        exec.drain();
        // Three distinct launches: the RowSum between the Axpbs splits them.
        assert_eq!(exec.metrics().counter_value("executor.batches"), Some(3));
        for h in [a1, a2] {
            assert_eq!(h.wait().unwrap().1.batched, 1);
        }
        assert_eq!(s1.wait().unwrap().1.batched, 1);
    }

    #[test]
    fn wrr_interleaves_tenants_fifo_serves_arrival_order() {
        // One device and no coalescing: every job is its own launch, and
        // the shared compute engine serializes launches in dispatch order,
        // so `ready_s` ordering *is* the schedule. Arrival order is
        // a₁ a₂ b₁ b₂; WRR must interleave (a₁ b₁ a₂ b₂), FIFO must not.
        for mode in [SchedulingMode::WeightedRoundRobin, SchedulingMode::Fifo] {
            let exec = Executor::new(
                ExecutorConfig::default()
                    .devices(1)
                    .scheduling(mode)
                    .max_batch(1)
                    .paused(),
            );
            let a = exec.add_tenant("a", 1);
            let b = exec.add_tenant("b", 1);
            let a_handles: Vec<_> = (0..2)
                .map(|i| {
                    exec.submit(
                        a,
                        Job::RowSum {
                            data: ramp(64, i as f32),
                        },
                    )
                    .unwrap()
                })
                .collect();
            let b_handles: Vec<_> = (0..2)
                .map(|i| {
                    exec.submit(
                        b,
                        Job::RowSum {
                            data: ramp(64, 9.0 + i as f32),
                        },
                    )
                    .unwrap()
                })
                .collect();
            exec.drain();
            let ready: Vec<f64> = a_handles
                .into_iter()
                .chain(b_handles)
                .map(|h| h.wait().unwrap().1.ready_s)
                .collect();
            let (a2, b1) = (ready[1], ready[2]);
            match mode {
                SchedulingMode::WeightedRoundRobin => assert!(
                    b1 < a2,
                    "round-robin serves b's first job before a's second (b1 {b1}, a2 {a2})"
                ),
                SchedulingMode::Fifo => assert!(
                    a2 < b1,
                    "fifo drains a's backlog before touching b (a2 {a2}, b1 {b1})"
                ),
            }
            assert_eq!(exec.metrics().counter_value("executor.batches"), Some(4));
            assert_eq!(
                exec.metrics().counter_value("executor.jobs.completed"),
                Some(4)
            );
        }
    }

    #[test]
    fn wrr_quantum_does_not_go_stale_across_idle_periods() {
        // Regression test: a tenant that drained its queue *mid-quantum*
        // used to keep the leftover `rr_turns_left`, so its next burst —
        // possibly much later — resumed the old, partially-spent quantum
        // instead of a fresh `weight`-sized one, and a light tenant's job
        // split the heavy tenant's burst in half. With the fix, draining
        // mid-quantum forfeits the remainder and advances the cursor, so
        // the heavy tenant's next visit is one uninterrupted weight-4 run.
        let exec = Executor::new(ExecutorConfig::default().devices(1).max_batch(1).paused());
        let heavy = exec.add_tenant("heavy", 4);
        let light = exec.add_tenant("light", 1);

        // Round 1: the heavy tenant drains after 2 of its 4 turns.
        let warmup: Vec<_> = (0..2)
            .map(|i| {
                exec.submit(
                    heavy,
                    Job::RowSum {
                        data: ramp(64, i as f32),
                    },
                )
                .unwrap()
            })
            .collect();
        exec.drain();
        for h in warmup {
            h.wait().unwrap();
        }

        // Round 2: heavy floods 4 jobs, light submits 1. As in
        // `wrr_interleaves_tenants_fifo_serves_arrival_order`, one device
        // plus no coalescing means `ready_s` ordering is the schedule.
        exec.pause();
        let heavy_handles: Vec<_> = (0..4)
            .map(|i| {
                exec.submit(
                    heavy,
                    Job::RowSum {
                        data: ramp(64, 10.0 + i as f32),
                    },
                )
                .unwrap()
            })
            .collect();
        let light_handle = exec
            .submit(
                light,
                Job::RowSum {
                    data: ramp(64, 99.0),
                },
            )
            .unwrap();
        exec.drain();

        let heavy_ready: Vec<f64> = heavy_handles
            .into_iter()
            .map(|h| h.wait().unwrap().1.ready_s)
            .collect();
        let light_ready = light_handle.wait().unwrap().1.ready_s;
        let split = heavy_ready.iter().filter(|&&r| r < light_ready).count();
        assert!(
            split == 0 || split == heavy_ready.len(),
            "the light job must not split the heavy tenant's quantum: \
             {split} of {} heavy jobs ran before it (stale rr_turns_left)",
            heavy_ready.len()
        );
    }

    #[test]
    fn slo_misses_and_shed_rate_are_tracked() {
        // An impossible 0-second target: every completed job misses it.
        let exec = Executor::new(
            ExecutorConfig::default()
                .queue_depth(2)
                .latency_slo(0.0)
                .paused(),
        );
        let t = exec.add_tenant("slo", 1);
        let mut handles = Vec::new();
        for i in 0..2 {
            handles.push(
                exec.submit(
                    t,
                    Job::RowSum {
                        data: ramp(16, i as f32),
                    },
                )
                .unwrap(),
            );
        }
        // Two shed submissions against two accepted: shed rate 0.5.
        for _ in 0..2 {
            exec.submit(
                t,
                Job::RowSum {
                    data: ramp(16, 9.0),
                },
            )
            .unwrap_err();
        }
        exec.drain();
        for h in handles {
            h.wait().unwrap();
        }
        assert_eq!(
            exec.metrics().counter_value("executor.tenant.slo.slo_miss"),
            Some(2),
            "every job misses a 0-second target"
        );
        assert_eq!(exec.metrics().counter_value("executor.slo_misses"), Some(2));
        let shed = exec.metrics().snapshot()["executor.tenant.slo.shed_rate"]
            .as_gauge()
            .unwrap();
        assert!((shed - 0.5).abs() < 1e-12, "shed_rate={shed}");

        let slo = exec.slo_summary().expect("target configured");
        assert_eq!(slo.deadline_misses, 2);
        assert_eq!(slo.jobs, 2);
        assert_eq!(slo.shed, 2);
        assert!((slo.miss_rate() - 1.0).abs() < 1e-12);
        assert!((slo.shed_rate() - 0.5).abs() < 1e-12);

        // No target configured → no summary, no misses counted.
        let plain = Executor::new(ExecutorConfig::default());
        let t = plain.add_tenant("p", 1);
        plain
            .submit(
                t,
                Job::RowSum {
                    data: ramp(16, 0.0),
                },
            )
            .unwrap()
            .wait()
            .unwrap();
        assert!(plain.slo_summary().is_none());
        assert_eq!(
            plain.metrics().counter_value("executor.slo_misses"),
            Some(0)
        );
    }

    #[test]
    fn unknown_tenant_and_shutdown_are_rejected() {
        let exec = Executor::new(ExecutorConfig::default());
        let err = exec
            .submit(TenantId(7), Job::RowSum { data: ramp(4, 0.0) })
            .unwrap_err();
        assert_eq!(err, SubmitError::UnknownTenant);
    }

    #[test]
    fn drop_drains_queued_jobs() {
        let exec = Executor::new(ExecutorConfig::default().paused());
        let t = exec.add_tenant("tail", 1);
        let h = exec
            .submit(
                t,
                Job::RowSum {
                    data: ramp(32, 0.0),
                },
            )
            .unwrap();
        drop(exec);
        // Shutdown overrides pause and drains before join: the handle
        // resolves rather than dangling.
        let (out, _) = h.wait().unwrap();
        let expect: f32 = ramp(32, 0.0).iter().sum();
        assert_eq!(out, JobOutput::Scalar(expect));
    }

    #[test]
    fn stale_epoch_jobs_fall_back_to_service_time() {
        let exec = Executor::new(ExecutorConfig::default().paused());
        let t = exec.add_tenant("longlived", 1);
        // Warm the program so post-reset latency is pure service time.
        let warm = exec
            .submit(
                t,
                Job::RowSum {
                    data: ramp(16, 0.0),
                },
            )
            .unwrap();
        exec.drain();
        warm.wait().unwrap();
        exec.pause();
        let h = exec
            .submit(
                t,
                Job::RowSum {
                    data: ramp(16, 1.0),
                },
            )
            .unwrap();
        // A maintenance epoch reset lands between submit and dispatch.
        exec.context().platform().reset_clocks();
        exec.drain();
        let (_, report) = h.wait().unwrap();
        assert!(
            report.stale_epoch,
            "epoch changed between submit and dispatch"
        );
        // Latency must not mix clocks from different epochs: it is the
        // service interval, not (new-epoch ready − old-epoch submit).
        assert!((report.latency_s() - (report.ready_s - report.start_s)).abs() < 1e-12);
        assert!(report.latency_s() >= 0.0);
        assert_eq!(
            exec.metrics().counter_value("executor.stale_epoch_jobs"),
            Some(1)
        );
        // Counters survive the epoch reset (completed counts both jobs).
        assert_eq!(
            exec.metrics().counter_value("executor.jobs.completed"),
            Some(2)
        );
    }
}
