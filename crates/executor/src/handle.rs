//! Futures for submitted jobs: a [`JobHandle`] is the client's end of a
//! one-shot slot the dispatcher fills when the job's launch completes.
//!
//! Built on `std::sync::{Mutex, Condvar}` — the handle is shared across
//! client threads and the dispatcher thread, and `wait` must block without
//! spinning.

use std::sync::{Arc, Condvar, Mutex};

use crate::job::JobOutput;

/// Why a submission was refused at the door.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The tenant's bounded queue is at its configured depth — backpressure.
    /// The job was shed; the client should retry later or slow down.
    QueueFull { tenant: String, depth: usize },
    /// No tenant with this id was registered.
    UnknownTenant,
    /// The executor is draining for shutdown.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { tenant, depth } => {
                write!(f, "tenant `{tenant}` queue full (depth {depth}); job shed")
            }
            SubmitError::UnknownTenant => write!(f, "unknown tenant id"),
            SubmitError::ShuttingDown => write!(f, "executor is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Why an accepted job failed to produce a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The skeleton launch failed; carries the rendered `skelcl::Error`.
    Failed(String),
    /// The executor shut down before dispatching the job.
    Cancelled,
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Failed(msg) => write!(f, "job failed: {msg}"),
            JobError::Cancelled => write!(f, "job cancelled by shutdown"),
        }
    }
}

impl std::error::Error for JobError {}

/// Per-job accounting attached to every completed job.
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Tenant the job ran under.
    pub tenant: String,
    /// Job kind label (`"axpb"`, `"rowsum"`, …).
    pub kind: &'static str,
    /// Virtual host time at `submit`.
    pub submit_s: f64,
    /// Virtual host time when the dispatcher began the launch.
    pub start_s: f64,
    /// Virtual time the result's async read-back completed.
    pub ready_s: f64,
    /// Number of jobs fused into the launch this job rode in (1 = solo).
    pub batched: usize,
    /// True when `reset_clocks` started a new epoch between submit and
    /// dispatch: `submit_s` is from the dead epoch, so `latency_s` falls
    /// back to service time only (`ready_s - start_s`).
    pub stale_epoch: bool,
}

impl JobReport {
    /// End-to-end latency in virtual seconds: queueing + service, or
    /// service only for jobs that straddled a clock epoch.
    pub fn latency_s(&self) -> f64 {
        let from = if self.stale_epoch {
            self.start_s
        } else {
            self.submit_s
        };
        (self.ready_s - from).max(0.0)
    }

    /// Time the job sat queued before the dispatcher picked it up
    /// (`submit` → launch start); 0 for jobs that straddled a clock epoch
    /// (their submit timestamp belongs to a dead clock).
    pub fn queue_wait_s(&self) -> f64 {
        if self.stale_epoch {
            0.0
        } else {
            (self.start_s - self.submit_s).max(0.0)
        }
    }

    /// Time from launch start to the result's read-back completing.
    pub fn service_s(&self) -> f64 {
        (self.ready_s - self.start_s).max(0.0)
    }
}

pub(crate) enum SlotState {
    Pending,
    Done(Result<(JobOutput, JobReport), JobError>),
    Taken,
}

/// The shared one-shot cell between dispatcher and client.
pub(crate) struct Slot {
    state: Mutex<SlotState>,
    cv: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot {
            state: Mutex::new(SlotState::Pending),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn fill(&self, result: Result<(JobOutput, JobReport), JobError>) {
        let mut st = self.state.lock().unwrap();
        if matches!(*st, SlotState::Pending) {
            *st = SlotState::Done(result);
            self.cv.notify_all();
        }
    }
}

/// The client's future for one submitted job. `wait` consumes the handle
/// and blocks until the dispatcher fills the slot.
pub struct JobHandle {
    pub(crate) slot: Arc<Slot>,
}

impl JobHandle {
    /// Block until the job completes; returns its output and report.
    pub fn wait(self) -> Result<(JobOutput, JobReport), JobError> {
        let mut st = self.slot.state.lock().unwrap();
        loop {
            match std::mem::replace(&mut *st, SlotState::Taken) {
                SlotState::Pending => {
                    *st = SlotState::Pending;
                    st = self.slot.cv.wait(st).unwrap();
                }
                SlotState::Done(result) => return result,
                SlotState::Taken => unreachable!("JobHandle::wait consumed twice"),
            }
        }
    }

    /// Non-blocking peek: `true` once the dispatcher has filled the slot.
    pub fn is_done(&self) -> bool {
        !matches!(*self.slot.state.lock().unwrap(), SlotState::Pending)
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("done", &self.is_done())
            .finish()
    }
}
