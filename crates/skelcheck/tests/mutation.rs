//! Mutation-style negative tests: hand-built timelines modelled on the
//! three real async patterns in the codebase — MapOverlap halo exchange,
//! streamed (chunked) uploads, and the executor's cross-tenant result copy
//! — each with its one load-bearing dependency edge either present (the
//! detector must stay silent) or dropped (the detector must report exactly
//! that pair, and nothing else).

use skelcheck::{find_buffer_hazards, verify_no_buffer_hazards, HazardKind};
use vgpu::{AccessRange, BufferId, CommandRecord, DeviceId, EngineKind};

fn kernel(seq: u64, dev: usize, start: f64, end: f64) -> CommandRecord {
    CommandRecord::interval(DeviceId(dev), EngineKind::Compute, start, end).with_seq(seq)
}

fn xfer(seq: u64, dev: usize, start: f64, end: f64) -> CommandRecord {
    CommandRecord::interval(DeviceId(dev), EngineKind::Copy, start, end).with_seq(seq)
}

fn whole(b: u64, bytes: u64) -> AccessRange {
    AccessRange::new(BufferId(b), 0, bytes)
}

fn range(b: u64, lo: u64, hi: u64) -> AccessRange {
    AccessRange::new(BufferId(b), lo, hi)
}

/// Halo exchange: device 0's producer kernel writes its part buffer; an
/// async d2d then copies the boundary rows into device 1's halo-extended
/// buffer. The copy must depend on the producer's event — drop that edge
/// and the copy may read the part before the kernel wrote it.
fn halo_exchange(with_producer_dep: bool) -> Vec<CommandRecord> {
    let part0 = 10; // device 0's owned part
    let ext1 = 11; // device 1's halo-extended input
    let out1 = 12;
    let copy_deps = if with_producer_dep { vec![1] } else { vec![] };
    vec![
        // producer: fills device 0's part, async on stream 0.
        kernel(1, 0, 0.0, 1.0)
            .on_stream(0)
            .asynchronous()
            .with_writes(vec![whole(part0, 4096)])
            .with_label("produce_part0"),
        // halo copy: last 64 bytes of part0 -> head of ext1 (cross-device:
        // two records, one seq).
        xfer(2, 0, 1.0, 1.2)
            .on_stream(1)
            .asynchronous()
            .with_deps(copy_deps)
            .with_reads(vec![range(part0, 4032, 4096)])
            .with_writes(vec![range(ext1, 0, 64)])
            .with_label("halo_d2d"),
        xfer(2, 1, 1.0, 1.2).on_stream(1).asynchronous(),
        // consumer stencil on device 1, gated on the halo copy.
        kernel(3, 1, 1.2, 2.2)
            .on_stream(2)
            .asynchronous()
            .with_deps(vec![2])
            .with_reads(vec![whole(ext1, 4224)])
            .with_writes(vec![whole(out1, 4096)])
            .with_label("stencil_dev1"),
    ]
}

#[test]
fn halo_exchange_with_producer_dep_is_clean() {
    assert_eq!(verify_no_buffer_hazards(&halo_exchange(true)), None);
}

#[test]
fn dropping_the_halo_producer_dep_reports_exactly_that_pair() {
    let hazards = find_buffer_hazards(&halo_exchange(false));
    assert_eq!(hazards.len(), 1, "{hazards:?}");
    let h = &hazards[0];
    assert_eq!(h.kind, HazardKind::Raw);
    assert_eq!(h.buffer, BufferId(10));
    assert_eq!((h.first.seq, h.second.seq), (1, 2));
    assert_eq!(h.first.label, "produce_part0");
    assert_eq!(h.second.label, "halo_d2d");
    // the overlap window is the halo rows, not the whole part.
    assert_eq!((h.lo, h.hi), (4032, 4096));
}

/// Streamed upload: chunks of one host buffer go up on alternating streams
/// while a kernel per chunk consumes them. Each kernel is gated on *its*
/// chunk's upload event. Dropping one gate leaves that kernel's read
/// unordered against the upload that fills it.
fn streamed_upload(gate_chunk1: bool) -> Vec<CommandRecord> {
    let buf = 20;
    let out = 21;
    let k1_deps = if gate_chunk1 { vec![2] } else { vec![] };
    vec![
        xfer(1, 0, 0.0, 0.5)
            .on_stream(0)
            .asynchronous()
            .with_writes(vec![range(buf, 0, 2048)])
            .with_label("h2d_chunk0"),
        xfer(2, 0, 0.5, 1.0)
            .on_stream(1)
            .asynchronous()
            .with_writes(vec![range(buf, 2048, 4096)])
            .with_label("h2d_chunk1"),
        // consumers run on their own compute streams: the upload events
        // are the only thing ordering them against the copies.
        kernel(3, 0, 0.5, 1.0)
            .on_stream(2)
            .asynchronous()
            .with_deps(vec![1])
            .with_reads(vec![range(buf, 0, 2048)])
            .with_writes(vec![range(out, 0, 2048)])
            .with_label("consume_chunk0"),
        kernel(4, 0, 1.0, 1.5)
            .on_stream(3)
            .asynchronous()
            .with_deps(k1_deps)
            .with_reads(vec![range(buf, 2048, 4096)])
            .with_writes(vec![range(out, 2048, 4096)])
            .with_label("consume_chunk1"),
    ]
}

#[test]
fn streamed_upload_with_chunk_gates_is_clean() {
    assert_eq!(verify_no_buffer_hazards(&streamed_upload(true)), None);
}

#[test]
fn dropping_one_chunk_gate_reports_exactly_that_pair() {
    let hazards = find_buffer_hazards(&streamed_upload(false));
    assert_eq!(hazards.len(), 1, "{hazards:?}");
    let h = &hazards[0];
    assert_eq!(h.kind, HazardKind::Raw);
    assert_eq!(h.buffer, BufferId(20));
    assert_eq!((h.first.seq, h.second.seq), (2, 4));
    assert_eq!(h.first.label, "h2d_chunk1");
    assert_eq!(h.second.label, "consume_chunk1");
    // chunk 0's pairing stays ordered: only the mutated edge is reported.
    assert_eq!((h.lo, h.hi), (2048, 4096));
}

/// Executor cross-tenant flow: tenant A's job reads a staging buffer while
/// the service recycles it for tenant B by overwriting it with B's input.
/// The recycle copy must wait on A's job event — dropping that edge is a
/// write-after-read race on the staging buffer.
fn cross_tenant_recycle(with_job_dep: bool) -> Vec<CommandRecord> {
    let staging = 30;
    let a_out = 31;
    let recycle_deps = if with_job_dep { vec![1] } else { vec![] };
    vec![
        kernel(1, 2, 0.0, 1.0)
            .on_stream(5)
            .asynchronous()
            .with_reads(vec![whole(staging, 8192)])
            .with_writes(vec![whole(a_out, 1024)])
            .with_label("tenant_a_job"),
        xfer(2, 2, 1.0, 1.4)
            .on_stream(6)
            .asynchronous()
            .with_deps(recycle_deps)
            .with_writes(vec![whole(staging, 8192)])
            .with_label("tenant_b_upload"),
        kernel(3, 2, 1.4, 2.0)
            .on_stream(6)
            .asynchronous()
            .with_reads(vec![whole(staging, 8192)])
            .with_label("tenant_b_job"),
    ]
}

#[test]
fn cross_tenant_recycle_with_job_dep_is_clean() {
    assert_eq!(verify_no_buffer_hazards(&cross_tenant_recycle(true)), None);
}

#[test]
fn dropping_the_cross_tenant_dep_reports_exactly_that_pair() {
    let hazards = find_buffer_hazards(&cross_tenant_recycle(false));
    assert_eq!(hazards.len(), 1, "{hazards:?}");
    let h = &hazards[0];
    assert_eq!(h.kind, HazardKind::War);
    assert_eq!(h.buffer, BufferId(30));
    assert_eq!((h.first.seq, h.second.seq), (1, 2));
    assert_eq!(h.first.label, "tenant_a_job");
    assert_eq!(h.second.label, "tenant_b_upload");
}

/// The verify wrapper's report must carry enough to debug from: kind,
/// buffer, byte window and both command labels.
#[test]
fn hazard_reports_are_self_describing() {
    let msg = verify_no_buffer_hazards(&halo_exchange(false)).expect("mutant must be caught");
    assert!(msg.contains("RAW"), "{msg}");
    assert!(msg.contains("produce_part0"), "{msg}");
    assert!(msg.contains("halo_d2d"), "{msg}");
    assert!(msg.contains("buf10"), "{msg}");
}
