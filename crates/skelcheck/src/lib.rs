//! skelcheck: debug/CI-time checkers for the SkelCL reproduction.
//!
//! Two analyzers over artifacts the library already produces:
//!
//! * [`hazard`] — a **buffer-level race detector** over recorded command
//!   timelines ([`vgpu::CommandRecord`] traces). It reconstructs the
//!   happens-before relation from stream program order, explicit event
//!   dependencies, device serialization and host synchronization, then
//!   flags RAW/WAR/WAW pairs on overlapping bytes of one device buffer
//!   with no ordering path. Batch form: [`verify_no_buffer_hazards`]
//!   (alongside `vgpu::verify_engine_exclusive`); online form:
//!   [`OnlineHazardChecker`], installable as a command observer that
//!   panics at the exact enqueue completing a race.
//! * [`lint`] — a **kernel source linter** for generated OpenCL programs:
//!   barriers under divergent control flow, `__local` allocations over the
//!   device budget, host/kernel argument-count mismatches, and unguarded
//!   thread-id-indexed global accesses. Run it over a program registry to
//!   vet every kernel a process ever built.
//!
//! Both are pure observers: they never change scheduling or results, so
//! they can run in CI (seeded property suites with the online checker
//! installed) without perturbing what they check.

pub mod hazard;
pub mod lint;

pub use hazard::{
    find_buffer_hazards, verify_no_buffer_hazards, CmdRef, Hazard, HazardKind, HazardState,
    OnlineHazardChecker,
};
pub use lint::{lint_program, LintFinding, LintRule};
