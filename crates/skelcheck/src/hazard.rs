//! Buffer-level race detection over recorded command timelines.
//!
//! The detector reconstructs the **happens-before** relation of a
//! [`CommandRecord`] trace and flags every pair of commands that touches
//! overlapping bytes of one device allocation — with at least one side
//! writing — while being *unordered* by that relation. Such a pair is a
//! scheduling hazard: the virtual timeline happened to order the two
//! commands this run, but nothing forced it to, so a future scheduling
//! change (more devices, different chunk sizes, a faster copy engine) can
//! flip the order and corrupt data.
//!
//! # The happens-before model
//!
//! `A → B` (A happens-before B) iff one of:
//!
//! 1. **Program order**: A and B were enqueued on the same in-order stream
//!    and A came first.
//! 2. **Explicit dependency**: B's `wait_for` list named A's event
//!    (`B.deps` contains `A.seq`).
//! 3. **Device serialization**: B is a *serializing* (classic-enqueue)
//!    command and A was scheduled earlier on any engine of a device B
//!    occupies — including markers, which join everything prior on their
//!    device.
//! 4. **Host synchronization**: A ended at or before a point the host
//!    observably waited for (blocking read, `finish`, `sync_all`) and B was
//!    enqueued after that wait (`A.end_s <= B.host_sync_s`).
//!
//! and transitive closures thereof. Deliberately **not** an edge:
//! engine-availability serialization (two async commands sharing one
//! engine). That ordering is incidental — depending on it is exactly the
//! bug class this detector exists to catch.
//!
//! Reachability is tracked incrementally with per-node ancestor bitsets:
//! pushing a record group ORs together the ancestor sets of its incoming
//! edges, so a hazard query is a single bit test. The same incremental core
//! serves the batch checker ([`find_buffer_hazards`]) and the online
//! observer ([`OnlineHazardChecker`]).

use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vgpu::{BufferId, CmdKind, CommandObserver, CommandRecord, DeviceId};

/// Dense bitset over node indices; join (`|=`) is the transitive-closure
/// step of the incremental reachability computation.
#[derive(Debug, Clone, Default)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn set(&mut self, i: usize) {
        let w = i / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    fn or_with(&mut self, other: &BitSet) {
        if other.words.len() > self.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }
}

/// The hazard classes, named for the second command's access relative to
/// the first's.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HazardKind {
    /// Read-after-write without ordering: the reader may see stale data.
    Raw,
    /// Write-after-read without ordering: the write may clobber data the
    /// reader still needs.
    War,
    /// Write-after-write without ordering: the final contents depend on
    /// scheduling luck.
    Waw,
}

impl fmt::Display for HazardKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            HazardKind::Raw => "RAW",
            HazardKind::War => "WAR",
            HazardKind::Waw => "WAW",
        })
    }
}

/// Identifies one command of a reported hazard.
#[derive(Debug, Clone, PartialEq)]
pub struct CmdRef {
    pub seq: u64,
    pub device: DeviceId,
    pub kind: CmdKind,
    pub label: String,
    pub start_s: f64,
    pub end_s: f64,
}

impl CmdRef {
    fn of(rec: &CommandRecord) -> Self {
        CmdRef {
            seq: rec.seq,
            device: rec.device,
            kind: rec.kind,
            label: rec.label.clone(),
            start_s: rec.start_s,
            end_s: rec.end_s,
        }
    }
}

impl fmt::Display for CmdRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {:?} \"{}\" on {} [{:.6e}, {:.6e}]",
            self.seq, self.kind, self.label, self.device, self.start_s, self.end_s
        )
    }
}

/// One unordered conflicting pair: `first` was pushed before `second`, both
/// touch `[lo, hi)` of `buffer`, at least one writes, and neither
/// happens-before the other.
#[derive(Debug, Clone, PartialEq)]
pub struct Hazard {
    pub kind: HazardKind,
    pub buffer: BufferId,
    /// The overlapping byte window of the two accesses.
    pub lo: u64,
    pub hi: u64,
    pub first: CmdRef,
    pub second: CmdRef,
}

impl fmt::Display for Hazard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hazard on {} bytes [{}, {}): {} is unordered against {}",
            self.kind, self.buffer, self.lo, self.hi, self.second, self.first
        )
    }
}

/// One recorded access by one node, kept per buffer for conflict checks.
#[derive(Debug, Clone, Copy)]
struct PriorAccess {
    node: usize,
    lo: u64,
    hi: u64,
    write: bool,
}

#[derive(Debug, Clone)]
struct Node {
    ancestors: BitSet,
    info: CmdRef,
}

/// Incremental happens-before state. Feed it record groups in enqueue
/// order ([`HazardState::push`]); collected hazards accumulate in
/// [`HazardState::hazards`].
#[derive(Debug, Default)]
pub struct HazardState {
    nodes: Vec<Node>,
    /// Per device: every node that occupied the device, plus its ancestors
    /// — the ancestor set a serializing command on that device inherits.
    device_join: HashMap<DeviceId, BitSet>,
    /// Per stream: index of the last node on that stream.
    stream_last: HashMap<u64, usize>,
    /// `seq` → node index, for resolving explicit dependencies.
    seq_to_node: HashMap<u64, usize>,
    /// Completed nodes not yet absorbed into `host_join`, keyed by end
    /// time (f64 bits — valid order for non-negative times).
    pending_host: Vec<(u64, usize)>,
    /// Everything the host has synchronized with, plus ancestors.
    host_join: BitSet,
    /// Per buffer: all accesses seen so far.
    accesses: HashMap<BufferId, Vec<PriorAccess>>,
    hazards: Vec<Hazard>,
    /// Dedup: (first node, second node, kind, buffer).
    seen: std::collections::HashSet<(usize, usize, HazardKind, BufferId)>,
    /// Record groups (commands) processed.
    commands: u64,
}

impl HazardState {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hazards found so far.
    pub fn hazards(&self) -> &[Hazard] {
        &self.hazards
    }

    /// Number of commands (record groups) processed so far.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    pub fn into_hazards(self) -> Vec<Hazard> {
        self.hazards
    }

    /// Process a run of records in trace order. Consecutive records sharing
    /// one *nonzero* `seq` form a single node (the two engine occupancies
    /// of a cross-device copy); every other record is its own node.
    pub fn push(&mut self, recs: &[CommandRecord]) {
        let mut i = 0;
        while i < recs.len() {
            let mut j = i + 1;
            while j < recs.len() && recs[i].seq != 0 && recs[j].seq == recs[i].seq {
                j += 1;
            }
            self.push_node(&recs[i..j]);
            i = j;
        }
    }

    fn push_node(&mut self, group: &[CommandRecord]) {
        let idx = self.nodes.len();
        let primary = &group[0];
        self.commands += 1;

        // --- Incoming edges -> ancestor set -------------------------------
        let mut ancestors = BitSet::default();

        // (1) stream program order.
        for rec in group {
            if let Some(s) = rec.stream {
                if let Some(&prev) = self.stream_last.get(&s) {
                    ancestors.set(prev);
                    let prev_anc = self.nodes[prev].ancestors.clone();
                    ancestors.or_with(&prev_anc);
                }
            }
        }

        // (2) explicit event dependencies (seq 0 = "no event", never a dep).
        for rec in group {
            for dep in &rec.deps {
                if let Some(&n) = self.seq_to_node.get(dep) {
                    ancestors.set(n);
                    let dep_anc = self.nodes[n].ancestors.clone();
                    ancestors.or_with(&dep_anc);
                }
            }
        }

        // (3) device serialization: a serializing record joins everything
        // previously scheduled on its device.
        for rec in group {
            if rec.serializing {
                if let Some(join) = self.device_join.get(&rec.device) {
                    ancestors.or_with(&join.clone());
                }
            }
        }

        // (4) host synchronization: absorb every node that ended by this
        // command's host-sync watermark, then join.
        let watermark = primary.host_sync_s;
        if watermark > 0.0 {
            let mut k = 0;
            while k < self.pending_host.len() {
                let (end_bits, n) = self.pending_host[k];
                if f64::from_bits(end_bits) <= watermark {
                    self.host_join.set(n);
                    let anc = self.nodes[n].ancestors.clone();
                    self.host_join.or_with(&anc);
                    self.pending_host.swap_remove(k);
                } else {
                    k += 1;
                }
            }
            ancestors.or_with(&self.host_join.clone());
        }

        // --- Conflict checks ----------------------------------------------
        for rec in group {
            for r in &rec.reads {
                self.check(idx, &ancestors, rec, r.buffer, r.lo, r.hi, false);
            }
            for w in &rec.writes {
                self.check(idx, &ancestors, rec, w.buffer, w.lo, w.hi, true);
            }
        }

        // --- State updates ------------------------------------------------
        for rec in group {
            for r in &rec.reads {
                self.accesses
                    .entry(r.buffer)
                    .or_default()
                    .push(PriorAccess {
                        node: idx,
                        lo: r.lo,
                        hi: r.hi,
                        write: false,
                    });
            }
            for w in &rec.writes {
                self.accesses
                    .entry(w.buffer)
                    .or_default()
                    .push(PriorAccess {
                        node: idx,
                        lo: w.lo,
                        hi: w.hi,
                        write: true,
                    });
            }
        }
        let mut self_set = BitSet::default();
        self_set.set(idx);
        self_set.or_with(&ancestors);
        for rec in group {
            self.device_join
                .entry(rec.device)
                .or_default()
                .or_with(&self_set);
            if let Some(s) = rec.stream {
                self.stream_last.insert(s, idx);
            }
        }
        if primary.seq != 0 {
            self.seq_to_node.insert(primary.seq, idx);
        }
        let end = group.iter().fold(0.0f64, |m, r| m.max(r.end_s));
        self.pending_host.push((end.to_bits(), idx));
        self.nodes.push(Node {
            ancestors,
            info: CmdRef::of(primary),
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn check(
        &mut self,
        idx: usize,
        ancestors: &BitSet,
        rec: &CommandRecord,
        buffer: BufferId,
        lo: u64,
        hi: u64,
        is_write: bool,
    ) {
        let Some(prior) = self.accesses.get(&buffer) else {
            return;
        };
        let mut found: Vec<(usize, HazardKind, u64, u64)> = Vec::new();
        for p in prior {
            if p.node == idx {
                continue; // a node never races itself (e.g. in-place copy)
            }
            if !(is_write || p.write) {
                continue; // read vs read
            }
            if p.lo >= hi || lo >= p.hi {
                continue; // disjoint bytes
            }
            if ancestors.get(p.node) {
                continue; // ordered
            }
            let kind = match (p.write, is_write) {
                (true, false) => HazardKind::Raw,
                (false, true) => HazardKind::War,
                (true, true) => HazardKind::Waw,
                (false, false) => unreachable!(),
            };
            found.push((p.node, kind, p.lo.max(lo), p.hi.min(hi)));
        }
        for (node, kind, olo, ohi) in found {
            if self.seen.insert((node, idx, kind, buffer)) {
                self.hazards.push(Hazard {
                    kind,
                    buffer,
                    lo: olo,
                    hi: ohi,
                    first: self.nodes[node].info.clone(),
                    second: CmdRef::of(rec),
                });
            }
        }
    }
}

/// Run the hazard detector over a complete recorded trace and return every
/// unordered conflicting pair, in discovery order.
pub fn find_buffer_hazards(trace: &[CommandRecord]) -> Vec<Hazard> {
    let mut st = HazardState::new();
    st.push(trace);
    st.into_hazards()
}

/// Invariant-checker form, matching `vgpu::verify_engine_exclusive`: `None`
/// when the trace is hazard-free, otherwise all hazards (one per line).
pub fn verify_no_buffer_hazards(trace: &[CommandRecord]) -> Option<String> {
    let hazards = find_buffer_hazards(trace);
    if hazards.is_empty() {
        None
    } else {
        Some(
            hazards
                .iter()
                .map(|h| h.to_string())
                .collect::<Vec<_>>()
                .join("\n"),
        )
    }
}

/// The online mode: an observer that feeds every scheduled command into an
/// incremental [`HazardState`] as it is enqueued and **panics** on the
/// first hazard — turning a latent scheduling bug into an immediate test
/// failure at the exact enqueue that completed the race.
#[derive(Debug, Default)]
pub struct OnlineHazardChecker {
    state: Mutex<HazardState>,
    checked: AtomicU64,
}

impl OnlineHazardChecker {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Commands checked so far (feeds the `skelcheck.hazards_checked`
    /// metric).
    pub fn commands_checked(&self) -> u64 {
        self.checked.load(Ordering::Relaxed)
    }

    /// Hazards found so far (normally zero — the observer panics on the
    /// first unless panicking is disabled by a caller draining this).
    pub fn hazard_count(&self) -> usize {
        self.state.lock().hazards().len()
    }

    /// Build the observer closure to install via
    /// `Platform::set_command_observer`.
    pub fn observer(self: &Arc<Self>) -> CommandObserver {
        let me = Arc::clone(self);
        Arc::new(move |group: &[CommandRecord]| {
            let mut st = me.state.lock();
            let before = st.hazards().len();
            st.push(group);
            me.checked.fetch_add(1, Ordering::Relaxed);
            if st.hazards().len() > before {
                let msg = st.hazards()[before..]
                    .iter()
                    .map(|h| h.to_string())
                    .collect::<Vec<_>>()
                    .join("\n");
                drop(st);
                panic!("buffer hazard detected by online checker:\n{msg}");
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{AccessRange, EngineKind};

    fn kernel(seq: u64, dev: usize, start: f64, end: f64) -> CommandRecord {
        CommandRecord::interval(DeviceId(dev), EngineKind::Compute, start, end).with_seq(seq)
    }

    fn copy(seq: u64, dev: usize, start: f64, end: f64) -> CommandRecord {
        CommandRecord::interval(DeviceId(dev), EngineKind::Copy, start, end).with_seq(seq)
    }

    fn whole(b: u64, bytes: u64) -> AccessRange {
        AccessRange::new(BufferId(b), 0, bytes)
    }

    #[test]
    fn stream_program_order_suppresses_conflicts() {
        let trace = vec![
            copy(1, 0, 0.0, 1.0)
                .on_stream(7)
                .asynchronous()
                .with_writes(vec![whole(1, 64)]),
            kernel(2, 0, 1.0, 2.0)
                .on_stream(7)
                .asynchronous()
                .with_reads(vec![whole(1, 64)]),
        ];
        assert_eq!(verify_no_buffer_hazards(&trace), None);
    }

    #[test]
    fn unordered_writes_are_reported_as_waw() {
        let trace = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![whole(9, 128)]),
            kernel(2, 0, 0.5, 1.5)
                .on_stream(2)
                .asynchronous()
                .with_writes(vec![whole(9, 128)]),
        ];
        let hazards = find_buffer_hazards(&trace);
        assert_eq!(hazards.len(), 1, "{hazards:?}");
        assert_eq!(hazards[0].kind, HazardKind::Waw);
        assert_eq!(hazards[0].buffer, BufferId(9));
        assert_eq!(hazards[0].first.seq, 1);
        assert_eq!(hazards[0].second.seq, 2);
    }

    #[test]
    fn explicit_event_dependency_orders_across_streams() {
        let trace = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![whole(3, 32)]),
            kernel(2, 0, 1.0, 2.0)
                .on_stream(2)
                .asynchronous()
                .with_deps(vec![1])
                .with_reads(vec![whole(3, 32)]),
        ];
        assert_eq!(verify_no_buffer_hazards(&trace), None);
    }

    #[test]
    fn a_serializing_command_joins_everything_prior_on_its_device() {
        let trace = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![whole(3, 32)]),
            // classic blocking-style read: no stream link, no deps, but
            // serializing on the same device.
            copy(2, 0, 1.0, 1.5).with_reads(vec![whole(3, 32)]),
        ];
        assert_eq!(verify_no_buffer_hazards(&trace), None);
        // the same read on ANOTHER device is unordered.
        let cross = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![whole(3, 32)]),
            copy(2, 1, 1.0, 1.5).with_reads(vec![whole(3, 32)]),
        ];
        assert_eq!(find_buffer_hazards(&cross).len(), 1);
    }

    #[test]
    fn host_synchronization_orders_cross_device_work() {
        // A finished at t=1.0 and the host observably waited for it before
        // enqueueing B (host_sync watermark 1.0).
        let ordered = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![whole(4, 16)]),
            kernel(2, 1, 1.0, 2.0)
                .on_stream(2)
                .asynchronous()
                .with_host_sync(1.0)
                .with_reads(vec![whole(4, 16)]),
        ];
        assert_eq!(verify_no_buffer_hazards(&ordered), None);
        // same timeline without the host wait: racy.
        let racy = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![whole(4, 16)]),
            kernel(2, 1, 1.0, 2.0)
                .on_stream(2)
                .asynchronous()
                .with_reads(vec![whole(4, 16)]),
        ];
        let hazards = find_buffer_hazards(&racy);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].kind, HazardKind::Raw);
    }

    #[test]
    fn disjoint_byte_ranges_of_one_buffer_do_not_conflict() {
        let trace = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![AccessRange::new(BufferId(5), 0, 64)]),
            kernel(2, 0, 0.0, 1.0)
                .on_stream(2)
                .asynchronous()
                .with_writes(vec![AccessRange::new(BufferId(5), 64, 128)]),
        ];
        assert_eq!(verify_no_buffer_hazards(&trace), None);
    }

    #[test]
    fn happens_before_is_transitive() {
        let trace = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![whole(6, 8)]),
            kernel(2, 0, 1.0, 2.0)
                .on_stream(2)
                .asynchronous()
                .with_deps(vec![1]),
            kernel(3, 0, 2.0, 3.0)
                .on_stream(3)
                .asynchronous()
                .with_deps(vec![2])
                .with_reads(vec![whole(6, 8)]),
        ];
        assert_eq!(verify_no_buffer_hazards(&trace), None);
    }

    #[test]
    fn cross_device_copy_records_form_one_node() {
        // A cross-device copy emits two records under one seq; a dependent
        // consumer must be ordered against the *pair*, and the pair must
        // not race itself.
        let trace = vec![
            copy(1, 0, 0.0, 1.0)
                .asynchronous()
                .on_stream(1)
                .with_reads(vec![whole(1, 64)])
                .with_writes(vec![whole(2, 64)]),
            copy(1, 1, 0.0, 1.0).asynchronous().on_stream(1),
            kernel(2, 1, 1.0, 2.0)
                .on_stream(2)
                .asynchronous()
                .with_deps(vec![1])
                .with_reads(vec![whole(2, 64)]),
        ];
        assert_eq!(verify_no_buffer_hazards(&trace), None);
    }

    #[test]
    fn war_is_distinguished_from_raw() {
        let trace = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_reads(vec![whole(2, 32)]),
            copy(2, 0, 0.5, 1.5)
                .on_stream(2)
                .asynchronous()
                .with_writes(vec![whole(2, 32)]),
        ];
        let hazards = find_buffer_hazards(&trace);
        assert_eq!(hazards.len(), 1);
        assert_eq!(hazards[0].kind, HazardKind::War);
    }

    #[test]
    fn incremental_push_matches_batch_results() {
        let trace = vec![
            kernel(1, 0, 0.0, 1.0)
                .on_stream(1)
                .asynchronous()
                .with_writes(vec![whole(9, 128)]),
            kernel(2, 0, 0.5, 1.5)
                .on_stream(2)
                .asynchronous()
                .with_writes(vec![whole(9, 128)]),
        ];
        let mut st = HazardState::new();
        for r in &trace {
            st.push(std::slice::from_ref(r));
        }
        assert_eq!(st.hazards().len(), find_buffer_hazards(&trace).len());
        assert_eq!(st.commands(), 2);
    }

    #[test]
    fn online_checker_panics_at_the_racy_enqueue() {
        let checker = OnlineHazardChecker::new();
        let obs = checker.observer();
        obs(&[kernel(1, 0, 0.0, 1.0)
            .on_stream(1)
            .asynchronous()
            .with_writes(vec![whole(9, 128)])]);
        assert_eq!(checker.commands_checked(), 1);
        let racy = kernel(2, 0, 0.5, 1.5)
            .on_stream(2)
            .asynchronous()
            .with_writes(vec![whole(9, 128)]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| obs(&[racy])))
            .expect_err("racy enqueue must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("WAW"), "{msg}");
    }
}
