//! A lint pass over generated OpenCL kernel sources.
//!
//! Every program the codegen layer emits is a string of OpenCL C; nothing
//! type-checks it before the (virtual) driver compiles it. This pass closes
//! the gap for the defect classes a skeleton library's templates can
//! actually introduce:
//!
//! * [`LintRule::DivergentBarrier`] — `barrier()` under thread-divergent
//!   control flow (a condition depending on `get_global_id`/`get_local_id`).
//!   On real hardware this deadlocks or is undefined; templates that guard
//!   a tree-reduction step incorrectly hit exactly this.
//! * [`LintRule::LocalMemBudget`] — statically declared `__local` arrays
//!   exceeding the device's local-memory size (a launch-time failure on
//!   real OpenCL, found here at lint time).
//! * [`LintRule::ArityMismatch`] — the host-side argument count
//!   ([`vgpu::Program::n_args`]) matches no `__kernel` signature in the
//!   source, so `clSetKernelArg` would fail or silently bind garbage.
//! * [`LintRule::UnguardedGlobalAccess`] — a `__global` pointer indexed by
//!   a thread-id-derived expression outside any bounds guard. Skeleton
//!   kernels launch rounded-up NDRanges, so the template **must** guard.
//!
//! The scanner is deliberately lexical (comment stripping, brace matching,
//! word-level taint propagation) rather than a C parser: user functions are
//! pasted into the source verbatim and may even be Rust (`skel_fn!` twins),
//! so the pass restricts itself to the `__kernel` functions it can anchor
//! precisely, and tolerates arbitrary text around them.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// The defect classes the linter reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintRule {
    DivergentBarrier,
    LocalMemBudget,
    ArityMismatch,
    UnguardedGlobalAccess,
}

impl fmt::Display for LintRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LintRule::DivergentBarrier => "divergent-barrier",
            LintRule::LocalMemBudget => "local-mem-budget",
            LintRule::ArityMismatch => "arity-mismatch",
            LintRule::UnguardedGlobalAccess => "unguarded-global-access",
        })
    }
}

/// One finding: which rule fired, in which program and kernel, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct LintFinding {
    pub rule: LintRule,
    pub program: String,
    pub kernel: String,
    pub message: String,
}

impl fmt::Display for LintFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}::{}: {}",
            self.rule, self.program, self.kernel, self.message
        )
    }
}

/// Lint one generated program source. `n_args` is the host-side argument
/// count the launch path will marshal; `local_mem_bytes` is the target
/// device's local-memory budget.
pub fn lint_program(
    program: &str,
    source: &str,
    n_args: usize,
    local_mem_bytes: u64,
) -> Vec<LintFinding> {
    let clean = strip_comments(source);
    let defines = collect_defines(&clean);
    let kernels = extract_kernels(&clean);
    let mut findings = Vec::new();

    // Arity: the host marshals `n_args` arguments; at least one __kernel
    // signature must accept exactly that many.
    if !kernels.is_empty() && !kernels.iter().any(|k| k.params.len() == n_args) {
        let sigs: Vec<String> = kernels
            .iter()
            .map(|k| format!("{}/{}", k.name, k.params.len()))
            .collect();
        findings.push(LintFinding {
            rule: LintRule::ArityMismatch,
            program: program.to_string(),
            kernel: kernels[0].name.clone(),
            message: format!(
                "host marshals {n_args} argument(s) but no kernel signature matches (found {})",
                sigs.join(", ")
            ),
        });
    }

    for k in &kernels {
        lint_kernel(program, k, &defines, local_mem_bytes, &mut findings);
    }
    findings
}

// ---------------------------------------------------------------------------
// Source preparation
// ---------------------------------------------------------------------------

/// Replace `//` and `/* */` comments with spaces (preserving offsets is not
/// needed, but preserving token separation is).
fn strip_comments(source: &str) -> String {
    let bytes = source.as_bytes();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            out.push(' ');
        } else if bytes[i] == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            i += 2;
            while i + 1 < bytes.len() && !(bytes[i] == b'*' && bytes[i + 1] == b'/') {
                i += 1;
            }
            i = (i + 2).min(bytes.len());
            out.push(' ');
        } else {
            out.push(bytes[i] as char);
            i += 1;
        }
    }
    out
}

/// Object-like `#define NAME <integer expr>` constants (function-like
/// macros are skipped — the linter treats their uses as opaque).
fn collect_defines(source: &str) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for line in source.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("#define") else {
            continue;
        };
        let rest = rest.trim_start();
        let name: String = rest
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let after = &rest[name.len()..];
        if after.starts_with('(') {
            continue; // function-like macro
        }
        map.insert(name, after.trim().to_string());
    }
    map
}

/// One kernel parameter, already split and classified.
#[derive(Debug, Clone)]
struct Param {
    name: String,
    global_ptr: bool,
    local_ptr: bool,
}

#[derive(Debug, Clone)]
struct Kernel {
    name: String,
    params: Vec<Param>,
    body: String,
}

/// Find every `__kernel void <name>(<params>) { <body> }` by brace
/// matching; anything outside those functions is ignored.
fn extract_kernels(source: &str) -> Vec<Kernel> {
    let mut kernels = Vec::new();
    let mut search = 0;
    while let Some(rel) = source[search..].find("__kernel") {
        let at = search + rel;
        search = at + "__kernel".len();
        let rest = &source[search..];
        let Some(po) = rest.find('(') else { break };
        let header = &rest[..po];
        let name = header
            .split_whitespace()
            .last()
            .unwrap_or_default()
            .to_string();
        let Some(pc) = matching(rest, po, '(', ')') else {
            break;
        };
        let params = split_params(&rest[po + 1..pc]);
        let after = &rest[pc + 1..];
        let Some(bo) = after.find('{') else { break };
        if after[..bo].trim() != "" {
            continue; // not a definition
        }
        let Some(bc) = matching(after, bo, '{', '}') else {
            break;
        };
        kernels.push(Kernel {
            name,
            params,
            body: after[bo + 1..bc].to_string(),
        });
        search += pc + 1 + bc + 1;
    }
    kernels
}

/// Index of the delimiter closing the one at `open`.
fn matching(text: &str, open: usize, oc: char, cc: char) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in text.char_indices().skip(open) {
        if c == oc {
            depth += 1;
        } else if c == cc {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Split a parameter list on top-level commas and classify each entry.
fn split_params(list: &str) -> Vec<Param> {
    let mut params = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in list.chars() {
        match c {
            '(' | '[' => {
                depth += 1;
                cur.push(c);
            }
            ')' | ']' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                params.push(cur.clone());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        params.push(cur);
    }
    params
        .into_iter()
        .filter(|p| !p.trim().is_empty())
        .map(|p| {
            let is_ptr = p.contains('*');
            let name = p
                .split(|c: char| !(c.is_alphanumeric() || c == '_'))
                .rfind(|t| !t.is_empty())
                .unwrap_or_default()
                .to_string();
            Param {
                name,
                global_ptr: is_ptr && p.contains("__global"),
                local_ptr: is_ptr && p.contains("__local"),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Taint: which identifiers derive from a thread id
// ---------------------------------------------------------------------------

/// `true` if `text` contains `ident` as a whole word.
fn contains_ident(text: &str, ident: &str) -> bool {
    let mut start = 0;
    while let Some(rel) = text[start..].find(ident) {
        let at = start + rel;
        let before_ok = at == 0
            || !text[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = at + ident.len();
        let after_ok = end >= text.len()
            || !text[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + ident.len();
    }
    false
}

/// `true` if the expression depends on a per-thread id — directly or via an
/// already-tainted identifier. `get_local_size`/`get_group_id`/
/// `get_num_groups` are uniform across a work-group and deliberately not
/// sources: every real reduction loop iterates on the local size.
fn expr_tainted(expr: &str, tainted: &HashSet<String>) -> bool {
    contains_ident(expr, "get_global_id")
        || contains_ident(expr, "get_local_id")
        || tainted.iter().any(|t| contains_ident(expr, t))
}

/// Fixpoint taint propagation over every simple assignment / declaration
/// (`name = expr` up to the next top-level `,`, `;` or `)`), anywhere in
/// the body — including `for` initializers and multi-declarator statements.
fn propagate_taint(body: &str) -> HashSet<String> {
    let mut tainted: HashSet<String> = HashSet::new();
    let assigns = collect_assignments(body);
    loop {
        let before = tainted.len();
        for (name, rhs) in &assigns {
            if expr_tainted(rhs, &tainted) {
                tainted.insert(name.clone());
            }
        }
        if tainted.len() == before {
            return tainted;
        }
    }
}

/// All `<ident> = <expr>` pairs in the body. Compound assignments
/// (`<<=`, `+=`, ...) keep their target's existing taint; plain stores
/// into array elements (`a[i] = ...`) are not identifier bindings.
fn collect_assignments(body: &str) -> Vec<(String, String)> {
    let bytes = body.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'=' {
            let prev = bytes[..i]
                .iter()
                .rev()
                .find(|b| !b.is_ascii_whitespace())
                .copied();
            let next = bytes.get(i + 1).copied();
            let compound = matches!(
                prev,
                Some(b'<' | b'>' | b'!' | b'+' | b'-' | b'*' | b'/' | b'%' | b'&' | b'|' | b'^')
            );
            if !compound && next != Some(b'=') {
                // identifier immediately left of '='
                let mut e = i;
                while e > 0 && bytes[e - 1].is_ascii_whitespace() {
                    e -= 1;
                }
                let mut s = e;
                while s > 0 && (bytes[s - 1].is_ascii_alphanumeric() || bytes[s - 1] == b'_') {
                    s -= 1;
                }
                if s < e {
                    let name = &body[s..e];
                    // RHS up to the next top-level , ; or )
                    let mut j = i + 1;
                    let mut depth = 0i32;
                    while j < bytes.len() {
                        match bytes[j] {
                            b'(' | b'[' => depth += 1,
                            b')' | b']' if depth > 0 => depth -= 1,
                            b')' | b';' | b',' | b'{' | b'}' if depth == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    out.push((name.to_string(), body[i + 1..j].to_string()));
                    i = j;
                    continue;
                }
            }
            // skip ==, <=, ... entirely
            if next == Some(b'=') {
                i += 1;
            }
        }
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Per-kernel rules
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum ScopeKind {
    /// `{ ... }` — popped by the matching `}`.
    Brace,
    /// A brace-less `if (...) stmt;` — popped by the next `;`.
    Stmt,
}

#[derive(Debug, Clone, Copy)]
struct Scope {
    kind: ScopeKind,
    /// The controlling condition depends on a thread id.
    divergent: bool,
    /// The controlling condition is a bounds guard: a comparison involving
    /// a tainted identifier.
    guard: bool,
}

fn lint_kernel(
    program: &str,
    k: &Kernel,
    defines: &HashMap<String, String>,
    local_mem_bytes: u64,
    findings: &mut Vec<LintFinding>,
) {
    let mut tainted = propagate_taint(&k.body);
    // Parameters are uniform (same value for every work-item) — remove any
    // accidental collision with an assignment-derived name.
    for p in &k.params {
        tainted.remove(&p.name);
    }

    check_local_arrays(program, k, defines, local_mem_bytes, findings);

    let globals: HashSet<&str> = k
        .params
        .iter()
        .filter(|p| p.global_ptr)
        .map(|p| p.name.as_str())
        .collect();
    let locals: HashSet<&str> = k
        .params
        .iter()
        .filter(|p| p.local_ptr)
        .map(|p| p.name.as_str())
        .collect();

    let body = &k.body;
    let bytes = body.as_bytes();
    let mut scopes: Vec<Scope> = Vec::new();
    let mut stmt_start = 0usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        // Control-flow keyword with a parenthesized condition?
        if (bytes[i].is_ascii_alphabetic() || bytes[i] == b'_')
            && (i == 0 || !(bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_'))
        {
            let mut e = i;
            while e < bytes.len() && (bytes[e].is_ascii_alphanumeric() || bytes[e] == b'_') {
                e += 1;
            }
            let word = &body[i..e];
            if matches!(word, "if" | "for" | "while") {
                let rest = &body[e..];
                if let Some(po) = rest.find('(') {
                    if rest[..po].trim().is_empty() {
                        if let Some(pc) = matching(rest, po, '(', ')') {
                            // For `for`, the guard is the middle clause; the
                            // whole header works for taint either way.
                            let cond = &rest[po + 1..pc];
                            let divergent = expr_tainted(cond, &tainted);
                            let guard = cond_is_bounds_guard(cond, &tainted);
                            let mut j = e + pc + 1;
                            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                                j += 1;
                            }
                            let kind = if bytes.get(j) == Some(&b'{') {
                                j += 1; // consume the brace here
                                ScopeKind::Brace
                            } else {
                                ScopeKind::Stmt
                            };
                            scopes.push(Scope {
                                kind,
                                divergent,
                                guard,
                            });
                            stmt_start = j;
                            i = j;
                            continue;
                        }
                    }
                }
            }
            // barrier under divergent control flow?
            if word == "barrier" && scopes.iter().any(|s| s.divergent) {
                findings.push(LintFinding {
                    rule: LintRule::DivergentBarrier,
                    program: program.to_string(),
                    kernel: k.name.clone(),
                    message:
                        "barrier() under control flow that depends on the thread id: work-items \
                         taking different paths deadlock at the barrier"
                            .to_string(),
                });
            }
            // tainted index into a __global pointer?
            if globals.contains(word) && !locals.contains(word) {
                let mut j = e;
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                if bytes.get(j) == Some(&b'[') {
                    if let Some(bc) = matching(body, j, '[', ']') {
                        let index = &body[j + 1..bc];
                        if expr_tainted(index, &tainted) {
                            let in_guard = scopes.iter().any(|s| s.guard)
                                || ternary_guarded(&body[stmt_start..i], &tainted);
                            if !in_guard {
                                findings.push(LintFinding {
                                    rule: LintRule::UnguardedGlobalAccess,
                                    program: program.to_string(),
                                    kernel: k.name.clone(),
                                    message: format!(
                                        "`{word}[{}]` indexes global memory by a thread-id-derived \
                                         expression with no enclosing bounds check",
                                        index.trim()
                                    ),
                                });
                            }
                        }
                        i = bc + 1;
                        continue;
                    }
                }
            }
            i = e;
            continue;
        }
        match c {
            b'{' => {
                scopes.push(Scope {
                    kind: ScopeKind::Brace,
                    divergent: false,
                    guard: false,
                });
                stmt_start = i + 1;
            }
            b'}' => {
                while let Some(s) = scopes.pop() {
                    if matches!(s.kind, ScopeKind::Brace) {
                        break;
                    }
                }
                stmt_start = i + 1;
            }
            b';' => {
                while scopes
                    .last()
                    .is_some_and(|s| matches!(s.kind, ScopeKind::Stmt))
                {
                    scopes.pop();
                }
                stmt_start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
}

/// A condition counts as a bounds guard when it compares something
/// involving a tainted identifier (`gid < n`, `row < n_rows && ...`,
/// `lid == 0`).
fn cond_is_bounds_guard(cond: &str, tainted: &HashSet<String>) -> bool {
    let relational = ["<", ">", "<=", ">=", "==", "!="]
        .iter()
        .any(|op| cond.contains(op));
    relational && expr_tainted(cond, tainted)
}

/// `stmt_prefix` is the current statement's text up to the access. If it
/// contains a `?` whose condition (text before the `?`) is a bounds guard,
/// the access sits in a guarded ternary arm:
/// `out[x] = (gid < n) ? in[gid] : 0;`.
fn ternary_guarded(stmt_prefix: &str, tainted: &HashSet<String>) -> bool {
    stmt_prefix
        .find('?')
        .is_some_and(|q| cond_is_bounds_guard(&stmt_prefix[..q], tainted))
}

/// Sum statically declared `__local` array bytes against the budget.
fn check_local_arrays(
    program: &str,
    k: &Kernel,
    defines: &HashMap<String, String>,
    local_mem_bytes: u64,
    findings: &mut Vec<LintFinding>,
) {
    let body = &k.body;
    let mut total: u64 = 0;
    let mut decls: Vec<String> = Vec::new();
    let mut search = 0;
    while let Some(rel) = body[search..].find("__local") {
        let at = search + rel;
        search = at + "__local".len();
        // `__local T name[expr]` — a declaration, not a pointer parameter.
        let rest = &body[search..];
        let stmt_end = rest.find(';').unwrap_or(rest.len());
        let decl = &rest[..stmt_end];
        let Some(bo) = decl.find('[') else { continue };
        if decl[..bo].contains('*') {
            continue; // pointer, not a static array
        }
        let mut toks = decl.split_whitespace();
        let ty = toks.next().unwrap_or_default();
        let Some(elem) = type_size(ty) else { continue };
        let Some(bc) = matching(decl, bo, '[', ']') else {
            continue;
        };
        let Some(count) = eval_const(&decl[bo + 1..bc], defines) else {
            continue;
        };
        total += elem * count;
        decls.push(format!("{} ({} B)", decl.trim(), elem * count));
    }
    if total > local_mem_bytes {
        findings.push(LintFinding {
            rule: LintRule::LocalMemBudget,
            program: program.to_string(),
            kernel: k.name.clone(),
            message: format!(
                "__local declarations total {total} B, exceeding the device budget of \
                 {local_mem_bytes} B: {}",
                decls.join(", ")
            ),
        });
    }
}

fn type_size(ty: &str) -> Option<u64> {
    Some(match ty {
        "char" | "uchar" => 1,
        "short" | "ushort" | "half" => 2,
        "int" | "uint" | "float" => 4,
        "long" | "ulong" | "double" => 8,
        _ => return None,
    })
}

/// Evaluate a constant integer expression of literals, object-like
/// `#define` names, `+ - * / << >>` and parentheses. `None` if anything is
/// not statically known.
fn eval_const(expr: &str, defines: &HashMap<String, String>) -> Option<u64> {
    let mut toks = tokenize(expr, defines)?;
    toks.reverse(); // pop from the front
    let v = eval_sum(&mut toks)?;
    if toks.is_empty() {
        Some(v)
    } else {
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Tok {
    Num(u64),
    Op(char),
    Shl,
    Shr,
    Open,
    Close,
}

fn tokenize(expr: &str, defines: &HashMap<String, String>) -> Option<Vec<Tok>> {
    let mut toks = Vec::new();
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c.is_ascii_whitespace() {
            i += 1;
        } else if c.is_ascii_digit() {
            let s = i;
            while i < bytes.len() && bytes[i].is_ascii_alphanumeric() {
                i += 1;
            }
            let lit = expr[s..i].trim_end_matches(['u', 'U', 'l', 'L']);
            toks.push(Tok::Num(lit.parse().ok()?));
        } else if c.is_ascii_alphabetic() || c == b'_' {
            let s = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let sub = defines.get(&expr[s..i])?;
            toks.push(Tok::Num(eval_const(sub, defines)?));
        } else if c == b'<' && bytes.get(i + 1) == Some(&b'<') {
            toks.push(Tok::Shl);
            i += 2;
        } else if c == b'>' && bytes.get(i + 1) == Some(&b'>') {
            toks.push(Tok::Shr);
            i += 2;
        } else if matches!(c, b'+' | b'-' | b'*' | b'/') {
            toks.push(Tok::Op(c as char));
            i += 1;
        } else if c == b'(' {
            toks.push(Tok::Open);
            i += 1;
        } else if c == b')' {
            toks.push(Tok::Close);
            i += 1;
        } else {
            return None;
        }
    }
    Some(toks)
}

fn eval_sum(toks: &mut Vec<Tok>) -> Option<u64> {
    let mut acc = eval_prod(toks)?;
    loop {
        match toks.last() {
            Some(Tok::Op('+')) => {
                toks.pop();
                acc = acc.checked_add(eval_prod(toks)?)?;
            }
            Some(Tok::Op('-')) => {
                toks.pop();
                acc = acc.checked_sub(eval_prod(toks)?)?;
            }
            Some(Tok::Shl) => {
                toks.pop();
                acc = acc.checked_shl(eval_prod(toks)? as u32)?;
            }
            Some(Tok::Shr) => {
                toks.pop();
                acc = acc.checked_shr(eval_prod(toks)? as u32)?;
            }
            _ => return Some(acc),
        }
    }
}

fn eval_prod(toks: &mut Vec<Tok>) -> Option<u64> {
    let mut acc = eval_atom(toks)?;
    loop {
        match toks.last() {
            Some(Tok::Op('*')) => {
                toks.pop();
                acc = acc.checked_mul(eval_atom(toks)?)?;
            }
            Some(Tok::Op('/')) => {
                toks.pop();
                let d = eval_atom(toks)?;
                acc = acc.checked_div(d)?;
            }
            _ => return Some(acc),
        }
    }
}

fn eval_atom(toks: &mut Vec<Tok>) -> Option<u64> {
    match toks.pop()? {
        Tok::Num(n) => Some(n),
        Tok::Open => {
            let v = eval_sum(toks)?;
            if toks.pop()? == Tok::Close {
                Some(v)
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BUDGET: u64 = 16 << 10; // Tesla C1060 local memory

    /// A faithful mimic of the generated Reduce program: barriers only at
    /// work-group-uniform points, __local passed as a pointer parameter,
    /// every global access guarded. Must lint clean.
    const REDUCE_LIKE: &str = r#"
        // generated by SkelCL codegen: Reduce skeleton (local-memory tree)
        float sum(float x, float y) { return x + y; }
        __kernel void skelcl_reduce(__global const float* restrict in,
                                    __global float* restrict partials,
                                    const uint n,
                                    __local float* scratch) {
            uint gid = get_global_id(0);
            uint lid = get_local_id(0);
            uint group = get_group_id(0);
            uint lsize = get_local_size(0);
            scratch[lid] = (gid < n) ? in[gid] : (float)0;
            barrier(CLK_LOCAL_MEM_FENCE);
            for (uint s = lsize / 2; s > 0; s >>= 1) {
                if (lid < s) {
                    scratch[lid] = sum(scratch[lid], scratch[lid + s]);
                }
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            if (lid == 0) partials[group] = scratch[0];
        }
    "#;

    #[test]
    fn the_generated_reduce_shape_is_clean() {
        let findings = lint_program("reduce", REDUCE_LIKE, 4, BUDGET);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn barrier_under_thread_divergent_branch_is_flagged() {
        // The classic broken tree reduction: the barrier moved inside the
        // `lid < s` branch, so work-items that skip the branch never reach
        // it.
        let bad = r#"
            __kernel void broken_reduce(__global const float* restrict in,
                                        __global float* restrict out,
                                        const uint n,
                                        __local float* scratch) {
                uint gid = get_global_id(0);
                uint lid = get_local_id(0);
                uint lsize = get_local_size(0);
                scratch[lid] = (gid < n) ? in[gid] : 0.0f;
                barrier(CLK_LOCAL_MEM_FENCE);
                for (uint s = lsize / 2; s > 0; s >>= 1) {
                    if (lid < s) {
                        scratch[lid] = scratch[lid] + scratch[lid + s];
                        barrier(CLK_LOCAL_MEM_FENCE);
                    }
                }
                if (lid == 0) out[get_group_id(0)] = scratch[0];
            }
        "#;
        let findings = lint_program("broken_reduce", bad, 4, BUDGET);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, LintRule::DivergentBarrier);
        assert_eq!(findings[0].kernel, "broken_reduce");
    }

    #[test]
    fn barrier_in_a_uniform_loop_is_not_divergent() {
        // get_local_size / get_group_id are uniform; loops over them must
        // not count as divergence (every real reduction iterates on lsize).
        let ok = r#"
            __kernel void k(__global float* restrict a, __local float* t) {
                uint lid = get_local_id(0);
                uint lsize = get_local_size(0);
                for (uint d = lsize; d > 0; d >>= 1) {
                    barrier(CLK_LOCAL_MEM_FENCE);
                    if (lid < d) { t[lid] = t[lid] + t[lid + d]; }
                }
            }
        "#;
        let findings = lint_program("k", ok, 2, BUDGET);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn oversized_local_array_exceeds_the_device_budget() {
        let bad = r#"
            __kernel void big_tile(__global const float* restrict in,
                                   __global float* restrict out,
                                   const uint n) {
                __local float tile[8192];
                uint gid = get_global_id(0);
                if (gid < n) out[gid] = in[gid] + tile[0];
            }
        "#;
        // 8192 floats = 32 KiB > 16 KiB.
        let findings = lint_program("big_tile", bad, 3, BUDGET);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, LintRule::LocalMemBudget);
        assert!(
            findings[0].message.contains("32768"),
            "{}",
            findings[0].message
        );
        // The same declaration fits a 64 KiB device.
        assert!(lint_program("big_tile", bad, 3, 64 << 10).is_empty());
    }

    #[test]
    fn define_driven_local_sizes_are_evaluated() {
        let src = r#"
            #define TILE 32
            __kernel void k(__global float* restrict out, const uint n) {
                __local float a[TILE * TILE];
                __local float b[TILE * TILE];
                uint gid = get_global_id(0);
                if (gid < n) out[gid] = a[0] + b[0];
            }
        "#;
        // 2 * 32*32 floats = 8 KiB: fits 16 KiB, busts 4 KiB.
        assert!(lint_program("k", src, 2, BUDGET).is_empty());
        let findings = lint_program("k", src, 2, 4 << 10);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, LintRule::LocalMemBudget);
    }

    #[test]
    fn host_side_arg_count_must_match_a_kernel_signature() {
        let findings = lint_program("reduce", REDUCE_LIKE, 5, BUDGET);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, LintRule::ArityMismatch);
        assert!(findings[0].message.contains("skelcl_reduce/4"));
    }

    #[test]
    fn multi_kernel_programs_match_either_signature() {
        // The Scan program carries two kernels (6 and 3 params); the host
        // marshals 6 for the block pass — that must satisfy the arity rule.
        let two = r#"
            __kernel void pass_a(__global float* a, __global float* b,
                                 __global float* c, const uint n,
                                 const float identity, __local float* t) {
                uint gid = get_global_id(0);
                if (gid < n) b[gid] = a[gid];
            }
            __kernel void pass_b(__global float* data, __global const float* offs,
                                 const uint n) {
                uint gid = get_global_id(0);
                if (gid < n) data[gid] = data[gid] + offs[get_group_id(0)];
            }
        "#;
        assert!(lint_program("scan", two, 6, BUDGET).is_empty());
        assert!(lint_program("scan", two, 3, BUDGET).is_empty());
        assert_eq!(lint_program("scan", two, 7, BUDGET).len(), 1);
    }

    #[test]
    fn unguarded_thread_indexed_global_access_is_flagged() {
        // The rounded-up NDRange means gid can exceed n: the template must
        // guard. This one dropped the `if (gid < n)`.
        let bad = r#"
            __kernel void unguarded_map(__global const float* restrict in,
                                        __global float* restrict out,
                                        const uint n) {
                uint gid = get_global_id(0);
                out[gid] = in[gid];
            }
        "#;
        let findings = lint_program("unguarded_map", bad, 3, BUDGET);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings
            .iter()
            .all(|f| f.rule == LintRule::UnguardedGlobalAccess));
    }

    #[test]
    fn guarded_accesses_are_clean_in_both_if_and_ternary_form() {
        let ok = r#"
            __kernel void guarded(__global const float* restrict in,
                                  __global float* restrict out,
                                  const uint n,
                                  __local float* t) {
                uint gid = get_global_id(0);
                uint lid = get_local_id(0);
                t[lid] = (gid < n) ? in[gid] : 0.0f;
                if (gid < n) {
                    out[gid] = t[lid];
                }
            }
        "#;
        assert!(lint_program("guarded", ok, 4, BUDGET).is_empty());
    }

    #[test]
    fn uniform_indices_need_no_guard() {
        // Indexing by get_group_id is uniform; the linter only demands
        // guards for thread-id-derived indices.
        let ok = r#"
            __kernel void by_group(__global float* restrict sums, const uint n) {
                uint group = get_group_id(0);
                sums[group] = 1.0f;
            }
        "#;
        assert!(lint_program("by_group", ok, 2, BUDGET).is_empty());
    }

    #[test]
    fn non_kernel_helper_functions_are_not_linted() {
        // User functions are pasted verbatim and may index unguarded —
        // their parameters are host-controlled, not NDRange-derived.
        let src = r#"
            float blur3(__global float* in, uint i, uint n) {
                return (in[i-1] + in[i] + in[i+1]) / 3.0f;
            }
            __kernel void skelcl_map_overlap(__global const float* restrict in,
                                             __global float* restrict out,
                                             const uint n) {
                uint gid = get_global_id(0);
                if (gid < n) {
                    out[gid] = blur3(in, gid, n);
                }
            }
        "#;
        assert!(lint_program("map_overlap", src, 3, BUDGET).is_empty());
    }

    #[test]
    fn taint_propagates_through_assignment_chains() {
        let bad = r#"
            __kernel void chained(__global float* restrict out, const uint n_cols) {
                uint col = get_global_id(0);
                uint row = get_global_id(1);
                uint i = row * n_cols + col;
                out[i] = 1.0f;
            }
        "#;
        let findings = lint_program("chained", bad, 2, BUDGET);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, LintRule::UnguardedGlobalAccess);
    }
}
