//! # skelcl-baselines — hand-written low-level GPU APIs
//!
//! The paper compares SkelCL against programs written directly against the
//! OpenCL C API and the CUDA runtime API. This crate provides faithful Rust
//! facsimiles of both, driving the same [`vgpu`] virtual hardware:
//!
//! * [`opencl`] — `clCreateBuffer` / `clEnqueueWriteBuffer` /
//!   `clCreateProgramWithSource` / `clBuildProgram` / `clSetKernelArg` /
//!   `clEnqueueNDRangeKernel` ... — every step explicit, exactly the
//!   boilerplate Section II complains about ("a lengthy creation and
//!   initialization of different data structures which take about 20 lines
//!   of code").
//! * [`cuda`] — `cudaSetDevice` / `cudaMalloc` / `cudaMemcpy` /
//!   `<<<grid, block>>>`-style launches of offline-compiled modules, with a
//!   lower-overhead driver profile (the paper, citing Kong et al.: "CUDA
//!   was usually faster than OpenCL").
//!
//! The two applications (`skelcl-mandel`, `skelcl-osem`) implement their
//! OpenCL and CUDA variants against these APIs; the program-size experiment
//! counts the lines those variants actually need.

pub mod cuda;
pub mod opencl;
