//! A Rust facsimile of the OpenCL 1.1 host API over the virtual platform.
//!
//! Deliberately low-level: contexts, queues, memory objects, programs,
//! kernels and argument slots are all separate objects the programmer
//! creates, wires and releases explicitly, so application code written
//! against this module carries the same boilerplate burden the paper
//! measures for its OpenCL versions.

use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;
use vgpu::{
    Buffer, CommandQueue, CompiledKernel, DriverProfile, KernelBody, NDRange, Platform, Program,
    Result, Scalar, WorkGroup,
};

/// `cl_context`: a platform plus the devices the application selected.
pub struct ClContext {
    platform: Platform,
    devices: Vec<usize>,
}

impl ClContext {
    /// The device IDs this context was created for.
    pub fn devices(&self) -> &[usize] {
        &self.devices
    }
}

/// `clCreateContext` — select `device_ids` on `platform`.
pub fn cl_create_context(platform: &Platform, device_ids: &[usize]) -> Result<ClContext> {
    for &d in device_ids {
        platform.try_device(d)?;
    }
    Ok(ClContext {
        platform: platform.clone(),
        devices: device_ids.to_vec(),
    })
}

/// `cl_platform_id`: an installed OpenCL implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClPlatformId(usize);

/// `clGetPlatformIDs` — the first step of every OpenCL program: enumerate
/// the installed platforms before anything else can be created.
pub fn cl_get_platform_ids(_platform: &Platform) -> Vec<ClPlatformId> {
    vec![ClPlatformId(0)]
}

/// `clGetDeviceIDs` — enumerate all GPU devices of one platform.
pub fn cl_get_device_ids_for(platform: &Platform, _id: ClPlatformId) -> Vec<usize> {
    (0..platform.n_devices()).collect()
}

/// `clGetDeviceIDs` — shorthand used when there is exactly one platform.
pub fn cl_get_device_ids(platform: &Platform) -> Vec<usize> {
    (0..platform.n_devices()).collect()
}

/// `clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)` — the log every careful
/// OpenCL host program fetches after `clBuildProgram`.
pub fn cl_get_program_build_log(program: &ClProgram) -> String {
    if program.built.lock().is_some() {
        format!("program '{}': build successful", program.program.name)
    } else {
        format!("program '{}': not built", program.program.name)
    }
}

/// `cl_command_queue`.
pub struct ClCommandQueue {
    queue: CommandQueue,
}

/// `clCreateCommandQueue` for one device of the context.
pub fn cl_create_command_queue(ctx: &ClContext, device_id: usize) -> Result<ClCommandQueue> {
    ctx.platform.try_device(device_id)?;
    Ok(ClCommandQueue {
        queue: ctx.platform.queue(device_id, DriverProfile::opencl()),
    })
}

/// `cl_mem`: a typed device memory object.
pub struct ClMem<T: Scalar> {
    buffer: Buffer<T>,
}

impl<T: Scalar> ClMem<T> {
    /// The underlying buffer (for kernel bodies).
    pub fn buffer(&self) -> &Buffer<T> {
        &self.buffer
    }

    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

/// `clCreateBuffer` on the device that `queue` drives.
pub fn cl_create_buffer<T: Scalar>(
    ctx: &ClContext,
    device_id: usize,
    len: usize,
) -> Result<ClMem<T>> {
    let dev = ctx.platform.try_device(device_id)?;
    Ok(ClMem {
        buffer: dev.alloc::<T>(len)?,
    })
}

/// `clEnqueueWriteBuffer` (blocking semantics handled by the queue model).
pub fn cl_enqueue_write_buffer<T: Scalar>(
    queue: &ClCommandQueue,
    mem: &ClMem<T>,
    src: &[T],
) -> Result<()> {
    queue.queue.enqueue_write(&mem.buffer, src)?;
    Ok(())
}

/// `clEnqueueReadBuffer` (blocking).
pub fn cl_enqueue_read_buffer<T: Scalar>(
    queue: &ClCommandQueue,
    mem: &ClMem<T>,
    dst: &mut [T],
) -> Result<()> {
    queue.queue.enqueue_read(&mem.buffer, dst)?;
    Ok(())
}

/// `clEnqueueWriteBuffer` with a destination offset (in elements).
pub fn cl_enqueue_write_buffer_range<T: Scalar>(
    queue: &ClCommandQueue,
    mem: &ClMem<T>,
    offset: usize,
    src: &[T],
) -> Result<()> {
    queue
        .queue
        .enqueue_write_range(&mem.buffer, offset, src, 1)?;
    Ok(())
}

/// `clEnqueueReadBuffer` with a source offset (in elements).
pub fn cl_enqueue_read_buffer_range<T: Scalar>(
    queue: &ClCommandQueue,
    mem: &ClMem<T>,
    offset: usize,
    dst: &mut [T],
) -> Result<()> {
    queue
        .queue
        .enqueue_read_range(&mem.buffer, offset, dst, 1, true)?;
    Ok(())
}

/// `clFinish`.
pub fn cl_finish(queue: &ClCommandQueue) {
    queue.queue.finish();
}

/// `cl_program`: source handed to the runtime compiler.
pub struct ClProgram {
    program: Program,
    built: Mutex<Option<CompiledKernel>>,
}

/// `clCreateProgramWithSource`.
pub fn cl_create_program_with_source(_ctx: &ClContext, name: &str, source: &str) -> ClProgram {
    ClProgram {
        program: Program::from_source(name, source),
        built: Mutex::new(None),
    }
}

/// `clBuildProgram` — runtime compilation (cost model: hundreds of ms, or a
/// cache load if this source was built before on this machine).
pub fn cl_build_program(queue: &ClCommandQueue, program: &ClProgram) -> Result<()> {
    let placeholder: KernelBody =
        Arc::new(|_wg: &WorkGroup| unreachable!("kernel body is bound by clCreateKernel"));
    let compiled = queue.queue.build_kernel(&program.program, placeholder)?;
    *program.built.lock() = Some(compiled);
    Ok(())
}

/// The values `clSetKernelArg` stored, as seen from inside a kernel.
pub struct ClArgs {
    slots: Vec<ClArgValue>,
}

#[derive(Clone)]
enum ClArgValue {
    Scalar(Arc<dyn Any + Send + Sync>),
    Mem(Arc<dyn Any + Send + Sync>),
}

impl ClArgs {
    /// The buffer argument at `idx` (panics on type/index mismatch, like a
    /// mismatched `clSetKernelArg` at runtime).
    pub fn buf<T: Scalar>(&self, idx: usize) -> &Buffer<T> {
        match &self.slots[idx] {
            ClArgValue::Mem(m) => m
                .downcast_ref::<Buffer<T>>()
                .expect("kernel argument buffer type mismatch"),
            ClArgValue::Scalar(_) => panic!("kernel argument {idx} is a scalar, expected buffer"),
        }
    }

    /// The scalar argument at `idx`.
    pub fn scalar<T: Scalar>(&self, idx: usize) -> T {
        match &self.slots[idx] {
            ClArgValue::Scalar(s) => *s
                .downcast_ref::<T>()
                .expect("kernel argument scalar type mismatch"),
            ClArgValue::Mem(_) => panic!("kernel argument {idx} is a buffer, expected scalar"),
        }
    }
}

/// The executable body of a `cl_kernel`: runs per work-group against the
/// argument slots bound at launch time.
pub type ClKernelBody = Arc<dyn Fn(&WorkGroup, &ClArgs) + Send + Sync>;

/// `cl_kernel`: built program + mutable argument slots.
pub struct ClKernel {
    compiled: CompiledKernel,
    body: ClKernelBody,
    args: Mutex<Vec<Option<ClArgValue>>>,
}

/// `clCreateKernel` — binds the executable body (the Rust twin of the
/// program's kernel function) to the built program.
pub fn cl_create_kernel(program: &ClProgram, body: ClKernelBody) -> Result<ClKernel> {
    let compiled = program
        .built
        .lock()
        .clone()
        .ok_or(vgpu::Error::BuildFailure(
            "clCreateKernel before clBuildProgram".into(),
        ))?;
    Ok(ClKernel {
        compiled,
        body,
        args: Mutex::new(Vec::new()),
    })
}

/// `clSetKernelArg` with a buffer.
pub fn cl_set_kernel_arg_mem<T: Scalar>(kernel: &ClKernel, idx: usize, mem: &ClMem<T>) {
    set_arg(kernel, idx, ClArgValue::Mem(Arc::new(mem.buffer.clone())));
}

/// `clSetKernelArg` with a scalar.
pub fn cl_set_kernel_arg_scalar<T: Scalar>(kernel: &ClKernel, idx: usize, v: T) {
    set_arg(kernel, idx, ClArgValue::Scalar(Arc::new(v)));
}

fn set_arg(kernel: &ClKernel, idx: usize, v: ClArgValue) {
    let mut args = kernel.args.lock();
    if args.len() <= idx {
        args.resize_with(idx + 1, || None);
    }
    args[idx] = Some(v);
}

/// `clEnqueueNDRangeKernel` — 1-D form.
pub fn cl_enqueue_nd_range_kernel(
    queue: &ClCommandQueue,
    kernel: &ClKernel,
    global: usize,
    local: usize,
) -> Result<()> {
    enqueue(queue, kernel, NDRange::linear(global, local))
}

/// `clEnqueueNDRangeKernel` — 2-D form (the Mandelbrot baselines use
/// 16×16 work-groups).
pub fn cl_enqueue_nd_range_kernel_2d(
    queue: &ClCommandQueue,
    kernel: &ClKernel,
    global: (usize, usize),
    local: (usize, usize),
) -> Result<()> {
    enqueue(queue, kernel, NDRange::two_d(global, local))
}

fn enqueue(queue: &ClCommandQueue, kernel: &ClKernel, nd: NDRange) -> Result<()> {
    let slots: Vec<ClArgValue> = kernel
        .args
        .lock()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            a.clone()
                .unwrap_or_else(|| panic!("kernel argument {i} was never set"))
        })
        .collect();
    let args = Arc::new(ClArgs { slots });
    let body = Arc::clone(&kernel.body);
    let bound: KernelBody = Arc::new(move |wg: &WorkGroup| body(wg, &args));
    queue.queue.launch(&kernel.compiled.with_body(bound), nd)?;
    Ok(())
}

/// `clReleaseMemObject` — explicit teardown, as the C API requires.
pub fn cl_release_mem_object<T: Scalar>(mem: ClMem<T>) {
    drop(mem);
}

/// `clReleaseKernel`.
pub fn cl_release_kernel(kernel: ClKernel) {
    drop(kernel);
}

/// `clReleaseProgram`.
pub fn cl_release_program(program: ClProgram) {
    drop(program);
}

/// `clReleaseCommandQueue`.
pub fn cl_release_command_queue(queue: ClCommandQueue) {
    drop(queue);
}

/// `clReleaseContext`.
pub fn cl_release_context(ctx: ClContext) {
    drop(ctx);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{DeviceSpec, PlatformConfig};

    fn platform(n: usize) -> Platform {
        Platform::new(
            PlatformConfig::default()
                .devices(n)
                .spec(DeviceSpec::tiny())
                .cache_tag("baseline-opencl-tests"),
        )
    }

    #[test]
    fn full_opencl_workflow_saxpy() {
        // The boilerplate tour: context, queue, buffers, program, kernel,
        // args, launch, read back.
        let platform = platform(1);
        let devices = cl_get_device_ids(&platform);
        let ctx = cl_create_context(&platform, &devices).unwrap();
        let queue = cl_create_command_queue(&ctx, 0).unwrap();

        let n = 1000usize;
        let x = cl_create_buffer::<f32>(&ctx, 0, n).unwrap();
        let y = cl_create_buffer::<f32>(&ctx, 0, n).unwrap();
        let host_x: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let host_y: Vec<f32> = vec![1.0; n];
        cl_enqueue_write_buffer(&queue, &x, &host_x).unwrap();
        cl_enqueue_write_buffer(&queue, &y, &host_y).unwrap();

        let program = cl_create_program_with_source(
            &ctx,
            "saxpy",
            "__kernel void saxpy(__global float* x, __global float* y, float a, uint n) {\n\
               uint i = get_global_id(0);\n\
               if (i < n) y[i] = a * x[i] + y[i];\n\
             }",
        );
        cl_build_program(&queue, &program).unwrap();
        let kernel = cl_create_kernel(
            &program,
            Arc::new(|wg: &WorkGroup, args: &ClArgs| {
                let x = args.buf::<f32>(0);
                let y = args.buf::<f32>(1);
                let a = args.scalar::<f32>(2);
                let n = args.scalar::<u32>(3) as usize;
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    if i < n {
                        let v = a * it.read(x, i) + it.read(y, i);
                        it.write(y, i, v);
                        it.work(2);
                    }
                });
            }),
        )
        .unwrap();

        cl_set_kernel_arg_mem(&kernel, 0, &x);
        cl_set_kernel_arg_mem(&kernel, 1, &y);
        cl_set_kernel_arg_scalar(&kernel, 2, 3.0f32);
        cl_set_kernel_arg_scalar(&kernel, 3, n as u32);
        cl_enqueue_nd_range_kernel(&queue, &kernel, n.next_multiple_of(64), 64).unwrap();
        cl_finish(&queue);

        let mut out = vec![0.0f32; n];
        cl_enqueue_read_buffer(&queue, &y, &mut out).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 3.0 * i as f32 + 1.0);
        }
    }

    #[test]
    fn kernel_before_build_fails() {
        let platform = platform(1);
        let ctx = cl_create_context(&platform, &[0]).unwrap();
        let program = cl_create_program_with_source(&ctx, "k", "__kernel void k() {}");
        let r = cl_create_kernel(&program, Arc::new(|_: &WorkGroup, _: &ClArgs| {}));
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "never set")]
    fn launching_with_missing_args_panics() {
        let platform = platform(1);
        let ctx = cl_create_context(&platform, &[0]).unwrap();
        let queue = cl_create_command_queue(&ctx, 0).unwrap();
        let program = cl_create_program_with_source(&ctx, "k2", "__kernel void k2(uint n) {}");
        cl_build_program(&queue, &program).unwrap();
        let kernel = cl_create_kernel(&program, Arc::new(|_: &WorkGroup, _: &ClArgs| {})).unwrap();
        let mut args = kernel.args.lock();
        args.resize_with(1, || None);
        drop(args);
        let _ = cl_enqueue_nd_range_kernel(&queue, &kernel, 64, 64);
    }

    #[test]
    fn rebuild_hits_binary_cache() {
        let platform = platform(1);
        platform.compiler().clear_cache().unwrap();
        let ctx = cl_create_context(&platform, &[0]).unwrap();
        let queue = cl_create_command_queue(&ctx, 0).unwrap();
        let program =
            cl_create_program_with_source(&ctx, "kc", "__kernel void kc() { /* cache me */ }");
        cl_build_program(&queue, &program).unwrap();
        cl_build_program(&queue, &program).unwrap();
        let snap = platform.stats_snapshot();
        assert_eq!(snap.source_builds, 1);
        assert_eq!(snap.cache_loads, 1);
        platform.compiler().clear_cache().unwrap();
    }
}
