//! A Rust facsimile of the CUDA runtime API over the virtual platform.
//!
//! Differences from the [`crate::opencl`] module mirror the real-world
//! differences the paper leans on:
//!
//! * **Offline compilation** — kernels live in a [`CudaModule`] "compiled by
//!   nvcc"; creating one costs nothing at runtime (`DriverProfile::cuda()`
//!   charges no build time and its launches are cheaper).
//! * **Typed launch syntax** — `cuda_launch_kernel(&k, grid, block, args)`
//!   is the `<<<grid, block>>>` analogue; arguments are passed at launch,
//!   not via separate `clSetKernelArg` calls.
//! * **Per-device current context** — `cudaSetDevice` selects the device
//!   subsequent calls operate on; multi-GPU programs must juggle it (or one
//!   host thread per device, as the paper's CUDA OSEM does).

use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;
use vgpu::{
    Buffer, CommandQueue, CompiledKernel, DriverProfile, KernelBody, NDRange, Platform, Program,
    Result, Scalar, WorkGroup,
};

/// The CUDA "current device" state: one runtime handle per host thread in
/// real CUDA; here an explicit object the application passes around.
pub struct CudaRuntime {
    platform: Platform,
    current: Mutex<usize>,
    queues: Vec<CommandQueue>,
}

impl CudaRuntime {
    /// `cudaInit`-ish: attach the runtime to a platform.
    pub fn new(platform: &Platform) -> Self {
        let queues = (0..platform.n_devices())
            .map(|d| platform.queue(d, DriverProfile::cuda()))
            .collect();
        CudaRuntime {
            platform: platform.clone(),
            current: Mutex::new(0),
            queues,
        }
    }

    /// `cudaGetDeviceCount`.
    pub fn device_count(&self) -> usize {
        self.platform.n_devices()
    }

    /// `cudaSetDevice`.
    pub fn set_device(&self, device: usize) -> Result<()> {
        self.platform.try_device(device)?;
        *self.current.lock() = device;
        Ok(())
    }

    /// `cudaGetDevice`.
    pub fn current_device(&self) -> usize {
        *self.current.lock()
    }

    fn queue(&self) -> &CommandQueue {
        &self.queues[self.current_device()]
    }

    /// `cudaMalloc` on the current device.
    pub fn malloc<T: Scalar>(&self, len: usize) -> Result<CudaDevPtr<T>> {
        let dev = self.platform.device(self.current_device());
        Ok(CudaDevPtr {
            buffer: dev.alloc::<T>(len)?,
        })
    }

    /// `cudaMemcpy(..., cudaMemcpyHostToDevice)`.
    pub fn memcpy_h2d<T: Scalar>(&self, dst: &CudaDevPtr<T>, src: &[T]) -> Result<()> {
        self.queues[dst.buffer.device().0].enqueue_write(&dst.buffer, src)?;
        Ok(())
    }

    /// `cudaMemcpy(..., cudaMemcpyDeviceToHost)`.
    pub fn memcpy_d2h<T: Scalar>(&self, dst: &mut [T], src: &CudaDevPtr<T>) -> Result<()> {
        self.queues[src.buffer.device().0].enqueue_read(&src.buffer, dst)?;
        Ok(())
    }

    /// `cudaMemcpy` into a destination offset (pointer arithmetic on the
    /// device pointer).
    pub fn memcpy_h2d_range<T: Scalar>(
        &self,
        dst: &CudaDevPtr<T>,
        offset: usize,
        src: &[T],
    ) -> Result<()> {
        self.queues[dst.buffer.device().0].enqueue_write_range(&dst.buffer, offset, src, 1)?;
        Ok(())
    }

    /// `cudaMemcpy` from a source offset.
    pub fn memcpy_d2h_range<T: Scalar>(
        &self,
        dst: &mut [T],
        src: &CudaDevPtr<T>,
        offset: usize,
    ) -> Result<()> {
        self.queues[src.buffer.device().0].enqueue_read_range(&src.buffer, offset, dst, 1, true)?;
        Ok(())
    }

    /// `cudaMemcpyPeer` (staged through the host on pre-UVA hardware).
    pub fn memcpy_d2d<T: Scalar>(&self, dst: &CudaDevPtr<T>, src: &CudaDevPtr<T>) -> Result<()> {
        self.platform.copy_d2d(&src.buffer, &dst.buffer, 1)?;
        Ok(())
    }

    /// `cudaMemset`-ish fill.
    pub fn memset<T: Scalar>(&self, dst: &CudaDevPtr<T>, v: T) -> Result<()> {
        self.queues[dst.buffer.device().0].enqueue_fill(&dst.buffer, v)?;
        Ok(())
    }

    /// `cudaDeviceSynchronize` for the current device.
    pub fn device_synchronize(&self) {
        self.queue().finish();
    }

    /// Synchronize every device (join point of multi-GPU phases).
    pub fn synchronize_all(&self) {
        self.platform.sync_all();
    }

    /// The `<<<grid, block>>>` launch, 1-D.
    pub fn launch_kernel(
        &self,
        kernel: &CudaKernel,
        grid: usize,
        block: usize,
        args: CudaArgs,
    ) -> Result<()> {
        self.launch(kernel, NDRange::linear(grid * block, block), args)
    }

    /// The `<<<dim3(gx,gy), dim3(bx,by)>>>` launch, 2-D.
    pub fn launch_kernel_2d(
        &self,
        kernel: &CudaKernel,
        grid: (usize, usize),
        block: (usize, usize),
        args: CudaArgs,
    ) -> Result<()> {
        self.launch(
            kernel,
            NDRange::two_d((grid.0 * block.0, grid.1 * block.1), block),
            args,
        )
    }

    fn launch(&self, kernel: &CudaKernel, nd: NDRange, args: CudaArgs) -> Result<()> {
        let args = Arc::new(args);
        let body = Arc::clone(&kernel.body);
        let bound: KernelBody = Arc::new(move |wg: &WorkGroup| body(wg, &args));
        self.queue().launch(&kernel.compiled.with_body(bound), nd)?;
        Ok(())
    }
}

/// `T*` in device memory. Cloning copies the *pointer*, not the data —
/// CUDA device pointers are plain values.
#[derive(Clone)]
pub struct CudaDevPtr<T: Scalar> {
    buffer: Buffer<T>,
}

impl<T: Scalar> CudaDevPtr<T> {
    pub fn buffer(&self) -> &Buffer<T> {
        &self.buffer
    }

    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }
}

/// Arguments of one launch (CUDA passes them in the launch statement).
#[derive(Default)]
pub struct CudaArgs {
    slots: Vec<CudaArgValue>,
}

enum CudaArgValue {
    Scalar(Box<dyn Any + Send + Sync>),
    Ptr(Box<dyn Any + Send + Sync>),
}

impl CudaArgs {
    pub fn new() -> Self {
        CudaArgs::default()
    }

    pub fn ptr<T: Scalar>(mut self, p: &CudaDevPtr<T>) -> Self {
        self.slots
            .push(CudaArgValue::Ptr(Box::new(p.buffer.clone())));
        self
    }

    pub fn scalar<T: Scalar>(mut self, v: T) -> Self {
        self.slots.push(CudaArgValue::Scalar(Box::new(v)));
        self
    }

    /// Inside kernels: the device pointer at position `idx`.
    pub fn get_ptr<T: Scalar>(&self, idx: usize) -> &Buffer<T> {
        match &self.slots[idx] {
            CudaArgValue::Ptr(p) => p
                .downcast_ref::<Buffer<T>>()
                .expect("kernel parameter pointer type mismatch"),
            CudaArgValue::Scalar(_) => panic!("kernel parameter {idx} is a scalar"),
        }
    }

    /// Inside kernels: the scalar at position `idx`.
    pub fn get_scalar<T: Scalar>(&self, idx: usize) -> T {
        match &self.slots[idx] {
            CudaArgValue::Scalar(s) => *s
                .downcast_ref::<T>()
                .expect("kernel parameter scalar type mismatch"),
            CudaArgValue::Ptr(_) => panic!("kernel parameter {idx} is a pointer"),
        }
    }
}

/// The executable body of a `__global__` function.
pub type CudaKernelBody = Arc<dyn Fn(&WorkGroup, &CudaArgs) + Send + Sync>;

/// One `__global__` kernel of a module.
pub struct CudaKernel {
    compiled: CompiledKernel,
    body: CudaKernelBody,
}

/// An offline-compiled module (what nvcc produced at build time).
pub struct CudaModule {
    runtime_queue: CommandQueue,
}

impl CudaModule {
    /// Load the module — free at runtime (nvcc did the work offline).
    pub fn new(rt: &CudaRuntime) -> Self {
        CudaModule {
            runtime_queue: rt.queues[0].clone(),
        }
    }

    /// Register a `__global__` function: `source` is its CUDA-C text (for
    /// the program-size accounting), `body` its executable twin.
    pub fn kernel(&self, name: &str, source: &str, body: CudaKernelBody) -> Result<CudaKernel> {
        let program = Program::from_source(name, source);
        let placeholder: KernelBody =
            Arc::new(|_wg: &WorkGroup| unreachable!("module kernel body is bound at launch"));
        let compiled = self.runtime_queue.build_kernel(&program, placeholder)?;
        Ok(CudaKernel { compiled, body })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{DeviceSpec, PlatformConfig};

    fn platform(n: usize) -> Platform {
        Platform::new(
            PlatformConfig::default()
                .devices(n)
                .spec(DeviceSpec::tiny())
                .cache_tag("baseline-cuda-tests"),
        )
    }

    #[test]
    fn cuda_workflow_vector_add() {
        let platform = platform(1);
        let rt = CudaRuntime::new(&platform);
        rt.set_device(0).unwrap();

        let n = 500usize;
        let a = rt.malloc::<f32>(n).unwrap();
        let b = rt.malloc::<f32>(n).unwrap();
        let c = rt.malloc::<f32>(n).unwrap();
        let ha: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let hb: Vec<f32> = vec![10.0; n];
        rt.memcpy_h2d(&a, &ha).unwrap();
        rt.memcpy_h2d(&b, &hb).unwrap();

        let module = CudaModule::new(&rt);
        let add = module
            .kernel(
                "vec_add",
                "__global__ void vec_add(float* a, float* b, float* c, unsigned n) {\n\
                   unsigned i = blockIdx.x * blockDim.x + threadIdx.x;\n\
                   if (i < n) c[i] = a[i] + b[i];\n\
                 }",
                Arc::new(|wg: &WorkGroup, args: &CudaArgs| {
                    let a = args.get_ptr::<f32>(0);
                    let b = args.get_ptr::<f32>(1);
                    let c = args.get_ptr::<f32>(2);
                    let n = args.get_scalar::<u32>(3) as usize;
                    wg.for_each_item(|it| {
                        if !it.in_bounds() {
                            return;
                        }
                        let i = it.global_id(0);
                        if i < n {
                            let v = it.read(a, i) + it.read(b, i);
                            it.write(c, i, v);
                            it.work(1);
                        }
                    });
                }),
            )
            .unwrap();

        let block = 128usize;
        let grid = n.div_ceil(block);
        rt.launch_kernel(
            &add,
            grid,
            block,
            CudaArgs::new().ptr(&a).ptr(&b).ptr(&c).scalar(n as u32),
        )
        .unwrap();
        rt.device_synchronize();

        let mut out = vec![0.0f32; n];
        rt.memcpy_d2h(&mut out, &c).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 + 10.0);
        }
    }

    #[test]
    fn module_load_is_free_no_runtime_compiles() {
        let platform = platform(1);
        let rt = CudaRuntime::new(&platform);
        let module = CudaModule::new(&rt);
        let before = platform.stats_snapshot();
        let t0 = platform.host_now_s();
        module
            .kernel(
                "k",
                "__global__ void k() {}",
                Arc::new(|_: &WorkGroup, _: &CudaArgs| {}),
            )
            .unwrap();
        assert_eq!(platform.host_now_s(), t0, "nvcc compiled offline");
        let delta = platform.stats_snapshot() - before;
        assert_eq!(delta.source_builds, 0);
        assert_eq!(delta.cache_loads, 0);
    }

    #[test]
    fn set_device_routes_allocations() {
        let platform = platform(2);
        let rt = CudaRuntime::new(&platform);
        rt.set_device(1).unwrap();
        let p = rt.malloc::<f32>(16).unwrap();
        assert_eq!(p.buffer().device().0, 1);
        assert!(rt.set_device(5).is_err());
    }

    #[test]
    fn multi_gpu_with_host_threads() {
        // The paper: "In CUDA, we have to create one CPU thread for each
        // device to be managed."
        let platform = platform(2);
        let rt = Arc::new(CudaRuntime::new(&platform));
        let module = CudaModule::new(&rt);
        let fill = Arc::new(
            module
                .kernel(
                    "fill7",
                    "__global__ void fill7(float* p, unsigned n) { \
                       unsigned i = blockIdx.x*blockDim.x+threadIdx.x; if (i<n) p[i] = 7.0f; }",
                    Arc::new(|wg: &WorkGroup, args: &CudaArgs| {
                        let p = args.get_ptr::<f32>(0);
                        let n = args.get_scalar::<u32>(1) as usize;
                        wg.for_each_item(|it| {
                            if it.in_bounds() && it.global_id(0) < n {
                                it.write(p, it.global_id(0), 7.0);
                                it.work(1);
                            }
                        });
                    }),
                )
                .unwrap(),
        );

        let handles: Vec<_> = (0..2)
            .map(|d| {
                let platform = platform.clone();
                let fill = Arc::clone(&fill);
                std::thread::spawn(move || {
                    // Each host thread owns its own runtime handle, as real
                    // multi-GPU CUDA code of that era did.
                    let rt = CudaRuntime::new(&platform);
                    rt.set_device(d).unwrap();
                    let p = rt.malloc::<f32>(64).unwrap();
                    rt.launch_kernel(&fill, 1, 64, CudaArgs::new().ptr(&p).scalar(64u32))
                        .unwrap();
                    rt.device_synchronize();
                    let mut out = vec![0.0f32; 64];
                    rt.memcpy_d2h(&mut out, &p).unwrap();
                    assert!(out.iter().all(|&v| v == 7.0));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
