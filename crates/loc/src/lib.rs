//! # skelcl-loc — program-size accounting (paper Figures 1 & 2)
//!
//! The paper measures programming effort as lines of code, split into
//! *host program* and *kernel function* shares. This crate provides a
//! comment- and blank-aware line counter for Rust host sources and C-like
//! kernel sources, plus the report structure the figures harness prints.
//!
//! To keep the measurement honest, host counts are taken from the *actual
//! Rust sources* of each application variant (with test modules stripped),
//! and kernel counts from the embedded kernel strings those variants ship.

/// Count effective lines of a C-like (OpenCL/CUDA kernel) source: strips
/// blank lines, `//` comments and `/* */` blocks.
pub fn count_c_like(source: &str) -> usize {
    count_with_comment_rules(source)
}

/// Count effective lines of a Rust source: strips blanks and comments
/// (line, block and doc), attributes, and everything from the first
/// `#[cfg(test)]` onward (the unit-test module is not application code).
pub fn count_rust(source: &str) -> usize {
    let app_part = match source.find("#[cfg(test)]") {
        Some(pos) => &source[..pos],
        None => source,
    };
    count_with_comment_rules(app_part)
}

/// Shared comment-stripping line counter (Rust and C share `//` + `/* */`).
fn count_with_comment_rules(source: &str) -> usize {
    let mut count = 0usize;
    let mut in_block_comment = false;
    for line in source.lines() {
        let mut effective = String::new();
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            if in_block_comment {
                if c == '*' && chars.peek() == Some(&'/') {
                    chars.next();
                    in_block_comment = false;
                }
                continue;
            }
            match c {
                '/' if chars.peek() == Some(&'/') => break, // line comment
                '/' if chars.peek() == Some(&'*') => {
                    chars.next();
                    in_block_comment = true;
                }
                _ => effective.push(c),
            }
        }
        let trimmed = effective.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Attributes are metadata, not program text.
        if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
            continue;
        }
        count += 1;
    }
    count
}

/// Program size of one implementation variant, split as in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VariantLoc {
    pub host: usize,
    pub kernel: usize,
}

impl VariantLoc {
    pub fn total(&self) -> usize {
        self.host + self.kernel
    }

    /// Measure a variant from its Rust host source and its embedded kernel
    /// source strings. The kernel strings live inside the host file, so
    /// their share is subtracted from the host count rather than counted
    /// twice.
    pub fn measure(host_rust: &str, kernels: &[&str]) -> VariantLoc {
        let kernel: usize = kernels.iter().map(|k| count_c_like(k)).sum();
        let host_all = count_rust(host_rust);
        VariantLoc {
            host: host_all.saturating_sub(kernel),
            kernel,
        }
    }
}

/// Marker opening a kernel region in an application source file. Rust
/// cannot compile kernel strings, so every variant carries the kernel twice
/// — once as the C-like source string and once as the executable Rust twin;
/// both are kernel code, and the markers attribute them to the kernel share
/// instead of the host share.
pub const KERNEL_BEGIN: &str = "// >>> kernel";
/// Marker closing a kernel region.
pub const KERNEL_END: &str = "// <<< kernel";

/// Split a source file into `(host_part, kernel_part)` along the
/// [`KERNEL_BEGIN`]/[`KERNEL_END`] markers.
pub fn split_kernel_regions(source: &str) -> (String, String) {
    let mut host = String::new();
    let mut kernel = String::new();
    let mut in_kernel = false;
    for line in source.lines() {
        let t = line.trim();
        if t == KERNEL_BEGIN {
            in_kernel = true;
            continue;
        }
        if t == KERNEL_END {
            in_kernel = false;
            continue;
        }
        let target = if in_kernel { &mut kernel } else { &mut host };
        target.push_str(line);
        target.push('\n');
    }
    (host, kernel)
}

impl VariantLoc {
    /// Measure a variant whose source marks its kernel regions (source
    /// strings and Rust twins) with [`KERNEL_BEGIN`]/[`KERNEL_END`].
    pub fn measure_marked(source: &str) -> VariantLoc {
        let app_part = match source.find("#[cfg(test)]") {
            Some(pos) => &source[..pos],
            None => source,
        };
        let (host, kernel) = split_kernel_regions(app_part);
        VariantLoc {
            host: count_rust(&host),
            kernel: count_c_like(&kernel),
        }
    }
}

/// One row of a program-size figure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocRow {
    pub variant: &'static str,
    pub loc: VariantLoc,
}

/// Render rows in the paper's style.
pub fn render_table(title: &str, rows: &[LocRow]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<10} {:>6} {:>8} {:>7}\n",
        "variant", "host", "kernel", "total"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<10} {:>6} {:>8} {:>7}\n",
            r.variant,
            r.loc.host,
            r.loc.kernel,
            r.loc.total()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_and_comment_lines_are_ignored() {
        let src = "\n// comment\nint x = 1;\n\n/* block\n   still block\n*/\nint y = 2;\n";
        assert_eq!(count_c_like(src), 2);
    }

    #[test]
    fn trailing_line_comments_keep_the_code_line() {
        let src = "int x = 1; // set x\n";
        assert_eq!(count_c_like(src), 1);
    }

    #[test]
    fn inline_block_comments_keep_surrounding_code() {
        let src = "int /* the */ x = 1;\n/* only comment */\n";
        assert_eq!(count_c_like(src), 1);
    }

    #[test]
    fn rust_counter_strips_tests_and_attributes() {
        let src = r#"
//! doc
use std::fmt;

#[derive(Debug)]
pub struct A;

pub fn f() -> usize { 1 }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { assert_eq!(super::f(), 1); }
}
"#;
        // use + struct + fn = 3 lines
        assert_eq!(count_rust(src), 3);
    }

    #[test]
    fn variant_measure_separates_host_and_kernel() {
        let kernel = "__kernel void k() {\n  int x = 0;\n}\n";
        let host = "fn main() {\n    run();\n}\n__kernel void k() {\n  int x = 0;\n}\n";
        let v = VariantLoc::measure(host, &[kernel]);
        assert_eq!(v.kernel, 3);
        assert_eq!(v.host, 6 - 3);
    }

    #[test]
    fn render_table_is_aligned() {
        let rows = vec![
            LocRow {
                variant: "SkelCL",
                loc: VariantLoc {
                    host: 31,
                    kernel: 26,
                },
            },
            LocRow {
                variant: "OpenCL",
                loc: VariantLoc {
                    host: 90,
                    kernel: 28,
                },
            },
        ];
        let t = render_table("Mandelbrot program size", &rows);
        assert!(t.contains("SkelCL"));
        assert!(t.contains("57"));
        assert!(t.contains("118"));
    }

    #[test]
    fn empty_source_counts_zero() {
        assert_eq!(count_c_like(""), 0);
        assert_eq!(count_rust("// only\n\n/* comments */"), 0);
    }

    #[test]
    fn multiline_block_comment_spanning_code() {
        let src = "a/*\n comment \n*/b\nc\n";
        // line 1 has 'a', line 3 has 'b', line 4 has 'c'
        assert_eq!(count_c_like(src), 3);
    }

    #[test]
    fn kernel_region_markers_split_the_source() {
        let src = "\
host1();
// >>> kernel
kernel_line_1;
kernel_line_2;
// <<< kernel
host2();
// >>> kernel
more_kernel;
// <<< kernel
host3();
";
        let (host, kernel) = split_kernel_regions(src);
        assert_eq!(count_rust(&host), 3);
        assert_eq!(count_c_like(&kernel), 3);
        assert!(host.contains("host2"));
        assert!(kernel.contains("more_kernel"));
        assert!(!host.contains("kernel_line_1"));
    }

    #[test]
    fn measure_marked_attributes_shares_correctly() {
        let src = "\
fn main() {
    setup();
// >>> kernel
    |x| { x * 2 }
// <<< kernel
}

#[cfg(test)]
mod tests {
    fn huge_test_module() {}
}
";
        let v = VariantLoc::measure_marked(src);
        assert_eq!(v.kernel, 1);
        assert_eq!(v.host, 3, "fn main, setup, closing brace; tests stripped");
    }

    #[test]
    fn unbalanced_markers_do_not_lose_code() {
        // A begin without an end: everything after goes to the kernel
        // share, nothing disappears.
        let src = "a;\n// >>> kernel\nb;\nc;\n";
        let (host, kernel) = split_kernel_regions(src);
        assert_eq!(count_rust(&host) + count_c_like(&kernel), 3);
    }

    #[test]
    fn markers_require_exact_trimmed_match() {
        let src = "let s = \"// >>> kernel-ish\";\n";
        let (host, kernel) = split_kernel_regions(src);
        assert_eq!(count_rust(&host), 1);
        assert_eq!(count_c_like(&kernel), 0);
    }
}
