//! # skelcl-imgproc — image-processing workloads over `Matrix`/`Stencil2D`
//!
//! The canny-style pipeline of SkelCL's benchmark suite (Gaussian blur →
//! Sobel gradient), implemented twice:
//!
//! * [`seq`] — a plain sequential host reference,
//! * [`skelcl_impl`] — matrices + 2D stencils + an element-wise Zip, all
//!   device-resident with lazy transfers and automatic halo exchange.
//!
//! Both paths evaluate every pixel through the *same* per-pixel functions
//! ([`gaussian3_at`], [`sobel_x_at`], [`sobel_y_at`], [`magnitude`]), so
//! their floating-point evaluation order is identical and results are
//! **bit-identical** — on one device, on many devices, and sequentially.

pub mod seq;
pub mod skelcl_impl;

/// 3×3 binomial Gaussian blur of the pixel at the getter's origin.
/// `get(dr, dc)` resolves the neighbour under the caller's boundary rule.
/// The summation order is fixed (row-major), which both implementations
/// share — do not "simplify" the expression.
#[inline]
pub fn gaussian3_at(get: impl Fn(isize, isize) -> f32) -> f32 {
    (get(-1, -1)
        + 2.0 * get(-1, 0)
        + get(-1, 1)
        + 2.0 * get(0, -1)
        + 4.0 * get(0, 0)
        + 2.0 * get(0, 1)
        + get(1, -1)
        + 2.0 * get(1, 0)
        + get(1, 1))
        * (1.0 / 16.0)
}

/// Horizontal Sobel derivative at the getter's origin.
#[inline]
pub fn sobel_x_at(get: impl Fn(isize, isize) -> f32) -> f32 {
    (get(-1, 1) + 2.0 * get(0, 1) + get(1, 1)) - (get(-1, -1) + 2.0 * get(0, -1) + get(1, -1))
}

/// Vertical Sobel derivative at the getter's origin.
#[inline]
pub fn sobel_y_at(get: impl Fn(isize, isize) -> f32) -> f32 {
    (get(1, -1) + 2.0 * get(1, 0) + get(1, 1)) - (get(-1, -1) + 2.0 * get(-1, 0) + get(-1, 1))
}

/// Gradient magnitude from the two Sobel derivatives.
#[inline]
pub fn magnitude(gx: f32, gy: f32) -> f32 {
    (gx * gx + gy * gy).sqrt()
}

/// A deterministic synthetic grayscale test image: smooth gradients with a
/// few hard edges, so the pipeline has realistic structure to find.
pub fn test_image(rows: usize, cols: usize) -> Vec<f32> {
    let mut img = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let smooth = ((r as f32 * 0.37).sin() + (c as f32 * 0.23).cos()) * 40.0;
            let edge = if (r / 7 + c / 11) % 2 == 0 { 60.0 } else { 0.0 };
            let texture = ((r * 31 + c * 17) % 13) as f32;
            img.push(smooth + edge + texture);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_functions_are_deterministic() {
        let img = test_image(8, 8);
        let get = |dr: isize, dc: isize| {
            let r = (3 + dr) as usize;
            let c = (3 + dc) as usize;
            img[r * 8 + c]
        };
        let a = gaussian3_at(get);
        let b = gaussian3_at(get);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(sobel_x_at(get).to_bits(), sobel_x_at(get).to_bits());
    }

    #[test]
    fn sobel_of_flat_image_is_zero() {
        let get = |_dr: isize, _dc: isize| 5.0f32;
        assert_eq!(sobel_x_at(get), 0.0);
        assert_eq!(sobel_y_at(get), 0.0);
        assert_eq!(magnitude(0.0, 0.0), 0.0);
        assert_eq!(gaussian3_at(get), 5.0);
    }

    #[test]
    fn test_image_is_reproducible() {
        assert_eq!(test_image(16, 16), test_image(16, 16));
        assert_eq!(test_image(16, 16).len(), 256);
    }
}
