//! # skelcl-imgproc — image-processing workloads over `Matrix`/`Stencil2D`
//!
//! The canny pipeline of SkelCL's benchmark suite (Gaussian blur → Sobel
//! gradient → non-maximum suppression → hysteresis thresholding),
//! implemented twice:
//!
//! * [`seq`] — a plain sequential host reference,
//! * [`skelcl_impl`] — matrices + 2D stencils + element-wise stages, all
//!   device-resident with lazy transfers and automatic halo exchange; the
//!   full detector runs both *fused* (a lazy [`Pipeline`](skelcl::Pipeline)
//!   collapsing the stage chain into three kernel launches) and *unfused*
//!   (one skeleton per stage — the baseline `fig_fusion` measures against).
//!
//! Both paths evaluate every pixel through the *same* per-pixel functions
//! ([`gaussian3_at`], [`sobel_x_at`], [`sobel_y_at`], [`magnitude`],
//! [`nms_at`], [`edge_label`], [`hysteresis`]), so their floating-point
//! evaluation order is identical and results are **bit-identical** — on
//! one device, on many devices, fused, unfused, and sequentially.

pub mod seq;
pub mod skelcl_impl;

/// A gradient vector: the Sobel x/y derivative pair at one pixel. Device
/// buffers hold `Grad` directly (it is a vgpu scalar), so the gradient
/// field never splits into two matrices.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Grad {
    pub gx: f32,
    pub gy: f32,
}

vgpu::impl_scalar!(Grad);

/// tan(22.5°): the slope that separates the four quantized gradient
/// directions of non-maximum suppression.
const TAN_22_5: f32 = 0.414_213_56;

/// Non-maximum suppression of the pixel at the getter's origin: keep the
/// gradient magnitude only where it peaks along the (quantized) gradient
/// direction; elsewhere the edge response is thinned to 0. The comparison
/// is `>=` against the first neighbour and `>` against the second, so
/// plateau pixels survive exactly once per direction.
#[inline]
pub fn nms_at(get: impl Fn(isize, isize) -> Grad) -> f32 {
    let g = get(0, 0);
    let m = magnitude(g.gx, g.gy);
    let (ax, ay) = (g.gx.abs(), g.gy.abs());
    let ((r1, c1), (r2, c2)) = if ay <= TAN_22_5 * ax {
        // Mostly-horizontal gradient: compare along the row.
        ((0, -1), (0, 1))
    } else if ax <= TAN_22_5 * ay {
        // Mostly-vertical gradient: compare along the column.
        ((-1, 0), (1, 0))
    } else if g.gx * g.gy > 0.0 {
        ((-1, -1), (1, 1))
    } else {
        ((-1, 1), (1, -1))
    };
    let n1 = get(r1, c1);
    let n2 = get(r2, c2);
    let m1 = magnitude(n1.gx, n1.gy);
    let m2 = magnitude(n2.gx, n2.gy);
    if m >= m1 && m > m2 {
        m
    } else {
        0.0
    }
}

/// Double-threshold classification of a suppressed magnitude:
/// `2.0` = strong edge (`m >= hi`), `1.0` = weak candidate (`m >= lo`),
/// `0.0` = suppressed.
#[inline]
pub fn edge_label(m: f32, lo: f32, hi: f32) -> f32 {
    if m >= hi {
        2.0
    } else if m >= lo {
        1.0
    } else {
        0.0
    }
}

/// Hysteresis thresholding over a label image ([`edge_label`] output):
/// every strong pixel is an edge, and weak pixels join iff they connect to
/// a strong pixel through an 8-connected chain of weak pixels. A host-side
/// flood fill — the reachable set is order-independent, so the result is
/// deterministic regardless of traversal order.
pub fn hysteresis(labels: &[f32], rows: usize, cols: usize) -> Vec<u8> {
    assert_eq!(labels.len(), rows * cols);
    let mut edges = vec![0u8; rows * cols];
    let mut stack: Vec<usize> = Vec::new();
    for (i, &l) in labels.iter().enumerate() {
        if l >= 2.0 {
            edges[i] = 1;
            stack.push(i);
        }
    }
    while let Some(i) = stack.pop() {
        let (r, c) = ((i / cols) as isize, (i % cols) as isize);
        for dr in -1isize..=1 {
            for dc in -1isize..=1 {
                let (nr, nc) = (r + dr, c + dc);
                if nr < 0 || nr >= rows as isize || nc < 0 || nc >= cols as isize {
                    continue;
                }
                let j = nr as usize * cols + nc as usize;
                if edges[j] == 0 && labels[j] >= 1.0 {
                    edges[j] = 1;
                    stack.push(j);
                }
            }
        }
    }
    edges
}

/// 3×3 binomial Gaussian blur of the pixel at the getter's origin.
/// `get(dr, dc)` resolves the neighbour under the caller's boundary rule.
/// The summation order is fixed (row-major), which both implementations
/// share — do not "simplify" the expression.
#[inline]
pub fn gaussian3_at(get: impl Fn(isize, isize) -> f32) -> f32 {
    (get(-1, -1)
        + 2.0 * get(-1, 0)
        + get(-1, 1)
        + 2.0 * get(0, -1)
        + 4.0 * get(0, 0)
        + 2.0 * get(0, 1)
        + get(1, -1)
        + 2.0 * get(1, 0)
        + get(1, 1))
        * (1.0 / 16.0)
}

/// Horizontal Sobel derivative at the getter's origin.
#[inline]
pub fn sobel_x_at(get: impl Fn(isize, isize) -> f32) -> f32 {
    (get(-1, 1) + 2.0 * get(0, 1) + get(1, 1)) - (get(-1, -1) + 2.0 * get(0, -1) + get(1, -1))
}

/// Vertical Sobel derivative at the getter's origin.
#[inline]
pub fn sobel_y_at(get: impl Fn(isize, isize) -> f32) -> f32 {
    (get(1, -1) + 2.0 * get(1, 0) + get(1, 1)) - (get(-1, -1) + 2.0 * get(-1, 0) + get(-1, 1))
}

/// Gradient magnitude from the two Sobel derivatives.
#[inline]
pub fn magnitude(gx: f32, gy: f32) -> f32 {
    (gx * gx + gy * gy).sqrt()
}

/// A deterministic synthetic grayscale test image: smooth gradients with a
/// few hard edges, so the pipeline has realistic structure to find.
pub fn test_image(rows: usize, cols: usize) -> Vec<f32> {
    let mut img = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let smooth = ((r as f32 * 0.37).sin() + (c as f32 * 0.23).cos()) * 40.0;
            let edge = if (r / 7 + c / 11) % 2 == 0 { 60.0 } else { 0.0 };
            let texture = ((r * 31 + c * 17) % 13) as f32;
            img.push(smooth + edge + texture);
        }
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pixel_functions_are_deterministic() {
        let img = test_image(8, 8);
        let get = |dr: isize, dc: isize| {
            let r = (3 + dr) as usize;
            let c = (3 + dc) as usize;
            img[r * 8 + c]
        };
        let a = gaussian3_at(get);
        let b = gaussian3_at(get);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(sobel_x_at(get).to_bits(), sobel_x_at(get).to_bits());
    }

    #[test]
    fn sobel_of_flat_image_is_zero() {
        let get = |_dr: isize, _dc: isize| 5.0f32;
        assert_eq!(sobel_x_at(get), 0.0);
        assert_eq!(sobel_y_at(get), 0.0);
        assert_eq!(magnitude(0.0, 0.0), 0.0);
        assert_eq!(gaussian3_at(get), 5.0);
    }

    #[test]
    fn test_image_is_reproducible() {
        assert_eq!(test_image(16, 16), test_image(16, 16));
        assert_eq!(test_image(16, 16).len(), 256);
    }
}
