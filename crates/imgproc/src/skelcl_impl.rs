//! The SkelCL implementation of the Gaussian → Sobel pipeline: two stencil
//! skeletons feeding an element-wise Zip, everything device-resident.
//!
//! Mirrors the structure of SkelCL's `cannyStencil` benchmark: each stage
//! is one skeleton, intermediates never visit the host, and under a
//! `RowBlock` distribution the stencils pull their cross-device
//! neighbourhoods through the matrix halo machinery.

use crate::{
    edge_label, gaussian3_at, hysteresis, magnitude, nms_at, sobel_x_at, sobel_y_at, Grad,
};
use skelcl::{
    Boundary2D, Map, Matrix, PipeView, Pipeline, PipelineExpr, ReduceRows, ReduceRowsArg, Result,
    Stencil2D, Stencil2DView, UserFn, Vector, Zip,
};

/// The Gaussian blur skeleton.
pub fn gaussian_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new("gauss3", GAUSS3_SRC, |v: &Stencil2DView<'_, f32>| {
        gaussian3_at(|dr, dc| v.get(dr, dc))
    });
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The horizontal Sobel derivative skeleton.
pub fn sobel_x_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new("sobel_x", SOBEL_X_SRC, |v: &Stencil2DView<'_, f32>| {
        sobel_x_at(|dr, dc| v.get(dr, dc))
    });
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The vertical Sobel derivative skeleton.
pub fn sobel_y_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new("sobel_y", SOBEL_Y_SRC, |v: &Stencil2DView<'_, f32>| {
        sobel_y_at(|dr, dc| v.get(dr, dc))
    });
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The gradient-magnitude Zip skeleton.
pub fn magnitude_skeleton() -> Zip<f32, f32, f32, impl Fn(f32, f32) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "grad_mag",
        "float grad_mag(float gx, float gy) { return sqrt(gx*gx + gy*gy); }",
        magnitude,
    );
    // <<< kernel
    Zip::new(user)
}

// --- canny stage user functions -------------------------------------------
//
// The fused pipeline and the unfused skeleton chain share the OpenCL
// sources and the Rust twins below differ only in view type
// (`PipeView` vs `Stencil2DView`), so both call the same shared per-pixel
// functions and agree bit for bit.

const GAUSS3_SRC: &str = "float gauss3(__global float* in, int r, int c, uint nr, uint nc) {\n\
     #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
         return (AT(-1,-1) + 2.0f*AT(-1,0) + AT(-1,1)\n\
               + 2.0f*AT(0,-1) + 4.0f*AT(0,0) + 2.0f*AT(0,1)\n\
               + AT(1,-1) + 2.0f*AT(1,0) + AT(1,1)) * (1.0f/16.0f);\n\
     #undef AT\n\
     }";

const SOBEL_X_SRC: &str = "float sobel_x(__global float* in, int r, int c, uint nr, uint nc) {\n\
     #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
         return (AT(-1,1) + 2.0f*AT(0,1) + AT(1,1))\n\
              - (AT(-1,-1) + 2.0f*AT(0,-1) + AT(1,-1));\n\
     #undef AT\n\
     }";

const SOBEL_Y_SRC: &str = "float sobel_y(__global float* in, int r, int c, uint nr, uint nc) {\n\
     #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
         return (AT(1,-1) + 2.0f*AT(1,0) + AT(1,1))\n\
              - (AT(-1,-1) + 2.0f*AT(-1,0) + AT(-1,1));\n\
     #undef AT\n\
     }";

const GRAD_PACK_SRC: &str =
    "Grad grad_pack(float gx, float gy) { Grad g; g.gx = gx; g.gy = gy; return g; }";

const NMS_SRC: &str = "float nms(__global Grad* in, int r, int c, uint nr, uint nc) {\n\
     #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
         Grad g = AT(0, 0);\n\
         float m = sqrt(g.gx*g.gx + g.gy*g.gy);\n\
         float ax = fabs(g.gx), ay = fabs(g.gy);\n\
         int r1, c1, r2, c2;\n\
         if (ay <= 0.41421356f * ax)      { r1 = 0; c1 = -1; r2 = 0; c2 = 1; }\n\
         else if (ax <= 0.41421356f * ay) { r1 = -1; c1 = 0; r2 = 1; c2 = 0; }\n\
         else if (g.gx * g.gy > 0.0f)     { r1 = -1; c1 = -1; r2 = 1; c2 = 1; }\n\
         else                             { r1 = -1; c1 = 1; r2 = 1; c2 = -1; }\n\
         Grad n1 = AT(r1, c1); Grad n2 = AT(r2, c2);\n\
         float m1 = sqrt(n1.gx*n1.gx + n1.gy*n1.gy);\n\
         float m2 = sqrt(n2.gx*n2.gx + n2.gy*n2.gy);\n\
         return (m >= m1 && m > m2) ? m : 0.0f;\n\
     #undef AT\n\
     }";

fn grad_pack_fn() -> UserFn<impl Fn(f32, f32) -> Grad + Clone> {
    // >>> kernel
    UserFn::new("grad_pack", GRAD_PACK_SRC, |gx, gy| Grad { gx, gy })
    // <<< kernel
}

fn edge_label_fn(lo: f32, hi: f32) -> UserFn<impl Fn(f32) -> f32 + Clone> {
    // The thresholds are baked into the generated source, so every (lo, hi)
    // pair is a distinct program in the kernel cache.
    // >>> kernel
    UserFn::new(
        "edge_label",
        format!(
            "float edge_label(float m) {{\n\
                 return m >= {hi:?}f ? 2.0f : (m >= {lo:?}f ? 1.0f : 0.0f);\n\
             }}"
        ),
        move |m| edge_label(m, lo, hi),
    )
    // <<< kernel
}

/// The non-maximum-suppression stencil over the gradient field (the
/// unfused chain's standalone stage).
pub fn nms_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<Grad, f32, impl Fn(&Stencil2DView<'_, Grad>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new("nms", NMS_SRC, |v: &Stencil2DView<'_, Grad>| {
        nms_at(|dr, dc| v.get(dr, dc))
    });
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// Run the full pipeline on a device-distributed image. Intermediates stay
/// on the devices; only the initial upload and the caller's final download
/// cross the host boundary.
pub fn blur_sobel(img: &Matrix<f32>, boundary: Boundary2D) -> Result<Matrix<f32>> {
    let blurred = gaussian_skeleton(boundary).apply(img)?;
    let gx = sobel_x_skeleton(boundary).apply(&blurred)?;
    let gy = sobel_y_skeleton(boundary).apply(&blurred)?;
    magnitude_skeleton().apply_matrix(&gx, &gy)
}

/// Canny label image, **fused**: the whole
/// gauss → (sobel_x ∥ sobel_y) → nms → edge_label chain is one lazy
/// [`Pipeline`] that executes as **three** kernel launches — one per
/// stencil group, with the Sobel pair sharing a single neighbourhood pass
/// and the threshold map fused into the NMS kernel's writes — and zero
/// intermediate [`Matrix`] values.
pub fn canny_labels(
    img: &Matrix<f32>,
    boundary: Boundary2D,
    lo: f32,
    hi: f32,
) -> Result<Matrix<f32>> {
    // >>> kernel
    let gauss = UserFn::new("gauss3", GAUSS3_SRC, |v: &PipeView<'_, f32>| {
        gaussian3_at(|dr, dc| v.get(dr, dc))
    });
    let sx = UserFn::new("sobel_x", SOBEL_X_SRC, |v: &PipeView<'_, f32>| {
        sobel_x_at(|dr, dc| v.get(dr, dc))
    });
    let sy = UserFn::new("sobel_y", SOBEL_Y_SRC, |v: &PipeView<'_, f32>| {
        sobel_y_at(|dr, dc| v.get(dr, dc))
    });
    let nms = UserFn::new("nms", NMS_SRC, |v: &PipeView<'_, Grad>| {
        nms_at(|dr, dc| v.get(dr, dc))
    });
    // <<< kernel
    Pipeline::start::<f32>()
        .stencil(gauss, 1, boundary)
        .stencil_pair(sx, sy, grad_pack_fn(), 1, boundary)
        .stencil(nms, 1, boundary)
        .map(edge_label_fn(lo, hi))
        .run(img)
}

/// Canny label image, **unfused**: the same math as [`canny_labels`] but
/// one skeleton call per stage — six launches, five intermediate matrices
/// (blurred, gx, gy, gradient field, suppressed). The `fig_fusion`
/// baseline; bit-identical to the fused pipeline.
pub fn canny_labels_unfused(
    img: &Matrix<f32>,
    boundary: Boundary2D,
    lo: f32,
    hi: f32,
) -> Result<Matrix<f32>> {
    let blurred = gaussian_skeleton(boundary).apply(img)?;
    let gx = sobel_x_skeleton(boundary).apply(&blurred)?;
    let gy = sobel_y_skeleton(boundary).apply(&blurred)?;
    let grads = Zip::new(grad_pack_fn()).apply_matrix(&gx, &gy)?;
    let suppressed = nms_skeleton(boundary).apply(&grads)?;
    Map::new(edge_label_fn(lo, hi)).apply_matrix(&suppressed)
}

/// The full canny edge detector, fused: [`canny_labels`] on the devices,
/// then the host-side [`hysteresis`] flood fill (an irregular graph
/// traversal that does not map to a data-parallel skeleton). Bit-identical
/// to [`crate::seq::canny`] on any device count.
pub fn canny(img: &Matrix<f32>, boundary: Boundary2D, lo: f32, hi: f32) -> Result<Vec<u8>> {
    let (rows, cols) = img.dims();
    let labels = canny_labels(img, boundary, lo, hi)?.to_vec()?;
    Ok(hysteresis(&labels, rows, cols))
}

/// The full canny edge detector over the unfused skeleton chain.
pub fn canny_unfused(img: &Matrix<f32>, boundary: Boundary2D, lo: f32, hi: f32) -> Result<Vec<u8>> {
    let (rows, cols) = img.dims();
    let labels = canny_labels_unfused(img, boundary, lo, hi)?.to_vec()?;
    Ok(hysteresis(&labels, rows, cols))
}

/// Per-row total gradient energy: the Gaussian → Sobel pipeline composed
/// with a device-side [`ReduceRows`] sum, so the `rows×cols` magnitude
/// image is reduced to a length-`rows` vector without ever visiting the
/// host (the gradient-histogram building block). Ascending-column fold
/// from 0, bit-identical to the sequential reference on any device count.
pub fn row_gradient_sums(img: &Matrix<f32>, boundary: Boundary2D) -> Result<Vector<f32>> {
    let mag = blur_sobel(img, boundary)?;
    // >>> kernel
    let sums = ReduceRows::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    // <<< kernel
    sums.apply(&mag)
}

/// Per-row strongest edge: gradient magnitude + the column it peaks at,
/// via the index-carrying [`ReduceRowsArg`] (strictly-greater scan, lowest
/// column wins ties). Device-resident end to end.
pub fn row_peak_gradient(
    img: &Matrix<f32>,
    boundary: Boundary2D,
) -> Result<(Vector<f32>, Vector<u32>)> {
    let mag = blur_sobel(img, boundary)?;
    // >>> kernel
    let peak = ReduceRowsArg::new(skelcl::skel_fn!(
        fn greater(x: f32, y: f32) -> bool {
            x > y
        }
    ));
    // <<< kernel
    peak.apply(&mag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skelcl::{Context, ContextConfig, MatrixDistribution};

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .work_group(64)
                .cache_tag("imgproc-tests"),
        )
    }

    #[test]
    fn matches_the_sequential_reference_bit_for_bit() {
        let (rows, cols) = (24, 17);
        let img = crate::test_image(rows, cols);
        for boundary in [Boundary2D::Neumann, Boundary2D::Wrap, Boundary2D::Zero] {
            let want = crate::seq::blur_sobel(&img, rows, cols, boundary);
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let got = blur_sobel(&m, boundary).unwrap().to_vec().unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{boundary:?}"
            );
        }
    }

    #[test]
    fn multi_device_runs_are_bit_identical_to_one_device() {
        let (rows, cols) = (33, 14);
        let img = crate::test_image(rows, cols);
        let single = {
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            blur_sobel(&m, Boundary2D::Neumann)
                .unwrap()
                .to_vec()
                .unwrap()
        };
        for devices in [2usize, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
                .unwrap();
            let got = blur_sobel(&m, Boundary2D::Neumann)
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{devices} devices"
            );
        }
    }

    #[test]
    fn row_gradient_reductions_match_the_sequential_reference() {
        let (rows, cols) = (21, 13);
        let img = crate::test_image(rows, cols);
        let want_sums = crate::seq::row_gradient_sums(&img, rows, cols, Boundary2D::Neumann);
        let (want_peak, want_col) =
            crate::seq::row_peak_gradient(&img, rows, cols, Boundary2D::Neumann);
        for devices in [1usize, 2, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let sums = row_gradient_sums(&m, Boundary2D::Neumann)
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(
                sums.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want_sums.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{devices} devices"
            );
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let (peak, col) = row_peak_gradient(&m, Boundary2D::Neumann).unwrap();
            assert_eq!(
                peak.to_vec()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                want_peak.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{devices} devices"
            );
            assert_eq!(col.to_vec().unwrap(), want_col, "{devices} devices");
        }
    }

    const CANNY_LO: f32 = 30.0;
    const CANNY_HI: f32 = 90.0;

    #[test]
    fn fused_canny_matches_the_sequential_reference_bit_for_bit() {
        let (rows, cols) = (29, 18);
        let img = crate::test_image(rows, cols);
        for boundary in [Boundary2D::Neumann, Boundary2D::Wrap, Boundary2D::Zero] {
            let want = crate::seq::canny(&img, rows, cols, boundary, CANNY_LO, CANNY_HI);
            for devices in [1usize, 2, 4] {
                let c = ctx(devices);
                let m = Matrix::from_vec(&c, rows, cols, img.clone());
                let got = canny(&m, boundary, CANNY_LO, CANNY_HI).unwrap();
                assert_eq!(got, want, "{boundary:?}, {devices} devices");
            }
        }
    }

    #[test]
    fn fused_and_unfused_canny_labels_are_bit_identical() {
        let (rows, cols) = (25, 21);
        let img = crate::test_image(rows, cols);
        for devices in [1usize, 2, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let fused = canny_labels(&m, Boundary2D::Neumann, CANNY_LO, CANNY_HI)
                .unwrap()
                .to_vec()
                .unwrap();
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let unfused = canny_labels_unfused(&m, Boundary2D::Neumann, CANNY_LO, CANNY_HI)
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(
                fused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                unfused.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{devices} devices"
            );
        }
    }

    #[test]
    fn fused_canny_is_three_launch_groups_and_stays_on_the_devices() {
        let (rows, cols) = (32, 16);
        let c = ctx(2);
        let img = Matrix::from_vec(&c, rows, cols, crate::test_image(rows, cols));
        img.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        img.ensure_on_devices().unwrap();
        let groups_before = c
            .metrics()
            .counter_value("skelcl.pipeline.groups")
            .unwrap_or(0);
        let before = c.platform().stats_snapshot();
        let labels = canny_labels(&img, Boundary2D::Neumann, CANNY_LO, CANNY_HI).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        let groups = c
            .metrics()
            .counter_value("skelcl.pipeline.groups")
            .unwrap_or(0)
            - groups_before;
        assert_eq!(groups, 3, "gauss, sobel pair, nms+label: three launches");
        assert_eq!(delta.h2d_transfers, 0, "no re-upload");
        assert_eq!(delta.d2h_transfers, 0, "no intermediate download");
        drop(labels);
    }

    #[test]
    fn canny_finds_the_vertical_seam_and_nothing_in_flat_regions() {
        // Left half 0, right half 100: hysteresis must keep the seam
        // column and reject the flat interior.
        let (rows, cols) = (12, 16);
        let img: Vec<f32> = (0..rows * cols)
            .map(|i| if i % cols < cols / 2 { 0.0 } else { 100.0 })
            .collect();
        let c = ctx(2);
        let m = Matrix::from_vec(&c, rows, cols, img.clone());
        let edges = canny(&m, Boundary2D::Neumann, 20.0, 60.0).unwrap();
        // The NMS tie-break (`>=` left, `>` right) lands the thinned edge
        // on one of the two columns straddling the seam.
        let seam: u32 = (0..rows)
            .map(|r| (edges[r * cols + cols / 2 - 1] + edges[r * cols + cols / 2]) as u32)
            .sum();
        let flat: u32 = (0..rows).map(|r| edges[r * cols + 1] as u32).sum();
        assert!(seam > 0, "the seam must survive hysteresis");
        assert_eq!(flat, 0, "flat regions must stay empty");
        assert_eq!(
            edges,
            crate::seq::canny(&img, rows, cols, Boundary2D::Neumann, 20.0, 60.0)
        );
    }

    #[test]
    fn row_gradient_sums_never_download_the_magnitude_image() {
        let (rows, cols) = (32, 16);
        let c = ctx(4);
        let img = Matrix::from_vec(&c, rows, cols, crate::test_image(rows, cols));
        img.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        img.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let sums = row_gradient_sums(&img, Boundary2D::Neumann).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.d2h_transfers, 0, "reduction composes on the devices");
        assert_eq!(delta.h2d_transfers, 0, "no re-upload");
        // Only the tiny per-row vector crosses on the final read.
        let before = c.platform().stats_snapshot();
        let host = sums.to_vec().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(host.len(), rows);
        assert!(delta.d2h_bytes <= (rows * 4) as u64);
    }

    #[test]
    fn pipeline_stays_on_the_devices() {
        let (rows, cols) = (32, 16);
        let c = ctx(4);
        let img = Matrix::from_vec(&c, rows, cols, crate::test_image(rows, cols));
        img.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        img.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = blur_sobel(&img, Boundary2D::Neumann).unwrap();
        let mid = c.platform().stats_snapshot() - before;
        assert_eq!(mid.h2d_transfers, 0, "no re-upload of anything");
        assert_eq!(mid.d2h_transfers, 0, "no intermediate download");
        assert!(
            mid.d2d_transfers > 0,
            "cross-device halo exchange must be visible in the accounting"
        );
        // The one and only download happens when the caller reads.
        let before = c.platform().stats_snapshot();
        out.to_vec().unwrap();
        let last = c.platform().stats_snapshot() - before;
        assert_eq!(last.d2h_transfers, 4, "one download per device part");
    }
}
