//! The SkelCL implementation of the Gaussian → Sobel pipeline: two stencil
//! skeletons feeding an element-wise Zip, everything device-resident.
//!
//! Mirrors the structure of SkelCL's `cannyStencil` benchmark: each stage
//! is one skeleton, intermediates never visit the host, and under a
//! `RowBlock` distribution the stencils pull their cross-device
//! neighbourhoods through the matrix halo machinery.

use crate::{gaussian3_at, magnitude, sobel_x_at, sobel_y_at};
use skelcl::{
    Boundary2D, Matrix, ReduceRows, ReduceRowsArg, Result, Stencil2D, Stencil2DView, UserFn,
    Vector, Zip,
};

/// The Gaussian blur skeleton.
pub fn gaussian_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "gauss3",
        "float gauss3(__global float* in, int r, int c, uint nr, uint nc) {\n\
         #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
             return (AT(-1,-1) + 2.0f*AT(-1,0) + AT(-1,1)\n\
                   + 2.0f*AT(0,-1) + 4.0f*AT(0,0) + 2.0f*AT(0,1)\n\
                   + AT(1,-1) + 2.0f*AT(1,0) + AT(1,1)) * (1.0f/16.0f);\n\
         #undef AT\n\
         }",
        |v: &Stencil2DView<'_, f32>| gaussian3_at(|dr, dc| v.get(dr, dc)),
    );
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The horizontal Sobel derivative skeleton.
pub fn sobel_x_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "sobel_x",
        "float sobel_x(__global float* in, int r, int c, uint nr, uint nc) {\n\
         #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
             return (AT(-1,1) + 2.0f*AT(0,1) + AT(1,1))\n\
                  - (AT(-1,-1) + 2.0f*AT(0,-1) + AT(1,-1));\n\
         #undef AT\n\
         }",
        |v: &Stencil2DView<'_, f32>| sobel_x_at(|dr, dc| v.get(dr, dc)),
    );
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The vertical Sobel derivative skeleton.
pub fn sobel_y_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "sobel_y",
        "float sobel_y(__global float* in, int r, int c, uint nr, uint nc) {\n\
         #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
             return (AT(1,-1) + 2.0f*AT(1,0) + AT(1,1))\n\
                  - (AT(-1,-1) + 2.0f*AT(-1,0) + AT(-1,1));\n\
         #undef AT\n\
         }",
        |v: &Stencil2DView<'_, f32>| sobel_y_at(|dr, dc| v.get(dr, dc)),
    );
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The gradient-magnitude Zip skeleton.
pub fn magnitude_skeleton() -> Zip<f32, f32, f32, impl Fn(f32, f32) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "grad_mag",
        "float grad_mag(float gx, float gy) { return sqrt(gx*gx + gy*gy); }",
        magnitude,
    );
    // <<< kernel
    Zip::new(user)
}

/// Run the full pipeline on a device-distributed image. Intermediates stay
/// on the devices; only the initial upload and the caller's final download
/// cross the host boundary.
pub fn blur_sobel(img: &Matrix<f32>, boundary: Boundary2D) -> Result<Matrix<f32>> {
    let blurred = gaussian_skeleton(boundary).apply(img)?;
    let gx = sobel_x_skeleton(boundary).apply(&blurred)?;
    let gy = sobel_y_skeleton(boundary).apply(&blurred)?;
    magnitude_skeleton().apply_matrix(&gx, &gy)
}

/// Per-row total gradient energy: the Gaussian → Sobel pipeline composed
/// with a device-side [`ReduceRows`] sum, so the `rows×cols` magnitude
/// image is reduced to a length-`rows` vector without ever visiting the
/// host (the gradient-histogram building block). Ascending-column fold
/// from 0, bit-identical to the sequential reference on any device count.
pub fn row_gradient_sums(img: &Matrix<f32>, boundary: Boundary2D) -> Result<Vector<f32>> {
    let mag = blur_sobel(img, boundary)?;
    // >>> kernel
    let sums = ReduceRows::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    // <<< kernel
    sums.apply(&mag)
}

/// Per-row strongest edge: gradient magnitude + the column it peaks at,
/// via the index-carrying [`ReduceRowsArg`] (strictly-greater scan, lowest
/// column wins ties). Device-resident end to end.
pub fn row_peak_gradient(
    img: &Matrix<f32>,
    boundary: Boundary2D,
) -> Result<(Vector<f32>, Vector<u32>)> {
    let mag = blur_sobel(img, boundary)?;
    // >>> kernel
    let peak = ReduceRowsArg::new(skelcl::skel_fn!(
        fn greater(x: f32, y: f32) -> bool {
            x > y
        }
    ));
    // <<< kernel
    peak.apply(&mag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skelcl::{Context, ContextConfig, MatrixDistribution};

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .work_group(64)
                .cache_tag("imgproc-tests"),
        )
    }

    #[test]
    fn matches_the_sequential_reference_bit_for_bit() {
        let (rows, cols) = (24, 17);
        let img = crate::test_image(rows, cols);
        for boundary in [Boundary2D::Neumann, Boundary2D::Wrap, Boundary2D::Zero] {
            let want = crate::seq::blur_sobel(&img, rows, cols, boundary);
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let got = blur_sobel(&m, boundary).unwrap().to_vec().unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{boundary:?}"
            );
        }
    }

    #[test]
    fn multi_device_runs_are_bit_identical_to_one_device() {
        let (rows, cols) = (33, 14);
        let img = crate::test_image(rows, cols);
        let single = {
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            blur_sobel(&m, Boundary2D::Neumann)
                .unwrap()
                .to_vec()
                .unwrap()
        };
        for devices in [2usize, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
                .unwrap();
            let got = blur_sobel(&m, Boundary2D::Neumann)
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{devices} devices"
            );
        }
    }

    #[test]
    fn row_gradient_reductions_match_the_sequential_reference() {
        let (rows, cols) = (21, 13);
        let img = crate::test_image(rows, cols);
        let want_sums = crate::seq::row_gradient_sums(&img, rows, cols, Boundary2D::Neumann);
        let (want_peak, want_col) =
            crate::seq::row_peak_gradient(&img, rows, cols, Boundary2D::Neumann);
        for devices in [1usize, 2, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let sums = row_gradient_sums(&m, Boundary2D::Neumann)
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(
                sums.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want_sums.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{devices} devices"
            );
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let (peak, col) = row_peak_gradient(&m, Boundary2D::Neumann).unwrap();
            assert_eq!(
                peak.to_vec()
                    .unwrap()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                want_peak.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{devices} devices"
            );
            assert_eq!(col.to_vec().unwrap(), want_col, "{devices} devices");
        }
    }

    #[test]
    fn row_gradient_sums_never_download_the_magnitude_image() {
        let (rows, cols) = (32, 16);
        let c = ctx(4);
        let img = Matrix::from_vec(&c, rows, cols, crate::test_image(rows, cols));
        img.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        img.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let sums = row_gradient_sums(&img, Boundary2D::Neumann).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.d2h_transfers, 0, "reduction composes on the devices");
        assert_eq!(delta.h2d_transfers, 0, "no re-upload");
        // Only the tiny per-row vector crosses on the final read.
        let before = c.platform().stats_snapshot();
        let host = sums.to_vec().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(host.len(), rows);
        assert!(delta.d2h_bytes <= (rows * 4) as u64);
    }

    #[test]
    fn pipeline_stays_on_the_devices() {
        let (rows, cols) = (32, 16);
        let c = ctx(4);
        let img = Matrix::from_vec(&c, rows, cols, crate::test_image(rows, cols));
        img.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        img.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = blur_sobel(&img, Boundary2D::Neumann).unwrap();
        let mid = c.platform().stats_snapshot() - before;
        assert_eq!(mid.h2d_transfers, 0, "no re-upload of anything");
        assert_eq!(mid.d2h_transfers, 0, "no intermediate download");
        assert!(
            mid.d2d_transfers > 0,
            "cross-device halo exchange must be visible in the accounting"
        );
        // The one and only download happens when the caller reads.
        let before = c.platform().stats_snapshot();
        out.to_vec().unwrap();
        let last = c.platform().stats_snapshot() - before;
        assert_eq!(last.d2h_transfers, 4, "one download per device part");
    }
}
