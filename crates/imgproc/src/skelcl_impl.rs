//! The SkelCL implementation of the Gaussian → Sobel pipeline: two stencil
//! skeletons feeding an element-wise Zip, everything device-resident.
//!
//! Mirrors the structure of SkelCL's `cannyStencil` benchmark: each stage
//! is one skeleton, intermediates never visit the host, and under a
//! `RowBlock` distribution the stencils pull their cross-device
//! neighbourhoods through the matrix halo machinery.

use crate::{gaussian3_at, magnitude, sobel_x_at, sobel_y_at};
use skelcl::{Boundary2D, Matrix, Result, Stencil2D, Stencil2DView, UserFn, Zip};

/// The Gaussian blur skeleton.
pub fn gaussian_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "gauss3",
        "float gauss3(__global float* in, int r, int c, uint nr, uint nc) {\n\
         #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
             return (AT(-1,-1) + 2.0f*AT(-1,0) + AT(-1,1)\n\
                   + 2.0f*AT(0,-1) + 4.0f*AT(0,0) + 2.0f*AT(0,1)\n\
                   + AT(1,-1) + 2.0f*AT(1,0) + AT(1,1)) * (1.0f/16.0f);\n\
         #undef AT\n\
         }",
        |v: &Stencil2DView<'_, f32>| gaussian3_at(|dr, dc| v.get(dr, dc)),
    );
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The horizontal Sobel derivative skeleton.
pub fn sobel_x_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "sobel_x",
        "float sobel_x(__global float* in, int r, int c, uint nr, uint nc) {\n\
         #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
             return (AT(-1,1) + 2.0f*AT(0,1) + AT(1,1))\n\
                  - (AT(-1,-1) + 2.0f*AT(0,-1) + AT(1,-1));\n\
         #undef AT\n\
         }",
        |v: &Stencil2DView<'_, f32>| sobel_x_at(|dr, dc| v.get(dr, dc)),
    );
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The vertical Sobel derivative skeleton.
pub fn sobel_y_skeleton(
    boundary: Boundary2D,
) -> Stencil2D<f32, f32, impl Fn(&Stencil2DView<'_, f32>) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "sobel_y",
        "float sobel_y(__global float* in, int r, int c, uint nr, uint nc) {\n\
         #define AT(dr, dc) stencil_at(in, r, c, nr, nc, dr, dc)\n\
             return (AT(1,-1) + 2.0f*AT(1,0) + AT(1,1))\n\
                  - (AT(-1,-1) + 2.0f*AT(-1,0) + AT(-1,1));\n\
         #undef AT\n\
         }",
        |v: &Stencil2DView<'_, f32>| sobel_y_at(|dr, dc| v.get(dr, dc)),
    );
    // <<< kernel
    Stencil2D::new(user, 1, boundary)
}

/// The gradient-magnitude Zip skeleton.
pub fn magnitude_skeleton() -> Zip<f32, f32, f32, impl Fn(f32, f32) -> f32 + Clone> {
    // >>> kernel
    let user = UserFn::new(
        "grad_mag",
        "float grad_mag(float gx, float gy) { return sqrt(gx*gx + gy*gy); }",
        magnitude,
    );
    // <<< kernel
    Zip::new(user)
}

/// Run the full pipeline on a device-distributed image. Intermediates stay
/// on the devices; only the initial upload and the caller's final download
/// cross the host boundary.
pub fn blur_sobel(img: &Matrix<f32>, boundary: Boundary2D) -> Result<Matrix<f32>> {
    let blurred = gaussian_skeleton(boundary).apply(img)?;
    let gx = sobel_x_skeleton(boundary).apply(&blurred)?;
    let gy = sobel_y_skeleton(boundary).apply(&blurred)?;
    magnitude_skeleton().apply_matrix(&gx, &gy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use skelcl::{Context, ContextConfig, MatrixDistribution};

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .work_group(64)
                .cache_tag("imgproc-tests"),
        )
    }

    #[test]
    fn matches_the_sequential_reference_bit_for_bit() {
        let (rows, cols) = (24, 17);
        let img = crate::test_image(rows, cols);
        for boundary in [Boundary2D::Neumann, Boundary2D::Wrap, Boundary2D::Zero] {
            let want = crate::seq::blur_sobel(&img, rows, cols, boundary);
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            let got = blur_sobel(&m, boundary).unwrap().to_vec().unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{boundary:?}"
            );
        }
    }

    #[test]
    fn multi_device_runs_are_bit_identical_to_one_device() {
        let (rows, cols) = (33, 14);
        let img = crate::test_image(rows, cols);
        let single = {
            let c = ctx(1);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            blur_sobel(&m, Boundary2D::Neumann)
                .unwrap()
                .to_vec()
                .unwrap()
        };
        for devices in [2usize, 4] {
            let c = ctx(devices);
            let m = Matrix::from_vec(&c, rows, cols, img.clone());
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
                .unwrap();
            let got = blur_sobel(&m, Boundary2D::Neumann)
                .unwrap()
                .to_vec()
                .unwrap();
            assert_eq!(
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                single.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "{devices} devices"
            );
        }
    }

    #[test]
    fn pipeline_stays_on_the_devices() {
        let (rows, cols) = (32, 16);
        let c = ctx(4);
        let img = Matrix::from_vec(&c, rows, cols, crate::test_image(rows, cols));
        img.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
            .unwrap();
        img.ensure_on_devices().unwrap();
        let before = c.platform().stats_snapshot();
        let out = blur_sobel(&img, Boundary2D::Neumann).unwrap();
        let mid = c.platform().stats_snapshot() - before;
        assert_eq!(mid.h2d_transfers, 0, "no re-upload of anything");
        assert_eq!(mid.d2h_transfers, 0, "no intermediate download");
        assert!(
            mid.d2d_transfers > 0,
            "cross-device halo exchange must be visible in the accounting"
        );
        // The one and only download happens when the caller reads.
        let before = c.platform().stats_snapshot();
        out.to_vec().unwrap();
        let last = c.platform().stats_snapshot() - before;
        assert_eq!(last.d2h_transfers, 4, "one download per device part");
    }
}
