//! Sequential reference for the Gaussian → Sobel pipeline.
//!
//! Shares the per-pixel functions with the SkelCL implementation so the two
//! agree bit-for-bit; only the iteration and boundary plumbing live here.

use crate::{
    edge_label, gaussian3_at, hysteresis, magnitude, nms_at, sobel_x_at, sobel_y_at, Grad,
};
use skelcl::Boundary2D;

/// Apply one radius-1 stencil `f` over a whole field under `boundary`.
/// Out-of-bounds reads resolve like the device-side stencil views: clamp
/// (Neumann), wrap, or the element type's default (Zero).
fn stencil<T: Copy + Default, O, F: Fn(&dyn Fn(isize, isize) -> T) -> O>(
    img: &[T],
    rows: usize,
    cols: usize,
    boundary: Boundary2D,
    f: F,
) -> Vec<O> {
    let at = |r: isize, c: isize| -> T {
        let (r, c) = match boundary {
            Boundary2D::Neumann => (r.clamp(0, rows as isize - 1), c.clamp(0, cols as isize - 1)),
            Boundary2D::Wrap => (r.rem_euclid(rows as isize), c.rem_euclid(cols as isize)),
            Boundary2D::Zero => {
                if r < 0 || r >= rows as isize || c < 0 || c >= cols as isize {
                    return T::default();
                }
                (r, c)
            }
        };
        img[r as usize * cols + c as usize]
    };
    let mut out = Vec::with_capacity(rows * cols);
    for r in 0..rows as isize {
        for c in 0..cols as isize {
            out.push(f(&|dr, dc| at(r + dr, c + dc)));
        }
    }
    out
}

/// Gaussian blur (3×3 binomial).
pub fn gaussian(img: &[f32], rows: usize, cols: usize, boundary: Boundary2D) -> Vec<f32> {
    stencil(img, rows, cols, boundary, |get| gaussian3_at(get))
}

/// Sobel gradient magnitude.
pub fn sobel(img: &[f32], rows: usize, cols: usize, boundary: Boundary2D) -> Vec<f32> {
    let gx = stencil(img, rows, cols, boundary, |get| sobel_x_at(get));
    let gy = stencil(img, rows, cols, boundary, |get| sobel_y_at(get));
    gx.iter().zip(&gy).map(|(&x, &y)| magnitude(x, y)).collect()
}

/// The full pipeline: blur, then gradient magnitude of the blurred image.
pub fn blur_sobel(img: &[f32], rows: usize, cols: usize, boundary: Boundary2D) -> Vec<f32> {
    let blurred = gaussian(img, rows, cols, boundary);
    sobel(&blurred, rows, cols, boundary)
}

/// The Sobel gradient *field* of an image: one [`Grad`] per pixel, both
/// derivatives from the same neighbourhood pass.
pub fn gradient_field(img: &[f32], rows: usize, cols: usize, boundary: Boundary2D) -> Vec<Grad> {
    stencil(img, rows, cols, boundary, |get| Grad {
        gx: sobel_x_at(get),
        gy: sobel_y_at(get),
    })
}

/// Canny label image: blur → gradient field → non-maximum suppression →
/// double threshold, each stage a radius-1 stencil or per-pixel map under
/// `boundary`. Values are [`edge_label`] classes (0/1/2 as `f32`).
pub fn canny_labels(
    img: &[f32],
    rows: usize,
    cols: usize,
    boundary: Boundary2D,
    lo: f32,
    hi: f32,
) -> Vec<f32> {
    let blurred = gaussian(img, rows, cols, boundary);
    let grads = gradient_field(&blurred, rows, cols, boundary);
    let suppressed = stencil(&grads, rows, cols, boundary, |get| nms_at(get));
    suppressed.iter().map(|&m| edge_label(m, lo, hi)).collect()
}

/// The full canny edge detector: [`canny_labels`] followed by
/// [`hysteresis`] flood fill. Returns the binary edge map (1 = edge).
pub fn canny(
    img: &[f32],
    rows: usize,
    cols: usize,
    boundary: Boundary2D,
    lo: f32,
    hi: f32,
) -> Vec<u8> {
    let labels = canny_labels(img, rows, cols, boundary, lo, hi);
    hysteresis(&labels, rows, cols)
}

/// Per-row total gradient energy: ascending-column left fold from 0 of the
/// pipeline's magnitude image — the exact fold order the device-side
/// `ReduceRows` uses, so the two agree bit-for-bit.
pub fn row_gradient_sums(img: &[f32], rows: usize, cols: usize, boundary: Boundary2D) -> Vec<f32> {
    let mag = blur_sobel(img, rows, cols, boundary);
    (0..rows)
        .map(|r| {
            mag[r * cols..(r + 1) * cols]
                .iter()
                .fold(0.0, |a, &x| a + x)
        })
        .collect()
}

/// Per-row strongest edge `(magnitude, column)`: strictly-greater scan in
/// ascending column order, lowest column wins ties — mirroring the
/// device-side `ReduceRowsArg`.
pub fn row_peak_gradient(
    img: &[f32],
    rows: usize,
    cols: usize,
    boundary: Boundary2D,
) -> (Vec<f32>, Vec<u32>) {
    let mag = blur_sobel(img, rows, cols, boundary);
    let mut vals = Vec::with_capacity(rows);
    let mut idxs = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &mag[r * cols..(r + 1) * cols];
        let mut best = 0usize;
        for (c, &x) in row.iter().enumerate() {
            if x > row[best] {
                best = c;
            }
        }
        vals.push(row[best]);
        idxs.push(best as u32);
    }
    (vals, idxs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_image_has_no_edges() {
        let img = vec![3.0f32; 25];
        let out = blur_sobel(&img, 5, 5, Boundary2D::Neumann);
        assert!(out.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn vertical_edge_is_detected() {
        // Left half 0, right half 100: the gradient peaks at the seam.
        let (rows, cols) = (6, 8);
        let img: Vec<f32> = (0..rows * cols)
            .map(|i| if i % cols < cols / 2 { 0.0 } else { 100.0 })
            .collect();
        let out = blur_sobel(&img, rows, cols, Boundary2D::Neumann);
        let seam: f32 = (0..rows).map(|r| out[r * cols + cols / 2 - 1]).sum();
        let flat: f32 = (0..rows).map(|r| out[r * cols]).sum();
        assert!(seam > flat, "edge response {seam} must beat flat {flat}");
    }

    #[test]
    fn canny_of_a_flat_image_is_empty() {
        let img = vec![7.0f32; 9 * 9];
        let edges = canny(&img, 9, 9, Boundary2D::Neumann, 10.0, 30.0);
        assert!(edges.iter().all(|&e| e == 0));
    }

    #[test]
    fn weak_edges_survive_only_when_chained_to_a_strong_pixel() {
        // A label field exercised directly: one strong pixel with a weak
        // 8-connected chain, plus an isolated weak pixel elsewhere.
        let (rows, cols) = (5, 7);
        let mut labels = vec![0.0f32; rows * cols];
        labels[cols + 1] = 2.0; // strong seed
        labels[2 * cols + 2] = 1.0; // diagonal weak neighbour
        labels[2 * cols + 3] = 1.0; // chained weak
        labels[4 * cols + 6] = 1.0; // isolated weak
        let edges = crate::hysteresis(&labels, rows, cols);
        assert_eq!(edges[cols + 1], 1);
        assert_eq!(edges[2 * cols + 2], 1);
        assert_eq!(edges[2 * cols + 3], 1);
        assert_eq!(edges[4 * cols + 6], 0, "isolated weak pixels are culled");
    }

    #[test]
    fn boundary_modes_differ_at_the_border() {
        let img = crate::test_image(7, 7);
        let n = blur_sobel(&img, 7, 7, Boundary2D::Neumann);
        let z = blur_sobel(&img, 7, 7, Boundary2D::Zero);
        assert_ne!(n, z, "zero boundary invents edges at the border");
    }
}
