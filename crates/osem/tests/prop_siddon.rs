//! Property-based tests for the Siddon ray tracer and the OSEM math —
//! the geometric invariants every reconstruction variant depends on.

use proptest::prelude::*;
use skelcl_osem::geometry::Volume;
use skelcl_osem::siddon::{compute_path, for_each_voxel};

fn vol_strategy() -> impl Strategy<Value = Volume> {
    (2usize..24, 2usize..24, 2usize..24, 1u32..6)
        .prop_map(|(nx, ny, nz, v)| Volume::new(nx, ny, nz, v as f32))
}

fn point_strategy() -> impl Strategy<Value = [f32; 3]> {
    [-120.0f32..120.0, -120.0f32..120.0, -120.0f32..120.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    // Σ chord lengths equals the segment length clipped to the volume box
    // (verified against dense numerical integration).
    #[test]
    fn chord_length_conservation(vol in vol_strategy(), a in point_strategy(), b in point_strategy()) {
        let mut total = 0.0f64;
        for_each_voxel(&vol, a, b, |_, l| total += l as f64);

        // Reference by sampling.
        let steps = 4000;
        let min = vol.world_min();
        let h = vol.half_extent();
        let mut inside = 0usize;
        for s in 0..steps {
            let t = (s as f32 + 0.5) / steps as f32;
            let p = [
                a[0] + t * (b[0] - a[0]),
                a[1] + t * (b[1] - a[1]),
                a[2] + t * (b[2] - a[2]),
            ];
            if p[0] > min[0] && p[0] < h[0]
                && p[1] > min[1] && p[1] < h[1]
                && p[2] > min[2] && p[2] < h[2]
            {
                inside += 1;
            }
        }
        let d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
        let seg = ((d[0] * d[0] + d[1] * d[1] + d[2] * d[2]) as f64).sqrt();
        let want = seg * inside as f64 / steps as f64;
        let tol = want * 0.02 + seg * 0.002 + 0.01;
        prop_assert!((total - want).abs() <= tol, "got {total}, want {want}, tol {tol}");
    }

    // Every visited voxel is unique, in bounds, with a positive length no
    // greater than the voxel diagonal; the count respects max_path_len.
    #[test]
    fn path_elements_are_sane(vol in vol_strategy(), a in point_strategy(), b in point_strategy()) {
        let path = compute_path(&vol, a, b);
        prop_assert!(path.len() <= vol.max_path_len());
        let diag = vol.voxel_mm * 3.0f32.sqrt() + 1e-3;
        let mut seen = std::collections::HashSet::new();
        for e in &path {
            prop_assert!((e.coord as usize) < vol.n_voxels());
            prop_assert!(e.len > 0.0);
            prop_assert!(e.len <= diag, "len {} > diagonal {}", e.len, diag);
            prop_assert!(seen.insert(e.coord), "voxel visited twice");
        }
    }

    // Traversal is symmetric: a→b and b→a visit the same voxels with the
    // same lengths (order reversed).
    #[test]
    fn traversal_is_symmetric(vol in vol_strategy(), a in point_strategy(), b in point_strategy()) {
        let fwd = compute_path(&vol, a, b);
        let mut bwd = compute_path(&vol, b, a);
        bwd.reverse();
        prop_assert_eq!(fwd.len(), bwd.len());
        for (f, r) in fwd.iter().zip(&bwd) {
            prop_assert_eq!(f.coord, r.coord);
            prop_assert!((f.len - r.len).abs() < vol.voxel_mm * 0.02 + 1e-3,
                "asymmetric lengths {} vs {}", f.len, r.len);
        }
    }

    // Rays whose both endpoints are far outside on the same side miss.
    #[test]
    fn rays_beside_the_box_miss(vol in vol_strategy(), y in 200.0f32..400.0, z in -50.0f32..50.0) {
        let path = compute_path(&vol, [-200.0, y, z], [200.0, y, z]);
        prop_assert!(path.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    // Event endpoints always land on the scanner cylinder barrel.
    #[test]
    fn events_on_the_detector(seed in 0u64..1000) {
        let vol = Volume::test_scale();
        let scanner = skelcl_osem::Scanner::enclosing(&vol);
        let mut generator = skelcl_osem::EventGenerator::new(&vol, seed);
        for e in generator.events(20) {
            for p in [e.p1(), e.p2()] {
                let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
                prop_assert!((r - scanner.radius_mm).abs() < scanner.radius_mm * 1e-3);
                prop_assert!(p[2].abs() <= scanner.half_z_mm + 1e-3);
            }
        }
    }
}
