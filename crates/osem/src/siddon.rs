//! Ray–voxel intersection: the path of a line of response through the
//! volume ("compute path of LOR" in the paper's Listing 3).
//!
//! An Amanatides–Woo / Siddon-style traversal: clip the segment against the
//! volume box, then walk voxel boundaries axis by axis, emitting
//! `(voxel_index, intersection_length)` pairs. Every OSEM variant —
//! sequential, SkelCL, OpenCL, CUDA — shares this routine, so differences
//! between variants are runtime differences, not math differences.

use crate::geometry::Volume;

/// One path element: voxel index + chord length inside that voxel
/// (the `path[m].coord` / `path[m].len` of the paper's Listing 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathElem {
    pub coord: u32,
    pub len: f32,
}

/// Model cost of one traversal step (three boundary comparisons, axis
/// selection, index update, length/parameter arithmetic, loop overhead) in
/// scalar operations — charged by the GPU kernels per visited voxel, on top
/// of the per-element memory traffic. Together with the uncoalesced-access
/// traffic constants in the crate root this places the OSEM kernel between
/// the memory- and compute-bound roofline regimes, which is where the
/// paper's reported CUDA-vs-OpenCL gap (~20 %, vs ~39 % for the fully
/// compute-bound Mandelbrot) locates it.
pub const OPS_PER_VISIT: u64 = 20;

/// Walk the voxels intersected by segment `a`→`b`, calling
/// `visit(linear_voxel_index, length_mm)` for each. Returns the number of
/// visited voxels.
pub fn for_each_voxel(
    vol: &Volume,
    a: [f32; 3],
    b: [f32; 3],
    mut visit: impl FnMut(usize, f32),
) -> usize {
    let min = vol.world_min();
    let dims = vol.dims();
    let vox = vol.voxel_mm;

    let d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
    let seg_len = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
    if seg_len <= f32::EPSILON {
        return 0;
    }

    // Clip parameter range [t0, t1] ⊆ [0, 1] against the volume slabs.
    let mut t0 = 0.0f32;
    let mut t1 = 1.0f32;
    for ax in 0..3 {
        let lo = min[ax];
        let hi = min[ax] + dims[ax] as f32 * vox;
        if d[ax].abs() < 1e-12 {
            if a[ax] < lo || a[ax] > hi {
                return 0;
            }
        } else {
            let ta = (lo - a[ax]) / d[ax];
            let tb = (hi - a[ax]) / d[ax];
            let (tn, tf) = if ta < tb { (ta, tb) } else { (tb, ta) };
            t0 = t0.max(tn);
            t1 = t1.min(tf);
        }
    }
    if t0 >= t1 {
        return 0;
    }

    // Entry voxel.
    let mut idx = [0isize; 3];
    let entry_t = t0 + 1e-7 * (t1 - t0);
    for ax in 0..3 {
        let p = a[ax] + entry_t * d[ax];
        let i = ((p - min[ax]) / vox).floor() as isize;
        idx[ax] = i.clamp(0, dims[ax] as isize - 1);
    }

    // Per-axis stepping state.
    let mut step = [0isize; 3];
    let mut t_next = [f32::INFINITY; 3];
    let mut dt = [f32::INFINITY; 3];
    for ax in 0..3 {
        if d[ax] > 1e-12 {
            step[ax] = 1;
            let boundary = min[ax] + (idx[ax] + 1) as f32 * vox;
            t_next[ax] = (boundary - a[ax]) / d[ax];
            dt[ax] = vox / d[ax];
        } else if d[ax] < -1e-12 {
            step[ax] = -1;
            let boundary = min[ax] + idx[ax] as f32 * vox;
            t_next[ax] = (boundary - a[ax]) / d[ax];
            dt[ax] = -vox / d[ax];
        }
    }

    let mut t_cur = t0;
    let mut visited = 0usize;
    loop {
        // Which boundary comes first?
        let mut ax_min = 0;
        if t_next[1] < t_next[ax_min] {
            ax_min = 1;
        }
        if t_next[2] < t_next[ax_min] {
            ax_min = 2;
        }
        let t_exit = t_next[ax_min].min(t1);
        let len = (t_exit - t_cur) * seg_len;
        if len > 0.0 {
            let lin = vol.linear(idx[0] as usize, idx[1] as usize, idx[2] as usize);
            visit(lin, len);
            visited += 1;
        }
        if t_exit >= t1 - 1e-9 {
            break;
        }
        t_cur = t_exit;
        idx[ax_min] += step[ax_min];
        if idx[ax_min] < 0 || idx[ax_min] >= dims[ax_min] as isize {
            break;
        }
        t_next[ax_min] += dt[ax_min];
    }
    visited
}

/// Collect the full path (the sequential reference uses this; the GPU
/// kernels stream through [`for_each_voxel`] twice instead).
pub fn compute_path(vol: &Volume, a: [f32; 3], b: [f32; 3]) -> Vec<PathElem> {
    let mut path = Vec::with_capacity(64);
    for_each_voxel(vol, a, b, |coord, len| {
        path.push(PathElem {
            coord: coord as u32,
            len,
        });
    });
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total_len(vol: &Volume, a: [f32; 3], b: [f32; 3]) -> f32 {
        let mut sum = 0.0;
        for_each_voxel(vol, a, b, |_, l| sum += l);
        sum
    }

    #[test]
    fn axis_aligned_ray_crosses_every_voxel_in_a_row() {
        let vol = Volume::new(8, 8, 8, 1.0);
        // Along +x through the centre of a voxel row.
        let a = [-10.0, 0.5 - 4.0 + 4.0, 0.5 - 4.0 + 4.0]; // y = z = 0.5 offset
        let a = [a[0], -3.5, -3.5];
        let b = [10.0, -3.5, -3.5];
        let path = compute_path(&vol, a, b);
        assert_eq!(path.len(), 8);
        for (i, e) in path.iter().enumerate() {
            assert_eq!(e.coord as usize, vol.linear(i, 0, 0));
            assert!((e.len - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn length_is_conserved_for_diagonals() {
        let vol = Volume::new(10, 10, 10, 2.0);
        // Full body diagonal: enters at one corner, exits the other.
        let a = [-30.0, -30.0, -30.0];
        let b = [30.0, 30.0, 30.0];
        // Chord inside the box: the box spans [-10, 10]^3 -> diagonal
        // 20*sqrt(3).
        let want = 20.0f32 * 3.0f32.sqrt();
        let got = total_len(&vol, a, b);
        assert!((got - want).abs() < 1e-2, "got {got}, want {want}");
    }

    #[test]
    fn ray_missing_the_volume_visits_nothing() {
        let vol = Volume::new(8, 8, 8, 1.0);
        assert_eq!(
            compute_path(&vol, [-10.0, 20.0, 0.0], [10.0, 20.0, 0.0]).len(),
            0
        );
        assert_eq!(
            compute_path(&vol, [5.0, 5.0, 100.0], [5.0, 5.0, 50.0]).len(),
            0
        );
    }

    #[test]
    fn degenerate_segment_is_empty() {
        let vol = Volume::new(8, 8, 8, 1.0);
        assert_eq!(compute_path(&vol, [0.0; 3], [0.0; 3]).len(), 0);
    }

    #[test]
    fn segment_fully_inside_uses_its_own_length() {
        let vol = Volume::new(8, 8, 8, 1.0);
        let a = [-1.3, 0.2, 0.2];
        let b = [1.7, 0.2, 0.2];
        let got = total_len(&vol, a, b);
        assert!((got - 3.0).abs() < 1e-4, "got {got}");
    }

    #[test]
    fn all_visited_voxels_are_in_bounds_and_unique() {
        let vol = Volume::new(16, 12, 9, 1.5);
        let rays = [
            ([-100.0, 3.0, 2.0], [100.0, -4.0, -1.0]),
            ([0.1, -100.0, 0.3], [-0.2, 100.0, 3.0]),
            ([-30.0, -30.0, -10.0], [30.0, 25.0, 9.0]),
        ];
        for (a, b) in rays {
            let path = compute_path(&vol, a, b);
            assert!(!path.is_empty());
            let mut seen = std::collections::HashSet::new();
            for e in &path {
                assert!((e.coord as usize) < vol.n_voxels());
                assert!(e.len > 0.0);
                assert!(
                    e.len <= vol.voxel_mm * 3.0f32.sqrt() + 1e-3,
                    "chord through one voxel cannot exceed its diagonal"
                );
                assert!(seen.insert(e.coord), "voxel visited twice");
            }
        }
    }

    #[test]
    fn conservation_for_many_random_rays() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let vol = Volume::new(20, 17, 13, 1.0);
        for _ in 0..200 {
            let a = [
                rng.gen_range(-40.0f32..40.0),
                rng.gen_range(-40.0f32..40.0),
                rng.gen_range(-40.0f32..40.0),
            ];
            let b = [
                rng.gen_range(-40.0f32..40.0),
                rng.gen_range(-40.0f32..40.0),
                rng.gen_range(-40.0f32..40.0),
            ];
            // Reference: numerically integrate by dense sampling.
            let steps = 20_000;
            let mut inside = 0usize;
            let min = vol.world_min();
            let h = vol.half_extent();
            for s in 0..steps {
                let t = (s as f32 + 0.5) / steps as f32;
                let p = [
                    a[0] + t * (b[0] - a[0]),
                    a[1] + t * (b[1] - a[1]),
                    a[2] + t * (b[2] - a[2]),
                ];
                if p[0] > min[0]
                    && p[0] < h[0]
                    && p[1] > min[1]
                    && p[1] < h[1]
                    && p[2] > min[2]
                    && p[2] < h[2]
                {
                    inside += 1;
                }
            }
            let d = [b[0] - a[0], b[1] - a[1], b[2] - a[2]];
            let seg = (d[0] * d[0] + d[1] * d[1] + d[2] * d[2]).sqrt();
            let want = seg * inside as f32 / steps as f32;
            let got = total_len(&vol, a, b);
            assert!(
                (got - want).abs() < want.max(1.0) * 0.01 + 0.05,
                "got {got}, want {want}"
            );
        }
    }
}
