//! List-mode OSEM with SkelCL — a transcription of the paper's Listing 4.
//!
//! Per subset:
//! 1. the events are put in a `Vector` and **block**-distributed;
//! 2. reconstruction image `f` and error image `c` are **copy**-distributed
//!    (one full copy per device);
//! 3. a `Map` skeleton over a vector of indices computes the error image —
//!    each index processes a sub-subset of the device-local events, with
//!    events, path scratch, `f` and `c` passed as *additional arguments*;
//!    the skeleton "produces no result, but updates the error image by
//!    side-effect", so `c` is flagged with `dataOnDevicesModified`;
//! 4. the per-device copies of `c` are merged by redistributing to
//!    **block with the add operator**, `f` is block-distributed;
//! 5. a `Zip` skeleton updates the reconstruction image.

use crate::geometry::{Event, Volume};
use crate::siddon::{self, OPS_PER_VISIT};
use crate::{UNCOALESCED_ATOMIC_EXTRA, UNCOALESCED_READ_EXTRA};
use skelcl::{Arguments, Context, Distribution, KernelEnv, MapVoid, Result, UserFn, Vector, Zip};

/// Indices (and thus concurrent path computations) per device — the paper:
/// "the input of the Map skeleton is not a subset, but rather a vector of
/// 512 indices. These indices refer to disjoint sub-subsets of events [...]
/// we must not compute too many paths in parallel to avoid excessive
/// memory consumption."
pub const INDICES_PER_DEVICE: usize = 512;

/// The error-image kernel source a SkelCL user writes (abridged from the
/// ~200-line original; counted as this variant's kernel share).
// >>> kernel
pub const COMPUTE_C_KERNEL: &str = r#"
void compute_c(uint index, __global const Event* events, uint num_events,
               __global ulong* paths, __global const float* f,
               __global float* c, uint indices_per_device) {
    uint local_index = index % indices_per_device;
    uint chunk = (num_events + indices_per_device - 1) / indices_per_device;
    uint begin = local_index * chunk;
    uint end = min(begin + chunk, num_events);
    for (uint e = begin; e < end; ++e) {
        /* compute path of LOR (Siddon traversal) */
        uint path_len = 0;
        float fp = 0.0f;
        ulong* my_path = paths + local_index * MAX_PATH;
        TRAVERSE_LOR(events[e], my_path, &path_len);
        /* compute error (forward projection) */
        for (uint m = 0; m < path_len; ++m)
            fp += f[PATH_COORD(my_path[m])] * PATH_LEN(my_path[m]);
        /* add path to error image */
        if (fp > 0.0f)
            for (uint m = 0; m < path_len; ++m)
                atomic_add_f(&c[PATH_COORD(my_path[m])], PATH_LEN(my_path[m]) / fp);
    }
}
"#;
// <<< kernel

/// The update kernel source (the Zip customizing function; "resembles the
/// body of the second inner loop of the sequential implementation").
// >>> kernel
pub const UPDATE_KERNEL: &str =
    "float update(float f, float c) { if (c > 0.0f) return f * c; return f; }";
// <<< kernel

/// Pack a path element into the scratch word.
#[inline]
pub fn pack_path_elem(coord: usize, len: f32) -> u64 {
    ((coord as u64) << 32) | len.to_bits() as u64
}

/// Unpack a scratch word.
#[inline]
pub fn unpack_path_elem(w: u64) -> (usize, f32) {
    ((w >> 32) as usize, f32::from_bits(w as u32))
}

/// Reconstruct with SkelCL on every device of `ctx`.
pub fn reconstruct(ctx: &Context, vol: &Volume, subsets: &[Vec<Event>]) -> Result<Vec<f32>> {
    let n_devices = ctx.n_devices();
    let image_size = vol.n_voxels();
    let max_path = vol.max_path_len();
    let volume = *vol;

    // create skeletons
    let compute_c = MapVoid::new(
        // >>> kernel
        UserFn::new(
            "compute_c",
            COMPUTE_C_KERNEL,
            move |index: u32, env: &KernelEnv<'_>| {
                let events = env.vec::<Event>(0);
                let _num_events_global = env.scalar::<u32>(1);
                let paths = env.vec::<u64>(2);
                let f = env.vec::<f32>(3);
                let c = env.vec::<f32>(4);
                let ipd = env.scalar::<u32>(5) as usize;

                let local_index = index as usize % ipd;
                let num_events = events.len();
                let chunk = num_events.div_ceil(ipd);
                let begin = (local_index * chunk).min(num_events);
                let end = (begin + chunk).min(num_events);
                let scratch_base = local_index * max_path;

                for e in begin..end {
                    let ev = events.get(e);
                    // compute path of LOR + forward projection
                    let mut path_len = 0usize;
                    let mut fp = 0.0f32;
                    siddon::for_each_voxel(&volume, ev.p1(), ev.p2(), |coord, len| {
                        if path_len < max_path {
                            paths.set(scratch_base + path_len, pack_path_elem(coord, len));
                            env.work(OPS_PER_VISIT);
                            // scattered read of f[coord]: full segment moves
                            fp += f.get(coord) * len;
                            env.traffic_read(UNCOALESCED_READ_EXTRA);
                            path_len += 1;
                        }
                    });
                    // add path to error image
                    if fp > 0.0 {
                        for m in 0..path_len {
                            let (coord, len) = unpack_path_elem(paths.get(scratch_base + m));
                            env.work(OPS_PER_VISIT);
                            c.atomic_add(coord, len / fp);
                            env.traffic_write(UNCOALESCED_ATOMIC_EXTRA);
                        }
                    }
                }
            },
        ),
        // <<< kernel
        6,
    );
    let update = Zip::new(UserFn::new(
        "update",
        UPDATE_KERNEL,
        // >>> kernel
        |f: f32, c: f32| if c > 0.0 { f * c } else { f },
        // <<< kernel
    ));
    let add = skelcl::skel_fn!(
        fn add(x: f32, y: f32) -> f32 {
            x + y
        }
    );

    // reconstruction image f, path scratch, index vector
    let mut f = Vector::from_vec(ctx, vec![1.0f32; image_size]);
    let paths: Vector<u64> = Vector::zeroed(ctx, INDICES_PER_DEVICE * max_path);
    paths.set_distribution(Distribution::Copy)?;
    let indices = Vector::from_vec(
        ctx,
        (0..(INDICES_PER_DEVICE * n_devices) as u32).collect::<Vec<u32>>(),
    );
    indices.set_distribution(Distribution::Block)?;

    for subset in subsets {
        // read events from file; distribute events to devices
        let events = Vector::from_vec(ctx, subset.clone());
        events.set_distribution(Distribution::Block)?;

        // copy reconstruction (f) and error image (c) to all devices
        f.set_distribution(Distribution::Copy)?;
        let c = Vector::from_vec(ctx, vec![0.0f32; image_size]);
        c.set_distribution(Distribution::Copy)?;

        // prepare arguments of error image computation
        let mut arguments = Arguments::new();
        arguments.push(&events);
        arguments.push(subset.len() as u32);
        arguments.push(&paths); // memory for paths
        arguments.push(&f);
        arguments.push(&c);
        arguments.push(INDICES_PER_DEVICE as u32);

        // compute error image (map skeleton)
        compute_c.apply(&indices, &arguments)?;
        // signal modification of error image
        c.mark_devices_modified();

        // distribute reconstruction image to all devices
        f.set_distribution(Distribution::Block)?;
        // reduce (element-wise add) all copies of error image;
        // re-distribute after reduction
        c.set_distribution_with(Distribution::Block, &add)?;

        // update reconstruction image (zip skeleton)
        f = update.apply(&f, &c)?;
    }
    f.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventGenerator;
    use crate::metrics;
    use skelcl::ContextConfig;

    fn test_ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("osem-skelcl-test"),
        )
    }

    #[test]
    fn matches_the_sequential_reference_single_device() {
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 21);
        let subsets = generator.subsets(4000, 2);
        let seq = crate::seq::reconstruct(&vol, &subsets);
        let ctx = test_ctx(1);
        let got = reconstruct(&ctx, &vol, &subsets).unwrap();
        let diff = metrics::relative_l2(&got, &seq);
        assert!(diff < 1e-4, "relative diff {diff}");
    }

    #[test]
    fn matches_the_sequential_reference_multi_device() {
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 22);
        let subsets = generator.subsets(4000, 2);
        let seq = crate::seq::reconstruct(&vol, &subsets);
        for n in [2usize, 4] {
            let ctx = test_ctx(n);
            let got = reconstruct(&ctx, &vol, &subsets).unwrap();
            let diff = metrics::relative_l2(&got, &seq);
            assert!(diff < 1e-3, "{n} devices: relative diff {diff}");
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        for (coord, len) in [(0usize, 0.0f32), (12345, 1.5), (1 << 20, 0.001)] {
            let (c2, l2) = unpack_path_elem(pack_path_elem(coord, len));
            assert_eq!(c2, coord);
            assert_eq!(l2, len);
        }
    }

    #[test]
    fn multi_gpu_runs_faster_in_virtual_time() {
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 23);
        let subsets = generator.subsets(8000, 2);

        let ctx1 = test_ctx(1);
        reconstruct(&ctx1, &vol, &subsets).unwrap(); // warm cache
        ctx1.platform().reset_clocks();
        reconstruct(&ctx1, &vol, &subsets).unwrap();
        ctx1.sync();
        let t1 = ctx1.host_now_s();

        let ctx4 = test_ctx(4);
        reconstruct(&ctx4, &vol, &subsets).unwrap();
        ctx4.platform().reset_clocks();
        reconstruct(&ctx4, &vol, &subsets).unwrap();
        ctx4.sync();
        let t4 = ctx4.host_now_s();

        assert!(t4 < t1, "4 virtual GPUs must beat 1: t1={t1} t4={t4}");
    }
}
