//! List-mode OSEM hand-written against the OpenCL host API.
//!
//! Paper Section IV-B-1: "Both, CUDA and OpenCL, require us to add a
//! considerable amount of boilerplate code for running a kernel on multiple
//! GPUs, in particular for uploading and downloading data to and from the
//! GPUs." This file is that boilerplate: per-device queues and buffers,
//! per-subset uploads of `f` and a zeroed `c` to every device, explicit
//! event partitioning, host-staged merging of the per-device error images,
//! ranged uploads/downloads for the update step.

use crate::geometry::{Event, Volume};
use crate::siddon::{self, OPS_PER_VISIT};
use crate::skelcl_impl::{pack_path_elem, unpack_path_elem, INDICES_PER_DEVICE};
use crate::{block_split, UNCOALESCED_ATOMIC_EXTRA, UNCOALESCED_READ_EXTRA};
use skelcl_baselines::opencl::*;
use std::sync::Arc;
use vgpu::{Platform, Result, WorkGroup};

/// The `compute_c` kernel source passed to `clCreateProgramWithSource`.
// >>> kernel
pub const COMPUTE_C_KERNEL: &str = r#"
__kernel void compute_c(__global const Event* events, const uint num_events,
                        __global ulong* paths, __global const float* f,
                        __global float* c) {
    uint tid = get_global_id(0);
    uint threads = get_global_size(0);
    uint chunk = (num_events + threads - 1) / threads;
    uint begin = min(tid * chunk, num_events);
    uint end = min(begin + chunk, num_events);
    for (uint e = begin; e < end; ++e) {
        uint path_len = 0;
        float fp = 0.0f;
        __global ulong* my_path = paths + tid * MAX_PATH;
        TRAVERSE_LOR(events[e], my_path, &path_len);
        for (uint m = 0; m < path_len; ++m)
            fp += f[PATH_COORD(my_path[m])] * PATH_LEN(my_path[m]);
        if (fp > 0.0f)
            for (uint m = 0; m < path_len; ++m)
                atomic_add_f(&c[PATH_COORD(my_path[m])], PATH_LEN(my_path[m]) / fp);
    }
}
"#;
// <<< kernel

/// The update kernel source.
// >>> kernel
pub const UPDATE_KERNEL: &str = r#"
__kernel void update(__global float* f, __global const float* c,
                     const uint offset, const uint len) {
    uint i = get_global_id(0);
    if (i < len) {
        float cv = c[i];
        if (cv > 0.0f) f[offset + i] = f[offset + i] * cv;
    }
}
"#;
// <<< kernel

/// Reconstruct with raw OpenCL on every device of the platform.
pub fn reconstruct(platform: &Platform, vol: &Volume, subsets: &[Vec<Event>]) -> Result<Vec<f32>> {
    let image_size = vol.n_voxels();
    let max_path = vol.max_path_len();
    let volume = *vol;
    let threads = INDICES_PER_DEVICE;

    // -- initialization: context and one queue per device ----------------
    let platform_ids = cl_get_platform_ids(platform);
    let device_ids = cl_get_device_ids_for(platform, platform_ids[0]);
    let n_devices = device_ids.len();
    let context = cl_create_context(platform, &device_ids)?;
    let mut queues = Vec::with_capacity(n_devices);
    for &d in &device_ids {
        queues.push(cl_create_command_queue(&context, d)?);
    }

    // -- per-device memory objects ----------------------------------------
    let subset_len = subsets.first().map(|s| s.len()).unwrap_or(0);
    let mut f_bufs = Vec::new();
    let mut c_bufs = Vec::new();
    let mut paths_bufs = Vec::new();
    let mut event_bufs = Vec::new();
    for &d in &device_ids {
        f_bufs.push(cl_create_buffer::<f32>(&context, d, image_size)?);
        c_bufs.push(cl_create_buffer::<f32>(&context, d, image_size)?);
        paths_bufs.push(cl_create_buffer::<u64>(&context, d, threads * max_path)?);
        event_bufs.push(cl_create_buffer::<Event>(&context, d, subset_len)?);
    }

    // -- build programs ----------------------------------------------------
    let compute_program =
        cl_create_program_with_source(&context, "osem_compute_c", COMPUTE_C_KERNEL);
    cl_build_program(&queues[0], &compute_program)?;
    let compute_log = cl_get_program_build_log(&compute_program);
    if !compute_log.contains("successful") {
        panic!("compute_c build failed: {compute_log}");
    }
    let update_program = cl_create_program_with_source(&context, "osem_update", UPDATE_KERNEL);
    cl_build_program(&queues[0], &update_program)?;
    let update_log = cl_get_program_build_log(&update_program);
    if !update_log.contains("successful") {
        panic!("update build failed: {update_log}");
    }

    // -- create kernels (one per device: argument slots are per object) ----
    // >>> kernel
    let compute_body: ClKernelBody = Arc::new(move |wg: &WorkGroup, args: &ClArgs| {
        let events = args.buf::<Event>(0);
        let num_events = args.scalar::<u32>(1) as usize;
        let paths = args.buf::<u64>(2);
        let f = args.buf::<f32>(3);
        let c = args.buf::<f32>(4);
        let threads_total = wg.num_groups(0) * wg.local_size(0);
        let chunk = num_events.div_ceil(threads_total);
        wg.for_each_item(|it| {
            if !it.in_bounds() {
                return;
            }
            let tid = it.global_id(0);
            let begin = (tid * chunk).min(num_events);
            let end = (begin + chunk).min(num_events);
            let scratch_base = tid * max_path;
            for e in begin..end {
                let ev = it.read(events, e);
                let mut path_len = 0usize;
                let mut fp = 0.0f32;
                siddon::for_each_voxel(&volume, ev.p1(), ev.p2(), |coord, len| {
                    if path_len < max_path {
                        it.write(paths, scratch_base + path_len, pack_path_elem(coord, len));
                        it.work(OPS_PER_VISIT);
                        fp += it.read(f, coord) * len;
                        it.traffic_read(UNCOALESCED_READ_EXTRA);
                        path_len += 1;
                    }
                });
                if fp > 0.0 {
                    for m in 0..path_len {
                        let (coord, len) = unpack_path_elem(it.read(paths, scratch_base + m));
                        it.work(OPS_PER_VISIT);
                        it.atomic_add_f32(c, coord, len / fp);
                        it.traffic_write(UNCOALESCED_ATOMIC_EXTRA);
                    }
                }
            }
        });
    });
    // <<< kernel
    // >>> kernel
    let update_body: ClKernelBody = Arc::new(|wg: &WorkGroup, args: &ClArgs| {
        let f = args.buf::<f32>(0);
        let c = args.buf::<f32>(1);
        let offset = args.scalar::<u32>(2) as usize;
        let len = args.scalar::<u32>(3) as usize;
        wg.for_each_item(|it| {
            if !it.in_bounds() {
                return;
            }
            let i = it.global_id(0);
            if i < len {
                let cv = it.read(c, i);
                if cv > 0.0 {
                    let fv = it.read(f, offset + i);
                    it.write(f, offset + i, fv * cv);
                    it.work(2);
                }
            }
        });
    });
    // <<< kernel
    let mut compute_kernels = Vec::new();
    let mut update_kernels = Vec::new();
    for _ in 0..n_devices {
        compute_kernels.push(cl_create_kernel(
            &compute_program,
            Arc::clone(&compute_body),
        )?);
        update_kernels.push(cl_create_kernel(&update_program, Arc::clone(&update_body))?);
    }

    // -- the OSEM loop ------------------------------------------------------
    let mut f_host = vec![1.0f32; image_size];
    let zeros = vec![0.0f32; image_size];
    let blocks = block_split(image_size, n_devices);

    for subset in subsets {
        // partition events into one block per device and upload
        let event_blocks = block_split(subset.len(), n_devices);
        for d in 0..n_devices {
            let (off, len) = event_blocks[d];
            cl_enqueue_write_buffer_range(&queues[d], &event_bufs[d], 0, &subset[off..off + len])?;
            // upload current reconstruction and a cleared error image
            cl_enqueue_write_buffer(&queues[d], &f_bufs[d], &f_host)?;
            cl_enqueue_write_buffer(&queues[d], &c_bufs[d], &zeros)?;
        }

        // launch the error-image kernel on every device
        for d in 0..n_devices {
            let (_, len) = event_blocks[d];
            cl_set_kernel_arg_mem(&compute_kernels[d], 0, &event_bufs[d]);
            cl_set_kernel_arg_scalar(&compute_kernels[d], 1, len as u32);
            cl_set_kernel_arg_mem(&compute_kernels[d], 2, &paths_bufs[d]);
            cl_set_kernel_arg_mem(&compute_kernels[d], 3, &f_bufs[d]);
            cl_set_kernel_arg_mem(&compute_kernels[d], 4, &c_bufs[d]);
            cl_enqueue_nd_range_kernel(&queues[d], &compute_kernels[d], threads, 256)?;
        }
        for q in &queues {
            cl_finish(q);
        }

        // download every device's error image and merge on the host
        let mut c_host = vec![0.0f32; image_size];
        let mut c_tmp = vec![0.0f32; image_size];
        for d in 0..n_devices {
            cl_enqueue_read_buffer(&queues[d], &c_bufs[d], &mut c_tmp)?;
            for (acc, v) in c_host.iter_mut().zip(&c_tmp) {
                *acc += *v;
            }
        }

        // update each device's block of the reconstruction image
        for d in 0..n_devices {
            let (off, len) = blocks[d];
            if len == 0 {
                continue;
            }
            cl_enqueue_write_buffer_range(&queues[d], &c_bufs[d], 0, &c_host[off..off + len])?;
            cl_set_kernel_arg_mem(&update_kernels[d], 0, &f_bufs[d]);
            cl_set_kernel_arg_mem(&update_kernels[d], 1, &c_bufs[d]);
            cl_set_kernel_arg_scalar(&update_kernels[d], 2, off as u32);
            cl_set_kernel_arg_scalar(&update_kernels[d], 3, len as u32);
            cl_enqueue_nd_range_kernel(
                &queues[d],
                &update_kernels[d],
                len.next_multiple_of(256),
                256,
            )?;
        }
        for q in &queues {
            cl_finish(q);
        }
        // download the updated blocks back into the host image
        for d in 0..n_devices {
            let (off, len) = blocks[d];
            if len == 0 {
                continue;
            }
            cl_enqueue_read_buffer_range(&queues[d], &f_bufs[d], off, &mut f_host[off..off + len])?;
        }
    }

    // -- explicit teardown, every object, in reverse creation order -------
    for k in compute_kernels {
        cl_release_kernel(k);
    }
    for k in update_kernels {
        cl_release_kernel(k);
    }
    cl_release_program(compute_program);
    cl_release_program(update_program);
    for m in f_bufs {
        cl_release_mem_object(m);
    }
    for m in c_bufs {
        cl_release_mem_object(m);
    }
    for m in paths_bufs {
        cl_release_mem_object(m);
    }
    for m in event_bufs {
        cl_release_mem_object(m);
    }
    for q in queues {
        cl_release_command_queue(q);
    }
    cl_release_context(context);
    Ok(f_host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventGenerator;
    use crate::metrics;
    use vgpu::{DeviceSpec, PlatformConfig};

    fn platform(n: usize) -> Platform {
        Platform::new(
            PlatformConfig::default()
                .devices(n)
                .spec(DeviceSpec::tiny())
                .cache_tag("osem-opencl-test"),
        )
    }

    #[test]
    fn matches_the_sequential_reference() {
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 31);
        let subsets = generator.subsets(4000, 2);
        let seq = crate::seq::reconstruct(&vol, &subsets);
        for n in [1usize, 3] {
            let p = platform(n);
            let got = reconstruct(&p, &vol, &subsets).unwrap();
            let diff = metrics::relative_l2(&got, &seq);
            assert!(diff < 1e-3, "{n} devices: relative diff {diff}");
        }
    }
}
