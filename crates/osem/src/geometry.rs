//! Scanner and image-volume geometry for the synthetic PET setup.
//!
//! The paper reconstructs a 150×150×280 image from list-mode events
//! recorded by a PET scanner. We model a cylindrical detector ring around
//! a centred voxel volume; events are lines of response (LORs) between two
//! detection points on the cylinder.

/// The reconstruction volume: `nx × ny × nz` cubic voxels centred at the
/// world origin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Volume {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
    /// Voxel edge length in millimetres.
    pub voxel_mm: f32,
}

impl Volume {
    pub fn new(nx: usize, ny: usize, nz: usize, voxel_mm: f32) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Volume {
            nx,
            ny,
            nz,
            voxel_mm,
        }
    }

    /// The paper's image size.
    pub fn paper_scale() -> Self {
        Volume::new(150, 150, 280, 2.0)
    }

    /// Reduced size for benchmarking.
    pub fn bench_scale() -> Self {
        Volume::new(48, 48, 48, 4.0)
    }

    /// Tiny size for unit tests.
    pub fn test_scale() -> Self {
        Volume::new(16, 16, 16, 8.0)
    }

    pub fn n_voxels(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// World-space half extents (volume is centred at the origin).
    pub fn half_extent(&self) -> [f32; 3] {
        [
            self.nx as f32 * self.voxel_mm / 2.0,
            self.ny as f32 * self.voxel_mm / 2.0,
            self.nz as f32 * self.voxel_mm / 2.0,
        ]
    }

    /// Lower corner of the volume in world space.
    pub fn world_min(&self) -> [f32; 3] {
        let h = self.half_extent();
        [-h[0], -h[1], -h[2]]
    }

    pub fn dims(&self) -> [usize; 3] {
        [self.nx, self.ny, self.nz]
    }

    /// Linear voxel index (x fastest, matching the C convention).
    #[inline]
    pub fn linear(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.nx && iy < self.ny && iz < self.nz);
        (iz * self.ny + iy) * self.nx + ix
    }

    /// World position of a voxel's centre.
    pub fn voxel_center(&self, ix: usize, iy: usize, iz: usize) -> [f32; 3] {
        let min = self.world_min();
        [
            min[0] + (ix as f32 + 0.5) * self.voxel_mm,
            min[1] + (iy as f32 + 0.5) * self.voxel_mm,
            min[2] + (iz as f32 + 0.5) * self.voxel_mm,
        ]
    }

    /// An upper bound on the number of voxels any straight line can cross.
    pub fn max_path_len(&self) -> usize {
        self.nx + self.ny + self.nz + 3
    }
}

/// The detector: a cylinder of radius `radius_mm` (transaxial) and half
/// length `half_z_mm` (axial), enclosing the volume.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scanner {
    pub radius_mm: f32,
    pub half_z_mm: f32,
}

impl Scanner {
    /// A scanner that comfortably encloses `vol`.
    pub fn enclosing(vol: &Volume) -> Self {
        let h = vol.half_extent();
        let r = (h[0] * h[0] + h[1] * h[1]).sqrt() * 1.3;
        Scanner {
            radius_mm: r,
            half_z_mm: h[2] * 1.6 + vol.voxel_mm,
        }
    }
}

/// One list-mode event: the two detection points of a positron
/// annihilation's photon pair — the line of response (LOR).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Event {
    pub x1: f32,
    pub y1: f32,
    pub z1: f32,
    pub x2: f32,
    pub y2: f32,
    pub z2: f32,
}

vgpu::impl_scalar!(Event);

impl Event {
    pub fn p1(&self) -> [f32; 3] {
        [self.x1, self.y1, self.z1]
    }

    pub fn p2(&self) -> [f32; 3] {
        [self.x2, self.y2, self.z2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_index_is_x_fastest() {
        let v = Volume::new(4, 3, 2, 1.0);
        assert_eq!(v.linear(0, 0, 0), 0);
        assert_eq!(v.linear(1, 0, 0), 1);
        assert_eq!(v.linear(0, 1, 0), 4);
        assert_eq!(v.linear(0, 0, 1), 12);
        assert_eq!(v.linear(3, 2, 1), 23);
        assert_eq!(v.n_voxels(), 24);
    }

    #[test]
    fn volume_is_centred() {
        let v = Volume::new(10, 10, 10, 2.0);
        assert_eq!(v.world_min(), [-10.0, -10.0, -10.0]);
        let c = v.voxel_center(4, 4, 4);
        assert_eq!(c, [-1.0, -1.0, -1.0]);
    }

    #[test]
    fn scanner_encloses_the_volume() {
        let v = Volume::bench_scale();
        let s = Scanner::enclosing(&v);
        let h = v.half_extent();
        assert!(s.radius_mm > (h[0] * h[0] + h[1] * h[1]).sqrt());
        assert!(s.half_z_mm > h[2]);
    }

    #[test]
    fn event_is_a_device_scalar() {
        assert_eq!(<Event as vgpu::Scalar>::TYPE_NAME, "Event");
        assert_eq!(std::mem::size_of::<Event>(), 24);
    }

    #[test]
    fn paper_scale_matches_the_paper() {
        let v = Volume::paper_scale();
        assert_eq!((v.nx, v.ny, v.nz), (150, 150, 280));
    }
}
