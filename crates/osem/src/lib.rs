//! # skelcl-osem — the list-mode OSEM case study (paper Section IV-B)
//!
//! "List-Mode Ordered Subset Expectation Maximization is a time-intensive,
//! production-quality algorithm from a real-world application in medical
//! image reconstruction. It is used to reconstruct three-dimensional images
//! from huge sets of so-called events recorded in positron emission
//! tomography (PET). Each event represents a line of response (LOR) which
//! intersects the scanned volume."
//!
//! The paper's patient data cannot be shipped, so [`events`] generates
//! synthetic list-mode data from a known activity [`phantom`] inside a
//! modelled scanner ([`geometry`]); [`siddon`] computes LOR paths through
//! the voxel volume. Four reconstruction implementations share that math:
//!
//! * [`seq`] — the sequential reference (paper Listing 3),
//! * [`skelcl_impl`] — the SkelCL version (paper Listing 4),
//! * [`opencl_impl`] — hand-written OpenCL, host-staged multi-GPU merging,
//! * [`cuda_impl`] — hand-written CUDA with one host thread per device.

pub mod cuda_impl;
pub mod events;
pub mod geometry;
pub mod metrics;
pub mod opencl_impl;
pub mod phantom;
pub mod seq;
pub mod siddon;
pub mod skelcl_impl;

pub use events::EventGenerator;
pub use geometry::{Event, Scanner, Volume};
pub use phantom::Phantom;

/// Extra bytes charged per scattered (uncoalesced) read beyond the element
/// itself: Tesla-class GPUs move a full 64-byte memory segment per
/// uncoalesced access, so a 4-byte gather costs 64 bytes of bandwidth.
pub const UNCOALESCED_READ_EXTRA: usize = 60;

/// Extra bytes per uncoalesced atomic read-modify-write: two 64-byte
/// segment crossings (read + write) minus the 8 bytes already counted.
pub const UNCOALESCED_ATOMIC_EXTRA: usize = 120;

/// Contiguous near-equal `(offset, len)` blocks of `len` over `n` parts —
/// the hand-written variants partition events and image rows with this.
pub fn block_split(len: usize, n: usize) -> Vec<(usize, usize)> {
    let n = n.max(1);
    let base = len / n;
    let extra = len % n;
    let mut out = Vec::with_capacity(n);
    let mut off = 0;
    for d in 0..n {
        let l = base + usize::from(d < extra);
        out.push((off, l));
        off += l;
    }
    out
}

/// Parameters of one OSEM experiment run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsemParams {
    pub volume: Volume,
    pub total_events: usize,
    pub n_subsets: usize,
    pub seed: u64,
}

impl OsemParams {
    /// The paper's experiment: "a typical data set of about 10⁷ events for
    /// \[a\] 150×150×280 PET image. The data set is split into 10 equally
    /// sized subsets."
    pub fn paper_scale() -> Self {
        OsemParams {
            volume: Volume::paper_scale(),
            total_events: 10_000_000,
            n_subsets: 10,
            seed: 2011,
        }
    }

    /// Scaled-down default used by the figures harness: same subset
    /// structure, smaller volume and event count.
    pub fn bench_scale() -> Self {
        OsemParams {
            volume: Volume::bench_scale(),
            total_events: 1_200_000,
            n_subsets: 10,
            seed: 2011,
        }
    }

    /// Tiny run for tests.
    pub fn test_scale() -> Self {
        OsemParams {
            volume: Volume::test_scale(),
            total_events: 4_000,
            n_subsets: 2,
            seed: 2011,
        }
    }

    /// Generate the event subsets for this run (deterministic).
    pub fn generate_subsets(&self) -> Vec<Vec<Event>> {
        EventGenerator::new(&self.volume, self.seed).subsets(self.total_events, self.n_subsets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_split_covers_exactly() {
        for (len, n) in [(100, 4), (101, 4), (3, 8), (0, 2)] {
            let blocks = block_split(len, n);
            assert_eq!(blocks.len(), n);
            let mut next = 0;
            for (off, l) in blocks {
                assert_eq!(off, next);
                next += l;
            }
            assert_eq!(next, len);
        }
    }

    #[test]
    fn paper_params_match_the_paper() {
        let p = OsemParams::paper_scale();
        assert_eq!(p.total_events, 10_000_000);
        assert_eq!(p.n_subsets, 10);
        assert_eq!(p.volume.dims(), [150, 150, 280]);
    }

    #[test]
    fn generated_subsets_are_deterministic() {
        let p = OsemParams::test_scale();
        let a = p.generate_subsets();
        let b = p.generate_subsets();
        assert_eq!(a, b);
    }
}
