//! Synthetic list-mode event generation: the stand-in for the paper's
//! "huge sets of so-called events recorded in positron emission tomography".
//!
//! Each event is generated physically: sample an emission point from the
//! phantom's activity distribution (rejection sampling), draw an isotropic
//! photon-pair direction, and project both photons onto the detector
//! cylinder. The two detection points form the line of response.

use crate::geometry::{Event, Scanner, Volume};
use crate::phantom::Phantom;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic event generator.
pub struct EventGenerator {
    phantom: Phantom,
    scanner: Scanner,
    rng: StdRng,
}

impl EventGenerator {
    pub fn new(vol: &Volume, seed: u64) -> Self {
        let phantom = Phantom::for_volume(vol);
        let scanner = Scanner::enclosing(vol);
        EventGenerator {
            phantom,
            scanner,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    pub fn phantom(&self) -> &Phantom {
        &self.phantom
    }

    /// Sample one emission point from the activity distribution.
    fn sample_emission(&mut self) -> [f32; 3] {
        let r_max = self.phantom.emission_radius();
        let z_max = self.phantom.emission_half_z();
        let a_max = self.phantom.max_activity();
        loop {
            let x = self.rng.gen_range(-r_max..r_max);
            let y = self.rng.gen_range(-r_max..r_max);
            let z = self.rng.gen_range(-z_max..z_max);
            let p = [x, y, z];
            let a = self.phantom.activity(p);
            if a > 0.0 && self.rng.gen_range(0.0..a_max) < a {
                return p;
            }
        }
    }

    /// Project from `origin` along `±dir` to the detector cylinder; returns
    /// `None` when a photon escapes axially (no detection).
    fn project(&self, origin: [f32; 3], dir: [f32; 3]) -> Option<([f32; 3], [f32; 3])> {
        // Solve |o_xy + t*d_xy| = R for both photon directions.
        let (ox, oy, oz) = (origin[0], origin[1], origin[2]);
        let (dx, dy, dz) = (dir[0], dir[1], dir[2]);
        let a = dx * dx + dy * dy;
        if a < 1e-12 {
            return None; // ray parallel to the scanner axis escapes
        }
        let b = 2.0 * (ox * dx + oy * dy);
        let c = ox * ox + oy * oy - self.scanner.radius_mm * self.scanner.radius_mm;
        let disc = b * b - 4.0 * a * c;
        if disc <= 0.0 {
            return None;
        }
        let sq = disc.sqrt();
        let t1 = (-b + sq) / (2.0 * a); // forward photon
        let t2 = (-b - sq) / (2.0 * a); // backward photon
        let p1 = [ox + t1 * dx, oy + t1 * dy, oz + t1 * dz];
        let p2 = [ox + t2 * dx, oy + t2 * dy, oz + t2 * dz];
        if p1[2].abs() > self.scanner.half_z_mm || p2[2].abs() > self.scanner.half_z_mm {
            return None;
        }
        Some((p1, p2))
    }

    /// Generate one detected event.
    pub fn next_event(&mut self) -> Event {
        loop {
            let origin = self.sample_emission();
            // Isotropic direction.
            let cos_t: f32 = self.rng.gen_range(-1.0..1.0);
            let sin_t = (1.0 - cos_t * cos_t).sqrt();
            let phi: f32 = self.rng.gen_range(0.0..std::f32::consts::TAU);
            let dir = [sin_t * phi.cos(), sin_t * phi.sin(), cos_t];
            if let Some((p1, p2)) = self.project(origin, dir) {
                return Event {
                    x1: p1[0],
                    y1: p1[1],
                    z1: p1[2],
                    x2: p2[0],
                    y2: p2[1],
                    z2: p2[2],
                };
            }
        }
    }

    /// Generate `n` events.
    pub fn events(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event()).collect()
    }

    /// Generate the full data set split into equally sized subsets, like
    /// the paper's "data set [...] split into 10 equally sized subsets".
    pub fn subsets(&mut self, total_events: usize, n_subsets: usize) -> Vec<Vec<Event>> {
        let per = total_events / n_subsets;
        (0..n_subsets).map(|_| self.events(per)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_end_on_the_detector_cylinder() {
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 1);
        let scanner = Scanner::enclosing(&vol);
        for e in generator.events(200) {
            for p in [e.p1(), e.p2()] {
                let r = (p[0] * p[0] + p[1] * p[1]).sqrt();
                assert!(
                    (r - scanner.radius_mm).abs() < scanner.radius_mm * 1e-3,
                    "endpoint not on the ring: r={r}"
                );
                assert!(p[2].abs() <= scanner.half_z_mm);
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let vol = Volume::test_scale();
        let a = EventGenerator::new(&vol, 42).events(50);
        let b = EventGenerator::new(&vol, 42).events(50);
        let c = EventGenerator::new(&vol, 43).events(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lors_pass_near_the_phantom() {
        // Each LOR must intersect the volume (it came from an emission
        // inside it).
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 2);
        for e in generator.events(100) {
            let path = crate::siddon::compute_path(&vol, e.p1(), e.p2());
            assert!(!path.is_empty(), "LOR must cross the volume");
        }
    }

    #[test]
    fn subsets_are_equal_sized() {
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 3);
        let subsets = generator.subsets(1000, 10);
        assert_eq!(subsets.len(), 10);
        assert!(subsets.iter().all(|s| s.len() == 100));
    }

    #[test]
    fn hot_rod_attracts_more_lors() {
        // Count LORs passing through the hot rod's voxel column vs a
        // background voxel: the hot rod must see more activity.
        let vol = Volume::new(32, 32, 8, 4.0);
        let mut generator = EventGenerator::new(&vol, 4);
        let phantom = Phantom::for_volume(&vol);
        let r = phantom.emission_radius();
        let hot_xy = [r * 0.45, 0.0];
        let bg_xy = [-r * 0.7, 0.0];
        let mut hot_hits = 0u32;
        let mut bg_hits = 0u32;
        for e in generator.events(3000) {
            crate::siddon::for_each_voxel(&vol, e.p1(), e.p2(), |lin, _| {
                let ix = lin % vol.nx;
                let iy = (lin / vol.nx) % vol.ny;
                let c = vol.voxel_center(ix, iy, 0);
                let dh = (c[0] - hot_xy[0]).powi(2) + (c[1] - hot_xy[1]).powi(2);
                let db = (c[0] - bg_xy[0]).powi(2) + (c[1] - bg_xy[1]).powi(2);
                if dh < (vol.voxel_mm * 1.5).powi(2) {
                    hot_hits += 1;
                }
                if db < (vol.voxel_mm * 1.5).powi(2) {
                    bg_hits += 1;
                }
            });
        }
        assert!(
            hot_hits > bg_hits,
            "hot rod must receive more LORs: hot={hot_hits} bg={bg_hits}"
        );
    }
}
