//! List-mode OSEM hand-written against the CUDA runtime API, following the
//! multi-GPU CUDA implementation the paper cites (\[3\], Schellmann et al.).
//!
//! Paper Section IV-B-1: "In CUDA, we have to create one CPU thread for
//! each device to be managed. This introduces the additional challenge of
//! multi-threaded programming, including the need of thread
//! synchronization." — the compute phase below spawns one host thread per
//! GPU, each with its own runtime handle, exactly like period CUDA code.

use crate::geometry::{Event, Volume};
use crate::siddon::{self, OPS_PER_VISIT};
use crate::skelcl_impl::{pack_path_elem, unpack_path_elem, INDICES_PER_DEVICE};
use crate::{block_split, UNCOALESCED_ATOMIC_EXTRA, UNCOALESCED_READ_EXTRA};
use skelcl_baselines::cuda::*;
use std::sync::Arc;
use vgpu::{Platform, Result, WorkGroup};

/// The `__global__` error-image kernel (compiled offline by nvcc).
// >>> kernel
pub const COMPUTE_C_KERNEL: &str = r#"
__global__ void compute_c(const Event* events, unsigned num_events,
                          unsigned long long* paths, const float* f, float* c) {
    unsigned tid = blockIdx.x * blockDim.x + threadIdx.x;
    unsigned threads = gridDim.x * blockDim.x;
    unsigned chunk = (num_events + threads - 1) / threads;
    unsigned begin = min(tid * chunk, num_events);
    unsigned end = min(begin + chunk, num_events);
    for (unsigned e = begin; e < end; ++e) {
        unsigned path_len = 0;
        float fp = 0.0f;
        unsigned long long* my_path = paths + tid * MAX_PATH;
        TRAVERSE_LOR(events[e], my_path, &path_len);
        for (unsigned m = 0; m < path_len; ++m)
            fp += f[PATH_COORD(my_path[m])] * PATH_LEN(my_path[m]);
        if (fp > 0.0f)
            for (unsigned m = 0; m < path_len; ++m)
                atomicAdd(&c[PATH_COORD(my_path[m])], PATH_LEN(my_path[m]) / fp);
    }
}
"#;
// <<< kernel

/// The `__global__` update kernel.
// >>> kernel
pub const UPDATE_KERNEL: &str = r#"
__global__ void update(float* f, const float* c, unsigned offset, unsigned len) {
    unsigned i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < len) {
        float cv = c[i];
        if (cv > 0.0f) f[offset + i] = f[offset + i] * cv;
    }
}
"#;
// <<< kernel

/// Reconstruct with CUDA on every device of the platform.
pub fn reconstruct(platform: &Platform, vol: &Volume, subsets: &[Vec<Event>]) -> Result<Vec<f32>> {
    let image_size = vol.n_voxels();
    let max_path = vol.max_path_len();
    let volume = *vol;
    let threads = INDICES_PER_DEVICE;
    let n_devices = platform.n_devices();

    // -- module with offline-compiled kernels ------------------------------
    let rt = CudaRuntime::new(platform);
    let module = CudaModule::new(&rt);
    let compute_c = Arc::new(module.kernel(
        "compute_c",
        COMPUTE_C_KERNEL,
        // >>> kernel
        Arc::new(move |wg: &WorkGroup, args: &CudaArgs| {
            let events = args.get_ptr::<Event>(0);
            let num_events = args.get_scalar::<u32>(1) as usize;
            let paths = args.get_ptr::<u64>(2);
            let f = args.get_ptr::<f32>(3);
            let c = args.get_ptr::<f32>(4);
            let threads_total = wg.num_groups(0) * wg.local_size(0);
            let chunk = num_events.div_ceil(threads_total);
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let tid = it.global_id(0);
                let begin = (tid * chunk).min(num_events);
                let end = (begin + chunk).min(num_events);
                let scratch_base = tid * max_path;
                for e in begin..end {
                    let ev = it.read(events, e);
                    let mut path_len = 0usize;
                    let mut fp = 0.0f32;
                    siddon::for_each_voxel(&volume, ev.p1(), ev.p2(), |coord, len| {
                        if path_len < max_path {
                            it.write(paths, scratch_base + path_len, pack_path_elem(coord, len));
                            it.work(OPS_PER_VISIT);
                            fp += it.read(f, coord) * len;
                            it.traffic_read(UNCOALESCED_READ_EXTRA);
                            path_len += 1;
                        }
                    });
                    if fp > 0.0 {
                        for m in 0..path_len {
                            let (coord, len) = unpack_path_elem(it.read(paths, scratch_base + m));
                            it.work(OPS_PER_VISIT);
                            it.atomic_add_f32(c, coord, len / fp);
                            it.traffic_write(UNCOALESCED_ATOMIC_EXTRA);
                        }
                    }
                }
            });
        }),
        // <<< kernel
    )?);
    let update = Arc::new(module.kernel(
        "update",
        UPDATE_KERNEL,
        // >>> kernel
        Arc::new(|wg: &WorkGroup, args: &CudaArgs| {
            let f = args.get_ptr::<f32>(0);
            let c = args.get_ptr::<f32>(1);
            let offset = args.get_scalar::<u32>(2) as usize;
            let len = args.get_scalar::<u32>(3) as usize;
            wg.for_each_item(|it| {
                if !it.in_bounds() {
                    return;
                }
                let i = it.global_id(0);
                if i < len {
                    let cv = it.read(c, i);
                    if cv > 0.0 {
                        let fv = it.read(f, offset + i);
                        it.write(f, offset + i, fv * cv);
                        it.work(2);
                    }
                }
            });
        }),
        // <<< kernel
    )?);

    // -- per-device allocations ---------------------------------------------
    let subset_len = subsets.first().map(|s| s.len()).unwrap_or(0);
    let mut f_ptrs = Vec::new();
    let mut c_ptrs = Vec::new();
    let mut path_ptrs = Vec::new();
    let mut event_ptrs = Vec::new();
    for d in 0..n_devices {
        rt.set_device(d)?;
        f_ptrs.push(rt.malloc::<f32>(image_size)?);
        c_ptrs.push(rt.malloc::<f32>(image_size)?);
        path_ptrs.push(rt.malloc::<u64>(threads * max_path)?);
        event_ptrs.push(rt.malloc::<Event>(subset_len)?);
    }

    // -- the OSEM loop --------------------------------------------------------
    let mut f_host = vec![1.0f32; image_size];
    let blocks = block_split(image_size, n_devices);

    for subset in subsets {
        let event_blocks = block_split(subset.len(), n_devices);

        // One host thread per device runs upload + compute, as the paper's
        // CUDA implementation does.
        std::thread::scope(|scope| -> Result<()> {
            let mut handles = Vec::new();
            for d in 0..n_devices {
                let platform = platform.clone();
                let compute_c = Arc::clone(&compute_c);
                // Device pointers are plain values in CUDA.
                let f_ptr = f_ptrs[d].clone();
                let c_ptr = c_ptrs[d].clone();
                let path_ptr = path_ptrs[d].clone();
                let event_ptr = event_ptrs[d].clone();
                let f_host = &f_host;
                let (ev_off, ev_len) = event_blocks[d];
                let events = &subset[ev_off..ev_off + ev_len];
                handles.push(scope.spawn(move || -> Result<()> {
                    let rt = CudaRuntime::new(&platform);
                    rt.set_device(d)?;
                    rt.memcpy_h2d_range(&event_ptr, 0, events)?;
                    rt.memcpy_h2d(&f_ptr, f_host)?;
                    rt.memset(&c_ptr, 0.0f32)?;
                    rt.launch_kernel(
                        &compute_c,
                        threads / 256,
                        256,
                        CudaArgs::new()
                            .ptr(&event_ptr)
                            .scalar(ev_len as u32)
                            .ptr(&path_ptr)
                            .ptr(&f_ptr)
                            .ptr(&c_ptr),
                    )?;
                    Ok(())
                }));
            }
            for h in handles {
                h.join().expect("device thread panicked")?;
            }
            Ok(())
        })?;
        // Join point: every device thread's work is done.
        rt.synchronize_all();

        // Merge the per-device error images on the host.
        let mut c_host = vec![0.0f32; image_size];
        let mut c_tmp = vec![0.0f32; image_size];
        #[allow(clippy::needless_range_loop)]
        for d in 0..n_devices {
            rt.set_device(d)?;
            rt.memcpy_d2h(&mut c_tmp, &c_ptrs[d])?;
            for (acc, v) in c_host.iter_mut().zip(&c_tmp) {
                *acc += *v;
            }
        }

        // Update each device's block of the reconstruction image.
        for d in 0..n_devices {
            let (off, len) = blocks[d];
            if len == 0 {
                continue;
            }
            rt.set_device(d)?;
            rt.memcpy_h2d_range(&c_ptrs[d], 0, &c_host[off..off + len])?;
            rt.launch_kernel(
                &update,
                len.div_ceil(256),
                256,
                CudaArgs::new()
                    .ptr(&f_ptrs[d])
                    .ptr(&c_ptrs[d])
                    .scalar(off as u32)
                    .scalar(len as u32),
            )?;
            rt.device_synchronize();
            rt.memcpy_d2h_range(&mut f_host[off..off + len], &f_ptrs[d], off)?;
        }
    }
    Ok(f_host)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventGenerator;
    use crate::metrics;
    use vgpu::{DeviceSpec, PlatformConfig};

    fn platform(n: usize) -> Platform {
        Platform::new(
            PlatformConfig::default()
                .devices(n)
                .spec(DeviceSpec::tiny())
                .cache_tag("osem-cuda-test"),
        )
    }

    #[test]
    fn matches_the_sequential_reference() {
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 41);
        let subsets = generator.subsets(4000, 2);
        let seq = crate::seq::reconstruct(&vol, &subsets);
        for n in [1usize, 2] {
            let p = platform(n);
            let got = reconstruct(&p, &vol, &subsets).unwrap();
            let diff = metrics::relative_l2(&got, &seq);
            assert!(diff < 1e-3, "{n} devices: relative diff {diff}");
        }
    }

    #[test]
    fn cuda_beats_opencl_on_osem_too() {
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 42);
        let subsets = generator.subsets(6000, 2);
        let p = platform(1);
        // warm the binary cache
        crate::opencl_impl::reconstruct(&p, &vol, &subsets).unwrap();

        p.reset_clocks();
        crate::opencl_impl::reconstruct(&p, &vol, &subsets).unwrap();
        let t_ocl = p.host_now_s();

        p.reset_clocks();
        reconstruct(&p, &vol, &subsets).unwrap();
        let t_cuda = p.host_now_s();

        assert!(t_cuda < t_ocl, "cuda={t_cuda} opencl={t_ocl}");
    }
}
