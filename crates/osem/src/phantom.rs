//! The synthetic activity phantom standing in for the paper's patient data.
//!
//! The paper uses "a typical data set of about 10⁷ events" from a real PET
//! scan, which we cannot ship. Instead we reconstruct a known phantom: a
//! warm cylinder with hot rods and a cold rod (a simplified Derenzo-style
//! resolution phantom), so reconstruction quality is verifiable against
//! ground truth.

use crate::geometry::Volume;

/// A cylindrical feature of the phantom (axis parallel to z).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Rod {
    cx: f32,
    cy: f32,
    radius: f32,
    activity: f32,
}

/// The phantom: background cylinder plus rods, in world coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct Phantom {
    /// Radius of the warm background cylinder.
    background_radius: f32,
    /// Axial half-length of the active region.
    half_z: f32,
    background_activity: f32,
    rods: Vec<Rod>,
}

impl Phantom {
    /// A phantom scaled to the given volume: warm cylinder filling ~80 % of
    /// the field of view, three hot rods, one cold rod.
    pub fn for_volume(vol: &Volume) -> Self {
        let h = vol.half_extent();
        let r = h[0].min(h[1]) * 0.8;
        Phantom {
            background_radius: r,
            half_z: h[2] * 0.85,
            background_activity: 1.0,
            rods: vec![
                Rod {
                    cx: r * 0.45,
                    cy: 0.0,
                    radius: r * 0.18,
                    activity: 8.0,
                },
                Rod {
                    cx: -r * 0.3,
                    cy: r * 0.35,
                    radius: r * 0.12,
                    activity: 6.0,
                },
                Rod {
                    cx: -r * 0.25,
                    cy: -r * 0.4,
                    radius: r * 0.15,
                    activity: 4.0,
                },
                Rod {
                    cx: r * 0.05,
                    cy: r * 0.05,
                    radius: r * 0.08,
                    activity: 0.0, // cold rod
                },
            ],
        }
    }

    /// Activity concentration at a world point.
    pub fn activity(&self, p: [f32; 3]) -> f32 {
        if p[2].abs() > self.half_z {
            return 0.0;
        }
        let r2 = p[0] * p[0] + p[1] * p[1];
        if r2 > self.background_radius * self.background_radius {
            return 0.0;
        }
        for rod in &self.rods {
            let dx = p[0] - rod.cx;
            let dy = p[1] - rod.cy;
            if dx * dx + dy * dy <= rod.radius * rod.radius {
                return rod.activity;
            }
        }
        self.background_activity
    }

    /// Maximum activity anywhere (for rejection sampling).
    pub fn max_activity(&self) -> f32 {
        self.rods
            .iter()
            .map(|r| r.activity)
            .fold(self.background_activity, f32::max)
    }

    /// The radius within which emissions can occur.
    pub fn emission_radius(&self) -> f32 {
        self.background_radius
    }

    pub fn emission_half_z(&self) -> f32 {
        self.half_z
    }

    /// Ground-truth image: the phantom sampled at voxel centres.
    pub fn reference_image(&self, vol: &Volume) -> Vec<f32> {
        let mut img = vec![0.0f32; vol.n_voxels()];
        for iz in 0..vol.nz {
            for iy in 0..vol.ny {
                for ix in 0..vol.nx {
                    img[vol.linear(ix, iy, iz)] = self.activity(vol.voxel_center(ix, iy, iz));
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activity_zones() {
        let vol = Volume::bench_scale();
        let p = Phantom::for_volume(&vol);
        // Outside the cylinder: zero.
        let h = vol.half_extent();
        assert_eq!(p.activity([h[0], h[1], 0.0]), 0.0);
        // Outside axially: zero.
        assert_eq!(p.activity([0.0, 0.0, h[2] * 2.0]), 0.0);
        // Hot rod centre: hotter than background.
        let r = p.emission_radius();
        assert!(p.activity([r * 0.45 / 0.8, 0.0, 0.0]) >= 4.0);
        // Cold rod: zero.
        let cold = p.activity([r * 0.05 / 0.8, r * 0.05 / 0.8, 0.0]);
        assert_eq!(cold, 0.0);
    }

    #[test]
    fn max_activity_covers_rods() {
        let vol = Volume::test_scale();
        let p = Phantom::for_volume(&vol);
        assert_eq!(p.max_activity(), 8.0);
    }

    #[test]
    fn reference_image_has_structure() {
        let vol = Volume::test_scale();
        let p = Phantom::for_volume(&vol);
        let img = p.reference_image(&vol);
        assert_eq!(img.len(), vol.n_voxels());
        let hot = img.iter().cloned().fold(0.0, f32::max);
        let nonzero = img.iter().filter(|&&v| v > 0.0).count();
        assert!(hot >= 4.0, "hot rods must appear");
        assert!(nonzero > 0 && nonzero < img.len());
    }
}
