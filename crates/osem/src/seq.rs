//! The sequential list-mode OSEM reference — a direct transcription of the
//! paper's Listing 3:
//!
//! ```c
//! for (l = 0; l < num_subsets; l++) {
//!     events = read_events();
//!     for (i = 0; i < num_events; i++) {
//!         path = compute_path(events[i]);
//!         for (fp = 0, m = 0; m < path_len; m++)
//!             fp += f[path[m].coord] * path[m].len;
//!         for (m = 0; m < path_len; m++)
//!             c[path[m].coord] += path[m].len / fp;
//!     }
//!     for (j = 0; j < image_size; j++)
//!         if (c[j] > 0.0) f[j] *= c[j];
//! }
//! ```

use crate::geometry::{Event, Volume};
use crate::siddon;

/// Run list-mode OSEM sequentially; returns the reconstruction image `f`.
///
/// `f` starts uniform (all ones) as is standard for MLEM-family algorithms.
pub fn reconstruct(vol: &Volume, subsets: &[Vec<Event>]) -> Vec<f32> {
    let image_size = vol.n_voxels();
    let mut f = vec![1.0f32; image_size];
    let mut c = vec![0.0f32; image_size];

    for events in subsets {
        // compute error image c
        c.iter_mut().for_each(|v| *v = 0.0);
        for event in events {
            let path = siddon::compute_path(vol, event.p1(), event.p2());
            // compute forward projection fp
            let mut fp = 0.0f32;
            for elem in &path {
                fp += f[elem.coord as usize] * elem.len;
            }
            // add path to error image
            if fp > 0.0 {
                for elem in &path {
                    c[elem.coord as usize] += elem.len / fp;
                }
            }
        }
        // update reconstruction image f
        for j in 0..image_size {
            if c[j] > 0.0 {
                f[j] *= c[j];
            }
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventGenerator;
    use crate::metrics;
    use crate::phantom::Phantom;

    #[test]
    fn reconstruction_recovers_phantom_structure() {
        let vol = Volume::new(24, 24, 12, 6.0);
        let mut generator = EventGenerator::new(&vol, 11);
        let subsets = generator.subsets(20_000, 4);
        let f = reconstruct(&vol, &subsets);

        let phantom = Phantom::for_volume(&vol);
        let reference = phantom.reference_image(&vol);

        // The reconstruction must correlate with the phantom much better
        // than the uniform start image does.
        let corr = metrics::correlation(&f, &reference);
        assert!(corr > 0.5, "correlation too low: {corr}");

        // Hot rod voxel should reconstruct hotter than a background voxel.
        let r = phantom.emission_radius();
        let hot_world = [r * 0.45, 0.0, 0.0];
        let bg_world = [-r * 0.7, 0.0, 0.0];
        let to_idx = |w: [f32; 3]| {
            let min = vol.world_min();
            let ix = ((w[0] - min[0]) / vol.voxel_mm) as usize;
            let iy = ((w[1] - min[1]) / vol.voxel_mm) as usize;
            let iz = ((w[2] - min[2]) / vol.voxel_mm) as usize;
            vol.linear(ix, iy, iz)
        };
        assert!(
            f[to_idx(hot_world)] > 1.5 * f[to_idx(bg_world)],
            "hot rod {} must exceed background {}",
            f[to_idx(hot_world)],
            f[to_idx(bg_world)]
        );
    }

    #[test]
    fn empty_subsets_leave_f_uniform() {
        let vol = Volume::test_scale();
        let f = reconstruct(&vol, &[vec![]]);
        assert!(f.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn more_subsets_sharpen_the_image() {
        // A smoke test that iteration does something: two subsets change f
        // more than one.
        let vol = Volume::test_scale();
        let mut generator = EventGenerator::new(&vol, 5);
        let all = generator.subsets(4000, 2);
        let f1 = reconstruct(&vol, &all[..1]);
        let f2 = reconstruct(&vol, &all);
        let d1: f32 = f1.iter().map(|v| (v - 1.0).abs()).sum();
        let d2: f32 = f2.iter().map(|v| (v - 1.0).abs()).sum();
        assert!(d2 > d1 * 0.5, "second subset must keep refining");
        assert_ne!(f1, f2);
    }
}
