//! Image-quality metrics for validating reconstructions against the
//! phantom ground truth and against each other.

/// Root-mean-square error between two images.
pub fn rmse(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| {
            let d = (*x - *y) as f64;
            d * d
        })
        .sum();
    ((sum / a.len() as f64) as f32).sqrt()
}

/// Maximum absolute element-wise difference.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Pearson correlation coefficient between two images.
pub fn correlation(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let ma: f64 = a.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mb: f64 = b.iter().map(|&v| v as f64).sum::<f64>() / n;
    let mut cov = 0.0f64;
    let mut va = 0.0f64;
    let mut vb = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        let dx = x as f64 - ma;
        let dy = y as f64 - mb;
        cov += dx * dy;
        va += dx * dx;
        vb += dy * dy;
    }
    if va == 0.0 || vb == 0.0 {
        return 0.0;
    }
    (cov / (va.sqrt() * vb.sqrt())) as f32
}

/// Relative L2 difference `||a-b|| / ||b||` — used to compare parallel
/// reconstructions against the sequential reference (atomic accumulation
/// reorders float additions, so small differences are expected).
pub fn relative_l2(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len());
    let mut num = 0.0f64;
    let mut den = 0.0f64;
    for (&x, &y) in a.iter().zip(b) {
        num += ((x - y) as f64).powi(2);
        den += (y as f64).powi(2);
    }
    if den == 0.0 {
        return if num == 0.0 { 0.0 } else { f32::INFINITY };
    }
    ((num / den).sqrt()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_images_have_zero_error() {
        let a = vec![1.0f32, 2.0, 3.0];
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(max_abs_diff(&a, &a), 0.0);
        assert_eq!(relative_l2(&a, &a), 0.0);
        assert!((correlation(&a, &a) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn rmse_of_unit_offset_is_one() {
        let a = vec![1.0f32; 10];
        let b = vec![2.0f32; 10];
        assert!((rmse(&a, &b) - 1.0).abs() < 1e-6);
        assert_eq!(max_abs_diff(&a, &b), 1.0);
    }

    #[test]
    fn correlation_detects_anticorrelation() {
        let a: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let b: Vec<f32> = (0..100).map(|i| -(i as f32)).collect();
        assert!((correlation(&a, &b) + 1.0).abs() < 1e-6);
    }

    #[test]
    fn constant_images_have_zero_correlation() {
        let a = vec![3.0f32; 5];
        let b: Vec<f32> = (0..5).map(|i| i as f32).collect();
        assert_eq!(correlation(&a, &b), 0.0);
    }
}
