//! Work-group local (shared) memory with bank-conflict accounting.
//!
//! The paper's Scan implementation (a port of Harris et al., *GPU Gems 3*
//! ch. 39) is "highly optimized and makes heavy use of local memory, as well
//! as it tries to avoid memory bank conflicts". To reproduce that design
//! point — and to make the bank-conflict-avoidance ablation (E9) measurable —
//! local memory here is allocated per work-group and accessed through a
//! model that counts how many serialised passes a warp's access pattern
//! costs on an `N`-bank memory.

use crate::types::Scalar;
use std::cell::{Cell, RefCell};

/// A typed local-memory array, private to one work-group.
///
/// Access is sequential within the simulated work-group (loop fission), so
/// interior mutability via `Cell` is both safe and free.
pub struct LocalBuf<T: Scalar> {
    data: Box<[Cell<T>]>,
}

impl<T: Scalar> LocalBuf<T> {
    pub(crate) fn new(len: usize) -> Self {
        LocalBuf {
            data: (0..len).map(|_| Cell::new(T::default())).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn get(&self, i: usize) -> T {
        self.data[i].get()
    }

    #[inline]
    pub fn set(&self, i: usize, v: T) {
        self.data[i].set(v)
    }

    /// Dump to a host vector (testing/debugging aid).
    pub fn to_vec(&self) -> Vec<T> {
        self.data.iter().map(Cell::get).collect()
    }
}

/// Counts bank conflicts for warp-wide access patterns.
///
/// On an `n_banks`-bank local memory, a warp's simultaneous accesses are
/// serialised into as many passes as the most-contended bank receives
/// distinct words. A conflict-free pattern costs 1 pass; the classic naive
/// tree-scan pattern with power-of-two strides costs up to `n_banks` passes.
#[derive(Debug)]
pub struct BankModel {
    n_banks: usize,
    /// Extra passes (beyond the first) accumulated so far.
    conflicts: Cell<u64>,
    /// Scratch histogram, reused across calls.
    histo: RefCell<Vec<u32>>,
}

impl BankModel {
    pub fn new(n_banks: usize) -> Self {
        assert!(n_banks > 0);
        BankModel {
            n_banks,
            conflicts: Cell::new(0),
            histo: RefCell::new(vec![0; n_banks]),
        }
    }

    pub fn n_banks(&self) -> usize {
        self.n_banks
    }

    /// Total conflict passes recorded (each costs
    /// [`crate::timing::BANK_CONFLICT_CYCLES`] in the kernel cost model).
    pub fn conflicts(&self) -> u64 {
        self.conflicts.get()
    }

    /// Record one warp-wide access with the given word indices; returns the
    /// number of extra serialised passes this access costs.
    ///
    /// Kernels that use local memory call this once per warp per access
    /// phase with the indices the warp's lanes touch (the scan kernel does).
    pub fn record_access(&self, indices: impl IntoIterator<Item = usize>) -> u64 {
        let mut histo = self.histo.borrow_mut();
        histo.iter_mut().for_each(|h| *h = 0);
        let mut max = 0u32;
        let mut any = false;
        for idx in indices {
            any = true;
            let b = idx % self.n_banks;
            histo[b] += 1;
            max = max.max(histo[b]);
        }
        if !any {
            return 0;
        }
        let extra = (max - 1) as u64;
        self.conflicts.set(self.conflicts.get() + extra);
        extra
    }

    pub(crate) fn reset(&self) {
        self.conflicts.set(0);
    }
}

/// Computes the padded index used by conflict-avoiding kernels: one extra
/// element is inserted every `n_banks` entries, so that power-of-two strided
/// tree accesses map to distinct banks (Harris et al., GPU Gems 3 ch. 39).
#[inline]
pub fn conflict_free_index(i: usize, n_banks: usize) -> usize {
    i + i / n_banks
}

/// Local-memory length needed to hold `n` logical elements with
/// conflict-avoidance padding.
#[inline]
pub fn padded_local_len(n: usize, n_banks: usize) -> usize {
    if n == 0 {
        0
    } else {
        conflict_free_index(n - 1, n_banks) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_buf_roundtrip() {
        let lb = LocalBuf::<f32>::new(8);
        assert_eq!(lb.len(), 8);
        lb.set(3, 1.5);
        assert_eq!(lb.get(3), 1.5);
        assert_eq!(lb.to_vec()[3], 1.5);
    }

    #[test]
    fn unit_stride_is_conflict_free() {
        let bm = BankModel::new(16);
        let extra = bm.record_access(0..16);
        assert_eq!(extra, 0);
        assert_eq!(bm.conflicts(), 0);
    }

    #[test]
    fn stride_16_on_16_banks_fully_serialises() {
        let bm = BankModel::new(16);
        // 16 lanes all hitting bank 0: indices 0, 16, 32, ...
        let extra = bm.record_access((0..16).map(|l| l * 16));
        assert_eq!(extra, 15);
        assert_eq!(bm.conflicts(), 15);
    }

    #[test]
    fn stride_2_produces_two_way_conflicts() {
        let bm = BankModel::new(16);
        let extra = bm.record_access((0..16).map(|l| l * 2));
        assert_eq!(extra, 1); // two lanes per bank -> 1 extra pass
    }

    #[test]
    fn padding_removes_stride_conflicts() {
        let bm = BankModel::new(16);
        // The same stride-16 pattern, but through the padded index map.
        let extra = bm.record_access((0..16).map(|l| conflict_free_index(l * 16, 16)));
        assert_eq!(extra, 0, "padded indices must be conflict-free");
    }

    #[test]
    fn padded_len_bounds() {
        assert_eq!(padded_local_len(0, 16), 0);
        assert_eq!(padded_local_len(16, 16), 16); // idx 15 -> 15
        assert_eq!(padded_local_len(17, 16), 18); // idx 16 -> 17
        assert_eq!(padded_local_len(512, 16), 511 + 511 / 16 + 1);
    }

    #[test]
    fn empty_access_costs_nothing() {
        let bm = BankModel::new(16);
        assert_eq!(bm.record_access(std::iter::empty()), 0);
    }

    #[test]
    fn reset_clears_counter() {
        let bm = BankModel::new(16);
        bm.record_access((0..16).map(|l| l * 16));
        assert!(bm.conflicts() > 0);
        bm.reset();
        assert_eq!(bm.conflicts(), 0);
    }
}
