//! Fundamental types: device identifiers and the [`Scalar`] element trait.

use std::fmt;

/// Identifies one device on the platform (index into the device list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(pub usize);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Identifies one device allocation, unique across the whole process for
/// the lifetime of the program (ids are never reused, so a trace recorded
/// before a buffer was dropped still names it unambiguously).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BufferId(pub u64);

impl fmt::Display for BufferId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "buf{}", self.0)
    }
}

/// Element types storable in device buffers and SkelCL vectors.
///
/// Mirrors the paper's statement that `Vector` is "a generic container class
/// that is capable of storing data items of any primitive C/C++ data type
/// (e.g. `int`), as well as user-defined data structures (structs)".
///
/// `TYPE_NAME` is the OpenCL-C spelling used by the code generator when the
/// skeleton templates are instantiated (Section III-B of the paper).
pub trait Scalar: Copy + Send + Sync + Default + fmt::Debug + PartialEq + 'static {
    /// OpenCL C type name used in generated kernel source.
    const TYPE_NAME: &'static str;
}

macro_rules! impl_scalar_prim {
    ($($t:ty => $n:literal),* $(,)?) => {
        $(impl Scalar for $t { const TYPE_NAME: &'static str = $n; })*
    };
}

impl_scalar_prim! {
    f32 => "float",
    f64 => "double",
    i8  => "char",
    u8  => "uchar",
    i16 => "short",
    u16 => "ushort",
    i32 => "int",
    u32 => "uint",
    i64 => "long",
    u64 => "ulong",
}

/// Implements [`Scalar`] for a user-defined struct, registering the struct's
/// name as its OpenCL-C type name — the same way SkelCL users pass a struct
/// definition alongside their customizing function.
///
/// ```
/// #[derive(Clone, Copy, Debug, Default, PartialEq)]
/// struct Complex { re: f32, im: f32 }
/// vgpu::impl_scalar!(Complex);
/// assert_eq!(<Complex as vgpu::Scalar>::TYPE_NAME, "Complex");
/// ```
#[macro_export]
macro_rules! impl_scalar {
    ($t:ident) => {
        impl $crate::Scalar for $t {
            const TYPE_NAME: &'static str = stringify!($t);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_type_names_match_opencl_c() {
        assert_eq!(<f32 as Scalar>::TYPE_NAME, "float");
        assert_eq!(<u32 as Scalar>::TYPE_NAME, "uint");
        assert_eq!(<i64 as Scalar>::TYPE_NAME, "long");
        assert_eq!(<u8 as Scalar>::TYPE_NAME, "uchar");
    }

    #[derive(Clone, Copy, Debug, Default, PartialEq)]
    struct Pixel {
        x: u16,
        y: u16,
        iters: u32,
    }
    crate::impl_scalar!(Pixel);

    #[test]
    fn struct_scalar_via_macro() {
        assert_eq!(<Pixel as Scalar>::TYPE_NAME, "Pixel");
        let p = Pixel::default();
        assert_eq!(p.iters, 0);
    }

    #[test]
    fn device_id_display() {
        assert_eq!(DeviceId(2).to_string(), "gpu2");
    }
}
