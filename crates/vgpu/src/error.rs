//! Error type shared across the virtual platform.

use crate::types::DeviceId;
use std::fmt;

/// Errors raised by the virtual platform.
///
/// The variants mirror the failure modes of a real OpenCL runtime that the
/// paper's library has to handle: allocation failure, invalid launch
/// configurations, out-of-range accesses detected at the API boundary, and
/// build/cache problems.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Device memory exhausted: requested vs. remaining bytes.
    OutOfDeviceMemory {
        device: DeviceId,
        requested: usize,
        available: usize,
    },
    /// A host slice and a device buffer disagree on length.
    SizeMismatch { expected: usize, actual: usize },
    /// A buffer belonging to device `expected` was used on device `actual`.
    WrongDevice {
        expected: DeviceId,
        actual: DeviceId,
    },
    /// No device with this index exists on the platform.
    NoSuchDevice { device: usize, available: usize },
    /// Launch configuration invalid (zero sizes, local > device limit, ...).
    InvalidLaunch(String),
    /// Work-group local memory request exceeds the device's per-CU budget.
    LocalMemExceeded { requested: usize, limit: usize },
    /// Program build failed (empty source, cache I/O problems, ...).
    BuildFailure(String),
    /// Access outside a buffer's bounds, caught at the API boundary.
    OutOfBounds { index: usize, len: usize },
    /// The kernel body panicked during simulated execution (argument
    /// marshalling mismatch, out-of-bounds element access, ...). Carries the
    /// original panic message so callers can classify the failure.
    KernelPanic(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::OutOfDeviceMemory {
                device,
                requested,
                available,
            } => write!(
                f,
                "device {device:?} out of memory: requested {requested} bytes, {available} available"
            ),
            Error::SizeMismatch { expected, actual } => {
                write!(f, "size mismatch: expected {expected}, got {actual}")
            }
            Error::WrongDevice { expected, actual } => {
                write!(f, "buffer belongs to device {expected:?}, used on {actual:?}")
            }
            Error::NoSuchDevice { device, available } => {
                write!(f, "no device {device}; platform has {available}")
            }
            Error::InvalidLaunch(msg) => write!(f, "invalid launch: {msg}"),
            Error::LocalMemExceeded { requested, limit } => {
                write!(f, "local memory request {requested} exceeds limit {limit}")
            }
            Error::BuildFailure(msg) => write!(f, "program build failed: {msg}"),
            Error::OutOfBounds { index, len } => {
                write!(f, "buffer access out of bounds: index {index}, length {len}")
            }
            Error::KernelPanic(msg) => write!(f, "kernel panicked: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::OutOfDeviceMemory {
            device: DeviceId(1),
            requested: 100,
            available: 10,
        };
        let msg = e.to_string();
        assert!(msg.contains("100"));
        assert!(msg.contains("10"));

        let e = Error::SizeMismatch {
            expected: 4,
            actual: 8,
        };
        assert!(e.to_string().contains("expected 4"));

        let e = Error::InvalidLaunch("local size 0".into());
        assert!(e.to_string().contains("local size 0"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
