//! # vgpu — a virtual OpenCL-like multi-GPU platform
//!
//! This crate is the **substrate** of the SkelCL reproduction: a software
//! model of the OpenCL platform the paper runs on (a host with one or more
//! GPU-like devices), faithful enough that everything the paper evaluates —
//! lazy host↔device transfers, multi-device data distribution, runtime kernel
//! compilation with an on-disk binary cache, work-group execution with
//! barriers and local memory — runs **for real**, while wall-clock-independent
//! *virtual time* is accounted by an explicit cost model.
//!
//! ## Execution model
//!
//! A [`Device`] consists of `compute_units` CUs, each with `pes_per_cu`
//! processing elements executing 32-lane warps in lock-step. Kernels are
//! launched over an [`NDRange`] of work-items organised into work-groups.
//! Each work-group executes as one sequential task on a host thread (the
//! classic "loop fission" technique used by CPU OpenCL implementations):
//! the kernel body iterates over the group's items with
//! [`WorkGroup::for_each_item`], and [`WorkGroup::barrier`] separates phases.
//! Work-groups are assigned round-robin to virtual CUs; the kernel's virtual
//! duration is the maximum per-CU queue length under a roofline model
//! (compute cycles with warp divergence vs. global-memory traffic).
//!
//! ## Virtual time
//!
//! Every device owns a dual-engine timeline (independent compute and copy
//! clocks, seconds, f64) and the host owns a clock of its own. Commands
//! enqueued on a [`CommandQueue`] advance their engine's clock by their
//! modeled duration; `finish()` synchronises the host clock to the device.
//! Two devices enqueued back-to-back overlap in virtual time even though
//! the simulation executes them one after the other — this is what makes
//! the multi-GPU speedup experiments (paper Fig. 2) meaningful on a CPU.
//! Within one device, the classic enqueue methods serialize against
//! everything prior (the pre-stream behaviour), while the `_async` methods
//! plus [`Event`] `wait_for` lists let a transfer run on the copy engine
//! *under* a kernel on the compute engine — see [`timing`] for the
//! scheduling rule and [`queue`] for the API.
//!
//! The model's constants live in [`timing::DriverProfile`] (one profile per
//! runtime flavour: OpenCL, CUDA, and SkelCL-over-OpenCL) and
//! [`DeviceSpec`] (one per device type; the default is a Tesla-C1060-like
//! device matching the paper's Tesla S1070 blades). There are **no
//! per-experiment fudge factors**: all workloads share the same constants.
//!
//! ## Quick example
//!
//! ```
//! use vgpu::{Platform, PlatformConfig, NDRange};
//!
//! let platform = Platform::new(PlatformConfig::default().devices(1));
//! let dev = platform.device(0);
//! let queue = platform.queue(0, vgpu::timing::DriverProfile::opencl());
//!
//! let buf = dev.alloc::<f32>(1024).unwrap();
//! queue.enqueue_write(&buf, &vec![1.0f32; 1024]).unwrap();
//!
//! let program = vgpu::Program::from_source("square", "__kernel void square(__global float* x) { ... }");
//! let kernel = queue.build_kernel(&program, {
//!     let buf = buf.clone();
//!     std::sync::Arc::new(move |wg: &vgpu::WorkGroup| {
//!         wg.for_each_item(|item| {
//!             if !item.in_bounds() { return; }
//!             let i = item.global_id(0);
//!             let v = item.read(&buf, i);
//!             item.write(&buf, i, v * v);
//!             item.work(1);
//!         });
//!     })
//! }).unwrap();
//!
//! queue.launch(&kernel, NDRange::linear(1024, 256)).unwrap();
//! let mut out = vec![0.0f32; 1024];
//! queue.enqueue_read(&buf, &mut out).unwrap();
//! assert!(out.iter().all(|&v| v == 1.0));
//! ```

pub mod buffer;
pub mod compiler;
pub mod device;
pub mod error;
pub mod exec;
pub mod kernel;
pub mod local;
pub mod platform;
pub mod pool;
pub mod profiling;
pub mod queue;
pub mod timing;
pub mod topology;
pub mod types;

pub use buffer::Buffer;
pub use compiler::{BuildOutcome, CompiledKernel, Program};
pub use device::{Device, DeviceSpec, DeviceTimeline};
pub use error::{Error, Result};
pub use exec::{AccessSummary, LaunchStats};
pub use kernel::{Item, KernelBody, NDRange, WorkGroup};
pub use local::LocalBuf;
pub use platform::{Platform, PlatformConfig};
pub use profiling::{
    compute_copy_overlap_s, engine_usage, trace_window, verify_engine_exclusive,
    verify_engine_utilization, AccessRange, CmdKind, CommandObserver, CommandRecord, EngineUsage,
    StatsSnapshot,
};
pub use queue::{CommandQueue, Event, EventKind};
pub use timing::{DriverProfile, EngineKind};
pub use types::{BufferId, DeviceId, Scalar};

/// Commonly used items, for glob import in examples and downstream crates.
pub mod prelude {
    pub use crate::{
        Buffer, CommandQueue, Device, DeviceId, DeviceSpec, DriverProfile, Error, Item, NDRange,
        Platform, PlatformConfig, Program, Result, Scalar, WorkGroup,
    };
}
