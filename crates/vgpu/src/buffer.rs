//! Typed device (global-memory) buffers.
//!
//! A [`Buffer<T>`] behaves like GPU global memory: concurrently executing
//! work-groups may read anywhere and write *disjoint* locations without
//! synchronisation, and cross-work-item accumulation must go through the
//! atomic operations — exactly the contract real CUDA/OpenCL code (and the
//! paper's OSEM kernel, which uses `atomicAdd` on the error image) lives
//! with. Bounds are always checked; out-of-bounds access panics rather than
//! corrupting neighbouring allocations.

use crate::types::{BufferId, DeviceId, Scalar};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Process-wide allocation id counter; ids start at 1 so 0 can mean "no
/// buffer" in diagnostics.
static NEXT_BUFFER_ID: AtomicU64 = AtomicU64::new(1);

struct BufferInner<T> {
    id: BufferId,
    device: DeviceId,
    data: Box<[UnsafeCell<T>]>,
    /// Shared with the owning device's allocator for dealloc accounting.
    device_used: Arc<AtomicUsize>,
    bytes: usize,
}

// SAFETY: access discipline is the GPU global-memory contract — racing
// writes to the same element are forbidden by construction of the kernels
// (and checked in tests via deterministic results); all other concurrent
// access patterns are plain loads/stores of `Copy` data.
unsafe impl<T: Scalar> Send for BufferInner<T> {}
unsafe impl<T: Scalar> Sync for BufferInner<T> {}

impl<T> Drop for BufferInner<T> {
    fn drop(&mut self) {
        self.device_used.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// A handle to a typed allocation in one device's global memory.
///
/// Cloning the handle is cheap (`Arc`); the allocation is freed when the
/// last handle drops, decrementing the device's memory accounting.
pub struct Buffer<T: Scalar> {
    inner: Arc<BufferInner<T>>,
}

impl<T: Scalar> Clone for Buffer<T> {
    fn clone(&self) -> Self {
        Buffer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Scalar> std::fmt::Debug for Buffer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Buffer")
            .field("device", &self.inner.device)
            .field("len", &self.len())
            .field("elem", &T::TYPE_NAME)
            .finish()
    }
}

impl<T: Scalar> Buffer<T> {
    pub(crate) fn new_zeroed(device: DeviceId, len: usize, device_used: Arc<AtomicUsize>) -> Self {
        let data: Box<[UnsafeCell<T>]> = (0..len).map(|_| UnsafeCell::new(T::default())).collect();
        Buffer {
            inner: Arc::new(BufferInner {
                id: BufferId(NEXT_BUFFER_ID.fetch_add(1, Ordering::Relaxed)),
                device,
                data,
                device_used,
                bytes: len * std::mem::size_of::<T>(),
            }),
        }
    }

    /// This allocation's process-unique identity — what the timeline trace
    /// records as the read/write set of each command.
    pub fn id(&self) -> BufferId {
        self.inner.id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.inner.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.data.is_empty()
    }

    /// Size of the allocation in bytes.
    pub fn size_bytes(&self) -> usize {
        self.inner.bytes
    }

    /// The device owning this allocation.
    pub fn device(&self) -> DeviceId {
        self.inner.device
    }

    /// Do two handles refer to the same allocation? (Copies between a
    /// buffer and itself at the same offset are no-ops callers may elide.)
    pub fn same_allocation(&self, other: &Buffer<T>) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    #[inline]
    fn cell(&self, i: usize) -> &UnsafeCell<T> {
        &self.inner.data[i] // bounds-checked by the slice index
    }

    /// Read element `i` (global-memory load).
    #[inline]
    pub fn get(&self, i: usize) -> T {
        // SAFETY: plain load of Copy data; see type-level contract.
        unsafe { *self.cell(i).get() }
    }

    /// Write element `i` (global-memory store).
    #[inline]
    pub fn set(&self, i: usize, v: T) {
        // SAFETY: see type-level contract (disjoint-write discipline).
        unsafe { *self.cell(i).get() = v }
    }

    /// Copy the whole buffer to a fresh host vector.
    pub fn to_vec(&self) -> Vec<T> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Copy from a host slice of exactly `len()` elements.
    pub fn write_from_host(&self, src: &[T]) -> crate::Result<()> {
        if src.len() != self.len() {
            return Err(crate::Error::SizeMismatch {
                expected: self.len(),
                actual: src.len(),
            });
        }
        for (i, v) in src.iter().enumerate() {
            self.set(i, *v);
        }
        Ok(())
    }

    /// Copy a host slice into the buffer starting at `offset`.
    pub fn write_range_from_host(&self, offset: usize, src: &[T]) -> crate::Result<()> {
        if offset + src.len() > self.len() {
            return Err(crate::Error::OutOfBounds {
                index: offset + src.len(),
                len: self.len(),
            });
        }
        for (i, v) in src.iter().enumerate() {
            self.set(offset + i, *v);
        }
        Ok(())
    }

    /// Copy the whole buffer into a host slice of exactly `len()` elements.
    pub fn read_into_host(&self, dst: &mut [T]) -> crate::Result<()> {
        if dst.len() != self.len() {
            return Err(crate::Error::SizeMismatch {
                expected: self.len(),
                actual: dst.len(),
            });
        }
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.get(i);
        }
        Ok(())
    }

    /// Copy `[offset, offset+dst.len())` into a host slice.
    pub fn read_range_into_host(&self, offset: usize, dst: &mut [T]) -> crate::Result<()> {
        if offset + dst.len() > self.len() {
            return Err(crate::Error::OutOfBounds {
                index: offset + dst.len(),
                len: self.len(),
            });
        }
        for (i, d) in dst.iter_mut().enumerate() {
            *d = self.get(offset + i);
        }
        Ok(())
    }

    /// Fill every element with `v` (like `clEnqueueFillBuffer`).
    pub fn fill(&self, v: T) {
        for i in 0..self.len() {
            self.set(i, v);
        }
    }
}

impl Buffer<f32> {
    /// Atomic add on an `f32` element, as CUDA's `atomicAdd(float*)`.
    ///
    /// Implemented as a compare-exchange loop on the IEEE-754 bit pattern,
    /// which is exactly how pre-Kepler GPUs emulated it.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: f32) {
        let cell = self.cell(i);
        // SAFETY: UnsafeCell<f32> and AtomicU32 have the same size and
        // alignment; all concurrent accesses to this element during a launch
        // go through this atomic path.
        let atom: &AtomicU32 = unsafe { &*(cell.get() as *const f32 as *const AtomicU32) };
        let mut cur = atom.load(Ordering::Relaxed);
        loop {
            let next = f32::to_bits(f32::from_bits(cur) + v);
            match atom.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

impl Buffer<u32> {
    /// Atomic add on a `u32` element (returns the previous value), as
    /// OpenCL's `atomic_add`.
    #[inline]
    pub fn atomic_add(&self, i: usize, v: u32) -> u32 {
        let cell = self.cell(i);
        // SAFETY: as in `Buffer::<f32>::atomic_add`.
        let atom: &AtomicU32 = unsafe { &*(cell.get() as *const u32 as *const AtomicU32) };
        atom.fetch_add(v, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn mk<T: Scalar>(len: usize) -> Buffer<T> {
        Buffer::new_zeroed(DeviceId(0), len, Arc::new(AtomicUsize::new(0)))
    }

    #[test]
    fn zero_initialised() {
        let b = mk::<f32>(8);
        assert_eq!(b.to_vec(), vec![0.0; 8]);
    }

    #[test]
    fn get_set_roundtrip() {
        let b = mk::<i32>(4);
        b.set(2, -7);
        assert_eq!(b.get(2), -7);
        assert_eq!(b.get(0), 0);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_get_panics() {
        let b = mk::<f32>(4);
        let _ = b.get(4);
    }

    #[test]
    fn host_copies_check_sizes() {
        let b = mk::<f32>(4);
        assert!(b.write_from_host(&[1.0, 2.0, 3.0]).is_err());
        b.write_from_host(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut out = vec![0.0; 3];
        assert!(b.read_into_host(&mut out).is_err());
        let mut out = vec![0.0; 4];
        b.read_into_host(&mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn ranged_copies() {
        let b = mk::<u32>(6);
        b.write_range_from_host(2, &[9, 8]).unwrap();
        assert_eq!(b.to_vec(), vec![0, 0, 9, 8, 0, 0]);
        let mut out = [0u32; 2];
        b.read_range_into_host(2, &mut out).unwrap();
        assert_eq!(out, [9, 8]);
        assert!(b.write_range_from_host(5, &[1, 2]).is_err());
        assert!(b.read_range_into_host(5, &mut out).is_err());
    }

    #[test]
    fn fill_sets_all() {
        let b = mk::<f32>(5);
        b.fill(2.5);
        assert!(b.to_vec().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn atomic_add_f32_from_many_threads() {
        let b = mk::<f32>(1);
        let threads = 8;
        let per = 10_000;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let b = b.clone();
                s.spawn(move || {
                    for _ in 0..per {
                        b.atomic_add(0, 1.0);
                    }
                });
            }
        });
        assert_eq!(b.get(0), (threads * per) as f32);
    }

    #[test]
    fn atomic_add_u32_returns_previous() {
        let b = mk::<u32>(1);
        assert_eq!(b.atomic_add(0, 5), 0);
        assert_eq!(b.atomic_add(0, 7), 5);
        assert_eq!(b.get(0), 12);
    }

    #[test]
    fn dealloc_decrements_device_accounting() {
        let used = Arc::new(AtomicUsize::new(1000));
        let b = Buffer::<f32>::new_zeroed(DeviceId(0), 10, Arc::clone(&used));
        assert_eq!(b.size_bytes(), 40);
        drop(b);
        assert_eq!(used.load(Ordering::Relaxed), 960);
    }

    #[test]
    fn clone_shares_storage() {
        let a = mk::<i32>(2);
        let b = a.clone();
        a.set(0, 42);
        assert_eq!(b.get(0), 42);
    }
}
