//! Platform-wide profiling counters and the opt-in timeline trace.
//!
//! The lazy-copying experiment (E8) and the documentation claims of the
//! paper ("before every data transfer, the vector implementation checks
//! whether the data transfer is necessary; only then the data is actually
//! transferred") are verified against these counters: tests assert on the
//! *number and volume* of transfers, not just on results.
//!
//! The [`CommandRecord`] trace serves the async-overlap subsystem the same
//! way: with tracing enabled, every scheduled command logs which engine of
//! which device it occupied for which virtual interval, so tests and the
//! `fig_overlap` bench can assert that two commands never overlap on the
//! same engine of one device — and that overlapped schedules really do run
//! copies under kernels.

use crate::timing::EngineKind;
use crate::types::DeviceId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One scheduled command in the timeline trace: the virtual interval it
/// occupied on one engine of one device. Commands staging through the host
/// (device-to-device copies) log one record per device they occupy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommandRecord {
    pub device: DeviceId,
    pub engine: EngineKind,
    pub start_s: f64,
    pub end_s: f64,
}

/// Check engine exclusivity over a recorded trace: no two commands may
/// overlap on the same engine of one device, and every interval must be
/// well-formed. Returns a description of the first violation, or `None`
/// when the trace is physical — test suites assert
/// `verify_engine_exclusive(&trace).is_none()`.
pub fn verify_engine_exclusive(trace: &[CommandRecord]) -> Option<String> {
    let mut lanes: std::collections::HashMap<(DeviceId, EngineKind), Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for r in trace {
        if !(r.start_s >= 0.0 && r.end_s >= r.start_s) {
            return Some(format!(
                "malformed interval [{}, {}] on device {:?} {:?}",
                r.start_s, r.end_s, r.device, r.engine
            ));
        }
        lanes
            .entry((r.device, r.engine))
            .or_default()
            .push((r.start_s, r.end_s));
    }
    for ((device, engine), mut spans) in lanes {
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 + 1e-12 {
                return Some(format!(
                    "device {device:?} {engine:?} engine runs two commands at once: \
                     [{}, {}] overlaps [{}, {}]",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
    }
    None
}

/// Monotonic counters; cheap to bump from any thread.
#[derive(Debug, Default)]
pub struct Stats {
    pub h2d_transfers: AtomicU64,
    pub h2d_bytes: AtomicU64,
    pub d2h_transfers: AtomicU64,
    pub d2h_bytes: AtomicU64,
    pub d2d_transfers: AtomicU64,
    pub d2d_bytes: AtomicU64,
    pub kernel_launches: AtomicU64,
    pub source_builds: AtomicU64,
    pub cache_loads: AtomicU64,
    /// Virtual nanoseconds spent building programs (compiles + cache
    /// loads); lets harnesses separate one-time build cost from steady-state
    /// compute when runs are too short to amortise it.
    pub build_virtual_ns: AtomicU64,
    /// Timeline trace: `None` until enabled (tracing costs memory, so
    /// figures and tests opt in per platform).
    trace: Mutex<Option<Vec<CommandRecord>>>,
}

impl Stats {
    /// Start recording per-engine command intervals (clears any prior
    /// trace).
    pub fn enable_trace(&self) {
        *self.trace.lock() = Some(Vec::new());
    }

    /// Take the recorded trace, leaving tracing enabled with an empty log.
    /// Returns an empty vec when tracing was never enabled.
    pub fn take_trace(&self) -> Vec<CommandRecord> {
        match self.trace.lock().as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Drop any recorded commands but keep tracing enabled (called between
    /// bench repetitions alongside the clock reset).
    pub fn clear_trace(&self) {
        if let Some(t) = self.trace.lock().as_mut() {
            t.clear();
        }
    }

    /// Log one scheduled command; no-op unless tracing is enabled.
    pub fn record_command(&self, device: DeviceId, engine: EngineKind, start_s: f64, end_s: f64) {
        if let Some(t) = self.trace.lock().as_mut() {
            t.push(CommandRecord {
                device,
                engine,
                start_s,
                end_s,
            });
        }
    }
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            h2d_transfers: self.h2d_transfers.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_transfers: self.d2h_transfers.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            d2d_transfers: self.d2d_transfers.load(Ordering::Relaxed),
            d2d_bytes: self.d2d_bytes.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            source_builds: self.source_builds.load(Ordering::Relaxed),
            cache_loads: self.cache_loads.load(Ordering::Relaxed),
            build_virtual_ns: self.build_virtual_ns.load(Ordering::Relaxed),
        }
    }

    pub fn add_h2d(&self, bytes: usize) {
        self.h2d_transfers.fetch_add(1, Ordering::Relaxed);
        self.h2d_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn add_d2h(&self, bytes: usize) {
        self.d2h_transfers.fetch_add(1, Ordering::Relaxed);
        self.d2h_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn add_d2d(&self, bytes: usize) {
        self.d2d_transfers.fetch_add(1, Ordering::Relaxed);
        self.d2d_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters; subtract two snapshots to measure
/// a region of interest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub h2d_transfers: u64,
    pub h2d_bytes: u64,
    pub d2h_transfers: u64,
    pub d2h_bytes: u64,
    pub d2d_transfers: u64,
    pub d2d_bytes: u64,
    pub kernel_launches: u64,
    pub source_builds: u64,
    pub cache_loads: u64,
    pub build_virtual_ns: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;
    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            h2d_transfers: self.h2d_transfers - rhs.h2d_transfers,
            h2d_bytes: self.h2d_bytes - rhs.h2d_bytes,
            d2h_transfers: self.d2h_transfers - rhs.d2h_transfers,
            d2h_bytes: self.d2h_bytes - rhs.d2h_bytes,
            d2d_transfers: self.d2d_transfers - rhs.d2d_transfers,
            d2d_bytes: self.d2d_bytes - rhs.d2d_bytes,
            kernel_launches: self.kernel_launches - rhs.kernel_launches,
            source_builds: self.source_builds - rhs.source_builds,
            cache_loads: self.cache_loads - rhs.cache_loads,
            build_virtual_ns: self.build_virtual_ns - rhs.build_virtual_ns,
        }
    }
}

impl StatsSnapshot {
    /// Total bytes moved across any link.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes + self.d2d_bytes
    }

    /// Total number of transfers of any kind.
    pub fn total_transfers(&self) -> u64 {
        self.h2d_transfers + self.d2h_transfers + self.d2d_transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::default();
        s.add_h2d(100);
        s.add_h2d(50);
        s.add_d2h(10);
        s.add_d2d(7);
        let snap = s.snapshot();
        assert_eq!(snap.h2d_transfers, 2);
        assert_eq!(snap.h2d_bytes, 150);
        assert_eq!(snap.d2h_transfers, 1);
        assert_eq!(snap.d2d_bytes, 7);
        assert_eq!(snap.total_transfer_bytes(), 167);
        assert_eq!(snap.total_transfers(), 4);
    }

    #[test]
    fn snapshot_subtraction_isolates_a_region() {
        let s = Stats::default();
        s.add_h2d(100);
        let before = s.snapshot();
        s.add_h2d(1);
        s.add_d2h(2);
        let delta = s.snapshot() - before;
        assert_eq!(delta.h2d_transfers, 1);
        assert_eq!(delta.h2d_bytes, 1);
        assert_eq!(delta.d2h_bytes, 2);
    }
}
