//! Platform-wide profiling counters and the opt-in timeline trace.
//!
//! The lazy-copying experiment (E8) and the documentation claims of the
//! paper ("before every data transfer, the vector implementation checks
//! whether the data transfer is necessary; only then the data is actually
//! transferred") are verified against these counters: tests assert on the
//! *number and volume* of transfers, not just on results.
//!
//! The [`CommandRecord`] trace serves the async-overlap subsystem the same
//! way: with tracing enabled, every scheduled command logs which engine of
//! which device it occupied for which virtual interval, so tests and the
//! `fig_overlap` bench can assert that two commands never overlap on the
//! same engine of one device — and that overlapped schedules really do run
//! copies under kernels.
//!
//! On top of the raw trace this module provides the analysis primitives the
//! observability layer is built from: per-engine busy time and utilization
//! ([`engine_usage`]), compute/copy overlap per device
//! ([`compute_copy_overlap_s`]), and the invariant checkers
//! ([`verify_engine_exclusive`], [`verify_engine_utilization`]).
//!
//! # Clock-epoch semantics
//!
//! [`crate::Platform::reset_clocks`] starts a new *clock epoch*: all virtual
//! clocks rewind to zero and the timeline trace is cleared, so the trace
//! only ever contains records of the current epoch. The monotonic counters
//! in [`Stats`] deliberately survive a reset — they are lifetime totals, and
//! harnesses isolate a region by subtracting [`StatsSnapshot`]s instead.

use crate::queue::EventKind;
use crate::timing::EngineKind;
use crate::types::{BufferId, DeviceId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// What kind of command a [`CommandRecord`] describes — the trace-level
/// classification the hazard detector keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// Host-to-device transfer (`clEnqueueWriteBuffer`).
    H2D,
    /// Device-to-host transfer (`clEnqueueReadBuffer`).
    D2H,
    /// Device-side fill (`clEnqueueFillBuffer`).
    Fill,
    /// Kernel launch.
    Kernel,
    /// Device-to-device copy (one record per device it occupies).
    D2D,
    /// Zero-duration device-wide join point (`clEnqueueMarker`).
    Marker,
}

impl CmdKind {
    /// The trace classification of a scheduled event. `Build` events never
    /// reach the scheduler (compilation is host-side), so they fold into
    /// `Marker` rather than forcing callers to handle an impossible case.
    pub fn from_event(kind: EventKind) -> CmdKind {
        match kind {
            EventKind::WriteBuffer => CmdKind::H2D,
            EventKind::ReadBuffer => CmdKind::D2H,
            EventKind::FillBuffer => CmdKind::Fill,
            EventKind::Kernel => CmdKind::Kernel,
            EventKind::CopyD2D => CmdKind::D2D,
            EventKind::Build { .. } | EventKind::Marker => CmdKind::Marker,
        }
    }
}

/// A byte range `[lo, hi)` of one device allocation that a command reads or
/// writes. Transfers record their exact range; kernels record the min/max
/// envelope of addresses each launch actually touched, so disjoint-range
/// accesses to one buffer (e.g. halo rows vs. owned rows) do not conflict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessRange {
    pub buffer: BufferId,
    pub lo: u64,
    pub hi: u64,
}

impl AccessRange {
    pub fn new(buffer: BufferId, lo: u64, hi: u64) -> Self {
        AccessRange { buffer, lo, hi }
    }

    /// The whole allocation of `bytes` bytes.
    pub fn whole(buffer: BufferId, bytes: usize) -> Self {
        AccessRange {
            buffer,
            lo: 0,
            hi: bytes as u64,
        }
    }

    /// Do two ranges touch overlapping bytes of the same allocation?
    pub fn overlaps(&self, other: &AccessRange) -> bool {
        self.buffer == other.buffer && self.lo < other.hi && other.lo < self.hi
    }
}

/// One scheduled command in the timeline trace: the virtual interval it
/// occupied on one engine of one device, plus everything a checker needs to
/// reconstruct the happens-before order — stream identity, explicit event
/// dependencies (by `seq`), and the byte ranges of device memory the command
/// read and wrote. Commands occupying two devices (cross-device copies) log
/// one record per device under a single shared `seq`.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandRecord {
    pub device: DeviceId,
    pub engine: EngineKind,
    pub start_s: f64,
    pub end_s: f64,
    /// Process-wide command sequence number (1-based); `0` marks a record
    /// built outside the scheduler (tests, synthetic traces).
    pub seq: u64,
    /// The in-order stream this command was enqueued on, if any (platform
    /// copies are streamless).
    pub stream: Option<u64>,
    pub kind: CmdKind,
    /// Device-serializing (classic enqueue): ordered after *everything*
    /// previously scheduled on its device. Async commands are ordered only
    /// by stream and explicit deps.
    pub serializing: bool,
    /// Host-clock time at enqueue.
    pub enqueue_host_s: f64,
    /// The host-synchronisation watermark at enqueue: every command that
    /// *ended* at or before this virtual time is happens-before this one,
    /// because the host observably waited for it (blocking read, `finish`,
    /// `sync_all`) before issuing this command.
    pub host_sync_s: f64,
    /// `seq`s of the events this command explicitly waited on.
    pub deps: Vec<u64>,
    pub reads: Vec<AccessRange>,
    pub writes: Vec<AccessRange>,
    /// Human-readable tag (kernel name, "h2d", …) for diagnostics.
    pub label: String,
}

impl CommandRecord {
    /// A record with only the occupancy interval filled in — the pre-PR-9
    /// schema. Checker-facing fields get neutral defaults: `seq` 0 (outside
    /// the scheduler), no stream, `serializing` true, empty access sets,
    /// kind inferred from the engine.
    pub fn interval(device: DeviceId, engine: EngineKind, start_s: f64, end_s: f64) -> Self {
        CommandRecord {
            device,
            engine,
            start_s,
            end_s,
            seq: 0,
            stream: None,
            kind: match engine {
                EngineKind::Compute => CmdKind::Kernel,
                EngineKind::Copy => CmdKind::H2D,
            },
            serializing: true,
            enqueue_host_s: 0.0,
            host_sync_s: 0.0,
            deps: Vec::new(),
            reads: Vec::new(),
            writes: Vec::new(),
            label: String::new(),
        }
    }

    pub fn with_seq(mut self, seq: u64) -> Self {
        self.seq = seq;
        self
    }

    pub fn on_stream(mut self, stream: u64) -> Self {
        self.stream = Some(stream);
        self
    }

    pub fn with_kind(mut self, kind: CmdKind) -> Self {
        self.kind = kind;
        self
    }

    /// Mark the command async (not device-serializing).
    pub fn asynchronous(mut self) -> Self {
        self.serializing = false;
        self
    }

    pub fn at_enqueue(mut self, host_s: f64) -> Self {
        self.enqueue_host_s = host_s;
        self
    }

    pub fn with_host_sync(mut self, host_sync_s: f64) -> Self {
        self.host_sync_s = host_sync_s;
        self
    }

    pub fn with_deps(mut self, deps: Vec<u64>) -> Self {
        self.deps = deps;
        self
    }

    pub fn with_reads(mut self, reads: Vec<AccessRange>) -> Self {
        self.reads = reads;
        self
    }

    pub fn with_writes(mut self, writes: Vec<AccessRange>) -> Self {
        self.writes = writes;
        self
    }

    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }
}

/// A callback invoked under the trace lock with each group of records as it
/// is scheduled — one slice per command, or one slice covering both records
/// of a cross-device copy. Groups are delivered in a valid linearization of
/// the enqueue order, which is what the online hazard checker needs.
pub type CommandObserver = Arc<dyn Fn(&[CommandRecord]) + Send + Sync>;

/// `Option<CommandObserver>` with `Debug`/`Default` so [`Stats`] can keep
/// deriving both.
#[derive(Default)]
struct ObserverSlot(Option<CommandObserver>);

impl std::fmt::Debug for ObserverSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "CommandObserver(set)"
        } else {
            "CommandObserver(unset)"
        })
    }
}

fn engine_rank(e: EngineKind) -> u8 {
    match e {
        EngineKind::Compute => 0,
        EngineKind::Copy => 1,
    }
}

/// Check engine exclusivity over a recorded trace: no two commands may
/// overlap on the same engine of one device, and every interval must be
/// well-formed. Returns a description of **every** violation (one per line),
/// or `None` when the trace is physical — test suites assert
/// `verify_engine_exclusive(&trace).is_none()`.
pub fn verify_engine_exclusive(trace: &[CommandRecord]) -> Option<String> {
    let mut violations = Vec::new();
    let mut lanes: std::collections::HashMap<(DeviceId, EngineKind), Vec<(f64, f64)>> =
        std::collections::HashMap::new();
    for r in trace {
        if r.kind == CmdKind::Marker {
            // Markers are synchronization points, not engine work: they
            // occupy no engine and may sit inside another command's span.
            continue;
        }
        if !(r.start_s >= 0.0 && r.end_s >= r.start_s) {
            violations.push(format!(
                "malformed interval [{}, {}] on device {:?} {:?}",
                r.start_s, r.end_s, r.device, r.engine
            ));
            continue;
        }
        lanes
            .entry((r.device, r.engine))
            .or_default()
            .push((r.start_s, r.end_s));
    }
    let mut keys: Vec<_> = lanes.keys().copied().collect();
    keys.sort_by_key(|(d, e)| (*d, engine_rank(*e)));
    for key in keys {
        let (device, engine) = key;
        let spans = lanes.get_mut(&key).unwrap();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 + 1e-12 {
                violations.push(format!(
                    "device {device:?} {engine:?} engine runs two commands at once: \
                     [{}, {}] overlaps [{}, {}]",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
    }
    if violations.is_empty() {
        None
    } else {
        Some(violations.join("\n"))
    }
}

/// Trace-derived occupancy of one engine of one device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineUsage {
    pub device: DeviceId,
    pub engine: EngineKind,
    /// Number of commands recorded on this lane.
    pub commands: usize,
    /// Total busy seconds (plain sum of interval lengths; equals the union
    /// length when the trace is engine-exclusive).
    pub busy_s: f64,
}

impl EngineUsage {
    /// Fraction of `window_s` this engine was busy. On an engine-exclusive
    /// trace whose records fall inside the window this is in `[0, 1]`.
    pub fn utilization(&self, window_s: f64) -> f64 {
        if window_s <= 0.0 {
            if self.busy_s > 0.0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.busy_s / window_s
        }
    }
}

/// Summarise a trace into per-(device, engine) busy time, sorted by device
/// then engine (compute before copy). Lanes with no commands are absent.
pub fn engine_usage(trace: &[CommandRecord]) -> Vec<EngineUsage> {
    let mut lanes: std::collections::HashMap<(DeviceId, EngineKind), (usize, f64)> =
        std::collections::HashMap::new();
    for r in trace {
        if r.kind == CmdKind::Marker {
            continue; // markers occupy no engine
        }
        let e = lanes.entry((r.device, r.engine)).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += (r.end_s - r.start_s).max(0.0);
    }
    let mut out: Vec<EngineUsage> = lanes
        .into_iter()
        .map(|((device, engine), (commands, busy_s))| EngineUsage {
            device,
            engine,
            commands,
            busy_s,
        })
        .collect();
    out.sort_by_key(|u| (u.device, engine_rank(u.engine)));
    out
}

/// The `[min start, max end]` window covered by a trace, or `None` for an
/// empty trace.
pub fn trace_window(trace: &[CommandRecord]) -> Option<(f64, f64)> {
    let mut it = trace.iter();
    let first = it.next()?;
    let mut lo = first.start_s;
    let mut hi = first.end_s;
    for r in it {
        lo = lo.min(r.start_s);
        hi = hi.max(r.end_s);
    }
    Some((lo, hi))
}

/// Merge possibly-overlapping intervals into a disjoint, sorted union.
fn merge_intervals(mut spans: Vec<(f64, f64)>) -> Vec<(f64, f64)> {
    spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(spans.len());
    for (s, e) in spans {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two disjoint sorted interval sets.
fn intersection_len(a: &[(f64, f64)], b: &[(f64, f64)]) -> f64 {
    let (mut i, mut j, mut total) = (0, 0, 0.0);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 < b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Seconds during which *both* engines of a device were busy at once —
/// the copies-under-kernels overlap the async subsystem exists to create.
/// Returns one `(device, overlap seconds)` entry per device present in the
/// trace, sorted by device.
pub fn compute_copy_overlap_s(trace: &[CommandRecord]) -> Vec<(DeviceId, f64)> {
    type Lanes = (Vec<(f64, f64)>, Vec<(f64, f64)>);
    let mut per_dev: std::collections::HashMap<DeviceId, Lanes> = std::collections::HashMap::new();
    for r in trace {
        let e = per_dev.entry(r.device).or_default();
        let lane = match r.engine {
            EngineKind::Compute => &mut e.0,
            EngineKind::Copy => &mut e.1,
        };
        lane.push((r.start_s, r.end_s));
    }
    let mut out: Vec<(DeviceId, f64)> = per_dev
        .into_iter()
        .map(|(dev, (compute, copy))| {
            let c = merge_intervals(compute);
            let k = merge_intervals(copy);
            (dev, intersection_len(&c, &k))
        })
        .collect();
    out.sort_by_key(|(d, _)| *d);
    out
}

/// Engine-utilization invariant: over a window of `window_s` seconds every
/// engine's busy time must be a fraction in `[0, 1]` — more than 100 %
/// means two commands shared one engine (a scheduling bug), and a negative
/// value means a malformed interval. Returns all violations (one per line)
/// or `None`. The window must be positive and cover the trace.
pub fn verify_engine_utilization(trace: &[CommandRecord], window_s: f64) -> Option<String> {
    let mut violations = Vec::new();
    if window_s <= 0.0 && !trace.is_empty() {
        violations.push(format!("non-positive utilization window {window_s}"));
    }
    if let Some((lo, hi)) = trace_window(trace) {
        if lo < -1e-12 || hi > window_s + 1e-9 {
            violations.push(format!(
                "trace window [{lo}, {hi}] escapes the measurement window [0, {window_s}]"
            ));
        }
    }
    for u in engine_usage(trace) {
        let util = u.utilization(window_s);
        if !(0.0..=1.0 + 1e-9).contains(&util) {
            violations.push(format!(
                "device {:?} {:?} engine utilization {util:.4} outside [0, 1] \
                 (busy {:.6e} s over {window_s:.6e} s)",
                u.device, u.engine, u.busy_s
            ));
        }
    }
    if violations.is_empty() {
        None
    } else {
        Some(violations.join("\n"))
    }
}

/// Monotonic counters; cheap to bump from any thread.
#[derive(Debug, Default)]
pub struct Stats {
    pub h2d_transfers: AtomicU64,
    pub h2d_bytes: AtomicU64,
    pub d2h_transfers: AtomicU64,
    pub d2h_bytes: AtomicU64,
    pub d2d_transfers: AtomicU64,
    pub d2d_bytes: AtomicU64,
    pub kernel_launches: AtomicU64,
    /// Modeled compute-unit cycles consumed by kernels (sum of each
    /// launch's critical-path `max_cu_cycles`, rounded); the numerator of
    /// the roofline compute-intensity report.
    pub kernel_cu_cycles: AtomicU64,
    /// Global-memory traffic generated by kernels in bytes — the roofline
    /// bandwidth numerator (distinct from PCIe transfer bytes above).
    pub kernel_global_bytes: AtomicU64,
    /// Virtual nanoseconds of compute-engine occupancy by kernels
    /// (duration including launch overhead); busy time for queue-wait
    /// vs. busy accounting when the timeline trace is disabled.
    pub kernel_busy_ns: AtomicU64,
    pub source_builds: AtomicU64,
    pub cache_loads: AtomicU64,
    /// Virtual nanoseconds spent building programs (compiles + cache
    /// loads); lets harnesses separate one-time build cost from steady-state
    /// compute when runs are too short to amortise it.
    pub build_virtual_ns: AtomicU64,
    /// Timeline trace: `None` until enabled (tracing costs memory, so
    /// figures and tests opt in per platform).
    trace: Mutex<Option<Vec<CommandRecord>>>,
    /// Process-wide command sequence counter (see [`CommandRecord::seq`]).
    next_seq: AtomicU64,
    /// High-water mark of virtual times the host has *observably waited
    /// for*: bumped by blocking reads, `finish`, and `sync_all` — never by
    /// mere host-clock drift. The happens-before model's host-order edge.
    host_sync_s: Mutex<f64>,
    observer: Mutex<ObserverSlot>,
    /// Fast path: lets `record_group` skip the observer lock entirely when
    /// no observer is installed.
    observer_active: AtomicBool,
}

impl Stats {
    /// Allocate the next command sequence number (1-based). Every scheduled
    /// command consumes one, whether or not anything records it, so seq
    /// values stay comparable across trace enable/disable boundaries.
    pub fn next_seq(&self) -> u64 {
        self.next_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record that the host has synchronised with the virtual timeline up
    /// to `t` (blocking read, `finish`, `sync_all`).
    pub fn note_host_sync(&self, t: f64) {
        let mut w = self.host_sync_s.lock();
        if t > *w {
            *w = t;
        }
    }

    /// Current host-synchronisation watermark.
    pub fn host_synced_s(&self) -> f64 {
        *self.host_sync_s.lock()
    }

    /// Rewind the host-sync watermark (a new clock epoch — see
    /// [`crate::Platform::reset_clocks`]).
    pub fn reset_host_sync(&self) {
        *self.host_sync_s.lock() = 0.0;
    }

    /// Install (or, with `None`, remove) the command observer. The observer
    /// runs under the trace lock on the enqueuing thread — keep it cheap and
    /// never call back into trace accessors from inside it.
    pub fn set_observer(&self, obs: Option<CommandObserver>) {
        self.observer_active.store(obs.is_some(), Ordering::Relaxed);
        self.observer.lock().0 = obs;
    }

    /// Is any record sink live — the trace, an observer, or both? The queue
    /// layer only builds full records when this is true.
    pub fn sink_active(&self) -> bool {
        self.observer_active.load(Ordering::Relaxed) || self.trace.lock().is_some()
    }
    /// Start recording per-engine command intervals (clears any prior
    /// trace).
    pub fn enable_trace(&self) {
        *self.trace.lock() = Some(Vec::new());
    }

    /// Take the recorded trace, leaving tracing enabled with an empty log.
    /// Returns an empty vec when tracing was never enabled.
    pub fn take_trace(&self) -> Vec<CommandRecord> {
        match self.trace.lock().as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Copy the recorded trace *without* clearing it — for observers (span
    /// collectors, reports) that must not steal the records from the owner
    /// of the trace.
    pub fn trace_snapshot(&self) -> Vec<CommandRecord> {
        match self.trace.lock().as_ref() {
            Some(t) => t.clone(),
            None => Vec::new(),
        }
    }

    /// Number of commands recorded so far (0 when tracing is disabled).
    /// Spans remember this watermark on open so they can later slice their
    /// child commands out of the trace.
    pub fn trace_len(&self) -> usize {
        self.trace.lock().as_ref().map_or(0, |t| t.len())
    }

    /// Drop any recorded commands but keep tracing enabled (called between
    /// bench repetitions alongside the clock reset).
    pub fn clear_trace(&self) {
        if let Some(t) = self.trace.lock().as_mut() {
            t.clear();
        }
    }

    /// Log one scheduled command with only its occupancy interval; no-op
    /// unless a sink is active. Convenience wrapper over
    /// [`Stats::record_group`].
    pub fn record_command(&self, device: DeviceId, engine: EngineKind, start_s: f64, end_s: f64) {
        self.record_group(&[CommandRecord::interval(device, engine, start_s, end_s)]);
    }

    /// Log a group of records that together describe one command (two for a
    /// cross-device copy, one otherwise). The trace lock is held across both
    /// the trace append and the observer call, so observers see complete
    /// groups in a valid linearization of the enqueue order.
    pub fn record_group(&self, recs: &[CommandRecord]) {
        if recs.is_empty() {
            return;
        }
        let mut guard = self.trace.lock();
        if let Some(t) = guard.as_mut() {
            t.extend_from_slice(recs);
        }
        if self.observer_active.load(Ordering::Relaxed) {
            let obs = self.observer.lock().0.clone();
            if let Some(obs) = obs {
                obs(recs);
            }
        }
        drop(guard);
    }
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            h2d_transfers: self.h2d_transfers.load(Ordering::Relaxed),
            h2d_bytes: self.h2d_bytes.load(Ordering::Relaxed),
            d2h_transfers: self.d2h_transfers.load(Ordering::Relaxed),
            d2h_bytes: self.d2h_bytes.load(Ordering::Relaxed),
            d2d_transfers: self.d2d_transfers.load(Ordering::Relaxed),
            d2d_bytes: self.d2d_bytes.load(Ordering::Relaxed),
            kernel_launches: self.kernel_launches.load(Ordering::Relaxed),
            kernel_cu_cycles: self.kernel_cu_cycles.load(Ordering::Relaxed),
            kernel_global_bytes: self.kernel_global_bytes.load(Ordering::Relaxed),
            kernel_busy_ns: self.kernel_busy_ns.load(Ordering::Relaxed),
            source_builds: self.source_builds.load(Ordering::Relaxed),
            cache_loads: self.cache_loads.load(Ordering::Relaxed),
            build_virtual_ns: self.build_virtual_ns.load(Ordering::Relaxed),
        }
    }

    pub fn add_h2d(&self, bytes: usize) {
        self.h2d_transfers.fetch_add(1, Ordering::Relaxed);
        self.h2d_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn add_d2h(&self, bytes: usize) {
        self.d2h_transfers.fetch_add(1, Ordering::Relaxed);
        self.d2h_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub fn add_d2d(&self, bytes: usize) {
        self.d2d_transfers.fetch_add(1, Ordering::Relaxed);
        self.d2d_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Account one kernel launch for the roofline counters: `cu_cycles` of
    /// modeled compute, `global_bytes` of device-memory traffic, and
    /// `busy_s` of compute-engine occupancy (kernel + launch overhead).
    pub fn add_kernel(&self, cu_cycles: f64, global_bytes: u64, busy_s: f64) {
        self.kernel_launches.fetch_add(1, Ordering::Relaxed);
        self.kernel_cu_cycles
            .fetch_add(cu_cycles.round() as u64, Ordering::Relaxed);
        self.kernel_global_bytes
            .fetch_add(global_bytes, Ordering::Relaxed);
        self.kernel_busy_ns
            .fetch_add((busy_s * 1e9).round() as u64, Ordering::Relaxed);
    }
}

/// A point-in-time copy of the counters; subtract two snapshots to measure
/// a region of interest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    pub h2d_transfers: u64,
    pub h2d_bytes: u64,
    pub d2h_transfers: u64,
    pub d2h_bytes: u64,
    pub d2d_transfers: u64,
    pub d2d_bytes: u64,
    pub kernel_launches: u64,
    pub kernel_cu_cycles: u64,
    pub kernel_global_bytes: u64,
    pub kernel_busy_ns: u64,
    pub source_builds: u64,
    pub cache_loads: u64,
    pub build_virtual_ns: u64,
}

impl std::ops::Sub for StatsSnapshot {
    type Output = StatsSnapshot;
    fn sub(self, rhs: StatsSnapshot) -> StatsSnapshot {
        StatsSnapshot {
            h2d_transfers: self.h2d_transfers - rhs.h2d_transfers,
            h2d_bytes: self.h2d_bytes - rhs.h2d_bytes,
            d2h_transfers: self.d2h_transfers - rhs.d2h_transfers,
            d2h_bytes: self.d2h_bytes - rhs.d2h_bytes,
            d2d_transfers: self.d2d_transfers - rhs.d2d_transfers,
            d2d_bytes: self.d2d_bytes - rhs.d2d_bytes,
            kernel_launches: self.kernel_launches - rhs.kernel_launches,
            kernel_cu_cycles: self.kernel_cu_cycles - rhs.kernel_cu_cycles,
            kernel_global_bytes: self.kernel_global_bytes - rhs.kernel_global_bytes,
            kernel_busy_ns: self.kernel_busy_ns - rhs.kernel_busy_ns,
            source_builds: self.source_builds - rhs.source_builds,
            cache_loads: self.cache_loads - rhs.cache_loads,
            build_virtual_ns: self.build_virtual_ns - rhs.build_virtual_ns,
        }
    }
}

impl StatsSnapshot {
    /// Total bytes moved across any link.
    pub fn total_transfer_bytes(&self) -> u64 {
        self.h2d_bytes + self.d2h_bytes + self.d2d_bytes
    }

    /// Total number of transfers of any kind.
    pub fn total_transfers(&self) -> u64 {
        self.h2d_transfers + self.d2h_transfers + self.d2d_transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = Stats::default();
        s.add_h2d(100);
        s.add_h2d(50);
        s.add_d2h(10);
        s.add_d2d(7);
        let snap = s.snapshot();
        assert_eq!(snap.h2d_transfers, 2);
        assert_eq!(snap.h2d_bytes, 150);
        assert_eq!(snap.d2h_transfers, 1);
        assert_eq!(snap.d2d_bytes, 7);
        assert_eq!(snap.total_transfer_bytes(), 167);
        assert_eq!(snap.total_transfers(), 4);
    }

    #[test]
    fn snapshot_subtraction_isolates_a_region() {
        let s = Stats::default();
        s.add_h2d(100);
        let before = s.snapshot();
        s.add_h2d(1);
        s.add_d2h(2);
        let delta = s.snapshot() - before;
        assert_eq!(delta.h2d_transfers, 1);
        assert_eq!(delta.h2d_bytes, 1);
        assert_eq!(delta.d2h_bytes, 2);
    }

    #[test]
    fn kernel_counters_accumulate_roofline_inputs() {
        let s = Stats::default();
        s.add_kernel(1000.0, 4096, 1e-3);
        s.add_kernel(500.4, 1024, 2e-3);
        let snap = s.snapshot();
        assert_eq!(snap.kernel_launches, 2);
        assert_eq!(snap.kernel_cu_cycles, 1500);
        assert_eq!(snap.kernel_global_bytes, 5120);
        assert_eq!(snap.kernel_busy_ns, 3_000_000);
    }

    fn rec(dev: usize, engine: EngineKind, start: f64, end: f64) -> CommandRecord {
        CommandRecord::interval(DeviceId(dev), engine, start, end)
    }

    #[test]
    fn verify_reports_every_violating_pair() {
        let trace = vec![
            rec(0, EngineKind::Compute, 0.0, 2.0),
            rec(0, EngineKind::Compute, 1.0, 3.0),
            rec(1, EngineKind::Copy, 0.0, 1.0),
            rec(1, EngineKind::Copy, 0.5, 2.0),
            rec(2, EngineKind::Compute, 5.0, 4.0), // malformed
        ];
        let msg = verify_engine_exclusive(&trace).expect("violations expected");
        assert_eq!(
            msg.lines().count(),
            3,
            "all three violations reported:\n{msg}"
        );
        assert!(msg.contains("gpu0") || msg.contains("DeviceId(0)"), "{msg}");
        assert!(msg.contains("malformed"), "{msg}");
    }

    #[test]
    fn exclusive_trace_passes_both_invariants() {
        let trace = vec![
            rec(0, EngineKind::Compute, 0.0, 1.0),
            rec(0, EngineKind::Compute, 1.0, 2.0),
            rec(0, EngineKind::Copy, 0.5, 1.5),
        ];
        assert!(verify_engine_exclusive(&trace).is_none());
        assert!(verify_engine_utilization(&trace, 2.0).is_none());
    }

    #[test]
    fn engine_usage_sums_busy_time_per_lane() {
        let trace = vec![
            rec(0, EngineKind::Compute, 0.0, 1.0),
            rec(0, EngineKind::Compute, 2.0, 3.0),
            rec(0, EngineKind::Copy, 0.0, 0.5),
            rec(1, EngineKind::Compute, 0.0, 4.0),
        ];
        let usage = engine_usage(&trace);
        assert_eq!(usage.len(), 3);
        assert_eq!(usage[0].device, DeviceId(0));
        assert_eq!(usage[0].engine, EngineKind::Compute);
        assert!((usage[0].busy_s - 2.0).abs() < 1e-12);
        assert_eq!(usage[0].commands, 2);
        assert!((usage[1].busy_s - 0.5).abs() < 1e-12);
        assert!((usage[2].busy_s - 4.0).abs() < 1e-12);
        assert!((usage[0].utilization(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn utilization_over_one_is_a_violation() {
        // Two overlapping commands pack 4 busy seconds into a 3 s window.
        let trace = vec![
            rec(0, EngineKind::Compute, 0.0, 2.0),
            rec(0, EngineKind::Compute, 1.0, 3.0),
        ];
        let msg = verify_engine_utilization(&trace, 3.0).expect("violation expected");
        assert!(msg.contains("outside [0, 1]"), "{msg}");
    }

    #[test]
    fn trace_escaping_the_window_is_a_violation() {
        let trace = vec![rec(0, EngineKind::Compute, 0.0, 5.0)];
        let msg = verify_engine_utilization(&trace, 2.0).expect("violation expected");
        assert!(msg.contains("escapes"), "{msg}");
    }

    #[test]
    fn overlap_measures_concurrent_engine_time() {
        let trace = vec![
            rec(0, EngineKind::Compute, 0.0, 2.0),
            rec(0, EngineKind::Copy, 1.0, 3.0),
            rec(0, EngineKind::Copy, 5.0, 6.0),
            rec(1, EngineKind::Compute, 0.0, 1.0),
        ];
        let overlap = compute_copy_overlap_s(&trace);
        assert_eq!(overlap.len(), 2);
        assert_eq!(overlap[0].0, DeviceId(0));
        assert!((overlap[0].1 - 1.0).abs() < 1e-12);
        assert_eq!(overlap[1].1, 0.0);
    }

    #[test]
    fn record_group_feeds_observer_and_trace_atomically() {
        let s = Stats::default();
        assert!(!s.sink_active());
        let seen = Arc::new(Mutex::new(Vec::new()));
        {
            let seen = Arc::clone(&seen);
            s.set_observer(Some(Arc::new(move |g: &[CommandRecord]| {
                seen.lock().push(g.len());
            })));
        }
        assert!(s.sink_active(), "observer alone activates the sink");
        s.enable_trace();
        let a = rec(0, EngineKind::Copy, 0.0, 1.0).with_seq(s.next_seq());
        let b = rec(1, EngineKind::Copy, 0.0, 1.0).with_seq(a.seq);
        s.record_group(&[a, b]);
        s.record_command(DeviceId(0), EngineKind::Compute, 1.0, 2.0);
        assert_eq!(*seen.lock(), vec![2, 1]);
        assert_eq!(s.trace_len(), 3);
        s.set_observer(None);
        s.record_command(DeviceId(0), EngineKind::Compute, 2.0, 3.0);
        assert_eq!(*seen.lock(), vec![2, 1], "removed observer sees nothing");
    }

    #[test]
    fn host_sync_watermark_only_moves_forward_until_reset() {
        let s = Stats::default();
        assert_eq!(s.host_synced_s(), 0.0);
        s.note_host_sync(2.5);
        s.note_host_sync(1.0);
        assert_eq!(s.host_synced_s(), 2.5);
        s.reset_host_sync();
        assert_eq!(s.host_synced_s(), 0.0);
    }

    #[test]
    fn access_range_overlap_requires_same_buffer_and_bytes() {
        let a = AccessRange::new(crate::BufferId(1), 0, 8);
        assert!(a.overlaps(&AccessRange::new(crate::BufferId(1), 4, 12)));
        assert!(!a.overlaps(&AccessRange::new(crate::BufferId(1), 8, 12)));
        assert!(!a.overlaps(&AccessRange::new(crate::BufferId(2), 0, 8)));
        assert!(
            AccessRange::whole(crate::BufferId(3), 16).overlaps(&AccessRange::new(
                crate::BufferId(3),
                15,
                16
            ))
        );
    }

    #[test]
    fn trace_snapshot_does_not_steal_records() {
        let s = Stats::default();
        s.enable_trace();
        s.record_command(DeviceId(0), EngineKind::Compute, 0.0, 1.0);
        assert_eq!(s.trace_len(), 1);
        let snap = s.trace_snapshot();
        assert_eq!(snap.len(), 1);
        // The owner still gets the full trace afterwards.
        assert_eq!(s.take_trace().len(), 1);
        assert_eq!(s.trace_len(), 0);
    }
}
