//! In-order command queues and events, OpenCL style.
//!
//! A queue belongs to one device and carries one [`DriverProfile`] — the
//! same virtual hardware behaves as an "OpenCL device", a "CUDA device" or a
//! "SkelCL device" depending on the profile of the queue driving it, which
//! is exactly the comparison the paper performs on its single testbed.

use crate::buffer::Buffer;
use crate::compiler::{BuildOutcome, CompiledKernel, Program};
use crate::device::Device;
use crate::error::{Error, Result};
use crate::exec::{self, LaunchStats};
use crate::kernel::{KernelBody, NDRange};
use crate::platform::PlatformShared;
use crate::timing::DriverProfile;
use crate::types::Scalar;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// What a finished command was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    WriteBuffer,
    ReadBuffer,
    FillBuffer,
    Kernel,
    Build { from_cache: bool },
    CopyD2D,
}

/// A completed command with its virtual-timeline timestamps, like an OpenCL
/// event queried with `CL_PROFILING_COMMAND_START/END`.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    pub start_s: f64,
    pub end_s: f64,
    /// Present for kernel events: the executor's counters.
    pub launch: Option<LaunchStats>,
}

impl Event {
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// An in-order command queue on one device.
#[derive(Clone)]
pub struct CommandQueue {
    device: Arc<Device>,
    profile: DriverProfile,
    shared: Arc<PlatformShared>,
}

impl CommandQueue {
    pub(crate) fn new(
        device: Arc<Device>,
        profile: DriverProfile,
        shared: Arc<PlatformShared>,
    ) -> Self {
        CommandQueue {
            device,
            profile,
            shared,
        }
    }

    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    pub fn profile(&self) -> &DriverProfile {
        &self.profile
    }

    fn check_device<T: Scalar>(&self, buf: &Buffer<T>) -> Result<()> {
        if buf.device() != self.device.id() {
            return Err(Error::WrongDevice {
                expected: buf.device(),
                actual: self.device.id(),
            });
        }
        Ok(())
    }

    /// Upload a host slice into a device buffer (`clEnqueueWriteBuffer`).
    pub fn enqueue_write<T: Scalar>(&self, buf: &Buffer<T>, src: &[T]) -> Result<Event> {
        self.enqueue_write_concurrent(buf, src, 1)
    }

    /// Like [`CommandQueue::enqueue_write`], with a hint that `concurrent`
    /// transfers share the host bus right now (multi-device upload batches).
    pub fn enqueue_write_concurrent<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        src: &[T],
        concurrent: usize,
    ) -> Result<Event> {
        self.check_device(buf)?;
        buf.write_from_host(src)?;
        let bytes = std::mem::size_of_val(src);
        self.shared.stats.add_h2d(bytes);
        let dur = self.shared.topology.transfer_s(bytes, concurrent.max(1));
        let (start_s, end_s) = self
            .device
            .clock()
            .advance_from(self.shared.host_clock.now_s(), dur);
        Ok(Event {
            kind: EventKind::WriteBuffer,
            start_s,
            end_s,
            launch: None,
        })
    }

    /// Download a device buffer into a host slice (`clEnqueueReadBuffer`,
    /// blocking): the host clock waits for completion.
    pub fn enqueue_read<T: Scalar>(&self, buf: &Buffer<T>, dst: &mut [T]) -> Result<Event> {
        self.enqueue_read_concurrent(buf, dst, 1, true)
    }

    /// Like [`CommandQueue::enqueue_read`], with a host-bus concurrency hint
    /// and optionally non-blocking semantics (the caller synchronises later
    /// with [`CommandQueue::finish`]).
    pub fn enqueue_read_concurrent<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        dst: &mut [T],
        concurrent: usize,
        blocking: bool,
    ) -> Result<Event> {
        self.check_device(buf)?;
        buf.read_into_host(dst)?;
        let bytes = std::mem::size_of_val(dst);
        self.shared.stats.add_d2h(bytes);
        let dur = self.shared.topology.transfer_s(bytes, concurrent.max(1));
        let (start_s, end_s) = self
            .device
            .clock()
            .advance_from(self.shared.host_clock.now_s(), dur);
        if blocking {
            self.shared.host_clock.sync_to(end_s);
        }
        Ok(Event {
            kind: EventKind::ReadBuffer,
            start_s,
            end_s,
            launch: None,
        })
    }

    /// Write a host slice into `[offset, offset + src.len())` of a device
    /// buffer.
    pub fn enqueue_write_range<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        offset: usize,
        src: &[T],
        concurrent: usize,
    ) -> Result<Event> {
        self.check_device(buf)?;
        buf.write_range_from_host(offset, src)?;
        let bytes = std::mem::size_of_val(src);
        self.shared.stats.add_h2d(bytes);
        let dur = self.shared.topology.transfer_s(bytes, concurrent.max(1));
        let (start_s, end_s) = self
            .device
            .clock()
            .advance_from(self.shared.host_clock.now_s(), dur);
        Ok(Event {
            kind: EventKind::WriteBuffer,
            start_s,
            end_s,
            launch: None,
        })
    }

    /// Read a sub-range `[offset, offset + dst.len())` of a device buffer.
    pub fn enqueue_read_range<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        offset: usize,
        dst: &mut [T],
        concurrent: usize,
        blocking: bool,
    ) -> Result<Event> {
        self.check_device(buf)?;
        buf.read_range_into_host(offset, dst)?;
        let bytes = std::mem::size_of_val(dst);
        self.shared.stats.add_d2h(bytes);
        let dur = self.shared.topology.transfer_s(bytes, concurrent.max(1));
        let (start_s, end_s) = self
            .device
            .clock()
            .advance_from(self.shared.host_clock.now_s(), dur);
        if blocking {
            self.shared.host_clock.sync_to(end_s);
        }
        Ok(Event {
            kind: EventKind::ReadBuffer,
            start_s,
            end_s,
            launch: None,
        })
    }

    /// Device-side fill (`clEnqueueFillBuffer`): costs global-memory
    /// bandwidth but no PCIe traffic.
    pub fn enqueue_fill<T: Scalar>(&self, buf: &Buffer<T>, v: T) -> Result<Event> {
        self.check_device(buf)?;
        buf.fill(v);
        let dur = buf.size_bytes() as f64 / self.device.spec().mem_bandwidth_bytes_s;
        let (start_s, end_s) = self
            .device
            .clock()
            .advance_from(self.shared.host_clock.now_s(), dur);
        Ok(Event {
            kind: EventKind::FillBuffer,
            start_s,
            end_s,
            launch: None,
        })
    }

    /// Build a program into an executable kernel under this queue's driver
    /// profile. Runtime compilation (or cache loading) happens on the host,
    /// so the cost lands on the *host* clock.
    pub fn build_kernel(&self, program: &Program, body: KernelBody) -> Result<CompiledKernel> {
        let (kernel, outcome) = self.build_kernel_traced(program, body)?;
        let _ = outcome;
        Ok(kernel)
    }

    /// Like [`CommandQueue::build_kernel`] but also reports whether the
    /// cache served the build and what it cost (experiment E6).
    pub fn build_kernel_traced(
        &self,
        program: &Program,
        body: KernelBody,
    ) -> Result<(CompiledKernel, BuildOutcome)> {
        let (kernel, outcome) = self.shared.compiler.build(program, body, &self.profile)?;
        if outcome.from_cache {
            self.shared
                .stats
                .cache_loads
                .fetch_add(1, Ordering::Relaxed);
        } else if self.profile.runtime_compile {
            self.shared
                .stats
                .source_builds
                .fetch_add(1, Ordering::Relaxed);
        }
        self.shared
            .stats
            .build_virtual_ns
            .fetch_add((outcome.virtual_s * 1e9) as u64, Ordering::Relaxed);
        let now = self.shared.host_clock.now_s();
        self.shared.host_clock.advance_from(now, outcome.virtual_s);
        Ok((kernel, outcome))
    }

    /// Launch a kernel over an ND-range; real execution happens on host
    /// threads, the modeled duration advances this device's clock.
    pub fn launch(&self, kernel: &CompiledKernel, nd: NDRange) -> Result<Event> {
        let stats = exec::execute(
            self.device.spec(),
            &kernel.body,
            nd,
            self.profile.compute_efficiency,
        )?;
        self.shared
            .stats
            .kernel_launches
            .fetch_add(1, Ordering::Relaxed);
        let dur = stats.duration_s + self.profile.launch_cost_s(kernel.n_args);
        let (start_s, end_s) = self
            .device
            .clock()
            .advance_from(self.shared.host_clock.now_s(), dur);
        Ok(Event {
            kind: EventKind::Kernel,
            start_s,
            end_s,
            launch: Some(stats),
        })
    }

    /// Wait until every command on this queue is done (`clFinish`): the
    /// host clock catches up with the device timeline.
    pub fn finish(&self) {
        self.shared.host_clock.sync_to(self.device.clock().now_s());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::WorkGroup;
    use crate::platform::{Platform, PlatformConfig};

    fn platform(n: usize) -> Platform {
        Platform::new(
            PlatformConfig::default()
                .devices(n)
                .spec(DeviceSpec::tiny())
                .cache_tag("queue-tests"),
        )
    }

    #[test]
    fn write_then_read_roundtrips() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<f32>(4).unwrap();
        q.enqueue_write(&buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut out = [0.0f32; 4];
        q.enqueue_read(&buf, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn wrong_device_is_rejected() {
        let p = platform(2);
        let q0 = p.queue(0, DriverProfile::opencl());
        let buf1 = p.device(1).alloc::<f32>(4).unwrap();
        assert!(matches!(
            q0.enqueue_write(&buf1, &[0.0; 4]),
            Err(Error::WrongDevice { .. })
        ));
    }

    #[test]
    fn transfers_advance_the_device_clock() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let data = vec![7u8; 1 << 20];
        let before = p.device(0).clock().now_s();
        let ev = q.enqueue_write(&buf, &data).unwrap();
        assert!(ev.duration_s() > 0.0);
        assert!(p.device(0).clock().now_s() > before);
        // Blocking read syncs the host clock too.
        let mut out = vec![0u8; 1 << 20];
        q.enqueue_read(&buf, &mut out).unwrap();
        assert_eq!(p.host_now_s(), p.device(0).clock().now_s());
    }

    #[test]
    fn launch_runs_kernel_and_charges_overhead() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u32>(100).unwrap();
        let program = Program::from_source(
            "inc",
            "__kernel void inc(__global uint* x){x[get_global_id(0)]++;}",
        );
        let body: KernelBody = {
            let buf = buf.clone();
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let v = it.read(&buf, i);
                    it.write(&buf, i, v + 1);
                    it.work(1);
                });
            })
        };
        let kernel = q.build_kernel(&program, body).unwrap();
        let ev = q.launch(&kernel, NDRange::linear(100, 32)).unwrap();
        assert!(buf.to_vec().iter().all(|&v| v == 1));
        let stats = ev.launch.unwrap();
        assert_eq!(stats.n_active_items, 100);
        // Duration includes the fixed launch overhead.
        assert!(ev.duration_s() >= DriverProfile::opencl().launch_overhead_s);
    }

    #[test]
    fn cuda_launches_cost_less_overhead_than_opencl() {
        let p = platform(1);
        let program = Program::from_source("k", "void k() {}").with_arg_count(2);
        let body: KernelBody = Arc::new(|wg: &WorkGroup| {
            wg.for_each_item(|it| it.work(1));
        });
        let ocl = p.queue(0, DriverProfile::opencl());
        let cuda = p.queue(0, DriverProfile::cuda());
        let k_ocl = ocl.build_kernel(&program, body.clone()).unwrap();
        let k_cuda = cuda.build_kernel(&program, body).unwrap();
        let nd = NDRange::linear(32, 32);
        let e_ocl = ocl.launch(&k_ocl, nd).unwrap();
        let e_cuda = cuda.launch(&k_cuda, nd).unwrap();
        assert!(e_cuda.duration_s() < e_ocl.duration_s());
    }

    #[test]
    fn build_charges_the_host_clock_and_counts_stats() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        p.compiler().clear_cache().unwrap();
        let program = Program::from_source("k", "__kernel void k() { /* unique-1 */ }");
        let body: KernelBody = Arc::new(|_wg: &WorkGroup| {});
        let t0 = p.host_now_s();
        let (_, o1) = q.build_kernel_traced(&program, body.clone()).unwrap();
        assert!(!o1.from_cache);
        assert!(p.host_now_s() > t0);
        let (_, o2) = q.build_kernel_traced(&program, body).unwrap();
        assert!(o2.from_cache);
        let snap = p.stats_snapshot();
        assert_eq!(snap.source_builds, 1);
        assert_eq!(snap.cache_loads, 1);
        p.compiler().clear_cache().unwrap();
    }

    #[test]
    fn ranged_transfers_roundtrip_and_count() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u32>(10).unwrap();
        let before = p.stats_snapshot();
        q.enqueue_write_range(&buf, 3, &[7, 8, 9], 1).unwrap();
        let mut out = [0u32; 3];
        q.enqueue_read_range(&buf, 3, &mut out, 1, true).unwrap();
        assert_eq!(out, [7, 8, 9]);
        assert_eq!(buf.get(2), 0);
        let delta = p.stats_snapshot() - before;
        assert_eq!(delta.h2d_bytes, 12);
        assert_eq!(delta.d2h_bytes, 12);
        // Out-of-range is rejected.
        assert!(q.enqueue_write_range(&buf, 9, &[1, 2], 1).is_err());
        assert!(q.enqueue_read_range(&buf, 9, &mut out, 1, true).is_err());
    }

    #[test]
    fn non_blocking_read_defers_host_sync() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let mut out = vec![0u8; 1 << 20];
        q.enqueue_read_concurrent(&buf, &mut out, 1, false).unwrap();
        assert!(
            p.host_now_s() < p.device(0).clock().now_s(),
            "non-blocking read must leave the host clock behind the device"
        );
        q.finish();
        assert_eq!(p.host_now_s(), p.device(0).clock().now_s());
    }

    #[test]
    fn fill_touches_no_pcie() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<f32>(256).unwrap();
        let before = p.stats_snapshot();
        q.enqueue_fill(&buf, 3.0).unwrap();
        let delta = p.stats_snapshot() - before;
        assert_eq!(delta.total_transfers(), 0);
        assert!(buf.to_vec().iter().all(|&v| v == 3.0));
    }
}
