//! Command queues ("streams"), events, and the two scheduling disciplines.
//!
//! A queue belongs to one device and carries one [`DriverProfile`] — the
//! same virtual hardware behaves as an "OpenCL device", a "CUDA device" or a
//! "SkelCL device" depending on the profile of the queue driving it, which
//! is exactly the comparison the paper performs on its single testbed.
//!
//! A device can drive **multiple in-order queues** over one shared timeline
//! with separate compute and copy engines (see [`crate::timing`]): each
//! [`Platform::queue`](crate::Platform::queue) call creates a fresh stream.
//! Commands come in two flavours:
//!
//! * the classic enqueue methods ([`CommandQueue::enqueue_write`],
//!   [`CommandQueue::launch`], …) are **device-serializing**: a command
//!   starts only when *everything* previously scheduled on the device has
//!   finished, which reproduces the pre-stream single-clock timeline
//!   exactly — existing code keeps its modeled timings to the bit;
//! * the `_async` twins ([`CommandQueue::enqueue_write_async`],
//!   [`CommandQueue::launch_async`], …) take a `wait_for: &[Event]` list and
//!   start at `max(queue-ready, dependency-ready, engine-availability,
//!   enqueue time)` — so a transfer on a copy stream genuinely runs under a
//!   kernel when no dependency links them.
//!
//! Either way the *data* moves immediately (the simulator executes commands
//! eagerly); only the modeled timeline differs. Every command returns an
//! [`Event`] carrying its `CL_PROFILING_COMMAND_START/END`-style interval,
//! usable as a dependency for later async commands on any queue.

use crate::buffer::Buffer;
use crate::compiler::{BuildOutcome, CompiledKernel, Program};
use crate::device::Device;
use crate::error::{Error, Result};
use crate::exec::{self, LaunchStats};
use crate::kernel::{KernelBody, NDRange};
use crate::platform::PlatformShared;
use crate::profiling::{AccessRange, CmdKind, CommandRecord};
use crate::timing::{ready_s, DriverProfile, EngineKind, VirtualClock};
use crate::types::{DeviceId, Scalar};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// What a finished command was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    WriteBuffer,
    ReadBuffer,
    FillBuffer,
    Kernel,
    Build {
        from_cache: bool,
    },
    CopyD2D,
    /// A zero-duration join point over everything already scheduled on the
    /// device (`clEnqueueMarker`): the anchor async commands wait on when
    /// their inputs were produced by device-serializing commands.
    Marker,
}

/// A completed command with its virtual-timeline timestamps, like an OpenCL
/// event queried with `CL_PROFILING_COMMAND_START/END`. Pass events to the
/// `_async` enqueue methods' `wait_for` lists to build cross-stream
/// dependency graphs.
#[derive(Debug, Clone)]
pub struct Event {
    pub kind: EventKind,
    /// The device whose engine ran the command (for staged D2D copies, the
    /// source device; both copy engines are occupied either way).
    pub device: DeviceId,
    /// Which engine of the device the command occupied.
    pub engine: EngineKind,
    pub start_s: f64,
    pub end_s: f64,
    /// Process-wide command sequence number — the identity the timeline
    /// trace records, so checkers can resolve `wait_for` lists back to the
    /// commands they name.
    pub seq: u64,
    /// Present for kernel events: the executor's counters.
    pub launch: Option<LaunchStats>,
}

impl Event {
    pub fn duration_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// The latest completion time among `deps` (0 when empty) — the
/// "dependency-ready" term of the scheduling rule.
pub(crate) fn deps_ready_s(deps: &[Event]) -> f64 {
    ready_s(deps.iter().map(|e| e.end_s))
}

/// An in-order command queue ("stream") on one device. Cloning yields a
/// second handle to the *same* stream; [`crate::Platform::queue`] creates a
/// new independent stream each call.
#[derive(Clone)]
pub struct CommandQueue {
    device: Arc<Device>,
    profile: DriverProfile,
    shared: Arc<PlatformShared>,
    /// This stream's in-order tail: commands on one queue never reorder.
    tail: VirtualClock,
    /// Platform-unique stream identity (clones share it — same stream).
    stream_id: u64,
}

impl CommandQueue {
    pub(crate) fn new(
        device: Arc<Device>,
        profile: DriverProfile,
        shared: Arc<PlatformShared>,
    ) -> Self {
        let tail = device.clock().register_stream();
        let stream_id = shared.next_stream.fetch_add(1, Ordering::Relaxed);
        CommandQueue {
            device,
            profile,
            shared,
            tail,
            stream_id,
        }
    }

    /// Platform-unique identity of this in-order stream.
    pub fn stream_id(&self) -> u64 {
        self.stream_id
    }

    pub fn device(&self) -> &Arc<Device> {
        &self.device
    }

    pub fn profile(&self) -> &DriverProfile {
        &self.profile
    }

    /// Schedule one command on `engine`. `conservative` commands are
    /// device-serializing (they wait for both engines — the legacy
    /// single-clock rule); async commands wait only for their stream, their
    /// `deps`, their engine, and the enqueue time. `reads`/`writes` name the
    /// device-memory ranges the command touches; they reach the timeline
    /// trace (and any online checker) when a record sink is active.
    #[allow(clippy::too_many_arguments)]
    fn schedule(
        &self,
        engine: EngineKind,
        kind: EventKind,
        duration_s: f64,
        deps: &[Event],
        conservative: bool,
        launch: Option<LaunchStats>,
        reads: Vec<AccessRange>,
        writes: Vec<AccessRange>,
        label: &str,
    ) -> Event {
        let enqueue_host_s = self.shared.host_clock.now_s();
        let mut not_before = enqueue_host_s
            .max(deps_ready_s(deps))
            .max(self.tail.now_s());
        if conservative {
            not_before = not_before.max(self.device.clock().now_s());
        }
        let (start_s, end_s) = self
            .device
            .clock()
            .engine(engine)
            .advance_from(not_before, duration_s);
        self.tail.sync_to(end_s);
        let seq = self.shared.stats.next_seq();
        if self.shared.stats.sink_active() {
            let mut rec = CommandRecord::interval(self.device.id(), engine, start_s, end_s)
                .with_seq(seq)
                .on_stream(self.stream_id)
                .with_kind(CmdKind::from_event(kind))
                .with_deps(deps.iter().map(|e| e.seq).collect())
                .with_reads(reads)
                .with_writes(writes)
                .at_enqueue(enqueue_host_s)
                .with_host_sync(self.shared.stats.host_synced_s())
                .with_label(label);
            if !conservative {
                rec = rec.asynchronous();
            }
            self.shared.stats.record_group(std::slice::from_ref(&rec));
        }
        Event {
            kind,
            device: self.device.id(),
            engine,
            start_s,
            end_s,
            seq,
            launch,
        }
    }

    /// A zero-duration join point over everything already scheduled on this
    /// device (`clEnqueueMarker` semantics): later async commands that pass
    /// the marker in `wait_for` are ordered after every command — on any
    /// stream, either engine — enqueued before it.
    pub fn enqueue_marker(&self) -> Event {
        let enqueue_host_s = self.shared.host_clock.now_s();
        let t = enqueue_host_s
            .max(self.device.clock().now_s())
            .max(self.tail.now_s());
        self.tail.sync_to(t);
        let seq = self.shared.stats.next_seq();
        if self.shared.stats.sink_active() {
            // Markers are recorded as serializing zero-width records: the
            // hazard detector treats them as a join over everything already
            // scheduled on the device, matching their `wait_for` semantics.
            let rec = CommandRecord::interval(self.device.id(), EngineKind::Compute, t, t)
                .with_seq(seq)
                .on_stream(self.stream_id)
                .with_kind(CmdKind::Marker)
                .at_enqueue(enqueue_host_s)
                .with_host_sync(self.shared.stats.host_synced_s())
                .with_label("marker");
            self.shared.stats.record_group(std::slice::from_ref(&rec));
        }
        Event {
            kind: EventKind::Marker,
            device: self.device.id(),
            engine: EngineKind::Compute,
            start_s: t,
            end_s: t,
            seq,
            launch: None,
        }
    }

    fn check_device<T: Scalar>(&self, buf: &Buffer<T>) -> Result<()> {
        if buf.device() != self.device.id() {
            return Err(Error::WrongDevice {
                expected: buf.device(),
                actual: self.device.id(),
            });
        }
        Ok(())
    }

    /// Upload a host slice into a device buffer (`clEnqueueWriteBuffer`).
    pub fn enqueue_write<T: Scalar>(&self, buf: &Buffer<T>, src: &[T]) -> Result<Event> {
        self.enqueue_write_concurrent(buf, src, 1)
    }

    /// Like [`CommandQueue::enqueue_write`], with a hint that `concurrent`
    /// transfers share the host bus right now (multi-device upload batches).
    pub fn enqueue_write_concurrent<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        src: &[T],
        concurrent: usize,
    ) -> Result<Event> {
        self.write_impl(buf, None, src, concurrent, &[], true)
    }

    /// Async upload on this stream: starts as soon as the stream, the
    /// `wait_for` events, and the copy engine allow — possibly *under* a
    /// kernel running on the compute engine.
    pub fn enqueue_write_async<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        src: &[T],
        concurrent: usize,
        wait_for: &[Event],
    ) -> Result<Event> {
        self.write_impl(buf, None, src, concurrent, wait_for, false)
    }

    /// `offset`: `None` = whole-buffer write (length-checked), `Some(o)` =
    /// ranged write at element offset `o`.
    fn write_impl<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        offset: Option<usize>,
        src: &[T],
        concurrent: usize,
        deps: &[Event],
        conservative: bool,
    ) -> Result<Event> {
        self.check_device(buf)?;
        match offset {
            None => buf.write_from_host(src)?,
            Some(o) => buf.write_range_from_host(o, src)?,
        }
        let bytes = std::mem::size_of_val(src);
        self.shared.stats.add_h2d(bytes);
        let dur = self.shared.topology.transfer_s(bytes, concurrent.max(1));
        let lo = (offset.unwrap_or(0) * std::mem::size_of::<T>()) as u64;
        let writes = vec![AccessRange::new(buf.id(), lo, lo + bytes as u64)];
        Ok(self.schedule(
            EngineKind::Copy,
            EventKind::WriteBuffer,
            dur,
            deps,
            conservative,
            None,
            Vec::new(),
            writes,
            "h2d",
        ))
    }

    /// Download a device buffer into a host slice (`clEnqueueReadBuffer`,
    /// blocking): the host clock waits for completion.
    pub fn enqueue_read<T: Scalar>(&self, buf: &Buffer<T>, dst: &mut [T]) -> Result<Event> {
        self.enqueue_read_concurrent(buf, dst, 1, true)
    }

    /// Like [`CommandQueue::enqueue_read`], with a host-bus concurrency hint
    /// and optionally non-blocking semantics (the caller synchronises later
    /// with [`CommandQueue::finish`]).
    pub fn enqueue_read_concurrent<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        dst: &mut [T],
        concurrent: usize,
        blocking: bool,
    ) -> Result<Event> {
        self.read_impl(buf, None, dst, concurrent, blocking, &[], true)
    }

    /// `offset`: `None` = whole-buffer read (length-checked), `Some(o)` =
    /// ranged read at element offset `o`.
    #[allow(clippy::too_many_arguments)]
    fn read_impl<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        offset: Option<usize>,
        dst: &mut [T],
        concurrent: usize,
        blocking: bool,
        deps: &[Event],
        conservative: bool,
    ) -> Result<Event> {
        self.check_device(buf)?;
        match offset {
            None => buf.read_into_host(dst)?,
            Some(o) => buf.read_range_into_host(o, dst)?,
        }
        let bytes = std::mem::size_of_val(dst);
        self.shared.stats.add_d2h(bytes);
        let dur = self.shared.topology.transfer_s(bytes, concurrent.max(1));
        let lo = (offset.unwrap_or(0) * std::mem::size_of::<T>()) as u64;
        let reads = vec![AccessRange::new(buf.id(), lo, lo + bytes as u64)];
        let ev = self.schedule(
            EngineKind::Copy,
            EventKind::ReadBuffer,
            dur,
            deps,
            conservative,
            None,
            reads,
            Vec::new(),
            "d2h",
        );
        if blocking {
            self.shared.host_clock.sync_to(ev.end_s);
            self.shared.stats.note_host_sync(ev.end_s);
        }
        Ok(ev)
    }

    /// Write a host slice into `[offset, offset + src.len())` of a device
    /// buffer.
    pub fn enqueue_write_range<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        offset: usize,
        src: &[T],
        concurrent: usize,
    ) -> Result<Event> {
        self.write_impl(buf, Some(offset), src, concurrent, &[], true)
    }

    /// Async ranged upload: the streamed-upload primitive (row chunks of a
    /// matrix part go out back to back on a copy stream while earlier
    /// chunks' dependent kernels already run on the compute engine).
    pub fn enqueue_write_range_async<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        offset: usize,
        src: &[T],
        concurrent: usize,
        wait_for: &[Event],
    ) -> Result<Event> {
        self.write_impl(buf, Some(offset), src, concurrent, wait_for, false)
    }

    /// Read a sub-range `[offset, offset + dst.len())` of a device buffer.
    pub fn enqueue_read_range<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        offset: usize,
        dst: &mut [T],
        concurrent: usize,
        blocking: bool,
    ) -> Result<Event> {
        self.read_impl(buf, Some(offset), dst, concurrent, blocking, &[], true)
    }

    /// Async ranged download (never blocks the host clock); waits for
    /// `wait_for` before occupying the copy engine.
    pub fn enqueue_read_range_async<T: Scalar>(
        &self,
        buf: &Buffer<T>,
        offset: usize,
        dst: &mut [T],
        concurrent: usize,
        wait_for: &[Event],
    ) -> Result<Event> {
        self.read_impl(buf, Some(offset), dst, concurrent, false, wait_for, false)
    }

    /// Device-side fill (`clEnqueueFillBuffer`): costs global-memory
    /// bandwidth but no PCIe traffic.
    pub fn enqueue_fill<T: Scalar>(&self, buf: &Buffer<T>, v: T) -> Result<Event> {
        self.check_device(buf)?;
        buf.fill(v);
        let dur = buf.size_bytes() as f64 / self.device.spec().mem_bandwidth_bytes_s;
        let writes = vec![AccessRange::whole(buf.id(), buf.size_bytes())];
        Ok(self.schedule(
            EngineKind::Copy,
            EventKind::FillBuffer,
            dur,
            &[],
            true,
            None,
            Vec::new(),
            writes,
            "fill",
        ))
    }

    /// Build a program into an executable kernel under this queue's driver
    /// profile. Runtime compilation (or cache loading) happens on the host,
    /// so the cost lands on the *host* clock.
    pub fn build_kernel(&self, program: &Program, body: KernelBody) -> Result<CompiledKernel> {
        let (kernel, outcome) = self.build_kernel_traced(program, body)?;
        let _ = outcome;
        Ok(kernel)
    }

    /// Like [`CommandQueue::build_kernel`] but also reports whether the
    /// cache served the build and what it cost (experiment E6).
    pub fn build_kernel_traced(
        &self,
        program: &Program,
        body: KernelBody,
    ) -> Result<(CompiledKernel, BuildOutcome)> {
        let (kernel, outcome) = self.shared.compiler.build(program, body, &self.profile)?;
        if outcome.from_cache {
            self.shared
                .stats
                .cache_loads
                .fetch_add(1, Ordering::Relaxed);
        } else if self.profile.runtime_compile {
            self.shared
                .stats
                .source_builds
                .fetch_add(1, Ordering::Relaxed);
        }
        self.shared
            .stats
            .build_virtual_ns
            .fetch_add((outcome.virtual_s * 1e9) as u64, Ordering::Relaxed);
        let now = self.shared.host_clock.now_s();
        self.shared.host_clock.advance_from(now, outcome.virtual_s);
        Ok((kernel, outcome))
    }

    /// Launch a kernel over an ND-range; real execution happens on host
    /// threads, the modeled duration advances this device's compute engine.
    /// Device-serializing: the kernel waits for everything previously
    /// scheduled on the device (the legacy single-queue rule).
    pub fn launch(&self, kernel: &CompiledKernel, nd: NDRange) -> Result<Event> {
        self.launch_impl(kernel, nd, &[], true)
    }

    /// Async launch on this stream: starts at `max(queue-ready,
    /// dependency-ready, compute-engine availability, enqueue time)` — so
    /// transfers on a copy stream that this kernel does not depend on keep
    /// running underneath it.
    pub fn launch_async(
        &self,
        kernel: &CompiledKernel,
        nd: NDRange,
        wait_for: &[Event],
    ) -> Result<Event> {
        self.launch_impl(kernel, nd, wait_for, false)
    }

    fn launch_impl(
        &self,
        kernel: &CompiledKernel,
        nd: NDRange,
        deps: &[Event],
        conservative: bool,
    ) -> Result<Event> {
        // Track per-buffer access envelopes only when someone will consume
        // them — tracking costs a few branches per element access.
        let track = self.shared.stats.sink_active();
        let (stats, access) = exec::execute_traced(
            self.device.spec(),
            &kernel.body,
            nd,
            self.profile.compute_efficiency,
            track,
        )?;
        let dur = stats.duration_s + self.profile.launch_cost_s(kernel.n_args);
        self.shared
            .stats
            .add_kernel(stats.max_cu_cycles, stats.global_bytes, dur);
        Ok(self.schedule(
            EngineKind::Compute,
            EventKind::Kernel,
            dur,
            deps,
            conservative,
            Some(stats),
            access.reads,
            access.writes,
            &kernel.name,
        ))
    }

    /// Wait until every command on this queue is done (`clFinish`): the
    /// host clock catches up with the device timeline.
    pub fn finish(&self) {
        let now = self.device.clock().now_s();
        self.shared.host_clock.sync_to(now);
        self.shared.stats.note_host_sync(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use crate::kernel::WorkGroup;
    use crate::platform::{Platform, PlatformConfig};

    fn platform(n: usize) -> Platform {
        Platform::new(
            PlatformConfig::default()
                .devices(n)
                .spec(DeviceSpec::tiny())
                .cache_tag("queue-tests"),
        )
    }

    #[test]
    fn write_then_read_roundtrips() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<f32>(4).unwrap();
        q.enqueue_write(&buf, &[1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut out = [0.0f32; 4];
        q.enqueue_read(&buf, &mut out).unwrap();
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn wrong_device_is_rejected() {
        let p = platform(2);
        let q0 = p.queue(0, DriverProfile::opencl());
        let buf1 = p.device(1).alloc::<f32>(4).unwrap();
        assert!(matches!(
            q0.enqueue_write(&buf1, &[0.0; 4]),
            Err(Error::WrongDevice { .. })
        ));
    }

    #[test]
    fn transfers_advance_the_device_clock() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let data = vec![7u8; 1 << 20];
        let before = p.device(0).clock().now_s();
        let ev = q.enqueue_write(&buf, &data).unwrap();
        assert!(ev.duration_s() > 0.0);
        assert!(p.device(0).clock().now_s() > before);
        // Blocking read syncs the host clock too.
        let mut out = vec![0u8; 1 << 20];
        q.enqueue_read(&buf, &mut out).unwrap();
        assert_eq!(p.host_now_s(), p.device(0).clock().now_s());
    }

    #[test]
    fn launch_runs_kernel_and_charges_overhead() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u32>(100).unwrap();
        let program = Program::from_source(
            "inc",
            "__kernel void inc(__global uint* x){x[get_global_id(0)]++;}",
        );
        let body: KernelBody = {
            let buf = buf.clone();
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let v = it.read(&buf, i);
                    it.write(&buf, i, v + 1);
                    it.work(1);
                });
            })
        };
        let kernel = q.build_kernel(&program, body).unwrap();
        let ev = q.launch(&kernel, NDRange::linear(100, 32)).unwrap();
        assert!(buf.to_vec().iter().all(|&v| v == 1));
        let stats = ev.launch.unwrap();
        assert_eq!(stats.n_active_items, 100);
        // Duration includes the fixed launch overhead.
        assert!(ev.duration_s() >= DriverProfile::opencl().launch_overhead_s);
    }

    #[test]
    fn cuda_launches_cost_less_overhead_than_opencl() {
        let p = platform(1);
        let program = Program::from_source("k", "void k() {}").with_arg_count(2);
        let body: KernelBody = Arc::new(|wg: &WorkGroup| {
            wg.for_each_item(|it| it.work(1));
        });
        let ocl = p.queue(0, DriverProfile::opencl());
        let cuda = p.queue(0, DriverProfile::cuda());
        let k_ocl = ocl.build_kernel(&program, body.clone()).unwrap();
        let k_cuda = cuda.build_kernel(&program, body).unwrap();
        let nd = NDRange::linear(32, 32);
        let e_ocl = ocl.launch(&k_ocl, nd).unwrap();
        let e_cuda = cuda.launch(&k_cuda, nd).unwrap();
        assert!(e_cuda.duration_s() < e_ocl.duration_s());
    }

    #[test]
    fn build_charges_the_host_clock_and_counts_stats() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        p.compiler().clear_cache().unwrap();
        let program = Program::from_source("k", "__kernel void k() { /* unique-1 */ }");
        let body: KernelBody = Arc::new(|_wg: &WorkGroup| {});
        let t0 = p.host_now_s();
        let (_, o1) = q.build_kernel_traced(&program, body.clone()).unwrap();
        assert!(!o1.from_cache);
        assert!(p.host_now_s() > t0);
        let (_, o2) = q.build_kernel_traced(&program, body).unwrap();
        assert!(o2.from_cache);
        let snap = p.stats_snapshot();
        assert_eq!(snap.source_builds, 1);
        assert_eq!(snap.cache_loads, 1);
        p.compiler().clear_cache().unwrap();
    }

    #[test]
    fn ranged_transfers_roundtrip_and_count() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u32>(10).unwrap();
        let before = p.stats_snapshot();
        q.enqueue_write_range(&buf, 3, &[7, 8, 9], 1).unwrap();
        let mut out = [0u32; 3];
        q.enqueue_read_range(&buf, 3, &mut out, 1, true).unwrap();
        assert_eq!(out, [7, 8, 9]);
        assert_eq!(buf.get(2), 0);
        let delta = p.stats_snapshot() - before;
        assert_eq!(delta.h2d_bytes, 12);
        assert_eq!(delta.d2h_bytes, 12);
        // Out-of-range is rejected.
        assert!(q.enqueue_write_range(&buf, 9, &[1, 2], 1).is_err());
        assert!(q.enqueue_read_range(&buf, 9, &mut out, 1, true).is_err());
    }

    #[test]
    fn non_blocking_read_defers_host_sync() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let mut out = vec![0u8; 1 << 20];
        q.enqueue_read_concurrent(&buf, &mut out, 1, false).unwrap();
        assert!(
            p.host_now_s() < p.device(0).clock().now_s(),
            "non-blocking read must leave the host clock behind the device"
        );
        q.finish();
        assert_eq!(p.host_now_s(), p.device(0).clock().now_s());
    }

    /// A one-argument no-op kernel body used by the stream tests.
    fn nop_kernel(q: &CommandQueue, tag: &str) -> CompiledKernel {
        let program = Program::from_source("nop", format!("__kernel void nop() {{ /* {tag} */ }}"));
        let body: KernelBody = Arc::new(|wg: &WorkGroup| {
            wg.for_each_item(|it| it.work(200_000));
        });
        q.build_kernel(&program, body).unwrap()
    }

    #[test]
    fn async_transfer_overlaps_a_kernel_on_another_stream() {
        let p = platform(1);
        let compute = p.queue(0, DriverProfile::opencl());
        let copy = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let data = vec![1u8; 1 << 20];

        let kernel = nop_kernel(&compute, "overlap");
        let k = compute
            .launch_async(&kernel, NDRange::linear(1 << 16, 64), &[])
            .unwrap();
        let w = copy.enqueue_write_async(&buf, &data, 1, &[]).unwrap();
        assert!(
            w.start_s < k.end_s && k.start_s < w.end_s,
            "copy [{}, {}] must run under the kernel [{}, {}]",
            w.start_s,
            w.end_s,
            k.start_s,
            k.end_s
        );
        assert_eq!(w.engine, EngineKind::Copy);
        assert_eq!(k.engine, EngineKind::Compute);
    }

    #[test]
    fn wait_for_orders_across_streams() {
        let p = platform(1);
        let compute = p.queue(0, DriverProfile::opencl());
        let copy = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let data = vec![2u8; 1 << 20];

        let w = copy.enqueue_write_async(&buf, &data, 1, &[]).unwrap();
        let kernel = nop_kernel(&compute, "dep");
        let k = compute
            .launch_async(&kernel, NDRange::linear(64, 64), std::slice::from_ref(&w))
            .unwrap();
        assert!(
            k.start_s >= w.end_s,
            "dependent kernel ({}) must wait for the upload ({})",
            k.start_s,
            w.end_s
        );
    }

    #[test]
    fn one_stream_stays_in_order_even_async() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let data = vec![3u8; 1 << 20];
        let kernel = nop_kernel(&q, "inorder");
        let k = q
            .launch_async(&kernel, NDRange::linear(1 << 16, 64), &[])
            .unwrap();
        // Same stream: the write may not pass the kernel, despite running
        // on the other engine and having no event dependency.
        let w = q.enqueue_write_async(&buf, &data, 1, &[]).unwrap();
        assert!(w.start_s >= k.end_s, "in-order queue must not reorder");
    }

    #[test]
    fn same_engine_commands_serialize() {
        let p = platform(1);
        let a = p.queue(0, DriverProfile::opencl());
        let b = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let data = vec![4u8; 1 << 20];
        let w1 = a.enqueue_write_async(&buf, &data, 1, &[]).unwrap();
        let w2 = b.enqueue_write_async(&buf, &data, 1, &[]).unwrap();
        assert!(
            w2.start_s >= w1.end_s,
            "two transfers share one copy engine"
        );
    }

    #[test]
    fn marker_joins_both_engines() {
        let p = platform(1);
        let compute = p.queue(0, DriverProfile::opencl());
        let copy = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let data = vec![5u8; 1 << 20];
        let kernel = nop_kernel(&compute, "marker");
        let k = compute
            .launch_async(&kernel, NDRange::linear(1 << 16, 64), &[])
            .unwrap();
        let w = copy.enqueue_write_async(&buf, &data, 1, &[]).unwrap();
        let m = copy.enqueue_marker();
        assert_eq!(m.kind, EventKind::Marker);
        assert_eq!(m.duration_s(), 0.0);
        assert!(m.end_s >= k.end_s && m.end_s >= w.end_s);
    }

    #[test]
    fn legacy_commands_serialize_against_async_work() {
        let p = platform(1);
        let compute = p.queue(0, DriverProfile::opencl());
        let copy = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        let data = vec![6u8; 1 << 20];
        let kernel = nop_kernel(&compute, "legacy");
        let k = compute
            .launch_async(&kernel, NDRange::linear(1 << 16, 64), &[])
            .unwrap();
        // A device-serializing write waits for the in-flight kernel even
        // though the copy engine itself is idle.
        let w = copy.enqueue_write(&buf, &data).unwrap();
        assert!(w.start_s >= k.end_s, "legacy commands keep the old rule");
    }

    #[test]
    fn reset_clocks_rewinds_stream_tails() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
        q.enqueue_write(&buf, &vec![7u8; 1 << 20]).unwrap();
        p.reset_clocks();
        // A fresh command must start at the epoch again — including the
        // queue's own in-order tail, not just the engine clocks.
        let w = q.enqueue_write(&buf, &vec![8u8; 1 << 20]).unwrap();
        assert_eq!(w.start_s, 0.0);
    }

    #[test]
    fn timeline_trace_records_engines() {
        let p = platform(1);
        p.enable_timeline_trace();
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<u8>(1024).unwrap();
        q.enqueue_write(&buf, &vec![9u8; 1024]).unwrap();
        let kernel = nop_kernel(&q, "trace");
        q.launch(&kernel, NDRange::linear(64, 64)).unwrap();
        let trace = p.take_timeline_trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].engine, EngineKind::Copy);
        assert_eq!(trace[1].engine, EngineKind::Compute);
        assert!(trace[1].start_s >= trace[0].end_s);
        // The trace was taken; the next snapshot starts empty.
        assert!(p.take_timeline_trace().is_empty());
    }

    #[test]
    fn fill_touches_no_pcie() {
        let p = platform(1);
        let q = p.queue(0, DriverProfile::opencl());
        let buf = p.device(0).alloc::<f32>(256).unwrap();
        let before = p.stats_snapshot();
        q.enqueue_fill(&buf, 3.0).unwrap();
        let delta = p.stats_snapshot() - before;
        assert_eq!(delta.total_transfers(), 0);
        assert!(buf.to_vec().iter().all(|&v| v == 3.0));
    }
}
