//! The platform: device list, interconnect, host clock, compiler cache.

use crate::compiler::Compiler;
use crate::device::{Device, DeviceSpec};
use crate::error::{Error, Result};
use crate::profiling::{
    AccessRange, CmdKind, CommandObserver, CommandRecord, Stats, StatsSnapshot,
};
use crate::queue::{deps_ready_s, CommandQueue, Event, EventKind};
use crate::timing::{DriverProfile, EngineKind, VirtualClock};
use crate::topology::Topology;
use crate::types::Scalar;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for [`Platform::new`]. The default is the paper's testbed:
/// Tesla-C1060-class devices behind a dual-PCIe host interface.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    pub n_devices: usize,
    pub spec: DeviceSpec,
    pub topology: Topology,
    pub cache_dir: PathBuf,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        PlatformConfig {
            n_devices: 1,
            spec: DeviceSpec::default(),
            topology: Topology::default(),
            cache_dir: std::env::temp_dir().join("vgpu-kernel-cache"),
        }
    }
}

impl PlatformConfig {
    /// Number of devices (the paper's system has 4).
    pub fn devices(mut self, n: usize) -> Self {
        self.n_devices = n;
        self
    }

    pub fn spec(mut self, spec: DeviceSpec) -> Self {
        self.spec = spec;
        self
    }

    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    pub fn cache_dir(mut self, dir: PathBuf) -> Self {
        self.cache_dir = dir;
        self
    }

    /// Use a per-purpose cache directory under the system temp dir —
    /// keeps concurrently running test binaries from sharing cache state.
    pub fn cache_tag(self, tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("vgpu-kernel-cache-{tag}"));
        self.cache_dir(dir)
    }
}

pub(crate) struct PlatformShared {
    pub(crate) devices: Vec<Arc<Device>>,
    pub(crate) topology: Topology,
    pub(crate) host_clock: VirtualClock,
    pub(crate) stats: Stats,
    pub(crate) compiler: Compiler,
    /// Bumped by [`Platform::reset_clocks`]: [`crate::Event`] timestamps
    /// from before a reset belong to a different epoch and must not be
    /// used as dependencies afterwards (holders compare
    /// [`Platform::clock_epoch`] to decide).
    pub(crate) clock_epoch: AtomicU64,
    /// Platform-unique id for each created stream (see
    /// [`CommandQueue::stream_id`]).
    pub(crate) next_stream: AtomicU64,
}

/// A virtual host with its attached devices.
#[derive(Clone)]
pub struct Platform {
    shared: Arc<PlatformShared>,
}

impl Platform {
    pub fn new(config: PlatformConfig) -> Self {
        assert!(config.n_devices >= 1, "platform needs at least one device");
        let devices = (0..config.n_devices)
            .map(|i| Arc::new(Device::new(crate::types::DeviceId(i), config.spec)))
            .collect();
        Platform {
            shared: Arc::new(PlatformShared {
                devices,
                topology: config.topology,
                host_clock: VirtualClock::new(),
                stats: Stats::default(),
                compiler: Compiler::new(config.cache_dir),
                clock_epoch: AtomicU64::new(0),
                next_stream: AtomicU64::new(0),
            }),
        }
    }

    pub fn n_devices(&self) -> usize {
        self.shared.devices.len()
    }

    /// Device `i`; panics if out of range (see [`Platform::try_device`]).
    pub fn device(&self, i: usize) -> Arc<Device> {
        self.try_device(i).expect("device index out of range")
    }

    pub fn try_device(&self, i: usize) -> Result<Arc<Device>> {
        self.shared
            .devices
            .get(i)
            .cloned()
            .ok_or(Error::NoSuchDevice {
                device: i,
                available: self.shared.devices.len(),
            })
    }

    pub fn devices(&self) -> &[Arc<Device>] {
        &self.shared.devices
    }

    /// Create an in-order queue ("stream") on device `i` under the given
    /// runtime flavour. Every call creates a *new* stream: commands on one
    /// queue never reorder, but async commands on two different queues of
    /// the same device may overlap across its compute and copy engines.
    pub fn queue(&self, i: usize, profile: DriverProfile) -> CommandQueue {
        CommandQueue::new(self.device(i), profile, Arc::clone(&self.shared))
    }

    /// Start recording the per-engine timeline trace (see
    /// [`CommandRecord`]); clears any previous trace. Benches and the
    /// overlap property tests use this to assert that no two commands ever
    /// occupy the same engine of one device at once.
    pub fn enable_timeline_trace(&self) {
        self.shared.stats.enable_trace();
    }

    /// Take the recorded timeline trace (empty unless tracing is enabled).
    pub fn take_timeline_trace(&self) -> Vec<CommandRecord> {
        self.shared.stats.take_trace()
    }

    /// Copy the recorded timeline trace without clearing it (empty unless
    /// tracing is enabled) — for reports and span collectors that must not
    /// steal records from the trace owner.
    pub fn timeline_trace_snapshot(&self) -> Vec<CommandRecord> {
        self.shared.stats.trace_snapshot()
    }

    /// Number of commands recorded so far (0 when tracing is disabled).
    pub fn timeline_trace_len(&self) -> usize {
        self.shared.stats.trace_len()
    }

    /// Install (or remove) a [`CommandObserver`] invoked with every
    /// scheduled command's record group as it is enqueued — the hook the
    /// online hazard checker hangs off. Works with or without the timeline
    /// trace enabled.
    pub fn set_command_observer(&self, obs: Option<CommandObserver>) {
        self.shared.stats.set_observer(obs);
    }

    pub fn topology(&self) -> &Topology {
        &self.shared.topology
    }

    pub fn compiler(&self) -> &Compiler {
        &self.shared.compiler
    }

    /// Current virtual host time.
    pub fn host_now_s(&self) -> f64 {
        self.shared.host_clock.now_s()
    }

    /// Advance the host clock by a host-side cost (e.g. SkelCL's one-time
    /// code generation).
    pub fn charge_host(&self, seconds: f64) {
        let now = self.shared.host_clock.now_s();
        self.shared.host_clock.advance_from(now, seconds);
    }

    /// Host waits for *all* devices (multi-GPU join point).
    pub fn sync_all(&self) {
        let max = self
            .shared
            .devices
            .iter()
            .map(|d| d.clock().now_s())
            .fold(self.host_now_s(), f64::max);
        self.shared.host_clock.sync_to(max);
        self.shared.stats.note_host_sync(max);
    }

    /// Reset every virtual clock to the epoch (between bench repetitions):
    /// host, both engines of every device, and all registered stream
    /// clocks. Any recorded timeline trace is cleared with them.
    pub fn reset_clocks(&self) {
        self.shared.host_clock.reset();
        for d in &self.shared.devices {
            d.clock().reset();
        }
        self.shared.stats.clear_trace();
        self.shared.stats.reset_host_sync();
        self.shared.clock_epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// The current clock epoch: incremented by every
    /// [`Platform::reset_clocks`]. Holders of [`Event`]s that outlive a
    /// reset (e.g. recorded upload chunks) compare epochs to discard
    /// timestamps from before the rewind instead of waiting on them.
    pub fn clock_epoch(&self) -> u64 {
        self.shared.clock_epoch.load(Ordering::Relaxed)
    }

    pub fn stats_snapshot(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Copy `src` (on one device) into `dst` (on another) through the host,
    /// as the S1070 requires (no peer-to-peer). `concurrent` is the number
    /// of transfers sharing the host bus at this moment — redistribution
    /// phases pass the size of their transfer batch so contention is
    /// modeled (paper Section III-D).
    pub fn copy_d2d<T: Scalar>(
        &self,
        src: &crate::Buffer<T>,
        dst: &crate::Buffer<T>,
        concurrent: usize,
    ) -> Result<Event> {
        if src.len() != dst.len() {
            return Err(Error::SizeMismatch {
                expected: src.len(),
                actual: dst.len(),
            });
        }
        // Always a staged host crossing, even between two buffers of one
        // device (`cudaMemcpyPeer` semantics on pre-UVA hardware) — unlike
        // [`Platform::copy_d2d_range`], which degrades same-device copies
        // to global-memory-bandwidth local copies.
        for i in 0..src.len() {
            dst.set(i, src.get(i));
        }
        let bytes = src.size_bytes();
        self.shared.stats.add_d2d(bytes);
        let dur = self
            .shared
            .topology
            .d2d_transfer_s(bytes, concurrent.max(1));
        let src_dev = self.device(src.device().0);
        let dst_dev = self.device(dst.device().0);
        let enqueue_host_s = self.host_now_s();
        let begin = enqueue_host_s
            .max(src_dev.clock().now_s())
            .max(dst_dev.clock().now_s());
        let (start_s, end_s) = src_dev
            .clock()
            .engine(EngineKind::Copy)
            .advance_from(begin, dur);
        dst_dev.clock().sync_to(end_s);
        let seq = self.shared.stats.next_seq();
        if self.shared.stats.sink_active() {
            let host_sync_s = self.shared.stats.host_synced_s();
            // Both records share one `seq`: they are two engine occupancies
            // of a single command. Access attribution lives on the primary
            // (source-device) record only.
            let mut group =
                vec![
                    CommandRecord::interval(src_dev.id(), EngineKind::Copy, start_s, end_s)
                        .with_seq(seq)
                        .with_kind(CmdKind::D2D)
                        .with_reads(vec![AccessRange::whole(src.id(), bytes)])
                        .with_writes(vec![AccessRange::whole(dst.id(), bytes)])
                        .at_enqueue(enqueue_host_s)
                        .with_host_sync(host_sync_s)
                        .with_label("d2d"),
                ];
            if src.device() != dst.device() {
                group.push(
                    CommandRecord::interval(dst_dev.id(), EngineKind::Copy, start_s, end_s)
                        .with_seq(seq)
                        .with_kind(CmdKind::D2D)
                        .at_enqueue(enqueue_host_s)
                        .with_host_sync(host_sync_s)
                        .with_label("d2d"),
                );
            }
            self.shared.stats.record_group(&group);
        }
        Ok(Event {
            kind: EventKind::CopyD2D,
            device: src.device(),
            engine: EngineKind::Copy,
            start_s,
            end_s,
            seq,
            launch: None,
        })
    }

    /// Device-local copy between two buffers on the *same* device: costs
    /// global-memory bandwidth (read + write) but no PCIe traffic. Used by
    /// redistributions that reinterpret data already resident on a device
    /// (e.g. Copy → Block keeps each device's own block).
    pub fn copy_on_device<T: Scalar>(
        &self,
        src: &crate::Buffer<T>,
        src_off: usize,
        dst: &crate::Buffer<T>,
        dst_off: usize,
        len: usize,
    ) -> Result<Event> {
        if src.device() != dst.device() {
            return Err(Error::WrongDevice {
                expected: src.device(),
                actual: dst.device(),
            });
        }
        self.copy_range_impl(src, src_off, dst, dst_off, len, 1, &[], true)
    }

    /// Copy a sub-range between buffers on (possibly) different devices.
    /// Device-serializing: the copy waits for everything previously
    /// scheduled on both devices (the legacy single-clock rule).
    pub fn copy_d2d_range<T: Scalar>(
        &self,
        src: &crate::Buffer<T>,
        src_off: usize,
        dst: &crate::Buffer<T>,
        dst_off: usize,
        len: usize,
        concurrent: usize,
    ) -> Result<Event> {
        self.copy_range_impl(src, src_off, dst, dst_off, len, concurrent, &[], true)
    }

    /// Async sub-range copy: waits only for `wait_for` and the copy engines
    /// of the two devices, so it runs *under* unrelated kernels — the
    /// primitive behind the overlapped halo exchange. Callers are
    /// responsible for passing the events that produced the source region
    /// (and, if the destination is re-read later, its last readers).
    #[allow(clippy::too_many_arguments)]
    pub fn copy_d2d_range_async<T: Scalar>(
        &self,
        src: &crate::Buffer<T>,
        src_off: usize,
        dst: &crate::Buffer<T>,
        dst_off: usize,
        len: usize,
        concurrent: usize,
        wait_for: &[Event],
    ) -> Result<Event> {
        self.copy_range_impl(src, src_off, dst, dst_off, len, concurrent, wait_for, false)
    }

    /// Shared implementation of the platform copies: bounds checks, real
    /// data movement, then scheduling on the copy engine(s) under either
    /// discipline. Same-device copies cost global-memory bandwidth on one
    /// copy engine; cross-device copies stage through the host and occupy
    /// both devices' copy engines for the full duration.
    #[allow(clippy::too_many_arguments)]
    fn copy_range_impl<T: Scalar>(
        &self,
        src: &crate::Buffer<T>,
        src_off: usize,
        dst: &crate::Buffer<T>,
        dst_off: usize,
        len: usize,
        concurrent: usize,
        deps: &[Event],
        conservative: bool,
    ) -> Result<Event> {
        if src_off + len > src.len() {
            return Err(Error::OutOfBounds {
                index: src_off + len,
                len: src.len(),
            });
        }
        if dst_off + len > dst.len() {
            return Err(Error::OutOfBounds {
                index: dst_off + len,
                len: dst.len(),
            });
        }
        for i in 0..len {
            dst.set(dst_off + i, src.get(src_off + i));
        }
        let src_dev = self.device(src.device().0);
        let bytes = len * std::mem::size_of::<T>();
        let enqueue_host_s = self.host_now_s();
        let mut begin = enqueue_host_s.max(deps_ready_s(deps));
        let (dur, dst_dev) = if src.device() == dst.device() {
            // No PCIe crossing, just global-memory bandwidth (read+write).
            (
                2.0 * bytes as f64 / src_dev.spec().mem_bandwidth_bytes_s,
                None,
            )
        } else {
            self.shared.stats.add_d2d(bytes);
            (
                self.shared
                    .topology
                    .d2d_transfer_s(bytes, concurrent.max(1)),
                Some(self.device(dst.device().0)),
            )
        };
        if conservative {
            begin = begin.max(src_dev.clock().now_s());
            if let Some(d) = &dst_dev {
                begin = begin.max(d.clock().now_s());
            }
        } else if let Some(d) = &dst_dev {
            begin = begin.max(d.clock().engine(EngineKind::Copy).now_s());
        }
        let (start_s, end_s) = src_dev
            .clock()
            .engine(EngineKind::Copy)
            .advance_from(begin, dur);
        if let Some(d) = &dst_dev {
            if conservative {
                // Legacy rule: the destination device as a whole observes
                // the copy's completion.
                d.clock().sync_to(end_s);
            } else {
                // The copy occupies the destination's copy engine too.
                d.clock().engine(EngineKind::Copy).sync_to(end_s);
            }
        }
        let seq = self.shared.stats.next_seq();
        if self.shared.stats.sink_active() {
            let host_sync_s = self.shared.stats.host_synced_s();
            let elem = std::mem::size_of::<T>() as u64;
            let src_lo = src_off as u64 * elem;
            let dst_lo = dst_off as u64 * elem;
            let mut primary =
                CommandRecord::interval(src_dev.id(), EngineKind::Copy, start_s, end_s)
                    .with_seq(seq)
                    .with_kind(CmdKind::D2D)
                    .with_deps(deps.iter().map(|e| e.seq).collect())
                    .with_reads(vec![AccessRange::new(
                        src.id(),
                        src_lo,
                        src_lo + bytes as u64,
                    )])
                    .with_writes(vec![AccessRange::new(
                        dst.id(),
                        dst_lo,
                        dst_lo + bytes as u64,
                    )])
                    .at_enqueue(enqueue_host_s)
                    .with_host_sync(host_sync_s)
                    .with_label("d2d");
            if !conservative {
                primary = primary.asynchronous();
            }
            let mut group = vec![primary];
            if let Some(d) = &dst_dev {
                let mut secondary =
                    CommandRecord::interval(d.id(), EngineKind::Copy, start_s, end_s)
                        .with_seq(seq)
                        .with_kind(CmdKind::D2D)
                        .at_enqueue(enqueue_host_s)
                        .with_host_sync(host_sync_s)
                        .with_label("d2d");
                if !conservative {
                    secondary = secondary.asynchronous();
                }
                group.push(secondary);
            }
            self.shared.stats.record_group(&group);
        }
        Ok(Event {
            kind: EventKind::CopyD2D,
            device: src.device(),
            engine: EngineKind::Copy,
            start_s,
            end_s,
            seq,
            launch: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(n: usize) -> Platform {
        Platform::new(
            PlatformConfig::default()
                .devices(n)
                .spec(DeviceSpec::tiny())
                .cache_tag("platform-tests"),
        )
    }

    #[test]
    fn devices_are_enumerable() {
        let p = platform(4);
        assert_eq!(p.n_devices(), 4);
        assert_eq!(p.device(3).id().0, 3);
        assert!(p.try_device(4).is_err());
    }

    #[test]
    fn d2d_copy_moves_data_and_time() {
        let p = platform(2);
        let a = p.device(0).alloc_from(&[1.0f32, 2.0, 3.0]).unwrap();
        let b = p.device(1).alloc::<f32>(3).unwrap();
        let ev = p.copy_d2d(&a, &b, 1).unwrap();
        assert_eq!(b.to_vec(), vec![1.0, 2.0, 3.0]);
        assert!(ev.duration_s() > 0.0);
        // Both devices observed the copy on their timelines.
        assert!(p.device(0).clock().now_s() >= ev.end_s);
        assert!(p.device(1).clock().now_s() >= ev.end_s);
        let snap = p.stats_snapshot();
        assert_eq!(snap.d2d_transfers, 1);
        assert_eq!(snap.d2d_bytes, 12);
    }

    #[test]
    fn d2d_range_copy() {
        let p = platform(2);
        let a = p.device(0).alloc_from(&[1u32, 2, 3, 4, 5, 6]).unwrap();
        let b = p.device(1).alloc::<u32>(4).unwrap();
        p.copy_d2d_range(&a, 2, &b, 1, 3, 1).unwrap();
        assert_eq!(b.to_vec(), vec![0, 3, 4, 5]);
        assert!(p.copy_d2d_range(&a, 4, &b, 0, 3, 1).is_err());
    }

    #[test]
    fn concurrent_transfers_take_longer_per_transfer() {
        let p = platform(4);
        let n = 1 << 20;
        let a = p.device(0).alloc::<u8>(n).unwrap();
        let b = p.device(1).alloc::<u8>(n).unwrap();
        let solo = p.copy_d2d(&a, &b, 1).unwrap().duration_s();
        let crowded = p.copy_d2d(&a, &b, 4).unwrap().duration_s();
        assert!(crowded > solo, "bus contention must slow transfers");
    }

    #[test]
    fn sync_all_joins_the_slowest_device() {
        let p = platform(2);
        p.device(1).clock().sync_to(5.0);
        assert_eq!(p.host_now_s(), 0.0);
        p.sync_all();
        assert_eq!(p.host_now_s(), 5.0);
    }

    #[test]
    fn reset_clocks_zeroes_everything() {
        let p = platform(2);
        p.device(0).clock().sync_to(3.0);
        p.charge_host(1.0);
        p.reset_clocks();
        assert_eq!(p.host_now_s(), 0.0);
        assert_eq!(p.device(0).clock().now_s(), 0.0);
    }

    #[test]
    fn copy_on_device_moves_data_without_pcie() {
        let p = platform(1);
        let a = p.device(0).alloc_from(&[1u32, 2, 3, 4]).unwrap();
        let b = p.device(0).alloc::<u32>(3).unwrap();
        let before = p.stats_snapshot();
        let ev = p.copy_on_device(&a, 1, &b, 0, 3).unwrap();
        assert_eq!(b.to_vec(), vec![2, 3, 4]);
        assert!(ev.duration_s() > 0.0);
        let delta = p.stats_snapshot() - before;
        assert_eq!(delta.total_transfers(), 0, "no PCIe traffic");
        // Bounds and device checks.
        assert!(p.copy_on_device(&a, 3, &b, 0, 3).is_err());
        let p2 = platform(2);
        let c = p2.device(0).alloc::<u32>(4).unwrap();
        let d = p2.device(1).alloc::<u32>(4).unwrap();
        assert!(p2.copy_on_device(&c, 0, &d, 0, 4).is_err());
    }

    #[test]
    fn same_device_d2d_range_degrades_to_local_copy() {
        let p = platform(1);
        let a = p.device(0).alloc_from(&[5u32, 6, 7, 8]).unwrap();
        let b = p.device(0).alloc::<u32>(4).unwrap();
        let before = p.stats_snapshot();
        p.copy_d2d_range(&a, 0, &b, 0, 4, 1).unwrap();
        assert_eq!(b.to_vec(), vec![5, 6, 7, 8]);
        let delta = p.stats_snapshot() - before;
        assert_eq!(delta.d2d_transfers, 0, "local copy must not cross PCIe");
    }

    #[test]
    fn mismatched_d2d_is_rejected() {
        let p = platform(2);
        let a = p.device(0).alloc::<f32>(4).unwrap();
        let b = p.device(1).alloc::<f32>(5).unwrap();
        assert!(p.copy_d2d(&a, &b, 1).is_err());
    }
}
