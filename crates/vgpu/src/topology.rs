//! Interconnect model: PCIe links between host and devices.
//!
//! The paper's testbed is a Tesla S1070: four GPUs in an external chassis
//! connected to the host through two PCIe interface cards, i.e. pairs of
//! GPUs share a host link and all transfers are staged through host memory
//! (no peer-to-peer). We model each device with its own link bandwidth plus
//! an aggregate host-bus bandwidth; `n` simultaneous transfers each see
//! `min(link, host_bus / n)`.

/// Bandwidth/latency of the link between one device and the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Sustained bandwidth in bytes/second (PCIe 2.0 x16 effective ≈ 5.2 GB/s).
    pub bandwidth_bytes_s: f64,
    /// Per-transfer setup latency in seconds.
    pub latency_s: f64,
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec {
            bandwidth_bytes_s: 5.2e9,
            latency_s: 10e-6,
        }
    }
}

/// Host-side interconnect shared by all device links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Per-device link (uniform across devices, as on the S1070).
    pub link: LinkSpec,
    /// Aggregate host bandwidth across all simultaneous transfers.
    /// The S1070 exposes two PCIe interfaces, so ~2 links' worth.
    pub host_bus_bytes_s: f64,
}

impl Default for Topology {
    fn default() -> Self {
        let link = LinkSpec::default();
        Topology {
            link,
            host_bus_bytes_s: 2.0 * link.bandwidth_bytes_s,
        }
    }
}

impl Topology {
    /// Effective per-transfer bandwidth when `concurrent` transfers are in
    /// flight at once.
    pub fn effective_bandwidth(&self, concurrent: usize) -> f64 {
        debug_assert!(concurrent >= 1);
        let share = self.host_bus_bytes_s / concurrent as f64;
        self.link.bandwidth_bytes_s.min(share)
    }

    /// Duration of one host↔device transfer of `bytes`, with `concurrent`
    /// transfers sharing the host bus.
    pub fn transfer_s(&self, bytes: usize, concurrent: usize) -> f64 {
        crate::timing::transfer_duration_s(
            bytes,
            self.effective_bandwidth(concurrent),
            self.link.latency_s,
        )
    }

    /// Duration of a device→device copy: staged through the host, so it
    /// crosses two links back to back (download then upload).
    pub fn d2d_transfer_s(&self, bytes: usize, concurrent: usize) -> f64 {
        2.0 * self.transfer_s(bytes, concurrent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_transfer_sees_full_link() {
        let t = Topology::default();
        assert_eq!(t.effective_bandwidth(1), t.link.bandwidth_bytes_s);
    }

    #[test]
    fn two_transfers_still_fit_the_dual_interface() {
        let t = Topology::default();
        // host bus is 2 links, so 2 concurrent transfers are unthrottled.
        assert_eq!(t.effective_bandwidth(2), t.link.bandwidth_bytes_s);
    }

    #[test]
    fn four_transfers_halve_the_bandwidth() {
        let t = Topology::default();
        let eff = t.effective_bandwidth(4);
        assert!((eff - t.link.bandwidth_bytes_s / 2.0).abs() < 1.0);
    }

    #[test]
    fn d2d_costs_two_crossings() {
        let t = Topology::default();
        let one = t.transfer_s(1 << 20, 1);
        let dd = t.d2d_transfer_s(1 << 20, 1);
        assert!((dd - 2.0 * one).abs() < 1e-12);
    }

    #[test]
    fn bigger_transfers_take_longer() {
        let t = Topology::default();
        assert!(t.transfer_s(2 << 20, 1) > t.transfer_s(1 << 20, 1));
    }
}
