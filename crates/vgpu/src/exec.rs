//! The launch executor: runs every work-group of an ND-range and folds the
//! per-group costs into a device-level roofline duration.
//!
//! GPUs dispatch work-groups to compute units *dynamically* (a CU takes the
//! next group when it finishes one), so the compute time of a launch is the
//! makespan of that greedy schedule. We model it with its tight lower
//! bound, `max(total_cycles / n_cus, max_single_group_cycles)` — which
//! greedy scheduling approaches whenever groups ≫ CUs — keeping durations
//! bit-reproducible regardless of host thread count.

use crate::device::DeviceSpec;
use crate::error::{Error, Result};
use crate::kernel::{AccessEnvelope, KernelBody, NDRange, WorkGroup};
use crate::pool;
use crate::profiling::AccessRange;
use crate::timing::{kernel_duration_s, KernelCost};

/// Everything a launch produced besides its side effects: the modeled
/// duration and the counters behind it (useful for tests and ablations).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LaunchStats {
    /// Modeled kernel duration (roofline, without launch overhead — the
    /// queue adds the driver's fixed cost).
    pub duration_s: f64,
    /// Busiest compute unit's cycle count.
    pub max_cu_cycles: f64,
    /// Total global-memory traffic in bytes.
    pub global_bytes: u64,
    /// Work-groups executed.
    pub n_groups: usize,
    /// Work-items that declared work.
    pub n_active_items: usize,
    /// Local-memory bank-conflict passes across all groups.
    pub bank_conflicts: u64,
    /// Barriers executed across all groups.
    pub barriers: u64,
    /// Global atomics across all groups.
    pub atomics: u64,
    /// Real host time spent simulating (not part of the model).
    pub wall_s: f64,
}

/// Per-thread accumulator merged after the parallel sweep.
struct ChunkAccum {
    total_cycles: f64,
    max_group_cycles: f64,
    bytes: u64,
    conflicts: u64,
    barriers: u64,
    atomics: u64,
    items: usize,
    accesses: Vec<AccessEnvelope>,
}

/// Per-buffer byte ranges one launch read and wrote (envelopes over every
/// work-group) — the read/write sets the timeline trace attributes to the
/// kernel's [`crate::CommandRecord`]. Empty unless tracking was requested.
#[derive(Debug, Clone, Default)]
pub struct AccessSummary {
    pub reads: Vec<AccessRange>,
    pub writes: Vec<AccessRange>,
}

/// Human-readable message of a kernel panic payload.
fn panic_msg(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "kernel body panicked".to_string()
    }
}

/// Execute `body` over `nd` on a device described by `spec`, with the
/// runtime achieving `compute_efficiency` of peak issue rate.
pub fn execute(
    spec: &DeviceSpec,
    body: &KernelBody,
    nd: NDRange,
    compute_efficiency: f64,
) -> Result<LaunchStats> {
    execute_traced(spec, body, nd, compute_efficiency, false).map(|(stats, _)| stats)
}

/// Like [`execute`], but optionally tracking which byte ranges of which
/// buffers the kernel touched (`track`), and converting kernel-body panics
/// (bad argument requests, out-of-bounds accesses) into
/// [`Error::KernelPanic`] instead of tearing down the caller.
pub fn execute_traced(
    spec: &DeviceSpec,
    body: &KernelBody,
    nd: NDRange,
    compute_efficiency: f64,
    track: bool,
) -> Result<(LaunchStats, AccessSummary)> {
    nd.validate(spec.max_work_group)?;
    let wall_start = std::time::Instant::now();

    let groups = nd.groups();
    let n_groups = nd.n_groups();
    let gx_n = groups[0];
    let n_cus = spec.compute_units;
    let threads = pool::recommended_threads().min(n_groups);

    // Panics are caught *inside* the worker closure: the pool's join would
    // otherwise replace the kernel's message with its own.
    let partials = pool::parallel_chunks(n_groups, threads, |range| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut acc = ChunkAccum {
                total_cycles: 0.0,
                max_group_cycles: 0.0,
                bytes: 0,
                conflicts: 0,
                barriers: 0,
                atomics: 0,
                items: 0,
                accesses: Vec::new(),
            };
            let mut wg = WorkGroup::new(
                nd,
                spec.pes_per_cu,
                spec.local_mem_bytes,
                spec.local_mem_banks,
                track,
            );
            for g in range {
                let gx = g % gx_n;
                let gy = g / gx_n;
                wg.reset_for_group(gx, gy);
                body(&wg);
                let cost = wg.cost();
                acc.total_cycles += cost.cycles;
                acc.max_group_cycles = acc.max_group_cycles.max(cost.cycles);
                acc.bytes += cost.bytes;
                acc.conflicts += cost.bank_conflicts;
                acc.barriers += cost.barriers;
                acc.atomics += cost.atomics;
                acc.items += cost.items;
            }
            acc.accesses = wg.take_accesses();
            acc
        }))
    });

    let mut total_cycles = 0.0f64;
    let mut max_group_cycles = 0.0f64;
    let mut bytes = 0u64;
    let mut conflicts = 0u64;
    let mut barriers = 0u64;
    let mut atomics = 0u64;
    let mut items = 0usize;
    let mut envelopes: Vec<AccessEnvelope> = Vec::new();
    for p in partials {
        let p = match p {
            Ok(p) => p,
            Err(payload) => return Err(Error::KernelPanic(panic_msg(payload))),
        };
        total_cycles += p.total_cycles;
        max_group_cycles = max_group_cycles.max(p.max_group_cycles);
        bytes += p.bytes;
        conflicts += p.conflicts;
        barriers += p.barriers;
        atomics += p.atomics;
        items += p.items;
        for e in p.accesses {
            match envelopes.iter_mut().find(|m| m.buffer == e.buffer) {
                Some(m) => {
                    m.read = join_env(m.read, e.read);
                    m.write = join_env(m.write, e.write);
                }
                None => envelopes.push(e),
            }
        }
    }
    // Dynamic-dispatch makespan: perfectly balanced unless a single group
    // dominates (then that group is the critical path).
    let max_cu_cycles = (total_cycles / n_cus as f64).max(max_group_cycles);

    let duration_s = kernel_duration_s(
        KernelCost {
            max_cu_cycles,
            global_bytes: bytes as f64,
        },
        spec.clock_hz,
        compute_efficiency,
        spec.mem_bandwidth_bytes_s,
    );

    let mut access = AccessSummary::default();
    for e in envelopes {
        if let Some((lo, hi)) = e.read {
            access.reads.push(AccessRange::new(e.buffer, lo, hi));
        }
        if let Some((lo, hi)) = e.write {
            access.writes.push(AccessRange::new(e.buffer, lo, hi));
        }
    }

    Ok((
        LaunchStats {
            duration_s,
            max_cu_cycles,
            global_bytes: bytes,
            n_groups,
            n_active_items: items,
            bank_conflicts: conflicts,
            barriers,
            atomics,
            wall_s: wall_start.elapsed().as_secs_f64(),
        },
        access,
    ))
}

fn join_env(a: Option<(u64, u64)>, b: Option<(u64, u64)>) -> Option<(u64, u64)> {
    match (a, b) {
        (Some((al, ah)), Some((bl, bh))) => Some((al.min(bl), ah.max(bh))),
        (x, None) => x,
        (None, y) => y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{Device, DeviceSpec};
    use crate::types::DeviceId;
    use std::sync::Arc;

    fn device() -> Device {
        Device::new(DeviceId(0), DeviceSpec::tiny())
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let dev = device();
        let n = 10_000usize;
        let buf = dev.alloc::<u32>(n).unwrap();
        let body: KernelBody = {
            let buf = buf.clone();
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    it.atomic_add_u32(&buf, it.global_id(0), 1);
                    it.work(1);
                });
            })
        };
        let stats = execute(dev.spec(), &body, NDRange::linear(n, 64), 1.0).unwrap();
        assert!(buf.to_vec().iter().all(|&v| v == 1));
        assert_eq!(stats.n_groups, n.div_ceil(64));
        assert_eq!(stats.n_active_items, n);
    }

    #[test]
    fn duration_is_deterministic_across_thread_counts() {
        let dev = device();
        let n = 4096usize;
        let buf = dev.alloc::<f32>(n).unwrap();
        let body: KernelBody = {
            let buf = buf.clone();
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    let i = it.global_id(0);
                    it.write(&buf, i, i as f32);
                    it.work((i % 37 + 1) as u64);
                });
            })
        };
        // Same launch under different host thread counts must give the same
        // virtual duration (group->CU mapping is fixed).
        std::env::set_var("VGPU_THREADS", "1");
        let a = execute(dev.spec(), &body, NDRange::linear(n, 32), 1.0).unwrap();
        std::env::set_var("VGPU_THREADS", "7");
        let b = execute(dev.spec(), &body, NDRange::linear(n, 32), 1.0).unwrap();
        std::env::remove_var("VGPU_THREADS");
        assert_eq!(a.duration_s, b.duration_s);
        assert_eq!(a.max_cu_cycles, b.max_cu_cycles);
        assert_eq!(a.global_bytes, b.global_bytes);
    }

    #[test]
    fn lower_efficiency_means_longer_compute_bound_kernels() {
        let dev = device();
        let body: KernelBody = Arc::new(|wg: &WorkGroup| {
            wg.for_each_item(|it| it.work(1000));
        });
        let nd = NDRange::linear(1024, 64);
        let fast = execute(dev.spec(), &body, nd, 1.0).unwrap();
        let slow = execute(dev.spec(), &body, nd, 0.5).unwrap();
        assert!((slow.duration_s / fast.duration_s - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_kernels_ignore_efficiency() {
        let dev = device();
        let n = 1 << 16;
        let buf = dev.alloc::<f32>(n).unwrap();
        let body: KernelBody = {
            let buf = buf.clone();
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    let i = it.global_id(0);
                    let v = it.read(&buf, i);
                    it.write(&buf, i, v + 1.0);
                    // no declared compute work: purely memory bound
                });
            })
        };
        let nd = NDRange::linear(n, 256);
        let a = execute(dev.spec(), &body, nd, 1.0).unwrap();
        let b = execute(dev.spec(), &body, nd, 0.5).unwrap();
        assert_eq!(a.duration_s, b.duration_s);
        let expected = (n * 8) as f64 / dev.spec().mem_bandwidth_bytes_s;
        assert!((a.duration_s - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn invalid_launch_is_rejected() {
        let dev = device();
        let body: KernelBody = Arc::new(|_wg: &WorkGroup| {});
        assert!(execute(dev.spec(), &body, NDRange::linear(0, 64), 1.0).is_err());
        assert!(execute(dev.spec(), &body, NDRange::linear(64, 0), 1.0).is_err());
        let too_big = NDRange::linear(1024, dev.spec().max_work_group + 1);
        assert!(execute(dev.spec(), &body, too_big, 1.0).is_err());
    }

    #[test]
    fn traced_execution_reports_launch_wide_access_envelopes() {
        let dev = device();
        let n = 1024usize;
        let src = dev.alloc::<f32>(n).unwrap();
        let dst = dev.alloc::<f32>(n).unwrap();
        let body: KernelBody = {
            let (src, dst) = (src.clone(), dst.clone());
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let i = it.global_id(0);
                    let v = it.read(&src, i);
                    it.write(&dst, i, v + 1.0);
                });
            })
        };
        let (_, access) =
            execute_traced(dev.spec(), &body, NDRange::linear(n, 64), 1.0, true).unwrap();
        assert_eq!(access.reads, vec![AccessRange::whole(src.id(), n * 4)]);
        assert_eq!(access.writes, vec![AccessRange::whole(dst.id(), n * 4)]);
        // Untracked runs stay free of attribution work.
        let (_, access) =
            execute_traced(dev.spec(), &body, NDRange::linear(n, 64), 1.0, false).unwrap();
        assert!(access.reads.is_empty() && access.writes.is_empty());
    }

    #[test]
    fn kernel_panics_become_typed_errors_with_the_original_message() {
        let dev = device();
        let body: KernelBody = Arc::new(|wg: &WorkGroup| {
            wg.for_each_item(|_| panic!("argument 3 is a float scalar, requested uint"));
        });
        let err = execute(dev.spec(), &body, NDRange::linear(8, 8), 1.0).unwrap_err();
        match err {
            Error::KernelPanic(msg) => assert!(msg.contains("argument 3"), "{msg}"),
            other => panic!("expected KernelPanic, got {other:?}"),
        }
    }

    #[test]
    fn two_d_launch_covers_the_grid() {
        let dev = device();
        let (w, h) = (33usize, 17usize);
        let buf = dev.alloc::<u32>(w * h).unwrap();
        let body: KernelBody = {
            let buf = buf.clone();
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    if !it.in_bounds() {
                        return;
                    }
                    let idx = it.global_id(1) * w + it.global_id(0);
                    it.atomic_add_u32(&buf, idx, 1);
                    it.work(1);
                });
            })
        };
        execute(dev.spec(), &body, NDRange::two_d((w, h), (16, 16)), 1.0).unwrap();
        assert!(buf.to_vec().iter().all(|&v| v == 1));
    }
}
