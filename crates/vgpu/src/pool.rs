//! Host-thread parallelism helpers.
//!
//! Work-groups are independent (OpenCL guarantees no inter-group ordering),
//! so a launch is embarrassingly parallel over groups. We split the group
//! index space into contiguous chunks, one per host thread, and run them on
//! std scoped threads. The group→CU assignment (and therefore every
//! virtual-time figure) is independent of the host thread count.

/// Number of host worker threads to use for kernel execution.
///
/// Respects the `VGPU_THREADS` environment variable (useful to pin
/// determinism investigations to one thread), otherwise the machine's
/// available parallelism.
pub fn recommended_threads() -> usize {
    if let Ok(v) = std::env::var("VGPU_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Split `0..n` into at most `parts` contiguous, near-equal ranges.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 {
        return vec![];
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    out
}

/// Run `f` over `0..n` tasks in parallel chunks, collecting one accumulator
/// per chunk; the caller merges them. `f` receives the chunk range.
pub fn parallel_chunks<A, F>(n: usize, threads: usize, f: F) -> Vec<A>
where
    A: Send,
    F: Fn(std::ops::Range<usize>) -> A + Sync,
{
    let ranges = chunk_ranges(n, threads);
    if ranges.len() <= 1 {
        return ranges.into_iter().map(&f).collect();
    }
    let mut out: Vec<Option<A>> = ranges.iter().map(|_| None).collect();
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(ranges.len());
        for r in &ranges {
            let f = &f;
            let r = r.clone();
            handles.push(s.spawn(move || f(r)));
        }
        for (slot, h) in out.iter_mut().zip(handles) {
            *slot = Some(h.join().expect("kernel worker panicked"));
        }
    });
    out.into_iter()
        .map(|a| a.expect("missing chunk result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_the_range_exactly() {
        for n in [0usize, 1, 7, 100, 1000] {
            for parts in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(n, parts);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    assert!(!r.is_empty());
                    next = r.end;
                }
                assert_eq!(next, n);
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        let ranges = chunk_ranges(10, 3);
        let lens: Vec<_> = ranges.iter().map(|r| r.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
    }

    #[test]
    fn parallel_chunks_merge_to_full_sum() {
        let partials = parallel_chunks(1000, 8, |r| r.map(|i| i as u64).sum::<u64>());
        let total: u64 = partials.into_iter().sum();
        assert_eq!(total, 999 * 1000 / 2);
    }

    #[test]
    fn single_task_runs_inline() {
        let partials = parallel_chunks(1, 8, |r| r.len());
        assert_eq!(partials, vec![1]);
    }

    #[test]
    fn recommended_threads_is_positive() {
        assert!(recommended_threads() >= 1);
    }
}
