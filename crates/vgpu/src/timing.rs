//! Virtual-time cost model: driver profiles, roofline kernel costs, clocks,
//! and the per-device execution engines commands are scheduled on.
//!
//! All modeled durations are `f64` seconds. The constants below are fixed
//! once for the whole repository — experiments never override them — so that
//! every figure is produced by the *same* machine model, like the paper's
//! single Tesla S1070 testbed.
//!
//! ## Scheduling rule
//!
//! Each device exposes two independent [`EngineKind`]s — a *compute* engine
//! executing kernels and a *copy* (DMA) engine executing transfers — over
//! one shared device timeline, like the dual-engine GPUs the paper targets.
//! A command submitted on an in-order queue ("stream") starts at
//!
//! ```text
//! start = max(queue-ready, dependency-ready, engine-availability, enqueue time)
//! ```
//!
//! so a D2H/H2D transfer can genuinely run *under* a kernel when their
//! stream and event dependencies allow it, while two kernels (or two
//! transfers) on the same device always serialize on their engine.
//!
//! ## Where the constants come from
//!
//! * Launch overheads: published microbenchmarks of the CUDA and OpenCL
//!   runtimes of that era put kernel-launch latency at ~5 µs (CUDA) and
//!   15–25 µs (OpenCL).
//! * `compute_efficiency`: Kong et al. (cited as \[8\] by the paper) report
//!   CUDA outperforming OpenCL on the same hardware, commonly by 20–40 % for
//!   compute-bound kernels; we model this as the fraction of peak issue rate
//!   that each runtime's compiler achieves.
//! * Compile cost: the paper reports runtime compilation "taking up to
//!   several hundreds of milliseconds" and that loading cached binaries "is
//!   at least five times faster than building them from source".

use parking_lot::Mutex;
use std::sync::Arc;

/// Number of lanes executing in lock-step; warp divergence is modeled at
/// this granularity (NVIDIA terminology, matching the Tesla hardware).
pub const WARP_SIZE: usize = 32;

/// Which execution engine of a device a command occupies. The modeled
/// hardware (like the real Tesla parts and every modern GPU) has a
/// dedicated DMA engine, so transfers and kernels only contend when they
/// target the *same* engine; commands on different engines of one device
/// may overlap in virtual time if their dependencies allow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Kernel execution.
    Compute,
    /// Host↔device and device↔device transfers (the DMA engine).
    Copy,
}

/// The latest completion time of a set of prerequisite timestamps — the
/// "dependency-ready" term of the scheduling rule. An empty set is ready at
/// the epoch.
pub fn ready_s(deps: impl IntoIterator<Item = f64>) -> f64 {
    deps.into_iter().fold(0.0, f64::max)
}

/// Extra cycles charged per local-memory bank conflict (serialised access).
pub const BANK_CONFLICT_CYCLES: f64 = 2.0;

/// Cycles charged for a work-group barrier.
pub const BARRIER_CYCLES: f64 = 40.0;

/// Cycles charged for one global-memory atomic operation (read-modify-write
/// through the memory hierarchy; dominant cost of scatter-accumulation).
pub const ATOMIC_CYCLES: f64 = 12.0;

/// A runtime flavour: the per-launch and per-build overheads plus the
/// compiler quality of one GPU programming stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriverProfile {
    /// Human-readable runtime name ("OpenCL", "CUDA", "SkelCL").
    pub name: &'static str,
    /// Fixed host-side cost of submitting one kernel launch.
    pub launch_overhead_s: f64,
    /// Cost of marshalling one kernel argument at launch time.
    pub arg_overhead_s: f64,
    /// Extra per-skeleton-call bookkeeping (lazy-copy checks, distribution
    /// dispatch); zero for the raw runtimes.
    pub skeleton_overhead_s: f64,
    /// Fraction of the device's peak issue rate the compiler achieves.
    pub compute_efficiency: f64,
    /// Whether kernels are compiled from source at runtime (OpenCL model)
    /// or ahead of time (CUDA's nvcc model).
    pub runtime_compile: bool,
    /// Fixed part of a runtime source build.
    pub compile_base_s: f64,
    /// Per-source-byte part of a runtime source build.
    pub compile_per_byte_s: f64,
    /// How much faster loading a cached binary is than building from source
    /// (the paper reports "at least five times"; we use 6.5).
    pub cache_load_factor: f64,
}

impl DriverProfile {
    /// The open standard runtime the paper builds on.
    pub fn opencl() -> Self {
        DriverProfile {
            name: "OpenCL",
            launch_overhead_s: 18e-6,
            arg_overhead_s: 0.25e-6,
            skeleton_overhead_s: 0.0,
            compute_efficiency: 0.72,
            runtime_compile: true,
            compile_base_s: 0.150,
            compile_per_byte_s: 2.0e-6,
            cache_load_factor: 6.5,
        }
    }

    /// NVIDIA's proprietary runtime: offline compilation, lower launch
    /// latency, better codegen for the same hardware.
    pub fn cuda() -> Self {
        DriverProfile {
            name: "CUDA",
            launch_overhead_s: 6e-6,
            arg_overhead_s: 0.15e-6,
            skeleton_overhead_s: 0.0,
            compute_efficiency: 1.0,
            runtime_compile: false,
            compile_base_s: 0.0,
            compile_per_byte_s: 0.0,
            cache_load_factor: 1.0,
        }
    }

    /// SkelCL rides on OpenCL and adds a small constant per-call overhead
    /// for skeleton dispatch, lazy-transfer checks and argument packing.
    pub fn skelcl() -> Self {
        DriverProfile {
            skeleton_overhead_s: 9e-6,
            name: "SkelCL",
            ..DriverProfile::opencl()
        }
    }

    /// Virtual cost of building a program of `source_len` bytes from source.
    pub fn compile_cost_s(&self, source_len: usize) -> f64 {
        if !self.runtime_compile {
            return 0.0;
        }
        self.compile_base_s + self.compile_per_byte_s * source_len as f64
    }

    /// Virtual cost of loading the cached binary for the same program.
    pub fn cache_load_cost_s(&self, source_len: usize) -> f64 {
        if !self.runtime_compile {
            return 0.0;
        }
        self.compile_cost_s(source_len) / self.cache_load_factor
    }

    /// Fixed cost of one launch with `n_args` kernel arguments.
    pub fn launch_cost_s(&self, n_args: usize) -> f64 {
        self.launch_overhead_s + self.arg_overhead_s * n_args as f64 + self.skeleton_overhead_s
    }
}

/// Aggregate execution counters produced by running a kernel; the inputs of
/// the roofline model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelCost {
    /// Per-CU compute cycles of the *busiest* compute unit, including warp
    /// divergence, barriers, bank conflicts and atomics.
    pub max_cu_cycles: f64,
    /// Total global-memory traffic in bytes (reads + writes + atomics).
    pub global_bytes: f64,
}

/// Computes the roofline duration of a kernel on a device.
///
/// `time = max(compute_time, memory_time)` where compute time is the busiest
/// CU's cycle count at the runtime's achieved issue rate, and memory time is
/// total traffic over the device's global-memory bandwidth.
pub fn kernel_duration_s(
    cost: KernelCost,
    clock_hz: f64,
    compute_efficiency: f64,
    mem_bandwidth_bytes_s: f64,
) -> f64 {
    let compute = cost.max_cu_cycles / (clock_hz * compute_efficiency);
    let memory = cost.global_bytes / mem_bandwidth_bytes_s;
    compute.max(memory)
}

/// Transfer time across one PCIe-like link.
pub fn transfer_duration_s(bytes: usize, bandwidth_bytes_s: f64, latency_s: f64) -> f64 {
    latency_s + bytes as f64 / bandwidth_bytes_s
}

/// A monotonically advancing virtual clock (seconds since platform epoch).
///
/// Each device owns one; the host owns one. `advance_from` implements the
/// in-order-queue rule: a command starts no earlier than both the clock's
/// current time and the given lower bound (usually the host clock at enqueue
/// time), runs for `duration`, and leaves the clock at its end time.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    now_s: Arc<Mutex<f64>>,
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualClock {
    pub fn new() -> Self {
        VirtualClock {
            now_s: Arc::new(Mutex::new(0.0)),
        }
    }

    /// Current virtual time in seconds.
    pub fn now_s(&self) -> f64 {
        *self.now_s.lock()
    }

    /// Schedule a command: starts at `max(now, not_before)`, lasts
    /// `duration_s`; returns `(start, end)` and advances the clock to `end`.
    pub fn advance_from(&self, not_before_s: f64, duration_s: f64) -> (f64, f64) {
        debug_assert!(duration_s >= 0.0, "negative duration");
        let mut now = self.now_s.lock();
        let start = now.max(not_before_s);
        let end = start + duration_s;
        *now = end;
        (start, end)
    }

    /// Move the clock forward to at least `t_s` (no-op if already past).
    pub fn sync_to(&self, t_s: f64) {
        let mut now = self.now_s.lock();
        if *now < t_s {
            *now = t_s;
        }
    }

    /// Reset to the epoch. Used between benchmark repetitions.
    pub fn reset(&self) {
        *self.now_s.lock() = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opencl_compile_is_hundreds_of_ms_for_typical_kernels() {
        let p = DriverProfile::opencl();
        // A ~2 KB generated skeleton program.
        let c = p.compile_cost_s(2048);
        assert!(c > 0.100 && c < 1.0, "compile cost {c}");
    }

    #[test]
    fn cache_load_is_at_least_five_times_faster() {
        let p = DriverProfile::opencl();
        for len in [128usize, 1024, 16 * 1024] {
            let compile = p.compile_cost_s(len);
            let load = p.cache_load_cost_s(len);
            assert!(compile / load >= 5.0, "factor {}", compile / load);
        }
    }

    #[test]
    fn cuda_has_no_runtime_compilation() {
        let p = DriverProfile::cuda();
        assert_eq!(p.compile_cost_s(100_000), 0.0);
        assert!(!p.runtime_compile);
    }

    #[test]
    fn skelcl_launch_costs_slightly_more_than_opencl() {
        let skel = DriverProfile::skelcl().launch_cost_s(4);
        let ocl = DriverProfile::opencl().launch_cost_s(4);
        assert!(skel > ocl);
        assert!(skel - ocl < 20e-6, "skeleton overhead should be small");
    }

    #[test]
    fn roofline_picks_the_binding_resource() {
        // Compute-bound: lots of cycles, no traffic.
        let t = kernel_duration_s(
            KernelCost {
                max_cu_cycles: 1e9,
                global_bytes: 0.0,
            },
            1e9,
            1.0,
            100e9,
        );
        assert!((t - 1.0).abs() < 1e-12);
        // Memory-bound: no cycles, 100 GB over 100 GB/s.
        let t = kernel_duration_s(
            KernelCost {
                max_cu_cycles: 0.0,
                global_bytes: 100e9,
            },
            1e9,
            1.0,
            100e9,
        );
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn virtual_clock_in_order_semantics() {
        let c = VirtualClock::new();
        let (s1, e1) = c.advance_from(0.0, 1.0);
        assert_eq!((s1, e1), (0.0, 1.0));
        // Command enqueued with a later lower bound waits for it.
        let (s2, e2) = c.advance_from(5.0, 0.5);
        assert_eq!((s2, e2), (5.0, 5.5));
        // Command with an earlier bound still starts after the queue head.
        let (s3, _) = c.advance_from(0.0, 0.1);
        assert_eq!(s3, 5.5);
        c.sync_to(100.0);
        assert_eq!(c.now_s(), 100.0);
        c.sync_to(1.0);
        assert_eq!(c.now_s(), 100.0);
        c.reset();
        assert_eq!(c.now_s(), 0.0);
    }

    #[test]
    fn transfer_duration_includes_latency() {
        let t = transfer_duration_s(5_200_000, 5.2e9, 10e-6);
        assert!((t - (10e-6 + 1e-3)).abs() < 1e-12);
    }
}
