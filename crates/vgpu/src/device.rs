//! The virtual device: hardware parameters, memory accounting, and the
//! dual-engine command timeline.

use crate::buffer::Buffer;
use crate::error::{Error, Result};
use crate::timing::{EngineKind, VirtualClock};
use crate::types::{DeviceId, Scalar};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Static hardware parameters of one device.
///
/// The default models one GPU of the paper's Tesla S1070 (a C1060-class
/// part): 30 streaming multiprocessors × 8 scalar cores = 240 cores at
/// 1.44 GHz, 4 GB of device memory at 102 GB/s, 16 KB of local memory per
/// SM organised in 16 banks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceSpec {
    pub name: &'static str,
    /// Compute units (OpenCL CUs ≙ CUDA SMs).
    pub compute_units: usize,
    /// Processing elements per CU (scalar cores).
    pub pes_per_cu: usize,
    /// Core clock in Hz.
    pub clock_hz: f64,
    /// Device (global) memory capacity in bytes.
    pub mem_bytes: usize,
    /// Global memory bandwidth in bytes/second.
    pub mem_bandwidth_bytes_s: f64,
    /// Local (shared) memory per CU in bytes.
    pub local_mem_bytes: usize,
    /// Local memory banks (for conflict modeling).
    pub local_mem_banks: usize,
    /// Maximum work-group size accepted by a launch.
    pub max_work_group: usize,
}

impl Default for DeviceSpec {
    fn default() -> Self {
        DeviceSpec::tesla_c1060()
    }
}

impl DeviceSpec {
    /// One GPU of the paper's Tesla S1070 computing system.
    pub fn tesla_c1060() -> Self {
        DeviceSpec {
            name: "Tesla C1060 (virtual)",
            compute_units: 30,
            pes_per_cu: 8,
            clock_hz: 1.44e9,
            mem_bytes: 4 << 30,
            mem_bandwidth_bytes_s: 102e9,
            local_mem_bytes: 16 << 10,
            local_mem_banks: 16,
            max_work_group: 512,
        }
    }

    /// A deliberately small device for tests: keeps group counts low so unit
    /// tests exercise multi-group paths without large allocations.
    pub fn tiny() -> Self {
        DeviceSpec {
            name: "tiny (test)",
            compute_units: 2,
            pes_per_cu: 4,
            clock_hz: 1e9,
            mem_bytes: 64 << 20,
            mem_bandwidth_bytes_s: 10e9,
            local_mem_bytes: 4 << 10,
            local_mem_banks: 16,
            max_work_group: 256,
        }
    }

    /// Total scalar cores.
    pub fn total_pes(&self) -> usize {
        self.compute_units * self.pes_per_cu
    }

    /// Peak arithmetic throughput in ops/second (1 op/cycle/PE).
    pub fn peak_ops_s(&self) -> f64 {
        self.total_pes() as f64 * self.clock_hz
    }
}

/// One device's command timeline: a virtual clock per execution engine
/// (compute and copy run independently, like a GPU with a dedicated DMA
/// engine) plus the in-order stream clocks the device's command queues
/// register with it.
///
/// "The device is done" means *both* engines are done — [`now_s`] is their
/// maximum — which is what [`crate::Platform::sync_all`] and the legacy
/// device-serializing commands observe, so code written against the old
/// single-clock model sees an identical timeline.
///
/// [`now_s`]: DeviceTimeline::now_s
#[derive(Debug, Default)]
pub struct DeviceTimeline {
    compute: VirtualClock,
    copy: VirtualClock,
    /// In-order queue tails registered by [`crate::CommandQueue`]s, kept so
    /// [`DeviceTimeline::reset`] rewinds them together with the engines.
    streams: Mutex<Vec<VirtualClock>>,
}

impl DeviceTimeline {
    /// When the device falls idle: the latest engine completion time.
    pub fn now_s(&self) -> f64 {
        self.compute.now_s().max(self.copy.now_s())
    }

    /// The availability clock of one engine.
    pub fn engine(&self, engine: EngineKind) -> &VirtualClock {
        match engine {
            EngineKind::Compute => &self.compute,
            EngineKind::Copy => &self.copy,
        }
    }

    /// Move both engines forward to at least `t_s` (join point).
    pub fn sync_to(&self, t_s: f64) {
        self.compute.sync_to(t_s);
        self.copy.sync_to(t_s);
    }

    /// Rewind both engines and every registered stream to the epoch.
    pub fn reset(&self) {
        self.compute.reset();
        self.copy.reset();
        for s in self.streams.lock().iter() {
            s.reset();
        }
    }

    /// Create and register a fresh in-order stream clock (one per
    /// [`crate::CommandQueue`]): the "queue-ready" term of the scheduling
    /// rule.
    pub(crate) fn register_stream(&self) -> VirtualClock {
        let clock = VirtualClock::new();
        self.streams.lock().push(clock.clone());
        clock
    }
}

/// One virtual device: spec + memory accounting + its command timeline.
#[derive(Debug)]
pub struct Device {
    id: DeviceId,
    spec: DeviceSpec,
    used_bytes: Arc<AtomicUsize>,
    clock: DeviceTimeline,
}

impl Device {
    pub(crate) fn new(id: DeviceId, spec: DeviceSpec) -> Self {
        Device {
            id,
            spec,
            used_bytes: Arc::new(AtomicUsize::new(0)),
            clock: DeviceTimeline::default(),
        }
    }

    pub fn id(&self) -> DeviceId {
        self.id
    }

    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// The device's virtual command timeline (per-engine clocks).
    pub fn clock(&self) -> &DeviceTimeline {
        &self.clock
    }

    /// Bytes of device memory currently allocated.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes.load(Ordering::Relaxed)
    }

    /// Bytes of device memory still available.
    pub fn available_bytes(&self) -> usize {
        self.spec.mem_bytes.saturating_sub(self.used_bytes())
    }

    /// Allocate an uninitialised (zeroed) buffer of `len` elements on this
    /// device, like `clCreateBuffer`. Fails with
    /// [`Error::OutOfDeviceMemory`] when the capacity is exceeded —
    /// the paper's OSEM implementation has to budget path memory for exactly
    /// this reason.
    pub fn alloc<T: Scalar>(&self, len: usize) -> Result<Buffer<T>> {
        let bytes = len * std::mem::size_of::<T>();
        // Reserve first; undo on failure.
        let prev = self.used_bytes.fetch_add(bytes, Ordering::Relaxed);
        if prev + bytes > self.spec.mem_bytes {
            self.used_bytes.fetch_sub(bytes, Ordering::Relaxed);
            return Err(Error::OutOfDeviceMemory {
                device: self.id,
                requested: bytes,
                available: self.spec.mem_bytes.saturating_sub(prev),
            });
        }
        Ok(Buffer::new_zeroed(
            self.id,
            len,
            Arc::clone(&self.used_bytes),
        ))
    }

    /// Allocate and fill from a host slice in one step.
    pub fn alloc_from<T: Scalar>(&self, data: &[T]) -> Result<Buffer<T>> {
        let buf = self.alloc::<T>(data.len())?;
        buf.write_from_host(data)?;
        Ok(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_paper_hardware() {
        let s = DeviceSpec::tesla_c1060();
        // "Each GPU comprises 240 streaming processor cores running at up
        //  to 1.44 GHz" with 4 GB per GPU at 102 GB/s.
        assert_eq!(s.total_pes(), 240);
        assert_eq!(s.clock_hz, 1.44e9);
        assert_eq!(s.mem_bytes, 4 << 30);
        assert_eq!(s.mem_bandwidth_bytes_s, 102e9);
    }

    #[test]
    fn allocation_accounting() {
        let dev = Device::new(DeviceId(0), DeviceSpec::tiny());
        assert_eq!(dev.used_bytes(), 0);
        let a = dev.alloc::<f32>(1024).unwrap();
        assert_eq!(dev.used_bytes(), 4096);
        let b = dev.alloc::<u64>(16).unwrap();
        assert_eq!(dev.used_bytes(), 4096 + 128);
        drop(a);
        assert_eq!(dev.used_bytes(), 128);
        drop(b);
        assert_eq!(dev.used_bytes(), 0);
    }

    #[test]
    fn out_of_memory_is_reported_and_rolled_back() {
        let dev = Device::new(DeviceId(3), DeviceSpec::tiny());
        let cap = dev.spec().mem_bytes;
        let err = dev.alloc::<u8>(cap + 1).unwrap_err();
        match err {
            Error::OutOfDeviceMemory {
                device, requested, ..
            } => {
                assert_eq!(device, DeviceId(3));
                assert_eq!(requested, cap + 1);
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The failed reservation must not leak.
        assert_eq!(dev.used_bytes(), 0);
        assert!(dev.alloc::<u8>(cap).is_ok());
    }

    #[test]
    fn alloc_from_copies_data() {
        let dev = Device::new(DeviceId(0), DeviceSpec::tiny());
        let buf = dev.alloc_from(&[1.0f32, 2.0, 3.0]).unwrap();
        assert_eq!(buf.to_vec(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn peak_ops_reflects_cores_times_clock() {
        let s = DeviceSpec::tesla_c1060();
        assert!((s.peak_ops_s() - 240.0 * 1.44e9).abs() < 1.0);
    }
}
