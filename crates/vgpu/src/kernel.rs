//! Kernel execution structures: ND-ranges, work-groups and work-items.
//!
//! Kernels are written against the same concepts OpenCL exposes (global and
//! local IDs, work-groups, barriers, local memory) so the SkelCL skeleton
//! implementations can follow the paper's kernels line by line. A kernel
//! *body* is a Rust closure over a [`WorkGroup`]; the matching OpenCL-C
//! source string travels alongside it in [`crate::Program`] for the code
//! generation, caching and LoC experiments.

use crate::buffer::Buffer;
use crate::error::{Error, Result};
use crate::local::{BankModel, LocalBuf};
use crate::timing::{ATOMIC_CYCLES, BANK_CONFLICT_CYCLES, BARRIER_CYCLES, WARP_SIZE};
use crate::types::{BufferId, Scalar};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Min/max byte envelope of one launch's accesses to one buffer, split by
/// direction. Atomics count as both a read and a write.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AccessEnvelope {
    pub buffer: BufferId,
    pub read: Option<(u64, u64)>,
    pub write: Option<(u64, u64)>,
}

/// The executable semantics of a kernel: called once per work-group.
///
/// Inside, use [`WorkGroup::for_each_item`] for per-item phases and
/// [`WorkGroup::barrier`] between phases (loop fission).
pub type KernelBody = Arc<dyn Fn(&WorkGroup) + Send + Sync>;

/// Index space of a launch: up to two dimensions, like the paper's
/// Mandelbrot (16×16 groups) and SkelCL's default 1-D groups of 256.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NDRange {
    /// Global extent per dimension (`[n, 1]` for 1-D).
    pub global: [usize; 2],
    /// Work-group extent per dimension.
    pub local: [usize; 2],
}

impl NDRange {
    /// One-dimensional range: `global` items in groups of `local`.
    pub fn linear(global: usize, local: usize) -> Self {
        NDRange {
            global: [global, 1],
            local: [local, 1],
        }
    }

    /// Two-dimensional range.
    pub fn two_d(global: (usize, usize), local: (usize, usize)) -> Self {
        NDRange {
            global: [global.0, global.1],
            local: [local.0, local.1],
        }
    }

    /// Items per work-group.
    pub fn local_total(&self) -> usize {
        self.local[0] * self.local[1]
    }

    /// Total work-items in the launch (before group padding).
    pub fn global_total(&self) -> usize {
        self.global[0] * self.global[1]
    }

    /// Work-groups per dimension (global rounded up to group multiples;
    /// items past the global extent are masked out, a convenience real
    /// OpenCL does not offer but every kernel ends up hand-coding).
    pub fn groups(&self) -> [usize; 2] {
        [
            self.global[0].div_ceil(self.local[0].max(1)),
            self.global[1].div_ceil(self.local[1].max(1)),
        ]
    }

    pub fn n_groups(&self) -> usize {
        let g = self.groups();
        g[0] * g[1]
    }

    pub fn validate(&self, max_work_group: usize) -> Result<()> {
        if self.global_total() == 0 {
            return Err(Error::InvalidLaunch("zero global size".into()));
        }
        if self.local_total() == 0 {
            return Err(Error::InvalidLaunch("zero local size".into()));
        }
        if self.local_total() > max_work_group {
            return Err(Error::InvalidLaunch(format!(
                "work-group of {} exceeds device maximum {}",
                self.local_total(),
                max_work_group
            )));
        }
        Ok(())
    }
}

/// Cost contributions of one executed work-group, fed to the CU queues.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct GroupCost {
    pub cycles: f64,
    pub bytes: u64,
    pub bank_conflicts: u64,
    pub barriers: u64,
    pub atomics: u64,
    pub items: usize,
}

/// Execution context of one work-group.
///
/// Interior-mutable counters record the work each item declares
/// ([`Item::work`]) and the global-memory traffic flowing through the typed
/// accessors; they drive the roofline model with warp-divergence awareness:
/// a warp's cost is the *maximum* of its lanes' declared work, so kernels
/// with irregular per-item effort (Mandelbrot!) pay for divergence exactly
/// as the hardware would.
pub struct WorkGroup {
    group: [usize; 2],
    nd: NDRange,
    pes_per_cu: usize,
    local_mem_limit: usize,
    local_mem_used: Cell<usize>,
    item_ops: Box<[Cell<u64>]>,
    bytes_read: Cell<u64>,
    bytes_written: Cell<u64>,
    atomics: Cell<u64>,
    barriers: Cell<u64>,
    bank: BankModel,
    /// When set, the typed accessors record per-buffer byte envelopes into
    /// `accesses` — the read/write attribution the hazard checker consumes.
    track_access: bool,
    /// Envelopes accumulate across every group this context executes (they
    /// describe the *launch*, not one group), so `reset_for_group` leaves
    /// them alone.
    accesses: RefCell<Vec<AccessEnvelope>>,
    /// Last-hit index into `accesses`: kernels touch few buffers and touch
    /// the same one repeatedly, so this makes tracking O(1) per access.
    access_hint: Cell<usize>,
}

impl WorkGroup {
    pub(crate) fn new(
        nd: NDRange,
        pes_per_cu: usize,
        local_mem_limit: usize,
        banks: usize,
        track_access: bool,
    ) -> Self {
        WorkGroup {
            group: [0, 0],
            nd,
            pes_per_cu,
            local_mem_limit,
            local_mem_used: Cell::new(0),
            item_ops: (0..nd.local_total()).map(|_| Cell::new(0)).collect(),
            bytes_read: Cell::new(0),
            bytes_written: Cell::new(0),
            atomics: Cell::new(0),
            barriers: Cell::new(0),
            bank: BankModel::new(banks),
            track_access,
            accesses: RefCell::new(Vec::new()),
            access_hint: Cell::new(0),
        }
    }

    fn note_access(&self, buffer: BufferId, lo: u64, hi: u64, is_write: bool) {
        let mut v = self.accesses.borrow_mut();
        let hint = self.access_hint.get();
        let idx = if hint < v.len() && v[hint].buffer == buffer {
            hint
        } else if let Some(i) = v.iter().position(|e| e.buffer == buffer) {
            self.access_hint.set(i);
            i
        } else {
            v.push(AccessEnvelope {
                buffer,
                read: None,
                write: None,
            });
            self.access_hint.set(v.len() - 1);
            v.len() - 1
        };
        let slot = if is_write {
            &mut v[idx].write
        } else {
            &mut v[idx].read
        };
        *slot = Some(match *slot {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
    }

    /// Drain the recorded access envelopes (empty unless tracking was on).
    pub(crate) fn take_accesses(&mut self) -> Vec<AccessEnvelope> {
        self.access_hint.set(0);
        std::mem::take(&mut self.accesses.borrow_mut())
    }

    /// Re-aim this context at work-group `(gx, gy)` and clear counters.
    pub(crate) fn reset_for_group(&mut self, gx: usize, gy: usize) {
        self.group = [gx, gy];
        self.local_mem_used.set(0);
        for c in self.item_ops.iter() {
            c.set(0);
        }
        self.bytes_read.set(0);
        self.bytes_written.set(0);
        self.atomics.set(0);
        self.barriers.set(0);
        self.bank.reset();
    }

    /// This group's ID in dimension `dim` (0 or 1).
    pub fn group_id(&self, dim: usize) -> usize {
        self.group[dim]
    }

    /// Work-group extent in dimension `dim`.
    pub fn local_size(&self, dim: usize) -> usize {
        self.nd.local[dim]
    }

    /// Global extent in dimension `dim`.
    pub fn global_size(&self, dim: usize) -> usize {
        self.nd.global[dim]
    }

    /// Number of work-groups in dimension `dim`.
    pub fn num_groups(&self, dim: usize) -> usize {
        self.nd.groups()[dim]
    }

    /// Items per group (full group size, including masked lanes).
    pub fn local_total(&self) -> usize {
        self.nd.local_total()
    }

    /// Run `f` once per work-item of this group — **all** lanes, including
    /// those whose global ID falls beyond the global extent (OpenCL pads the
    /// last group; kernels carry the usual `if (gid < n)` guard, here
    /// [`Item::in_bounds`]). Local-memory algorithms rely on out-of-range
    /// lanes still participating in barriers and tree phases.
    pub fn for_each_item(&self, mut f: impl FnMut(&Item<'_>)) {
        let [lx_n, ly_n] = self.nd.local;
        for ly in 0..ly_n {
            let gy = self.group[1] * ly_n + ly;
            for lx in 0..lx_n {
                let gx = self.group[0] * lx_n + lx;
                let item = Item {
                    wg: self,
                    lx,
                    ly,
                    gx,
                    gy,
                };
                f(&item);
            }
        }
    }

    /// Work-group barrier (`barrier(CLK_LOCAL_MEM_FENCE)`): in the
    /// loop-fission execution model this only accounts its cost — phase
    /// separation is provided by consecutive `for_each_item` calls.
    pub fn barrier(&self) {
        self.barriers.set(self.barriers.get() + 1);
    }

    /// Allocate a local-memory array of `len` elements of `T`.
    ///
    /// Panics if the device's per-CU local memory budget is exceeded —
    /// mirroring the launch failure a real runtime would raise.
    pub fn local_buf<T: Scalar>(&self, len: usize) -> LocalBuf<T> {
        let bytes = len * std::mem::size_of::<T>();
        let used = self.local_mem_used.get() + bytes;
        if used > self.local_mem_limit {
            panic!(
                "local memory request of {used} bytes exceeds the device limit of {} bytes",
                self.local_mem_limit
            );
        }
        self.local_mem_used.set(used);
        LocalBuf::new(len)
    }

    /// The bank-conflict model for this group's local memory; kernels that
    /// optimise their access patterns record warp accesses here.
    pub fn bank_model(&self) -> &BankModel {
        &self.bank
    }

    fn count_read(&self, bytes: usize) {
        self.bytes_read.set(self.bytes_read.get() + bytes as u64);
    }

    fn count_write(&self, bytes: usize) {
        self.bytes_written
            .set(self.bytes_written.get() + bytes as u64);
    }

    /// Fold the recorded counters into the group's cycle/traffic cost.
    pub(crate) fn cost(&self) -> GroupCost {
        let lanes = self.nd.local_total();
        let warps = lanes.div_ceil(WARP_SIZE);
        // Lock-step warps: each warp pays for its slowest lane, issued over
        // ceil(warp/PEs) pipeline slots.
        let slots = (WARP_SIZE.min(lanes) as f64 / self.pes_per_cu as f64).ceil();
        let mut cycles = 0.0;
        let mut items = 0usize;
        for w in 0..warps {
            let lo = w * WARP_SIZE;
            let hi = ((w + 1) * WARP_SIZE).min(lanes);
            let mut max_ops = 0u64;
            for c in &self.item_ops[lo..hi] {
                let v = c.get();
                if v > 0 {
                    items += 1;
                }
                max_ops = max_ops.max(v);
            }
            cycles += max_ops as f64 * slots;
        }
        cycles += self.barriers.get() as f64 * BARRIER_CYCLES;
        cycles += self.bank.conflicts() as f64 * BANK_CONFLICT_CYCLES;
        cycles += self.atomics.get() as f64 * ATOMIC_CYCLES;
        GroupCost {
            cycles,
            bytes: self.bytes_read.get() + self.bytes_written.get(),
            bank_conflicts: self.bank.conflicts(),
            barriers: self.barriers.get(),
            atomics: self.atomics.get(),
            items,
        }
    }
}

/// One work-item's view: IDs plus counted global-memory accessors.
pub struct Item<'a> {
    wg: &'a WorkGroup,
    lx: usize,
    ly: usize,
    gx: usize,
    gy: usize,
}

impl<'a> Item<'a> {
    /// Global ID in dimension `dim` (`get_global_id`).
    #[inline]
    pub fn global_id(&self, dim: usize) -> usize {
        if dim == 0 {
            self.gx
        } else {
            self.gy
        }
    }

    /// The `if (gid < n)` guard: false for padding lanes of the last group.
    #[inline]
    pub fn in_bounds(&self) -> bool {
        self.gx < self.wg.nd.global[0] && self.gy < self.wg.nd.global[1]
    }

    /// Local ID in dimension `dim` (`get_local_id`).
    #[inline]
    pub fn local_id(&self, dim: usize) -> usize {
        if dim == 0 {
            self.lx
        } else {
            self.ly
        }
    }

    /// Row-major linearised global ID.
    #[inline]
    pub fn global_linear(&self) -> usize {
        self.gy * self.wg.nd.global[0] + self.gx
    }

    /// Row-major linearised local ID (the lane index within the group).
    #[inline]
    pub fn local_linear(&self) -> usize {
        self.ly * self.wg.nd.local[0] + self.lx
    }

    /// The warp this lane belongs to.
    #[inline]
    pub fn warp(&self) -> usize {
        self.local_linear() / WARP_SIZE
    }

    /// Declare `ops` units of arithmetic work for this item. Warp cost is
    /// the max over lanes, so divergent items serialise their warp.
    #[inline]
    pub fn work(&self, ops: u64) {
        let c = &self.wg.item_ops[self.local_linear()];
        c.set(c.get() + ops);
    }

    #[inline]
    fn note_elem<T: Scalar>(&self, buf: &Buffer<T>, i: usize, is_write: bool) {
        if self.wg.track_access {
            let sz = std::mem::size_of::<T>() as u64;
            let lo = i as u64 * sz;
            self.wg.note_access(buf.id(), lo, lo + sz, is_write);
        }
    }

    /// Counted global-memory load.
    #[inline]
    pub fn read<T: Scalar>(&self, buf: &Buffer<T>, i: usize) -> T {
        self.wg.count_read(std::mem::size_of::<T>());
        self.note_elem(buf, i, false);
        buf.get(i)
    }

    /// Counted global-memory store.
    #[inline]
    pub fn write<T: Scalar>(&self, buf: &Buffer<T>, i: usize, v: T) {
        self.wg.count_write(std::mem::size_of::<T>());
        self.note_elem(buf, i, true);
        buf.set(i, v)
    }

    /// Counted `atomicAdd` on an `f32` buffer (the OSEM error image).
    /// An atomic is a read-modify-write: 8 bytes of traffic.
    #[inline]
    pub fn atomic_add_f32(&self, buf: &Buffer<f32>, i: usize, v: f32) {
        self.wg.atomics.set(self.wg.atomics.get() + 1);
        self.wg.count_read(4);
        self.wg.count_write(4);
        self.note_elem(buf, i, false);
        self.note_elem(buf, i, true);
        buf.atomic_add(i, v);
    }

    /// Counted `atomic_add` on a `u32` buffer; returns the previous value.
    #[inline]
    pub fn atomic_add_u32(&self, buf: &Buffer<u32>, i: usize, v: u32) -> u32 {
        self.wg.atomics.set(self.wg.atomics.get() + 1);
        self.wg.count_read(4);
        self.wg.count_write(4);
        self.note_elem(buf, i, false);
        self.note_elem(buf, i, true);
        buf.atomic_add(i, v)
    }

    /// Charge additional read traffic beyond the element size — kernels with
    /// *uncoalesced* access patterns use this to account the full memory
    /// segment (32–128 B on Tesla-class hardware) each scattered access
    /// really moves.
    #[inline]
    pub fn traffic_read(&self, bytes: usize) {
        self.wg.count_read(bytes);
    }

    /// Charge additional write traffic (see [`Item::traffic_read`]).
    #[inline]
    pub fn traffic_write(&self, bytes: usize) {
        self.wg.count_write(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DeviceId;
    use std::sync::atomic::AtomicUsize;

    fn mk_buf<T: Scalar>(len: usize) -> Buffer<T> {
        Buffer::new_zeroed(DeviceId(0), len, Arc::new(AtomicUsize::new(0)))
    }

    fn mk_wg(nd: NDRange) -> WorkGroup {
        WorkGroup::new(nd, 8, 16 << 10, 16, false)
    }

    #[test]
    fn ndrange_linear_and_groups() {
        let nd = NDRange::linear(1000, 256);
        assert_eq!(nd.local_total(), 256);
        assert_eq!(nd.global_total(), 1000);
        assert_eq!(nd.groups(), [4, 1]);
        assert_eq!(nd.n_groups(), 4);
    }

    #[test]
    fn ndrange_two_d() {
        let nd = NDRange::two_d((64, 48), (16, 16));
        assert_eq!(nd.groups(), [4, 3]);
        assert_eq!(nd.local_total(), 256);
    }

    #[test]
    fn ndrange_validation() {
        assert!(NDRange::linear(0, 16).validate(256).is_err());
        assert!(NDRange::linear(16, 0).validate(256).is_err());
        assert!(NDRange::linear(16, 512).validate(256).is_err());
        assert!(NDRange::linear(16, 16).validate(256).is_ok());
    }

    #[test]
    fn padding_lanes_run_but_are_out_of_bounds() {
        let nd = NDRange::linear(10, 4); // 3 groups, last has 2 valid items
        let mut wg = mk_wg(nd);
        wg.reset_for_group(2, 0);
        let mut valid = vec![];
        let mut lanes = 0;
        wg.for_each_item(|it| {
            lanes += 1;
            if it.in_bounds() {
                valid.push(it.global_id(0));
            }
        });
        assert_eq!(lanes, 4, "all lanes of the padded group must run");
        assert_eq!(valid, vec![8, 9]);
    }

    #[test]
    fn global_and_local_ids_2d() {
        let nd = NDRange::two_d((8, 8), (4, 4));
        let mut wg = mk_wg(nd);
        wg.reset_for_group(1, 1);
        let mut ids = vec![];
        wg.for_each_item(|it| {
            ids.push((
                it.global_id(0),
                it.global_id(1),
                it.local_id(0),
                it.local_id(1),
                it.global_linear(),
            ));
        });
        assert_eq!(ids.len(), 16);
        assert_eq!(ids[0], (4, 4, 0, 0, 36));
        assert_eq!(ids[15], (7, 7, 3, 3, 63));
    }

    #[test]
    fn warp_divergence_costs_max_of_lanes() {
        let nd = NDRange::linear(32, 32); // one warp
        let mut wg = mk_wg(nd);
        wg.reset_for_group(0, 0);
        wg.for_each_item(|it| {
            // one lane does 100 ops, the rest do 1
            it.work(if it.local_id(0) == 0 { 100 } else { 1 });
        });
        let cost = wg.cost();
        // slots = 32/8 = 4; warp cost = max(100) * 4
        assert_eq!(cost.cycles, 400.0);
    }

    #[test]
    fn uniform_work_normalisation() {
        // 64 items, 8 PEs: total lane-ops 64*10 = 640, 8 per cycle = 80 cycles.
        let nd = NDRange::linear(64, 64);
        let mut wg = mk_wg(nd);
        wg.reset_for_group(0, 0);
        wg.for_each_item(|it| it.work(10));
        assert_eq!(wg.cost().cycles, 80.0);
    }

    #[test]
    fn memory_traffic_is_counted() {
        let buf = mk_buf::<f32>(64);
        let nd = NDRange::linear(64, 64);
        let mut wg = mk_wg(nd);
        wg.reset_for_group(0, 0);
        wg.for_each_item(|it| {
            let i = it.global_id(0);
            let v = it.read(&buf, i);
            it.write(&buf, i, v + 1.0);
        });
        let cost = wg.cost();
        assert_eq!(cost.bytes, 64 * 4 * 2);
        assert_eq!(buf.get(7), 1.0);
    }

    #[test]
    fn barriers_and_atomics_add_cycles() {
        let buf = mk_buf::<f32>(1);
        let nd = NDRange::linear(8, 8);
        let mut wg = mk_wg(nd);
        wg.reset_for_group(0, 0);
        wg.for_each_item(|it| it.atomic_add_f32(&buf, 0, 1.0));
        wg.barrier();
        let cost = wg.cost();
        assert_eq!(cost.atomics, 8);
        assert_eq!(cost.barriers, 1);
        assert!(cost.cycles >= 8.0 * ATOMIC_CYCLES + BARRIER_CYCLES);
        assert_eq!(buf.get(0), 8.0);
    }

    #[test]
    #[should_panic(expected = "local memory request")]
    fn local_mem_budget_is_enforced() {
        let nd = NDRange::linear(8, 8);
        let mut wg = WorkGroup::new(nd, 8, 64, 16, false);
        wg.reset_for_group(0, 0);
        let _ = wg.local_buf::<f64>(16); // 128 bytes > 64-byte budget
    }

    #[test]
    fn access_envelopes_record_touched_byte_ranges() {
        let src = mk_buf::<f32>(64);
        let dst = mk_buf::<f32>(64);
        let nd = NDRange::linear(8, 8);
        let mut wg = WorkGroup::new(nd, 8, 16 << 10, 16, true);
        wg.reset_for_group(0, 0);
        wg.for_each_item(|it| {
            let i = it.global_id(0) + 2; // touches elements 2..10
            let v = it.read(&src, i);
            it.write(&dst, i, v);
        });
        let acc = wg.take_accesses();
        assert_eq!(acc.len(), 2);
        let src_env = acc.iter().find(|e| e.buffer == src.id()).unwrap();
        assert_eq!(src_env.read, Some((8, 40)));
        assert_eq!(src_env.write, None);
        let dst_env = acc.iter().find(|e| e.buffer == dst.id()).unwrap();
        assert_eq!(dst_env.write, Some((8, 40)));
        // Drained: a second take is empty.
        assert!(wg.take_accesses().is_empty());
    }

    #[test]
    fn untracked_workgroup_records_no_envelopes() {
        let buf = mk_buf::<f32>(8);
        let nd = NDRange::linear(8, 8);
        let mut wg = mk_wg(nd);
        wg.reset_for_group(0, 0);
        wg.for_each_item(|it| {
            it.write(&buf, it.global_id(0), 1.0);
        });
        assert!(wg.take_accesses().is_empty());
    }

    #[test]
    fn reset_clears_all_counters() {
        let nd = NDRange::linear(8, 8);
        let mut wg = mk_wg(nd);
        wg.reset_for_group(0, 0);
        wg.for_each_item(|it| it.work(5));
        wg.barrier();
        assert!(wg.cost().cycles > 0.0);
        wg.reset_for_group(1, 0);
        let cost = wg.cost();
        assert_eq!(cost.cycles, 0.0);
        assert_eq!(cost.barriers, 0);
    }
}
