//! Runtime program "compilation" and the on-disk binary cache.
//!
//! The paper (Section III-B): *"Compiling the source code every time from
//! source is a time-consuming task, taking up to several hundreds of
//! milliseconds. [...] Therefore, SkelCL saves already compiled kernels on
//! disk. [...] loading kernels from disk is at least five times faster than
//! building them from source."*
//!
//! Rust cannot compile OpenCL-C strings at runtime, so a build here does two
//! things: (1) it *actually performs* deterministic work proportional to the
//! source size (so the wall-clock benefit of the cache is real and
//! measurable by Criterion), and (2) it charges the modeled compile cost
//! from the driver profile to the virtual host clock (so the figures
//! harness reports the paper-comparable numbers). A cache hit replaces both
//! with the much cheaper binary load.

use crate::error::{Error, Result};
use crate::kernel::KernelBody;
use crate::timing::DriverProfile;
use std::fs;
use std::path::{Path, PathBuf};

/// FNV-1a, used to key cached binaries by program source.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A program: a named OpenCL-C source string, as handed to
/// `clCreateProgramWithSource`. SkelCL's code generator produces these by
/// merging user functions into skeleton templates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    pub name: String,
    pub source: String,
    /// Number of kernel arguments, for launch-overhead accounting.
    pub n_args: usize,
}

impl Program {
    pub fn from_source(name: impl Into<String>, source: impl Into<String>) -> Self {
        Program {
            name: name.into(),
            source: source.into(),
            n_args: 4,
        }
    }

    pub fn with_arg_count(mut self, n: usize) -> Self {
        self.n_args = n;
        self
    }

    pub fn hash(&self) -> u64 {
        fnv1a(self.source.as_bytes())
    }
}

/// How a kernel became executable: a fresh source build or a cache load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuildOutcome {
    pub from_cache: bool,
    /// Modeled cost charged to the virtual host clock.
    pub virtual_s: f64,
    /// Real host time the (simulated) build took.
    pub wall_s: f64,
}

/// An executable kernel: source identity + launch metadata + body.
#[derive(Clone)]
pub struct CompiledKernel {
    pub name: String,
    pub source_hash: u64,
    pub source_len: usize,
    pub n_args: usize,
    pub(crate) body: KernelBody,
}

impl CompiledKernel {
    /// The same compiled program with a different executable body.
    ///
    /// Real OpenCL sets fresh kernel arguments on an already-built kernel
    /// before every launch; here the body closure captures the launch's
    /// buffers, so each call rebinds the body while the (already paid for)
    /// program build is reused.
    pub fn with_body(&self, body: KernelBody) -> CompiledKernel {
        CompiledKernel {
            name: self.name.clone(),
            source_hash: self.source_hash,
            source_len: self.source_len,
            n_args: self.n_args,
            body,
        }
    }
}

impl std::fmt::Debug for CompiledKernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompiledKernel")
            .field("name", &self.name)
            .field("source_hash", &format_args!("{:016x}", self.source_hash))
            .field("source_len", &self.source_len)
            .finish()
    }
}

/// The compiler front-end with its on-disk binary cache.
#[derive(Debug)]
pub struct Compiler {
    cache_dir: PathBuf,
}

impl Compiler {
    /// `cache_dir` is created on demand; cached binaries are tiny files
    /// keyed by source hash.
    pub fn new(cache_dir: PathBuf) -> Self {
        Compiler { cache_dir }
    }

    pub fn cache_dir(&self) -> &Path {
        &self.cache_dir
    }

    fn cache_path(&self, hash: u64) -> PathBuf {
        self.cache_dir.join(format!("{hash:016x}.clbin"))
    }

    /// Is a binary for this program already cached?
    pub fn is_cached(&self, program: &Program) -> bool {
        self.cache_path(program.hash()).exists()
    }

    /// Remove all cached binaries (tests / cold-start experiments).
    pub fn clear_cache(&self) -> Result<()> {
        if self.cache_dir.exists() {
            fs::remove_dir_all(&self.cache_dir)
                .map_err(|e| Error::BuildFailure(format!("clearing cache: {e}")))?;
        }
        Ok(())
    }

    /// Build `program` under `profile`, producing an executable kernel and
    /// the build outcome (cache hit or source build, with costs).
    pub fn build(
        &self,
        program: &Program,
        body: KernelBody,
        profile: &DriverProfile,
    ) -> Result<(CompiledKernel, BuildOutcome)> {
        if program.source.trim().is_empty() {
            return Err(Error::BuildFailure(format!(
                "program '{}' has empty source",
                program.name
            )));
        }
        let hash = program.hash();
        let wall_start = std::time::Instant::now();

        let outcome = if !profile.runtime_compile {
            // CUDA model: modules were compiled offline by nvcc; loading a
            // module at runtime is (modeled as) free.
            BuildOutcome {
                from_cache: false,
                virtual_s: 0.0,
                wall_s: wall_start.elapsed().as_secs_f64(),
            }
        } else if let Some(cached) = self.try_load(hash) {
            if cached != source_fingerprint(&program.source) {
                return Err(Error::BuildFailure(format!(
                    "cache corruption for program '{}'",
                    program.name
                )));
            }
            BuildOutcome {
                from_cache: true,
                virtual_s: profile.cache_load_cost_s(program.source.len()),
                wall_s: wall_start.elapsed().as_secs_f64(),
            }
        } else {
            // Simulated source build: deterministic work proportional to the
            // source size, then persist the "binary".
            let fp = compile_from_source(&program.source);
            self.store(hash, fp)?;
            BuildOutcome {
                from_cache: false,
                virtual_s: profile.compile_cost_s(program.source.len()),
                wall_s: wall_start.elapsed().as_secs_f64(),
            }
        };

        Ok((
            CompiledKernel {
                name: program.name.clone(),
                source_hash: hash,
                source_len: program.source.len(),
                n_args: program.n_args,
                body,
            },
            outcome,
        ))
    }

    fn try_load(&self, hash: u64) -> Option<u64> {
        let bytes = fs::read(self.cache_path(hash)).ok()?;
        if bytes.len() != 8 {
            return None;
        }
        Some(u64::from_le_bytes(bytes.try_into().ok()?))
    }

    fn store(&self, hash: u64, fingerprint: u64) -> Result<()> {
        fs::create_dir_all(&self.cache_dir)
            .map_err(|e| Error::BuildFailure(format!("creating cache dir: {e}")))?;
        fs::write(self.cache_path(hash), fingerprint.to_le_bytes())
            .map_err(|e| Error::BuildFailure(format!("writing cache entry: {e}")))
    }
}

/// The "binary" we cache: a fingerprint over the source, cheap to recompute
/// for validation.
fn source_fingerprint(source: &str) -> u64 {
    fnv1a(source.as_bytes()).rotate_left(17) ^ 0x5ce1c0de
}

/// Deterministic busy work standing in for a real OpenCL source build:
/// many hashing passes over the source so wall time scales with its length.
fn compile_from_source(source: &str) -> u64 {
    const PASSES: usize = 600;
    let mut acc = 0u64;
    let bytes = source.as_bytes();
    for pass in 0..PASSES {
        let mut h = fnv1a(bytes) ^ pass as u64;
        // A little extra mixing per pass to defeat optimisation to a no-op.
        h = h
            .wrapping_mul(0x9e3779b97f4a7c15)
            .rotate_left((pass % 63) as u32);
        acc ^= h;
    }
    let _ = acc; // fingerprint must not depend on pass count
    source_fingerprint(source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::WorkGroup;
    use std::sync::Arc;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vgpu-test-cache-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        d
    }

    fn noop_body() -> KernelBody {
        Arc::new(|_wg: &WorkGroup| {})
    }

    #[test]
    fn first_build_compiles_second_loads_from_cache() {
        let c = Compiler::new(tmp_dir("roundtrip"));
        let p = Program::from_source("k", "__kernel void k() {}");
        let profile = DriverProfile::opencl();

        assert!(!c.is_cached(&p));
        let (_, o1) = c.build(&p, noop_body(), &profile).unwrap();
        assert!(!o1.from_cache);
        assert!(c.is_cached(&p));

        let (_, o2) = c.build(&p, noop_body(), &profile).unwrap();
        assert!(o2.from_cache);
        assert!(
            o1.virtual_s / o2.virtual_s >= 5.0,
            "paper claims cache load is at least 5x faster: {} vs {}",
            o1.virtual_s,
            o2.virtual_s
        );
        c.clear_cache().unwrap();
    }

    #[test]
    fn different_sources_get_different_cache_entries() {
        let c = Compiler::new(tmp_dir("distinct"));
        let profile = DriverProfile::opencl();
        let p1 = Program::from_source("a", "__kernel void a() {}");
        let p2 = Program::from_source("a", "__kernel void a() { /*v2*/ }");
        c.build(&p1, noop_body(), &profile).unwrap();
        assert!(c.is_cached(&p1));
        assert!(!c.is_cached(&p2));
        c.clear_cache().unwrap();
    }

    #[test]
    fn cuda_profile_skips_runtime_compilation() {
        let c = Compiler::new(tmp_dir("cuda"));
        let p = Program::from_source("k", "__global__ void k() {}");
        let (_, o) = c.build(&p, noop_body(), &DriverProfile::cuda()).unwrap();
        assert_eq!(o.virtual_s, 0.0);
        assert!(!c.is_cached(&p), "cuda path must not populate the cache");
        c.clear_cache().unwrap();
    }

    #[test]
    fn empty_source_is_a_build_failure() {
        let c = Compiler::new(tmp_dir("empty"));
        let p = Program::from_source("k", "   ");
        assert!(matches!(
            c.build(&p, noop_body(), &DriverProfile::opencl()),
            Err(Error::BuildFailure(_))
        ));
    }

    #[test]
    fn clear_cache_forces_recompilation() {
        let c = Compiler::new(tmp_dir("clear"));
        let p = Program::from_source("k", "__kernel void k() {}");
        let profile = DriverProfile::opencl();
        c.build(&p, noop_body(), &profile).unwrap();
        c.clear_cache().unwrap();
        let (_, o) = c.build(&p, noop_body(), &profile).unwrap();
        assert!(!o.from_cache);
        c.clear_cache().unwrap();
    }

    #[test]
    fn fnv1a_reference_values() {
        // Known FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
    }
}
