//! Timeline invariants of the async multi-queue subsystem: whatever mix of
//! streams, events and scheduling disciplines a workload uses, the modeled
//! timeline must stay physical — one command at a time per engine, causes
//! before effects, and the legacy discipline exactly serial.

use std::sync::Arc;
use vgpu::{
    verify_engine_exclusive, CommandRecord, DeviceSpec, DriverProfile, EngineKind, KernelBody,
    NDRange, Platform, PlatformConfig, Program, WorkGroup,
};

fn platform(n: usize) -> Platform {
    Platform::new(
        PlatformConfig::default()
            .devices(n)
            .spec(DeviceSpec::tiny())
            .cache_tag("timeline-invariants"),
    )
}

/// No two commands may overlap on the same engine of one device (the
/// shared [`verify_engine_exclusive`] checker, asserted).
fn assert_no_engine_overlap(trace: &[CommandRecord]) {
    if let Some(violation) = verify_engine_exclusive(trace) {
        panic!("{violation}");
    }
}

fn nop_kernel(
    p: &Platform,
    device: usize,
    work: u64,
) -> (vgpu::CommandQueue, vgpu::CompiledKernel) {
    let q = p.queue(device, DriverProfile::opencl());
    let program = Program::from_source("busy", format!("__kernel void busy() {{ /* {work} */ }}"));
    let body: KernelBody = Arc::new(move |wg: &WorkGroup| {
        wg.for_each_item(|it| it.work(work));
    });
    let kernel = q.build_kernel(&program, body).unwrap();
    (q, kernel)
}

#[test]
fn async_mix_never_double_books_an_engine() {
    let p = platform(2);
    p.enable_timeline_trace();
    let (q0, k0) = nop_kernel(&p, 0, 100_000);
    let (q1, k1) = nop_kernel(&p, 1, 80_000);
    let copy0 = p.queue(0, DriverProfile::opencl());
    let copy1 = p.queue(1, DriverProfile::opencl());

    let a = p.device(0).alloc::<f32>(1 << 16).unwrap();
    let b = p.device(1).alloc::<f32>(1 << 16).unwrap();
    let host = vec![1.0f32; 1 << 16];

    // A tangle of async and legacy commands across both devices.
    let wa = copy0.enqueue_write_async(&a, &host, 1, &[]).unwrap();
    let ka = q0
        .launch_async(&k0, NDRange::linear(1 << 10, 64), std::slice::from_ref(&wa))
        .unwrap();
    let wb = copy1.enqueue_write_async(&b, &host, 1, &[]).unwrap();
    let kb = q1
        .launch_async(&k1, NDRange::linear(1 << 10, 64), &[wb])
        .unwrap();
    let cab = p
        .platform_copy_async(&a, &b, &[ka.clone(), kb.clone()])
        .unwrap();
    q0.enqueue_write(&a, &host).unwrap(); // legacy, device-serializing
    let mut out = vec![0.0f32; 1 << 16];
    copy1
        .enqueue_read_range_async(&b, 0, &mut out, 1, std::slice::from_ref(&cab))
        .unwrap();
    q1.launch(&k1, NDRange::linear(1 << 10, 64)).unwrap();
    q0.finish();
    q1.finish();

    // Dependencies are respected on top of engine exclusivity.
    assert!(ka.start_s >= wa.end_s);
    assert!(cab.start_s >= ka.end_s.max(kb.end_s));
    assert_no_engine_overlap(&p.take_timeline_trace());
}

#[test]
fn legacy_discipline_is_fully_serial_per_device() {
    // The pre-stream behaviour: every legacy command starts only after the
    // previous one ended, regardless of which engine either occupies.
    let p = platform(1);
    let (q, k) = nop_kernel(&p, 0, 50_000);
    let buf = p.device(0).alloc::<f32>(1 << 14).unwrap();
    let host = vec![2.0f32; 1 << 14];
    let mut out = vec![0.0f32; 1 << 14];

    let mut last_end = 0.0f64;
    let evs = [
        q.enqueue_write(&buf, &host).unwrap(),
        q.launch(&k, NDRange::linear(1 << 10, 64)).unwrap(),
        q.enqueue_fill(&buf, 0.5).unwrap(),
        q.launch(&k, NDRange::linear(1 << 10, 64)).unwrap(),
        q.enqueue_read(&buf, &mut out).unwrap(),
    ];
    for ev in evs {
        assert!(
            ev.start_s >= last_end,
            "legacy command reordered: starts {} before {}",
            ev.start_s,
            last_end
        );
        last_end = ev.end_s;
    }
}

#[test]
fn async_d2d_occupies_both_copy_engines() {
    let p = platform(2);
    p.enable_timeline_trace();
    let a = p.device(0).alloc::<f32>(1 << 14).unwrap();
    let b = p.device(1).alloc::<f32>(1 << 14).unwrap();
    let ev = p.platform_copy_async(&a, &b, &[]).unwrap();
    let trace = p.take_timeline_trace();
    // One record per device copy engine, both spanning the same interval.
    assert_eq!(trace.len(), 2);
    for r in &trace {
        assert_eq!(r.engine, EngineKind::Copy);
        assert_eq!(r.start_s, ev.start_s);
        assert_eq!(r.end_s, ev.end_s);
    }
    assert_ne!(trace[0].device, trace[1].device);
}

#[test]
fn copies_overlap_kernels_only_when_async() {
    let p = platform(1);
    let (q, k) = nop_kernel(&p, 0, 500_000);
    let copy = p.queue(0, DriverProfile::opencl());
    let buf = p.device(0).alloc::<u8>(1 << 20).unwrap();
    let host = vec![3u8; 1 << 20];

    let kernel_ev = q
        .launch_async(&k, NDRange::linear(1 << 12, 64), &[])
        .unwrap();
    let async_copy = copy.enqueue_write_async(&buf, &host, 1, &[]).unwrap();
    assert!(
        async_copy.start_s < kernel_ev.end_s,
        "async copy must slide under the kernel"
    );
    let legacy_copy = copy.enqueue_write(&buf, &host).unwrap();
    assert!(
        legacy_copy.start_s >= kernel_ev.end_s,
        "legacy copy must wait for the kernel"
    );
}

/// Helper so the tests read naturally: an async whole-buffer d2d copy.
trait PlatformCopyAsync {
    fn platform_copy_async(
        &self,
        src: &vgpu::Buffer<f32>,
        dst: &vgpu::Buffer<f32>,
        wait_for: &[vgpu::Event],
    ) -> vgpu::Result<vgpu::Event>;
}

impl PlatformCopyAsync for Platform {
    fn platform_copy_async(
        &self,
        src: &vgpu::Buffer<f32>,
        dst: &vgpu::Buffer<f32>,
        wait_for: &[vgpu::Event],
    ) -> vgpu::Result<vgpu::Event> {
        self.copy_d2d_range_async(src, 0, dst, 0, src.len(), 1, wait_for)
    }
}
