//! Property-based tests for the virtual platform's invariants.

use proptest::prelude::*;
use std::sync::Arc;
use vgpu::{
    local::{conflict_free_index, BankModel},
    timing::VirtualClock,
    DeviceSpec, DriverProfile, KernelBody, NDRange, Platform, PlatformConfig, WorkGroup,
};

fn platform(n: usize) -> Platform {
    Platform::new(
        PlatformConfig::default()
            .devices(n)
            .spec(DeviceSpec::tiny())
            .cache_tag("vgpu-proptests"),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Every valid (global, local) pair covers each global index exactly once.
    #[test]
    fn ndrange_covers_every_index_once(
        global in 1usize..5000,
        local in 1usize..256,
    ) {
        let p = platform(1);
        let dev = p.device(0);
        let local = local.min(dev.spec().max_work_group);
        let buf = dev.alloc::<u32>(global).unwrap();
        let queue = p.queue(0, DriverProfile::cuda());
        let program = vgpu::Program::from_source("cover", "__kernel void cover() {}");
        let body: KernelBody = {
            let buf = buf.clone();
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    if it.in_bounds() {
                        it.atomic_add_u32(&buf, it.global_id(0), 1);
                    }
                });
            })
        };
        let kernel = queue.build_kernel(&program, body).unwrap();
        queue.launch(&kernel, NDRange::linear(global, local)).unwrap();
        prop_assert!(buf.to_vec().iter().all(|&v| v == 1));
    }

    // Buffer write/read round trips preserve arbitrary data.
    #[test]
    fn buffer_roundtrip(data in prop::collection::vec(any::<u64>(), 0..2000)) {
        let p = platform(1);
        if data.is_empty() {
            return Ok(());
        }
        let buf = p.device(0).alloc_from(&data).unwrap();
        prop_assert_eq!(buf.to_vec(), data);
    }

    // Ranged writes affect exactly the written range.
    #[test]
    fn ranged_write_is_surgical(
        len in 1usize..500,
        off_frac in 0.0f64..1.0,
        wlen_frac in 0.0f64..1.0,
    ) {
        let p = platform(1);
        let buf = p.device(0).alloc::<u32>(len).unwrap();
        buf.fill(7);
        let off = ((len as f64) * off_frac) as usize % len;
        let wlen = (((len - off) as f64) * wlen_frac) as usize;
        let payload = vec![9u32; wlen];
        buf.write_range_from_host(off, &payload).unwrap();
        let out = buf.to_vec();
        for (i, v) in out.iter().enumerate() {
            if i >= off && i < off + wlen {
                prop_assert_eq!(*v, 9);
            } else {
                prop_assert_eq!(*v, 7);
            }
        }
    }

    // Bank conflicts are bounded by the access count minus one, and the
    // padded index map never increases conflicts.
    #[test]
    fn bank_conflicts_bounded_and_padding_helps(
        idxs in prop::collection::vec(0usize..4096, 1..32),
    ) {
        let bm_raw = BankModel::new(16);
        let raw = bm_raw.record_access(idxs.iter().copied());
        prop_assert!(raw < idxs.len() as u64);

        // Power-of-two strided patterns: padding removes all conflicts.
        let bm_pad = BankModel::new(16);
        let strided: Vec<usize> = (0..16).map(|l| l * 16).collect();
        let padded = bm_pad.record_access(strided.iter().map(|&i| conflict_free_index(i, 16)));
        prop_assert_eq!(padded, 0);
    }

    // The virtual clock never goes backwards under arbitrary command mixes.
    #[test]
    fn clock_is_monotone(ops in prop::collection::vec((0.0f64..10.0, 0.0f64..2.0), 1..50)) {
        let c = VirtualClock::new();
        let mut last_end = 0.0f64;
        for (not_before, dur) in ops {
            let (start, end) = c.advance_from(not_before, dur);
            prop_assert!(start >= last_end || start >= not_before);
            prop_assert!(end >= start);
            prop_assert!(c.now_s() >= last_end);
            last_end = end;
        }
    }

    // More concurrent transfers never increase per-transfer bandwidth.
    #[test]
    fn contention_is_monotone(bytes in 1usize..(1 << 24), a in 1usize..16, b in 1usize..16) {
        let t = vgpu::topology::Topology::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(t.transfer_s(bytes, lo) <= t.transfer_s(bytes, hi) + 1e-15);
    }

    // Device memory accounting: alloc/drop sequences always return to zero.
    #[test]
    fn alloc_accounting_balances(sizes in prop::collection::vec(1usize..10_000, 0..20)) {
        let p = platform(1);
        let dev = p.device(0);
        let before = dev.used_bytes();
        {
            let mut held = Vec::new();
            for s in &sizes {
                if let Ok(b) = dev.alloc::<f32>(*s) {
                    held.push(b);
                }
            }
            let used: usize = held.iter().map(|b| b.size_bytes()).sum();
            prop_assert_eq!(dev.used_bytes(), before + used);
        }
        prop_assert_eq!(dev.used_bytes(), before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Kernel durations are invariant under the host thread count.
    #[test]
    fn duration_thread_count_invariant(n in 64usize..4000, seed in 0u64..100) {
        let p = platform(1);
        let dev = p.device(0);
        let buf = dev.alloc::<u32>(n).unwrap();
        let queue = p.queue(0, DriverProfile::opencl());
        let program = vgpu::Program::from_source("det", "__kernel void det() {}");
        let body: KernelBody = {
            let buf = buf.clone();
            Arc::new(move |wg: &WorkGroup| {
                wg.for_each_item(|it| {
                    if it.in_bounds() {
                        let i = it.global_id(0);
                        it.write(&buf, i, i as u32);
                        it.work((i as u64 * 31 + seed) % 97 + 1);
                    }
                });
            })
        };
        let kernel = queue.build_kernel(&program, body).unwrap();

        std::env::set_var("VGPU_THREADS", "1");
        let a = queue.launch(&kernel, NDRange::linear(n, 64)).unwrap();
        std::env::set_var("VGPU_THREADS", "5");
        let b = queue.launch(&kernel, NDRange::linear(n, 64)).unwrap();
        std::env::remove_var("VGPU_THREADS");
        let (sa, sb) = (a.launch.unwrap(), b.launch.unwrap());
        prop_assert_eq!(sa.duration_s, sb.duration_s);
        prop_assert_eq!(sa.max_cu_cycles, sb.max_cu_cycles);
        prop_assert_eq!(sa.global_bytes, sb.global_bytes);
    }
}
