//! # skelcl-linalg — dense linear-algebra workloads over `Matrix`/`AllPairs`
//!
//! The workload class SkelCL's later `AllPairs(M, N)` skeleton was built
//! for, implemented twice:
//!
//! * [`seq`] — plain sequential host references,
//! * [`skelcl_impl`] — matrices + the [`skelcl::AllPairs`] skeleton (naive
//!   or local-memory tiled), all device-resident with lazy transfers and
//!   device-to-device redistribution.
//!
//! Two pipelines:
//!
//! * **Matrix multiplication** — `C = A · B`, zip = `×`, reduce = `+`.
//! * **Pairwise Euclidean distances / 1-NN** — distances between every
//!   query and every reference point (`zip = squared difference`,
//!   `reduce = +`, then an element-wise `sqrt`), followed by a per-query
//!   nearest-neighbour selection.
//!
//! Both paths fold the inner dimension in ascending order from the same
//! identity and evaluate every element through the same expressions, so the
//! results are **bit-identical** — sequentially, on one device, on many
//! devices, with the naive strategy and with the tiled one.

pub mod seq;
pub mod skelcl_impl;

/// Deterministic synthetic matrix data: bounded, sign-mixed values with
/// enough structure that reductions cannot cancel to zero by accident.
pub fn test_matrix(rows: usize, cols: usize, salt: u32) -> Vec<f32> {
    (0..rows * cols)
        .map(|i| {
            let h = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            ((h % 2000) as f32) / 16.0 - 62.5
        })
        .collect()
}

/// Deterministic synthetic point cloud: `n` points of dimension `dim`,
/// row-major (one point per row), clustered enough that nearest-neighbour
/// queries have unambiguous answers.
pub fn test_points(n: usize, dim: usize, salt: u32) -> Vec<f32> {
    (0..n * dim)
        .map(|i| {
            let h = (i as u32)
                .wrapping_mul(0x9E3779B9)
                .wrapping_add(salt.wrapping_mul(0x85EBCA6B));
            ((h % 1024) as f32) / 32.0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_reproducible() {
        assert_eq!(test_matrix(8, 8, 1), test_matrix(8, 8, 1));
        assert_ne!(test_matrix(8, 8, 1), test_matrix(8, 8, 2));
        assert_eq!(test_points(10, 3, 7).len(), 30);
        assert_eq!(test_points(10, 3, 7), test_points(10, 3, 7));
    }

    #[test]
    fn generator_values_are_bounded() {
        assert!(test_matrix(16, 16, 3).iter().all(|v| v.abs() <= 63.0));
        assert!(test_points(16, 4, 3)
            .iter()
            .all(|&v| (0.0..32.0).contains(&v)));
    }
}
