//! The SkelCL implementation of the linalg pipelines: `Matrix` containers,
//! the `AllPairs` skeleton (naive or tiled) and an element-wise `Map`, all
//! device-resident. Intermediates never visit the host: `B` operands are
//! replicated by device-to-device exchange and the distance pipeline chains
//! AllPairs into Map on the devices.

use skelcl::{
    AllPairs, AllPairsStrategy, Context, Map, Matrix, MatrixDistribution, Result, UserFn,
};

/// An `f32` AllPairs skeleton customized by plain function pointers (the
/// shape `skel_fn!` produces).
pub type AllPairsF32 = AllPairs<f32, f32, fn(f32, f32) -> f32, fn(f32, f32) -> f32>;

/// The matrix-multiplication skeleton: zip = `×`, reduce = `+` from 0.
pub fn matmul_skeleton() -> AllPairsF32 {
    AllPairs::new(
        skelcl::skel_fn!(
            fn mult(x: f32, y: f32) -> f32 {
                x * y
            }
        ),
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    )
}

/// The squared-distance skeleton: zip = squared difference, reduce = `+`.
pub fn sq_distance_skeleton() -> AllPairsF32 {
    AllPairs::new(
        skelcl::skel_fn!(
            fn sqdiff(x: f32, y: f32) -> f32 {
                let d = x - y;
                d * d
            }
        ),
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    )
}

/// `C = A · B` over device-resident matrices; the result stays on the
/// devices, rows partitioned like `A`'s.
pub fn matmul_matrices(
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    strategy: AllPairsStrategy,
) -> Result<Matrix<f32>> {
    matmul_skeleton().with_strategy(strategy).apply(a, b)
}

/// `C = A · B` from host slices: builds the matrices (A row-blocked, B
/// replicated), multiplies, downloads.
pub fn matmul(
    ctx: &Context,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    strategy: AllPairsStrategy,
) -> Result<Vec<f32>> {
    let a = Matrix::from_slice(ctx, m, k, a);
    let b = Matrix::from_slice(ctx, k, n, b);
    matmul_matrices(&a, &b, strategy)?.to_vec()
}

/// The `q×p` Euclidean distance matrix between every query (rows of
/// `queries`, `q×dim`) and every reference point (rows of `points`,
/// `p×dim`), computed as `sqrt(AllPairs(queries, pointsᵀ))` — the transpose
/// turns each point's coordinates into a column, which is exactly the
/// `B`-operand shape AllPairs consumes (and a natural fit for a
/// [`MatrixDistribution::ColBlock`] layout). The result stays on the
/// devices.
pub fn distance_matrix(
    queries: &Matrix<f32>,
    points: &Matrix<f32>,
    strategy: AllPairsStrategy,
) -> Result<Matrix<f32>> {
    let points_t = points.transpose()?;
    // Column blocks make each device's share of Bᵀ explicit; AllPairs
    // gathers the full copy it needs device-to-device.
    if points_t.ctx().n_devices() > 1 {
        points_t.set_distribution(MatrixDistribution::ColBlock)?;
    }
    let sq = sq_distance_skeleton()
        .with_strategy(strategy)
        .apply(queries, &points_t)?;
    let sqrt = Map::new(UserFn::new(
        "sqrtf",
        "float sqrtf(float x) { return sqrt(x); }",
        |x: f32| x.sqrt(),
    ));
    sqrt.apply_matrix(&sq)
}

/// The 1-NN pipeline: distance matrix on the devices, then a per-query
/// nearest-reference scan on the downloaded result. Returns
/// `(distances, nearest_index)` per query.
pub fn nearest_neighbors(
    queries: &Matrix<f32>,
    points: &Matrix<f32>,
    strategy: AllPairsStrategy,
) -> Result<(Vec<f32>, Vec<usize>)> {
    let d = distance_matrix(queries, points, strategy)?;
    let (q, p) = d.dims();
    let host = d.to_vec()?;
    let nn = crate::seq::nearest_neighbors(&host, q, p);
    Ok((host, nn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skelcl::ContextConfig;

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .work_group(64)
                .cache_tag("skelcl-linalg-tests"),
        )
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matmul_is_bit_identical_to_sequential_on_1_2_4_devices() {
        let (m, k, n) = (33, 29, 21);
        let a = crate::test_matrix(m, k, 1);
        let b = crate::test_matrix(k, n, 2);
        let want = crate::seq::matmul(&a, &b, m, k, n);
        for devices in [1usize, 2, 4] {
            for strategy in [
                AllPairsStrategy::Naive,
                AllPairsStrategy::Tiled { tile: 16 },
            ] {
                let c = ctx(devices);
                let got = matmul(&c, &a, &b, m, k, n, strategy).unwrap();
                assert_eq!(
                    bits(&got),
                    bits(&want),
                    "{devices} devices, {strategy:?} must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn distances_and_nn_are_bit_identical_on_1_2_4_devices() {
        let (q, p, dim) = (17, 23, 7);
        let queries = crate::test_points(q, dim, 3);
        let points = crate::test_points(p, dim, 4);
        let want_d = crate::seq::pairwise_distances(&queries, &points, q, p, dim);
        let want_nn = crate::seq::nearest_neighbors(&want_d, q, p);
        for devices in [1usize, 2, 4] {
            for strategy in [AllPairsStrategy::Naive, AllPairsStrategy::Tiled { tile: 8 }] {
                let c = ctx(devices);
                let qm = Matrix::from_slice(&c, q, dim, &queries);
                let pm = Matrix::from_slice(&c, p, dim, &points);
                let (got_d, got_nn) = nearest_neighbors(&qm, &pm, strategy).unwrap();
                assert_eq!(
                    bits(&got_d),
                    bits(&want_d),
                    "{devices} devices {strategy:?}"
                );
                assert_eq!(got_nn, want_nn, "{devices} devices {strategy:?}");
            }
        }
    }

    #[test]
    fn query_in_the_point_set_finds_itself() {
        let c = ctx(2);
        let (p, dim) = (12, 5);
        let points_data = crate::test_points(p, dim, 9);
        let queries = Matrix::from_slice(&c, 1, dim, &points_data[5 * dim..6 * dim]);
        let points = Matrix::from_slice(&c, p, dim, &points_data);
        let (d, nn) = nearest_neighbors(&queries, &points, AllPairsStrategy::default()).unwrap();
        assert_eq!(nn, vec![5]);
        assert_eq!(d[5], 0.0);
    }

    #[test]
    fn distance_pipeline_stays_on_the_devices() {
        let c = ctx(2);
        let (q, p, dim) = (10, 14, 4);
        let qm = Matrix::from_slice(&c, q, dim, &crate::test_points(q, dim, 5));
        let pm = Matrix::from_slice(&c, p, dim, &crate::test_points(p, dim, 6));
        // Chaining AllPairs into Map must not download the intermediate:
        // no d2h traffic happens until we fetch the final result.
        let before = c.platform().stats_snapshot();
        let d = distance_matrix(&qm, &pm, AllPairsStrategy::default()).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.d2h_transfers, 0, "intermediates stay on the devices");
        let before = c.platform().stats_snapshot();
        let _ = d.to_vec().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert!(delta.d2h_transfers > 0, "the final download is real");
    }
}
