//! The SkelCL implementation of the linalg pipelines: `Matrix` containers,
//! the `AllPairs` skeleton (naive or tiled), an element-wise `Map` and the
//! index-carrying `ReduceRowsArg` row reduction, all device-resident.
//! Intermediates never visit the host: `B` operands are replicated by
//! device-to-device exchange, the distance pipeline chains AllPairs into
//! Map on the devices, and the 1-NN per-query argmin runs as a device-side
//! row reduction over the distance matrix — the `q×p` matrix itself is
//! never downloaded (asserted by the transfer-count regression test
//! below); only the two length-`q` result vectors cross the host boundary.

use skelcl::{
    AllPairs, AllPairsStrategy, Context, Map, Matrix, MatrixDistribution, ReduceRowsArg, Result,
    UserFn, Vector,
};

/// An `f32` AllPairs skeleton customized by plain function pointers (the
/// shape `skel_fn!` produces).
pub type AllPairsF32 = AllPairs<f32, f32, fn(f32, f32) -> f32, fn(f32, f32) -> f32>;

/// The matrix-multiplication skeleton: zip = `×`, reduce = `+` from 0.
pub fn matmul_skeleton() -> AllPairsF32 {
    AllPairs::new(
        skelcl::skel_fn!(
            fn mult(x: f32, y: f32) -> f32 {
                x * y
            }
        ),
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    )
}

/// The squared-distance skeleton: zip = squared difference, reduce = `+`.
pub fn sq_distance_skeleton() -> AllPairsF32 {
    AllPairs::new(
        skelcl::skel_fn!(
            fn sqdiff(x: f32, y: f32) -> f32 {
                let d = x - y;
                d * d
            }
        ),
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    )
}

/// `C = A · B` over device-resident matrices; the result stays on the
/// devices, rows partitioned like `A`'s.
pub fn matmul_matrices(
    a: &Matrix<f32>,
    b: &Matrix<f32>,
    strategy: AllPairsStrategy,
) -> Result<Matrix<f32>> {
    matmul_skeleton().with_strategy(strategy).apply(a, b)
}

/// `C = A · B` from host slices: builds the matrices (A row-blocked, B
/// replicated), multiplies, downloads.
pub fn matmul(
    ctx: &Context,
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    strategy: AllPairsStrategy,
) -> Result<Vec<f32>> {
    let a = Matrix::from_slice(ctx, m, k, a);
    let b = Matrix::from_slice(ctx, k, n, b);
    matmul_matrices(&a, &b, strategy)?.to_vec()
}

/// The `q×p` Euclidean distance matrix between every query (rows of
/// `queries`, `q×dim`) and every reference point (rows of `points`,
/// `p×dim`), computed as `sqrt(AllPairs(queries, pointsᵀ))` — the transpose
/// turns each point's coordinates into a column, which is exactly the
/// `B`-operand shape AllPairs consumes (and a natural fit for a
/// [`MatrixDistribution::ColBlock`] layout). The result stays on the
/// devices.
pub fn distance_matrix(
    queries: &Matrix<f32>,
    points: &Matrix<f32>,
    strategy: AllPairsStrategy,
) -> Result<Matrix<f32>> {
    let points_t = points.transpose()?;
    // Column blocks make each device's share of Bᵀ explicit; AllPairs
    // gathers the full copy it needs device-to-device.
    if points_t.ctx().n_devices() > 1 {
        points_t.set_distribution(MatrixDistribution::ColBlock)?;
    }
    let sq = sq_distance_skeleton()
        .with_strategy(strategy)
        .apply(queries, &points_t)?;
    let sqrt = Map::new(UserFn::new(
        "sqrtf",
        "float sqrtf(float x) { return sqrt(x); }",
        |x: f32| x.sqrt(),
    ));
    sqrt.apply_matrix(&sq)
}

/// The per-row argmin skeleton: a strictly-less scan in ascending column
/// order, so the lowest reference index wins ties — exactly the
/// [`crate::seq::nearest_neighbors`] tie-break.
pub fn argmin_skeleton() -> ReduceRowsArg<f32, fn(f32, f32) -> bool> {
    ReduceRowsArg::new(skelcl::skel_fn!(
        fn less(x: f32, y: f32) -> bool {
            x < y
        }
    ))
}

/// The device-resident 1-NN pipeline: distance matrix on the devices, then
/// a device-side per-query argmin row reduction. Returns the per-query
/// `(nearest_distance, nearest_index)` vectors **still on the devices** —
/// the distance matrix never crosses the host boundary.
pub fn nearest_neighbors_device(
    queries: &Matrix<f32>,
    points: &Matrix<f32>,
    strategy: AllPairsStrategy,
) -> Result<(Vector<f32>, Vector<u32>)> {
    let d = distance_matrix(queries, points, strategy)?;
    argmin_skeleton().apply(&d)
}

/// The 1-NN pipeline: distance matrix and per-query argmin on the devices,
/// then a download of the two length-`q` results. Returns
/// `(nearest_distance, nearest_index)` per query.
pub fn nearest_neighbors(
    queries: &Matrix<f32>,
    points: &Matrix<f32>,
    strategy: AllPairsStrategy,
) -> Result<(Vec<f32>, Vec<usize>)> {
    let (dist, idx) = nearest_neighbors_device(queries, points, strategy)?;
    Ok((
        dist.to_vec()?,
        idx.to_vec()?.into_iter().map(|i| i as usize).collect(),
    ))
}

/// The pre-`ReduceRowsArg` baseline: download the whole `q×p` distance
/// matrix and scan it on the host. Kept for the `fig_reduce2d` comparison
/// (device-side argmin vs download-and-host-argmin); produces bit-identical
/// results to [`nearest_neighbors`].
pub fn nearest_neighbors_host_argmin(
    queries: &Matrix<f32>,
    points: &Matrix<f32>,
    strategy: AllPairsStrategy,
) -> Result<(Vec<f32>, Vec<usize>)> {
    let d = distance_matrix(queries, points, strategy)?;
    let (q, p) = d.dims();
    let host = d.to_vec()?;
    let nn = crate::seq::nearest_neighbors(&host, q, p);
    let dist = nn
        .iter()
        .enumerate()
        .map(|(i, &j)| host[i * p + j])
        .collect();
    Ok((dist, nn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use skelcl::ContextConfig;

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .work_group(64)
                .cache_tag("skelcl-linalg-tests"),
        )
    }

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matmul_is_bit_identical_to_sequential_on_1_2_4_devices() {
        let (m, k, n) = (33, 29, 21);
        let a = crate::test_matrix(m, k, 1);
        let b = crate::test_matrix(k, n, 2);
        let want = crate::seq::matmul(&a, &b, m, k, n);
        for devices in [1usize, 2, 4] {
            for strategy in [
                AllPairsStrategy::Naive,
                AllPairsStrategy::Tiled { tile: 16 },
            ] {
                let c = ctx(devices);
                let got = matmul(&c, &a, &b, m, k, n, strategy).unwrap();
                assert_eq!(
                    bits(&got),
                    bits(&want),
                    "{devices} devices, {strategy:?} must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn distances_and_nn_are_bit_identical_on_1_2_4_devices() {
        let (q, p, dim) = (17, 23, 7);
        let queries = crate::test_points(q, dim, 3);
        let points = crate::test_points(p, dim, 4);
        let want_d = crate::seq::pairwise_distances(&queries, &points, q, p, dim);
        let want_nn = crate::seq::nearest_neighbors(&want_d, q, p);
        let want_nd: Vec<f32> = want_nn
            .iter()
            .enumerate()
            .map(|(i, &j)| want_d[i * p + j])
            .collect();
        for devices in [1usize, 2, 4] {
            for strategy in [AllPairsStrategy::Naive, AllPairsStrategy::Tiled { tile: 8 }] {
                let c = ctx(devices);
                let qm = Matrix::from_slice(&c, q, dim, &queries);
                let pm = Matrix::from_slice(&c, p, dim, &points);
                let got_full = distance_matrix(&qm, &pm, strategy)
                    .unwrap()
                    .to_vec()
                    .unwrap();
                assert_eq!(
                    bits(&got_full),
                    bits(&want_d),
                    "{devices} devices {strategy:?}"
                );
                let qm = Matrix::from_slice(&c, q, dim, &queries);
                let pm = Matrix::from_slice(&c, p, dim, &points);
                let (got_nd, got_nn) = nearest_neighbors(&qm, &pm, strategy).unwrap();
                assert_eq!(got_nn, want_nn, "{devices} devices {strategy:?}");
                assert_eq!(
                    bits(&got_nd),
                    bits(&want_nd),
                    "{devices} devices {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn device_and_host_argmin_agree_bitwise() {
        let (q, p, dim) = (13, 19, 5);
        let queries = crate::test_points(q, dim, 7);
        let points = crate::test_points(p, dim, 8);
        for devices in [1usize, 2, 4] {
            let c = ctx(devices);
            let qm = Matrix::from_slice(&c, q, dim, &queries);
            let pm = Matrix::from_slice(&c, p, dim, &points);
            let dev = nearest_neighbors(&qm, &pm, AllPairsStrategy::default()).unwrap();
            let qm = Matrix::from_slice(&c, q, dim, &queries);
            let pm = Matrix::from_slice(&c, p, dim, &points);
            let host =
                nearest_neighbors_host_argmin(&qm, &pm, AllPairsStrategy::default()).unwrap();
            assert_eq!(dev.1, host.1, "{devices} devices");
            assert_eq!(bits(&dev.0), bits(&host.0), "{devices} devices");
        }
    }

    #[test]
    fn query_in_the_point_set_finds_itself() {
        let c = ctx(2);
        let (p, dim) = (12, 5);
        let points_data = crate::test_points(p, dim, 9);
        let queries = Matrix::from_slice(&c, 1, dim, &points_data[5 * dim..6 * dim]);
        let points = Matrix::from_slice(&c, p, dim, &points_data);
        let (d, nn) = nearest_neighbors(&queries, &points, AllPairsStrategy::default()).unwrap();
        assert_eq!(nn, vec![5]);
        assert_eq!(d, vec![0.0]);
    }

    // The doc-contract regression: the module header promises the distance
    // matrix never crosses the host boundary; this pins it down in the
    // transfer accounting. The whole 1-NN pipeline — distances + argmin —
    // performs zero device→host transfers; only the caller's download of
    // the two length-q result vectors is d2h, and it moves q·(4+4) bytes,
    // not q·p·4.
    #[test]
    fn one_nn_downloads_zero_distance_matrix_bytes() {
        let c = ctx(2);
        let (q, p, dim) = (16, 24, 6);
        let qm = Matrix::from_slice(&c, q, dim, &crate::test_points(q, dim, 11));
        let pm = Matrix::from_slice(&c, p, dim, &crate::test_points(p, dim, 12));
        // The d2h accounting is read through the context's unified metrics
        // view (the platform counters surface there as `vgpu.*`).
        let d2h = |c: &skelcl::Context| {
            let m = c.metrics_snapshot();
            (
                m["vgpu.d2h_transfers"].as_counter().unwrap(),
                m["vgpu.d2h_bytes"].as_counter().unwrap(),
            )
        };
        let (before_transfers, before_bytes) = d2h(&c);
        let (dist, idx) = nearest_neighbors_device(&qm, &pm, AllPairsStrategy::default()).unwrap();
        let (after_transfers, after_bytes) = d2h(&c);
        assert_eq!(
            after_transfers - before_transfers,
            0,
            "no device→host transfers at all"
        );
        assert_eq!(
            after_bytes - before_bytes,
            0,
            "no device→host bytes for the distance matrix"
        );
        // The only d2h is the caller's final download of the tiny results.
        let (before_transfers, before_bytes) = d2h(&c);
        let _ = dist.to_vec().unwrap();
        let _ = idx.to_vec().unwrap();
        let (after_transfers, after_bytes) = d2h(&c);
        assert!(
            after_transfers > before_transfers,
            "the result download is real"
        );
        assert!(
            after_bytes - before_bytes < (q * p * 4 / 2) as u64,
            "results are vastly smaller than the q×p matrix"
        );
    }

    #[test]
    fn distance_pipeline_stays_on_the_devices() {
        let c = ctx(2);
        let (q, p, dim) = (10, 14, 4);
        let qm = Matrix::from_slice(&c, q, dim, &crate::test_points(q, dim, 5));
        let pm = Matrix::from_slice(&c, p, dim, &crate::test_points(p, dim, 6));
        // Chaining AllPairs into Map must not download the intermediate:
        // no d2h traffic happens until we fetch the final result.
        let before = c.platform().stats_snapshot();
        let d = distance_matrix(&qm, &pm, AllPairsStrategy::default()).unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert_eq!(delta.d2h_transfers, 0, "intermediates stay on the devices");
        let before = c.platform().stats_snapshot();
        let _ = d.to_vec().unwrap();
        let delta = c.platform().stats_snapshot() - before;
        assert!(delta.d2h_transfers > 0, "the final download is real");
    }
}
