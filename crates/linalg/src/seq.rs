//! Sequential host references for the linalg pipelines.
//!
//! Every inner loop folds in **ascending `k` from the identity**, matching
//! the device kernels' evaluation order exactly (naive and tiled), so the
//! outputs compare bit-for-bit. Do not "optimise" the accumulation order.

/// `C = A · B` for row-major `A (m×k)` and `B (k×n)`.
pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    let mut c = Vec::with_capacity(m * n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c.push(acc);
        }
    }
    c
}

/// Euclidean distances between every query (rows of `queries`, `q×dim`)
/// and every reference point (rows of `points`, `p×dim`): a `q×p` matrix.
pub fn pairwise_distances(
    queries: &[f32],
    points: &[f32],
    q: usize,
    p: usize,
    dim: usize,
) -> Vec<f32> {
    assert_eq!(queries.len(), q * dim);
    assert_eq!(points.len(), p * dim);
    let mut out = Vec::with_capacity(q * p);
    for i in 0..q {
        for j in 0..p {
            let mut acc = 0.0f32;
            for dd in 0..dim {
                let d = queries[i * dim + dd] - points[j * dim + dd];
                acc += d * d;
            }
            out.push(acc.sqrt());
        }
    }
    out
}

/// Per-query index of the nearest reference point in a `q×p` distance
/// matrix (first index wins ties — strictly-less scan in ascending `j`).
pub fn nearest_neighbors(dists: &[f32], q: usize, p: usize) -> Vec<usize> {
    assert_eq!(dists.len(), q * p);
    assert!(p > 0, "nearest neighbour needs at least one point");
    (0..q)
        .map(|i| {
            let row = &dists[i * p..(i + 1) * p];
            let mut best = 0usize;
            for (j, &d) in row.iter().enumerate() {
                if d < row[best] {
                    best = j;
                }
            }
            best
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2×2
        let eye = vec![1.0, 0.0, 0.0, 1.0];
        assert_eq!(matmul(&a, &eye, 2, 2, 2), a);
        assert_eq!(matmul(&eye, &a, 2, 2, 2), a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(matmul(&a, &b, 2, 2, 2), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let pts = crate::test_points(5, 3, 1);
        let d = pairwise_distances(&pts, &pts, 5, 5, 3);
        for i in 0..5 {
            assert_eq!(d[i * 5 + i], 0.0);
        }
        let nn = nearest_neighbors(&d, 5, 5);
        assert_eq!(nn, vec![0, 1, 2, 3, 4], "each point is its own neighbour");
    }

    #[test]
    fn nearest_neighbor_prefers_first_on_ties() {
        let d = vec![2.0, 1.0, 1.0, 0.5, 9.0, 0.5];
        assert_eq!(nearest_neighbors(&d, 2, 3), vec![1, 0]);
    }
}
