//! Offline stand-in for the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: the
//! [`Strategy`] trait over ranges / tuples / `Just` / `any`,
//! `prop::collection::vec`, `prop_oneof!`, `prop_map`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline shim: cases
//! are generated from a deterministic per-test seed (override with
//! `PROPTEST_SEED`), and failing inputs are reported but **not shrunk**.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::Rng;

    /// The random source handed to strategies.
    pub struct TestRng {
        pub(crate) inner: super::StdRng,
    }

    impl TestRng {
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }
    }

    /// A generator of values of `Self::Value`.
    ///
    /// Object-safe core (`generate`) plus sized combinators, so strategies
    /// can be boxed for `prop_oneof!`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            MapStrategy { base: self, f }
        }

        fn prop_filter<F>(self, _why: &'static str, f: F) -> FilterStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            FilterStrategy { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)`.
    pub struct MapStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for MapStrategy<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// `s.prop_filter(why, f)` — rejection sampling with a retry cap.
    pub struct FilterStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S, F> Strategy for FilterStrategy<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.inner.gen_range(0usize..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_inclusive_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Exact inclusive sampling: the upper endpoint must be
                    // reachable (it is usually the interesting boundary).
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    impl_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_inclusive_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo == hi { lo } else { rng.inner.gen_range(lo..hi) }
                }
            }
        )*};
    }

    impl_range_inclusive_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3)
    );

    impl<S: Strategy, const N: usize> Strategy for [S; N] {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].generate(rng))
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _pd: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// `any::<T>()` — the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _pd: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Vectors of `element` with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.inner.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A test-case failure (`prop_assert*` or an explicit `Err`).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Seed for one named test: `PROPTEST_SEED` env override, else an FNV-1a
/// hash of the test name (deterministic across runs and machines).
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fresh RNG for case `case` of a named test.
pub fn rng_for(test_name: &str, case: u64) -> strategy::TestRng {
    strategy::TestRng {
        inner: StdRng::seed_from_u64(
            seed_for(test_name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ),
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias real proptest's prelude exposes.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declare property tests: each runs `cases` times over fresh inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (
        @block ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::rng_for(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "proptest {} failed at case {case}/{}: {e}",
                            stringify!($name),
                            cfg.cases
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn sign() -> impl Strategy<Value = i32> {
        prop_oneof![Just(-1), Just(1)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, f in -1.0f32..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_the_range(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map_compose(s in sign(), pair in (0u64..3, 0u64..3)) {
            prop_assert!(s == -1 || s == 1);
            prop_assert!(pair.0 < 3 && pair.1 < 3);
        }

        #[test]
        fn early_ok_return_is_allowed(v in prop::collection::vec(0u8..10, 0..3)) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.len() < 3);
        }
    }

    #[test]
    fn seeds_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = crate::rng_for("t", 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::rng_for("t", 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = crate::rng_for("t", 1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
