//! Offline stand-in for the `proptest` crate.
//!
//! Implements the surface this workspace's property tests use: the
//! [`strategy::Strategy`] trait over ranges / tuples / `Just` / `any`,
//! `prop::collection::vec`, `prop_oneof!`, `prop_map`, the `proptest!`
//! macro with `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Differences from real proptest, deliberate for an offline shim: cases
//! are generated from a deterministic per-test seed (override with
//! `PROPTEST_SEED`), and shrinking is **minimal linear shrinking** — on a
//! `prop_assert*` failure the runner greedily retries smaller candidates
//! (integers step toward their range's lower bound, vectors drop suffix
//! elements and shrink their elements) until no candidate still fails,
//! then reports the minimal failing input. Strategies that cannot shrink
//! (floats, `Just`, `prop_map` outputs) report the original value.
//! Panicking bodies (as opposed to `prop_assert*` failures) abort unshrunk.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::Rng;

    /// The random source handed to strategies.
    pub struct TestRng {
        pub(crate) inner: super::StdRng,
    }

    impl TestRng {
        pub fn next_u64(&mut self) -> u64 {
            use rand::RngCore;
            self.inner.next_u64()
        }
    }

    /// A generator of values of `Self::Value`.
    ///
    /// Object-safe core (`generate` + `shrink`) plus sized combinators, so
    /// strategies can be boxed for `prop_oneof!`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of a failing value, most aggressive
        /// first. The runner greedily adopts the first candidate that still
        /// fails and repeats until a fixpoint (minimal linear shrinking).
        /// The default — for strategies whose values cannot be meaningfully
        /// shrunk, like float ranges or `prop_map` outputs — is no
        /// candidates.
        fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        fn prop_map<U, F>(self, f: F) -> MapStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            MapStrategy { base: self, f }
        }

        fn prop_filter<F>(self, _why: &'static str, f: F) -> FilterStrategy<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            FilterStrategy { base: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
        fn shrink(&self, v: &V) -> Vec<V> {
            (**self).shrink(v)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `s.prop_map(f)`.
    pub struct MapStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for MapStrategy<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    /// `s.prop_filter(why, f)` — rejection sampling with a retry cap.
    pub struct FilterStrategy<S, F> {
        base: S,
        f: F,
    }

    impl<S, F> Strategy for FilterStrategy<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.base.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates in a row");
        }
        fn shrink(&self, v: &S::Value) -> Vec<S::Value> {
            // Shrunk candidates must still satisfy the predicate.
            self.base
                .shrink(v)
                .into_iter()
                .filter(|c| (self.f)(c))
                .collect()
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.inner.gen_range(0usize..self.options.len());
            self.options[i].generate(rng)
        }
        fn shrink(&self, v: &V) -> Vec<V> {
            // The producing arm is unknown; every arm's candidates are
            // valid values of `V`, so offer them all.
            self.options.iter().flat_map(|o| o.shrink(v)).collect()
        }
    }

    /// Linear-shrink candidates for an integer failing value `x` over a
    /// range starting at `lo` (both widened to `i128`): the lower bound
    /// itself, the midpoint towards it, and one step down — most aggressive
    /// first, deduplicated.
    pub(crate) fn int_shrink_candidates(lo: i128, x: i128) -> Vec<i128> {
        let mut out = Vec::new();
        if x > lo {
            for c in [lo, lo + (x - lo) / 2, x - 1] {
                if c != x && !out.contains(&c) {
                    out.push(c);
                }
            }
        }
        out
    }

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy_float!(f32, f64);

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
                fn shrink(&self, v: &$t) -> Vec<$t> {
                    int_shrink_candidates(self.start as i128, *v as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_inclusive_int {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    // Exact inclusive sampling: the upper endpoint must be
                    // reachable (it is usually the interesting boundary).
                    let (lo, hi) = (*self.start(), *self.end());
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
                fn shrink(&self, v: &$t) -> Vec<$t> {
                    int_shrink_candidates(*self.start() as i128, *v as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_inclusive_float {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    if lo == hi { lo } else { rng.inner.gen_range(lo..hi) }
                }
            }
        )*};
    }

    impl_range_inclusive_float!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident : $idx:tt),+)),+ $(,)?) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+)
            where
                $($n::Value: Clone),+
            {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
                    // One component at a time, the others held fixed.
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&v.$idx) {
                            let mut w = v.clone();
                            w.$idx = cand;
                            out.push(w);
                        }
                    )+
                    out
                }
            }
        )+};
    }

    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    );

    impl<S: Strategy, const N: usize> Strategy for [S; N]
    where
        S::Value: Clone,
    {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|i| self[i].generate(rng))
        }
        fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            for i in 0..N {
                for cand in self[i].shrink(&v[i]) {
                    let mut w = v.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        }
    }

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Shrink candidates for a failing value (see [`Strategy::shrink`]);
        /// integers step towards zero, the domain's natural origin.
        fn shrink(_v: &Self) -> Vec<Self> {
            Vec::new()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink(v: &$t) -> Vec<$t> {
                    let x = *v as i128;
                    let towards = if x >= 0 { int_shrink_candidates(0, x) } else {
                        // Negative values mirror: towards zero from below.
                        int_shrink_candidates(0, -x).into_iter().map(|c| -c).collect()
                    };
                    towards.into_iter().map(|c| c as $t).collect()
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink(v: &bool) -> Vec<bool> {
            if *v {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _pd: std::marker::PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, v: &T) -> Vec<T> {
            T::shrink(v)
        }
    }

    /// `any::<T>()` — the whole-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _pd: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Vectors of `element` with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.inner.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min = self.len.start;
            let mut out = Vec::new();
            // Length first (a shorter counterexample beats a smaller one):
            // halve towards the minimum, then drop one element.
            if v.len() > min {
                let half = (v.len() / 2).max(min);
                if half < v.len() {
                    out.push(v[..half].to_vec());
                }
                if v.len() - 1 > half {
                    out.push(v[..v.len() - 1].to_vec());
                }
            }
            // Then element-wise, one position at a time (capped so huge
            // vectors don't explode the candidate list).
            for i in 0..v.len().min(8) {
                for cand in self.element.shrink(&v[i]).into_iter().take(2) {
                    let mut w = v.clone();
                    w[i] = cand;
                    out.push(w);
                }
            }
            out
        }
    }
}

pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A test-case failure (`prop_assert*` or an explicit `Err`).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

/// Seed for one named test: `PROPTEST_SEED` env override, else an FNV-1a
/// hash of the test name (deterministic across runs and machines).
pub fn seed_for(test_name: &str) -> u64 {
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            return v;
        }
    }
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fresh RNG for case `case` of a named test.
pub fn rng_for(test_name: &str, case: u64) -> strategy::TestRng {
    strategy::TestRng {
        inner: StdRng::seed_from_u64(
            seed_for(test_name) ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        ),
    }
}

/// Ties a check closure's parameter type to a strategy's value type, so
/// the [`proptest!`] macro's generated closure type-checks without naming
/// the tuple type (closure parameters cannot be partially annotated).
pub fn constrain_check<S, F>(_strat: &S, check: F) -> F
where
    S: strategy::Strategy,
    F: Fn(&S::Value) -> Result<(), test_runner::TestCaseError>,
{
    check
}

/// Greedy minimal linear shrinking: starting from a failing input, adopt
/// the first [`strategy::Strategy::shrink`] candidate that still fails and repeat
/// until no candidate fails (or the retry budget runs out). Returns the
/// minimal failing value, its failure, and the number of successful shrink
/// steps. Driven by the [`proptest!`] macro; public so it can be tested.
///
/// A candidate whose check *panics* (as opposed to returning `Err`) counts
/// as failing, like in real proptest — some bugs only panic at the smaller
/// inputs shrinking explores, and a propagating panic would otherwise
/// abort the run mid-shrink and misattribute the failure to an input the
/// runner never reported. (The panic message still prints to stderr.)
pub fn shrink_failure<S, F>(
    strat: &S,
    mut best: S::Value,
    mut best_err: test_runner::TestCaseError,
    check: &F,
) -> (S::Value, test_runner::TestCaseError, usize)
where
    S: strategy::Strategy,
    F: Fn(&S::Value) -> Result<(), test_runner::TestCaseError>,
{
    let checked = |v: &S::Value| -> Result<(), test_runner::TestCaseError> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| check(v))) {
            Ok(r) => r,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(test_runner::TestCaseError::fail(format!("panicked: {msg}")))
            }
        }
    };
    let mut steps = 0usize;
    let mut budget = 256usize;
    loop {
        let mut progressed = false;
        for cand in strat.shrink(&best) {
            if budget == 0 {
                return (best, best_err, steps);
            }
            budget -= 1;
            if let Err(e) = checked(&cand) {
                best = cand;
                best_err = e;
                steps += 1;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return (best, best_err, steps);
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module alias real proptest's prelude exposes.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

/// Declare property tests: each runs `cases` times over fresh inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (
        @block ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                // All argument strategies as one tuple strategy, so the
                // shrinker can simplify one argument while holding the
                // others fixed.
                let strat = ($($strat,)+);
                let check = $crate::constrain_check(&strat, |vals| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(vals);
                    $body
                    Ok(())
                });
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::rng_for(stringify!($name), case);
                    let vals = $crate::strategy::Strategy::generate(&strat, &mut rng);
                    if let Err(first) = check(&vals) {
                        let (min, min_err, steps) =
                            $crate::shrink_failure(&strat, vals, first, &check);
                        panic!(
                            "proptest {} failed at case {case}/{}: {min_err}\n  minimal failing input ({steps} shrink steps): {min:?}",
                            stringify!($name),
                            cfg.cases
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn sign() -> impl Strategy<Value = i32> {
        prop_oneof![Just(-1), Just(1)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10usize..20, f in -1.0f32..1.0) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_the_range(v in prop::collection::vec(0u32..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map_compose(s in sign(), pair in (0u64..3, 0u64..3)) {
            prop_assert!(s == -1 || s == 1);
            prop_assert!(pair.0 < 3 && pair.1 < 3);
        }

        #[test]
        fn early_ok_return_is_allowed(v in prop::collection::vec(0u8..10, 0..3)) {
            if v.is_empty() {
                return Ok(());
            }
            prop_assert!(v.len() < 3);
        }
    }

    proptest! {
        #[test]
        #[should_panic(expected = "minimal failing input")]
        #[allow(unused_comparisons)]
        fn failing_cases_report_shrunk_inputs(x in 0usize..1000) {
            // Fails for every x >= 17; linear shrinking must walk the
            // counterexample down to exactly 17 before reporting.
            prop_assert!(x < 17, "x was {x}");
        }
    }

    #[test]
    fn integer_ranges_shrink_toward_the_lower_bound() {
        let s = 5usize..100;
        let c = s.shrink(&80);
        assert_eq!(c, vec![5, 42, 79], "bound, midpoint, one step down");
        assert!(s.shrink(&5).is_empty(), "the bound itself cannot shrink");
        let inc = 0u32..=10;
        assert_eq!(inc.shrink(&10), vec![0, 5, 9]);
    }

    #[test]
    fn any_shrinks_toward_zero_from_both_sides() {
        assert_eq!(crate::strategy::Arbitrary::shrink(&8i32), vec![0, 4, 7]);
        assert_eq!(crate::strategy::Arbitrary::shrink(&-8i32), vec![0, -4, -7]);
        assert!(crate::strategy::Arbitrary::shrink(&0i32).is_empty());
    }

    #[test]
    fn vec_strategy_shrinks_length_then_elements() {
        let s = prop::collection::vec(0u32..100, 1..10);
        let c = s.shrink(&vec![40, 50, 60, 70]);
        assert_eq!(c[0], vec![40, 50], "halved first");
        assert_eq!(c[1], vec![40, 50, 60], "then one shorter");
        assert!(
            c[2..].iter().all(|w| w.len() == 4),
            "element shrinks keep the length"
        );
        assert_eq!(c[2], vec![0, 50, 60, 70], "first element towards its bound");
        // Minimum length is respected.
        let at_min = s.shrink(&vec![7]);
        assert!(at_min.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (0usize..10, 0usize..10);
        let c = s.shrink(&(4, 6));
        assert!(c.contains(&(0, 6)));
        assert!(c.contains(&(4, 0)));
        assert!(!c.contains(&(0, 0)), "components never shrink together");
    }

    #[test]
    fn shrink_failure_finds_the_minimal_counterexample() {
        // Property: x < 17. Failing start: 980 of 0..1000.
        let strat = (0usize..1000,);
        let check = |v: &(usize,)| -> Result<(), TestCaseError> {
            if v.0 >= 17 {
                Err(TestCaseError::fail(format!("{} >= 17", v.0)))
            } else {
                Ok(())
            }
        };
        let first = check(&(980,)).unwrap_err();
        let (min, err, steps) = crate::shrink_failure(&strat, (980,), first, &check);
        assert_eq!(min, (17,), "the boundary counterexample");
        assert!(err.message.contains("17 >= 17"));
        assert!(steps > 0);
    }

    #[test]
    fn shrink_survives_panicking_candidates() {
        let strat = (100usize..1000,);
        // Returns Err at the starting value but panics outright on the
        // smaller inputs shrinking explores.
        let check = |v: &(usize,)| -> Result<(), TestCaseError> {
            if v.0 < 500 {
                panic!("boom at {}", v.0);
            }
            Err(TestCaseError::fail(format!("{} too big", v.0)))
        };
        let first = check(&(900,)).unwrap_err();
        let (min, err, steps) = crate::shrink_failure(&strat, (900,), first, &check);
        assert_eq!(min, (100,), "panicking candidates count as failures");
        assert!(err.message.contains("panicked"));
        assert!(steps > 0);
    }

    #[test]
    fn filtered_shrink_candidates_satisfy_the_predicate() {
        let s = (0usize..100).prop_filter("even", |v| v % 2 == 0);
        assert!(s.shrink(&80).iter().all(|c| c % 2 == 0));
    }

    #[test]
    fn seeds_are_deterministic() {
        let a: Vec<u64> = {
            let mut r = crate::rng_for("t", 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = crate::rng_for("t", 0);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = crate::rng_for("t", 1);
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }
}
