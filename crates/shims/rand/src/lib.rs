//! Offline stand-in for the `rand` crate.
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64` and
//! `Rng::gen_range` over half-open ranges — the surface the OSEM event
//! generator and tests use. The generator is xoshiro256++ seeded through
//! SplitMix64 (the same construction real `StdRng` seeds use), so streams
//! are deterministic per seed and of high statistical quality.

use std::ops::Range;

/// Sources of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, exposed through [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                // 53 (resp. 24) high bits give a uniform value in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = range.start as f64 + unit * (range.end as f64 - range.start as f64);
                // Rounding can land exactly on `end`; clamp into the half-open range.
                let v = v as $t;
                if v >= range.end { range.start } else { v }
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation)]
            fn sample(rng: &mut dyn RngCore, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }

    /// A uniform value of the type's full span (`bool`, ints) or `[0, 1)`
    /// (floats).
    fn gen<T: Generatable>(&mut self) -> T
    where
        Self: Sized,
    {
        T::generate(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types `Rng::gen` can produce.
pub trait Generatable {
    fn generate(rng: &mut dyn RngCore) -> Self;
}

impl Generatable for bool {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Generatable for u64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Generatable for u32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        rng.next_u32()
    }
}

impl Generatable for f32 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() >> 40) as f32) / (1u64 << 24) as f32
    }
}

impl Generatable for f64 {
    fn generate(rng: &mut dyn RngCore) -> Self {
        ((rng.next_u64() >> 11) as f64) / (1u64 << 53) as f64
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f32..1.0), b.gen_range(0.0f32..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: usize = (0..100)
            .filter(|_| StdRng::seed_from_u64(7).gen_range(0u64..1000) == c.gen_range(0u64..1000))
            .count();
        assert!(same < 100, "different seeds must diverge");
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(-2.5f32..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(-3i32..12);
            assert!((-3..12).contains(&i));
            let u = rng.gen_range(5usize..6);
            assert_eq!(u, 5);
        }
    }

    #[test]
    fn floats_cover_the_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }
}
