//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds without registry access, so the small API surface
//! actually used — `Mutex`, `MutexGuard::map`, `MappedMutexGuard` — is
//! provided here on top of `std::sync::Mutex`. Semantics match parking_lot
//! where it matters to callers: `lock()` is infallible (poisoning is
//! swallowed, as parking_lot has no poisoning).

use std::ops::{Deref, DerefMut};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: guard }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard over a locked [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    /// Project the guard to a component of the protected data, keeping the
    /// lock held (parking_lot's `MutexGuard::map`).
    pub fn map<U: ?Sized, F>(guard: Self, f: F) -> MappedMutexGuard<'a, U>
    where
        F: FnOnce(&mut T) -> &mut U,
    {
        let mut inner = guard.inner;
        let ptr: *mut U = f(&mut inner);
        MappedMutexGuard {
            _guard: Box::new(inner),
            ptr,
        }
    }
}

/// Keeps the original `std` guard alive (and thus the lock held) while the
/// mapped guard exists; the concrete guard type is erased behind a box.
trait HeldLock {}
impl<'a, T: ?Sized> HeldLock for std::sync::MutexGuard<'a, T> {}

/// A guard projected to a component of the locked data
/// (parking_lot's `MappedMutexGuard`).
pub struct MappedMutexGuard<'a, U: ?Sized> {
    _guard: Box<dyn HeldLock + 'a>,
    ptr: *mut U,
}

impl<'a, U: ?Sized> Deref for MappedMutexGuard<'a, U> {
    type Target = U;
    fn deref(&self) -> &U {
        // SAFETY: `ptr` points into data protected by the lock held by
        // `_guard` for the guard's entire lifetime.
        unsafe { &*self.ptr }
    }
}

impl<'a, U: ?Sized> DerefMut for MappedMutexGuard<'a, U> {
    fn deref_mut(&mut self) -> &mut U {
        // SAFETY: as in `deref`; `&mut self` guarantees exclusivity.
        unsafe { &mut *self.ptr }
    }
}

/// A reader–writer lock with infallible locking.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn mapped_guard_projects_and_holds_the_lock() {
        let m = Mutex::new((vec![1, 2, 3], "meta"));
        {
            let g = m.lock();
            let mut mapped = MutexGuard::map(g, |t| t.0.as_mut_slice());
            mapped[0] = 9;
            assert_eq!(&*mapped, &[9, 2, 3]);
        }
        assert_eq!(m.lock().0, vec![9, 2, 3]);
    }

    #[test]
    fn shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
