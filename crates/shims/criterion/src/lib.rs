//! Offline stand-in for the `criterion` crate.
//!
//! Runs each registered benchmark a configurable number of iterations and
//! prints mean wall time per iteration. No statistical analysis, warm-up
//! scheduling or plotting — the workspace's benches report *virtual*
//! (modeled) seconds through `iter_custom` anyway, so the harness only
//! needs to drive the closures and render the numbers.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Input-size annotation (printed alongside the timing).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
    BytesDecimal(u64),
}

/// The per-benchmark driver passed to bench closures.
pub struct Bencher {
    iters: u64,
    /// (total measured duration, iterations) reported by the last run.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time `f` over the configured number of iterations.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f()); // warm-up (also pays one-time caches)
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.measured = Some((start.elapsed(), self.iters));
    }

    /// Let `f` measure `iters` iterations itself and report the total.
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        let total = f(self.iters);
        self.measured = Some((total, self.iters));
    }

    /// Like `iter`, timing only what `f` does with the provided setup value.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut f: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(f(input));
            total += start.elapsed();
        }
        self.measured = Some((total, self.iters));
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

fn run_one(
    group: Option<&str>,
    id: &BenchmarkId,
    iters: u64,
    throughput: Option<Throughput>,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        iters,
        measured: None,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{}", id.id),
        None => id.id.clone(),
    };
    match b.measured {
        Some((total, n)) if n > 0 => {
            let per = total / n as u32;
            let extra = match throughput {
                Some(Throughput::Elements(e)) => {
                    let per_s = e as f64 / per.as_secs_f64().max(1e-12);
                    format!("  thrpt: {per_s:.3e} elem/s")
                }
                Some(Throughput::Bytes(by)) | Some(Throughput::BytesDecimal(by)) => {
                    let per_s = by as f64 / per.as_secs_f64().max(1e-12);
                    format!("  thrpt: {per_s:.3e} B/s")
                }
                None => String::new(),
            };
            println!("bench {label:<50} time: {}{extra}", fmt_duration(per));
        }
        _ => println!("bench {label:<50} (no measurement)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        run_one(Some(&self.name), &id, self.iters(), self.throughput, |b| {
            f(b)
        });
        self
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut f = f;
        run_one(Some(&self.name), &id, self.iters(), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}

    fn iters(&self) -> u64 {
        // Keep shim benches quick: a handful of iterations is enough to
        // print a representative mean (virtual-time benches are exact).
        self.sample_size.min(10)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn without_plots(self) -> Self {
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut f = f;
        run_one(None, &id, 10, None, |b| f(b));
        self
    }

    pub fn final_summary(&self) {}
}

/// `criterion_group!` — both the `name/config/targets` and positional forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// `criterion_main!` — runs each group and exits.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_iter_measures_something() {
        let mut c = Criterion::default().without_plots();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(3);
        group.throughput(Throughput::Elements(100));
        let mut count = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("custom", 7), &7u64, |b, &_x| {
            b.iter_custom(Duration::from_nanos)
        });
        group.finish();
        assert!(count > 0);
    }
}
