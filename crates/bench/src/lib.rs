//! # skelcl-bench — the experiment harness
//!
//! One runner function per paper artifact (see DESIGN.md's experiment
//! index). The `figures` binary prints paper-style tables; the Criterion
//! benches reuse the same runners with `iter_custom`, reporting *virtual*
//! (modeled) seconds so results are host-machine independent.

pub mod ledger;

use criterion::{BenchmarkGroup, BenchmarkId, Criterion};
use skelcl::report::RunReport;
use skelcl::{Context, Distribution, Reduce, ReduceStrategy, Scan, ScanStrategy, Vector, Zip};
use skelcl_loc::{LocRow, VariantLoc};
use skelcl_mandel::MandelParams;
use skelcl_osem::{OsemParams, Volume};
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Duration;
use vgpu::{DriverProfile, Platform, PlatformConfig, Program};

/// Shared driver for the per-figure virtual-time sweeps: every `fig_*`
/// bench records the modeled seconds of each swept configuration while the
/// sweep runs, then asserts its acceptance relations from the recorded
/// values instead of recomputing the expensive configurations. The group
/// setup (one iteration per configuration — virtual-time samples have zero
/// variance), the recording `iter_custom` wrapper and the keyed lookup
/// used to be copied into every figure bench; they live here once.
///
/// Keys are `(x, param, variant)` — typically problem size or iteration
/// count, device count, and the schedule/strategy name.
#[derive(Default)]
pub struct VirtualSweep {
    recorded: RefCell<HashMap<(usize, usize, &'static str), f64>>,
}

impl VirtualSweep {
    pub fn new() -> Self {
        VirtualSweep::default()
    }

    /// Open a figure's benchmark group with the sweep conventions applied.
    pub fn group<'a>(c: &'a mut Criterion, name: &str) -> BenchmarkGroup<'a> {
        let mut group = c.benchmark_group(name);
        group.sample_size(1);
        group
    }

    /// Register configuration `key` with the group as benchmark
    /// `name/param`, measuring (and recording) `run()`'s virtual seconds.
    pub fn bench(
        &self,
        group: &mut BenchmarkGroup<'_>,
        name: String,
        param: usize,
        key: (usize, usize, &'static str),
        run: impl Fn() -> f64,
    ) {
        group.bench_with_input(BenchmarkId::new(name, param), &param, |b, _| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters.max(1) {
                    let t = run();
                    self.recorded.borrow_mut().insert(key, t);
                    total += t;
                }
                Duration::from_secs_f64(total)
            })
        });
    }

    /// The recorded virtual seconds of `key`; panics if the sweep never
    /// ran that configuration.
    pub fn get(&self, key: (usize, usize, &'static str)) -> f64 {
        *self
            .recorded
            .borrow()
            .get(&key)
            .unwrap_or_else(|| panic!("configuration {key:?} was never swept"))
    }
}

/// Default fig-1 parameters: the paper's region and aspect ratio at reduced
/// resolution, iteration cap raised so compute dominates transfers as it
/// does at the paper's full scale.
pub fn fig1_default_params() -> MandelParams {
    MandelParams {
        max_iter: 4096,
        ..MandelParams::bench_scale()
    }
}

/// A platform with the paper's hardware (Tesla-C1060-class devices).
pub fn figure_platform(n_devices: usize) -> Platform {
    Platform::new(
        PlatformConfig::default()
            .devices(n_devices)
            .cache_tag("figures"),
    )
}

/// Measure the virtual duration of `f` on `platform` (clocks reset first,
/// all devices joined afterwards), **excluding program-build time**.
///
/// The paper's measured runtimes (18–26 s Mandelbrot, 3–3.7 s OSEM)
/// amortise the one-time runtime compilation to invisibility; at this
/// repository's reduced default scales a rebuilding baseline would be
/// dominated by it, so build cost is accounted separately (experiment E6).
pub fn time_virtual(platform: &Platform, f: impl FnOnce()) -> f64 {
    platform.reset_clocks();
    let before = platform.stats_snapshot();
    f();
    platform.sync_all();
    let build = (platform.stats_snapshot() - before).build_virtual_ns as f64 * 1e-9;
    platform.host_now_s() - build
}

/// [`time_virtual`] plus observability: captures the engine timeline of the
/// timed region and prints a one-line [`RunReport`] summary — per-device
/// compute/copy utilization, copy-under-compute overlap, and the dominant
/// roofline bound with the achieved % of the modeled peak. Every `fig_*`
/// sweep routes through this, so the figures come with their utilization
/// story attached.
pub fn time_virtual_reported(platform: &Platform, label: &str, f: impl FnOnce()) -> f64 {
    time_virtual_reported_with(
        platform,
        label,
        DriverProfile::skelcl().compute_efficiency,
        f,
    )
}

/// [`time_virtual_reported`] with an explicit roofline compute efficiency.
/// The "% of modeled peak" verdict prices the compute floor at
/// `clock × efficiency`, so runs driven by a non-SkelCL profile (the
/// hand-written OpenCL/CUDA baselines in fig 1/2) must report against
/// *their* profile's efficiency — otherwise a more efficient runtime shows
/// an impossible >100% of peak.
pub fn time_virtual_reported_with(
    platform: &Platform,
    label: &str,
    compute_efficiency: f64,
    f: impl FnOnce(),
) -> f64 {
    platform.enable_timeline_trace();
    platform.reset_clocks();
    let before = platform.stats_snapshot();
    f();
    platform.sync_all();
    let delta = platform.stats_snapshot() - before;
    let window_s = platform.host_now_s();
    let trace = platform.take_timeline_trace();
    let report = RunReport::collect(label, platform, compute_efficiency, delta, &trace, window_s);
    println!("{}", report.summary_line());
    let virtual_s = window_s - delta.build_virtual_ns as f64 * 1e-9;
    ledger::record_report(&report, virtual_s);
    virtual_s
}

/// [`time_virtual_reported`] for context-driven runs: when the context has
/// the online `skelcheck` hazard checker enabled (`SKELCL_CHECK=1`), the
/// printed `RunReport` line additionally shows how many enqueue groups the
/// checker vetted inside the measured window, so figure output proves the
/// run executed under checking.
pub fn time_virtual_reported_ctx(ctx: &Context, label: &str, f: impl FnOnce()) -> f64 {
    let platform = ctx.platform();
    platform.enable_timeline_trace();
    platform.reset_clocks();
    let checked_before = ctx.hazards_checked();
    let before = platform.stats_snapshot();
    f();
    platform.sync_all();
    let delta = platform.stats_snapshot() - before;
    let window_s = platform.host_now_s();
    let trace = platform.take_timeline_trace();
    let mut report = RunReport::collect(
        label,
        platform,
        DriverProfile::skelcl().compute_efficiency,
        delta,
        &trace,
        window_s,
    );
    let checked = ctx.hazards_checked() - checked_before;
    if checked > 0 {
        report = report.with_hazards_checked(checked);
    }
    println!("{}", report.summary_line());
    let virtual_s = window_s - delta.build_virtual_ns as f64 * 1e-9;
    ledger::record_report(&report, virtual_s);
    virtual_s
}

/// Fig-overlap metric: copy-engine busy time that runs *concurrently with
/// the compute engine of the same device*, summed over all devices, during
/// `n` overlapped `Stencil2D::iterate` rounds (same setup as
/// [`overlap_iterate_virtual_s`]). Positive iff the halo copies actually
/// hide under kernels — the claim fig_overlap exists to demonstrate,
/// asserted from engine-utilization metrics rather than hand-parsed trace
/// records.
pub fn overlap_copy_busy_during_kernels_s(
    rows: usize,
    cols: usize,
    devices: usize,
    n: usize,
) -> f64 {
    use skelcl::{Matrix, MatrixDistribution};

    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let plate = Matrix::from_vec(&ctx, rows, cols, skelcl_iterative::heat_plate(rows, cols));
    plate
        .set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .expect("dist");
    plate.ensure_on_devices().expect("upload");
    let st = skelcl_iterative::skelcl_impl::heat_skeleton();
    st.iterate(&plate, 1).expect("warm");
    platform.enable_timeline_trace();
    platform.reset_clocks();
    st.iterate(&plate, n).expect("iterate");
    platform.sync_all();
    let trace = platform.take_timeline_trace();
    vgpu::compute_copy_overlap_s(&trace)
        .iter()
        .map(|(_, s)| s)
        .sum()
}

/// Figure 1 (runtime): Mandelbrot with SkelCL / OpenCL / CUDA on one GPU.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Runtimes {
    pub skelcl_s: f64,
    pub opencl_s: f64,
    pub cuda_s: f64,
}

impl Fig1Runtimes {
    /// OpenCL advantage over SkelCL, as the paper reports it (4 %).
    pub fn opencl_vs_skelcl(&self) -> f64 {
        (self.skelcl_s - self.opencl_s) / self.skelcl_s
    }

    /// CUDA advantage over SkelCL (paper: 31 %).
    pub fn cuda_vs_skelcl(&self) -> f64 {
        (self.skelcl_s - self.cuda_s) / self.skelcl_s
    }
}

pub fn run_fig1(p: &MandelParams) -> Fig1Runtimes {
    let platform = figure_platform(1);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);

    // Warm-up: pays one-time program builds / binary-cache population, so
    // the timed runs measure the computation like the paper's runs do.
    skelcl_mandel::skelcl_impl::run(&ctx, p).expect("skelcl warmup");
    skelcl_mandel::opencl_impl::run(&platform, p).expect("opencl warmup");
    skelcl_mandel::cuda_impl::run(&platform, p).expect("cuda warmup");

    let skelcl_s = time_virtual_reported(&platform, "fig1 mandelbrot skelcl x1", || {
        skelcl_mandel::skelcl_impl::run(&ctx, p).expect("skelcl run");
    });
    let opencl_s = time_virtual_reported_with(
        &platform,
        "fig1 mandelbrot opencl x1",
        DriverProfile::opencl().compute_efficiency,
        || {
            skelcl_mandel::opencl_impl::run(&platform, p).expect("opencl run");
        },
    );
    let cuda_s = time_virtual_reported_with(
        &platform,
        "fig1 mandelbrot cuda x1",
        DriverProfile::cuda().compute_efficiency,
        || {
            skelcl_mandel::cuda_impl::run(&platform, p).expect("cuda run");
        },
    );
    Fig1Runtimes {
        skelcl_s,
        opencl_s,
        cuda_s,
    }
}

/// Figure 1 (program size): LoC of the three Mandelbrot variants, measured
/// from the actual sources.
pub fn fig1_loc() -> Vec<LocRow> {
    vec![
        LocRow {
            variant: "CUDA",
            loc: VariantLoc::measure_marked(include_str!("../../mandel/src/cuda_impl.rs")),
        },
        LocRow {
            variant: "OpenCL",
            loc: VariantLoc::measure_marked(include_str!("../../mandel/src/opencl_impl.rs")),
        },
        LocRow {
            variant: "SkelCL",
            loc: VariantLoc::measure_marked(include_str!("../../mandel/src/skelcl_impl.rs")),
        },
    ]
}

/// Figure 2 (runtime): one row per (variant, device count).
#[derive(Debug, Clone, Copy)]
pub struct Fig2Row {
    pub variant: &'static str,
    pub n_gpus: usize,
    pub seconds: f64,
}

pub fn run_fig2(params: &OsemParams, device_counts: &[usize]) -> Vec<Fig2Row> {
    let subsets = params.generate_subsets();
    let vol = params.volume;
    let mut rows = Vec::new();
    for &n in device_counts {
        let platform = figure_platform(n);
        let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);

        // Warm-up builds.
        skelcl_osem::skelcl_impl::reconstruct(&ctx, &vol, &subsets[..1]).expect("warmup");
        skelcl_osem::opencl_impl::reconstruct(&platform, &vol, &subsets[..1]).expect("warmup");
        skelcl_osem::cuda_impl::reconstruct(&platform, &vol, &subsets[..1]).expect("warmup");

        let t = time_virtual_reported(&platform, &format!("fig2 osem skelcl x{n}"), || {
            skelcl_osem::skelcl_impl::reconstruct(&ctx, &vol, &subsets).expect("skelcl");
        });
        rows.push(Fig2Row {
            variant: "SkelCL",
            n_gpus: n,
            seconds: t,
        });
        let t = time_virtual_reported_with(
            &platform,
            &format!("fig2 osem opencl x{n}"),
            DriverProfile::opencl().compute_efficiency,
            || {
                skelcl_osem::opencl_impl::reconstruct(&platform, &vol, &subsets).expect("opencl");
            },
        );
        rows.push(Fig2Row {
            variant: "OpenCL",
            n_gpus: n,
            seconds: t,
        });
        let t = time_virtual_reported_with(
            &platform,
            &format!("fig2 osem cuda x{n}"),
            DriverProfile::cuda().compute_efficiency,
            || {
                skelcl_osem::cuda_impl::reconstruct(&platform, &vol, &subsets).expect("cuda");
            },
        );
        rows.push(Fig2Row {
            variant: "CUDA",
            n_gpus: n,
            seconds: t,
        });
    }
    rows
}

/// Figure 2 (program size).
pub fn fig2_loc() -> Vec<LocRow> {
    vec![
        LocRow {
            variant: "SkelCL",
            loc: VariantLoc::measure_marked(include_str!("../../osem/src/skelcl_impl.rs")),
        },
        LocRow {
            variant: "CUDA",
            loc: VariantLoc::measure_marked(include_str!("../../osem/src/cuda_impl.rs")),
        },
        LocRow {
            variant: "OpenCL",
            loc: VariantLoc::measure_marked(include_str!("../../osem/src/opencl_impl.rs")),
        },
    ]
}

/// E5: the dot-product program-size comparison (Listing 1 vs the NVIDIA
/// OpenCL sample's ~68 lines). The SkelCL dot product is the quickstart
/// example; its OpenCL counterpart is the saxpy-style workflow written
/// against the baseline API.
pub fn dot_product_loc() -> Vec<LocRow> {
    let opencl_host = VariantLoc::measure_marked(include_str!("dot_opencl.rs"));
    vec![
        LocRow {
            variant: "SkelCL",
            loc: VariantLoc::measure_marked(include_str!("../../../examples/quickstart.rs")),
        },
        LocRow {
            variant: "OpenCL",
            loc: VariantLoc {
                host: opencl_host.host,
                // The kernel lives in its own .cl file for this program.
                kernel: opencl_host.kernel + skelcl_loc::count_c_like(DOT_OPENCL_KERNEL),
            },
        },
    ]
}

/// The dot-product kernel of the OpenCL comparison program.
pub const DOT_OPENCL_KERNEL: &str = include_str!("dot_kernel.cl");

pub mod dot_opencl;

/// E6: kernel binary cache — virtual and wall cost of building a skeleton
/// program from source vs loading it from the cache.
#[derive(Debug, Clone, Copy)]
pub struct CacheResult {
    pub compile_virtual_s: f64,
    pub load_virtual_s: f64,
    pub compile_wall_s: f64,
    pub load_wall_s: f64,
}

impl CacheResult {
    pub fn virtual_speedup(&self) -> f64 {
        self.compile_virtual_s / self.load_virtual_s
    }
}

pub fn run_cache_experiment() -> CacheResult {
    let platform = figure_platform(1);
    platform.compiler().clear_cache().expect("clear cache");
    let queue = platform.queue(0, DriverProfile::opencl());
    // A representative generated skeleton program.
    let program = skelcl::codegen::scan_program(
        "sum",
        "float sum(float x, float y) { return x + y; }",
        "float",
    );
    let body: vgpu::KernelBody = std::sync::Arc::new(|_wg: &vgpu::WorkGroup| {});

    let (_, first) = queue
        .build_kernel_traced(&program, body.clone())
        .expect("build");
    assert!(!first.from_cache);
    let (_, second) = queue.build_kernel_traced(&program, body).expect("rebuild");
    assert!(second.from_cache);
    platform.compiler().clear_cache().expect("clear cache");
    CacheResult {
        compile_virtual_s: first.virtual_s,
        load_virtual_s: second.virtual_s,
        compile_wall_s: first.wall_s,
        load_wall_s: second.wall_s,
    }
}

/// E8: lazy copying — transfers needed by the chained dot product
/// (`sum(mult(A, B))`) with SkelCL's lazy vectors vs an eager
/// download/upload between the two skeletons.
#[derive(Debug, Clone, Copy)]
pub struct LazyCopyResult {
    pub lazy_transfers: u64,
    pub lazy_bytes: u64,
    pub eager_transfers: u64,
    pub eager_bytes: u64,
    pub lazy_virtual_s: f64,
    pub eager_virtual_s: f64,
}

pub fn run_lazy_copy_experiment(n: usize) -> LazyCopyResult {
    let platform = figure_platform(1);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let mult = Zip::new(skelcl::skel_fn!(
        fn mult(x: f32, y: f32) -> f32 {
            x * y
        }
    ));
    let sum = Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    let a_data: Vec<f32> = (0..n).map(|i| (i % 17) as f32).collect();
    let b_data: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();

    // Warm program builds.
    {
        let a = Vector::from_slice(&ctx, &a_data);
        let b = Vector::from_slice(&ctx, &b_data);
        sum.apply(&mult.apply(&a, &b).expect("zip"))
            .expect("reduce");
    }

    // Lazy chain: intermediate stays on the device.
    platform.reset_clocks();
    let before = platform.stats_snapshot();
    let lazy_value;
    {
        let a = Vector::from_slice(&ctx, &a_data);
        let b = Vector::from_slice(&ctx, &b_data);
        let ab = mult.apply(&a, &b).expect("zip");
        lazy_value = sum.apply(&ab).expect("reduce").get_value();
    }
    platform.sync_all();
    let lazy_virtual_s = platform.host_now_s();
    let lazy = platform.stats_snapshot() - before;

    // Eager baseline: the intermediate makes a host round trip, as it
    // would without the lazy coherence protocol.
    platform.reset_clocks();
    let before = platform.stats_snapshot();
    let eager_value;
    {
        let a = Vector::from_slice(&ctx, &a_data);
        let b = Vector::from_slice(&ctx, &b_data);
        let ab = mult.apply(&a, &b).expect("zip");
        let roundtrip = ab.to_vec().expect("download");
        let ab2 = Vector::from_vec(&ctx, roundtrip);
        eager_value = sum.apply(&ab2).expect("reduce").get_value();
    }
    platform.sync_all();
    let eager_virtual_s = platform.host_now_s();
    let eager = platform.stats_snapshot() - before;

    assert_eq!(lazy_value, eager_value, "both paths must agree");
    LazyCopyResult {
        lazy_transfers: lazy.total_transfers(),
        lazy_bytes: lazy.total_transfer_bytes(),
        eager_transfers: eager.total_transfers(),
        eager_bytes: eager.total_transfer_bytes(),
        lazy_virtual_s,
        eager_virtual_s,
    }
}

/// E9 helper: virtual time of one Reduce under a given strategy.
pub fn reduce_virtual_s(n: usize, strategy: ReduceStrategy) -> f64 {
    let platform = figure_platform(1);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let sum = Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    )
    .with_strategy(strategy);
    let v = Vector::from_vec(&ctx, (0..n).map(|i| (i % 13) as f32).collect());
    v.ensure_on_devices().expect("upload");
    sum.apply(&v).expect("warm");
    time_virtual(&platform, || {
        sum.apply(&v).expect("reduce");
    })
}

/// E9 helper: virtual time of one Scan under a given strategy.
pub fn scan_virtual_s(n: usize, strategy: ScanStrategy) -> f64 {
    let platform = figure_platform(1);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let sum = Scan::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    )
    .with_strategy(strategy);
    let v = Vector::from_vec(&ctx, (0..n).map(|i| (i % 7) as f32).collect());
    v.ensure_on_devices().expect("upload");
    sum.apply(&v).expect("warm");
    time_virtual(&platform, || {
        sum.apply(&v).expect("scan");
    })
}

/// E10 helper: virtual time of a block-distributed Map across devices.
pub fn map_scaling_virtual_s(n: usize, devices: usize) -> f64 {
    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let heavy = skelcl::UserFn::new(
        "heavy",
        "float heavy(float x) { float acc = x; for (int i = 0; i < 256; ++i) acc = acc * 1.0001f + 0.5f; return acc; }",
        |x: f32| {
            skelcl::work(512);
            let mut acc = x;
            for _ in 0..8 {
                acc = acc * 1.0001 + 0.5;
            }
            acc
        },
    );
    let map = skelcl::Map::new(heavy);
    let v = Vector::from_vec(&ctx, vec![1.0f32; n]);
    v.set_distribution(Distribution::Block).expect("dist");
    v.ensure_on_devices().expect("upload");
    map.apply(&v).expect("warm");
    time_virtual_reported(&platform, &format!("map_scaling n={n} x{devices}"), || {
        map.apply(&v).expect("map");
    })
}

/// E11 helper: virtual time of the Gaussian → Sobel stencil pipeline over a
/// row-block-distributed matrix across `devices` devices (fig_stencil).
pub fn stencil_scaling_virtual_s(rows: usize, cols: usize, devices: usize) -> f64 {
    use skelcl::{Boundary2D, Matrix, MatrixDistribution};

    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let img = Matrix::from_vec(&ctx, rows, cols, skelcl_imgproc::test_image(rows, cols));
    img.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .expect("dist");
    img.ensure_on_devices().expect("upload");
    skelcl_imgproc::skelcl_impl::blur_sobel(&img, Boundary2D::Neumann).expect("warm");
    time_virtual_reported(
        &platform,
        &format!("fig_stencil blur_sobel {rows}x{cols} x{devices}"),
        || {
            skelcl_imgproc::skelcl_impl::blur_sobel(&img, Boundary2D::Neumann).expect("pipeline");
        },
    )
}

/// Fig-iterate helper: virtual time of `n` Jacobi heat-relaxation steps
/// over a `rows × cols` row-block-distributed plate across `devices`
/// devices. `batched` runs `Stencil2D::iterate(n)` — two ping-pong buffers
/// per device, one batched halo exchange per iteration, no host sync
/// between rounds; otherwise each step is one chained `apply` with the
/// matrix-level exchange (the pre-iterate schedule). Upload and program
/// warm-up are excluded; the timed region is the iteration schedule alone.
pub fn stencil_iterate_virtual_s(
    rows: usize,
    cols: usize,
    devices: usize,
    n: usize,
    batched: bool,
) -> f64 {
    use skelcl::{Matrix, MatrixDistribution};

    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let plate = Matrix::from_vec(&ctx, rows, cols, skelcl_iterative::heat_plate(rows, cols));
    plate
        .set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .expect("dist");
    plate.ensure_on_devices().expect("upload");
    let st = skelcl_iterative::skelcl_impl::heat_skeleton();
    // Warm both generated programs (the apply and the iterate forms).
    st.apply(&plate).expect("warm apply");
    st.iterate(&plate, 1).expect("warm iterate");
    let schedule = if batched { "batched" } else { "chained" };
    time_virtual_reported(
        &platform,
        &format!("fig_iterate heat {rows}x{cols} n={n} {schedule} x{devices}"),
        || {
            if batched {
                st.iterate(&plate, n).expect("iterate");
            } else if n > 0 {
                let mut cur = st.apply(&plate).expect("apply");
                for _ in 1..n {
                    cur = st.apply(&cur).expect("apply");
                }
            }
        },
    )
}

/// Fig-fusion helper: virtual time of the canny label pipeline (gauss →
/// sobel → non-maximum suppression → double threshold) over a
/// `rows × cols` row-block image across `devices` devices. With `fused`
/// the lazy [`skelcl::Pipeline`] runs: the whole chain compiles into
/// three fused stencil launches with zero intermediate matrices; otherwise
/// the unfused chain runs — six skeleton launches (gauss, sobel x, sobel y,
/// gradient zip, nms, threshold map) with five materialised intermediates.
/// Both paths are bit-identical (imgproc tests + `prop_fusion`); the
/// figure isolates the launch-count and traffic difference. The host-side
/// hysteresis flood fill is identical in both variants and excluded, as is
/// upload and program warm-up.
pub fn canny_virtual_s(rows: usize, cols: usize, devices: usize, fused: bool) -> f64 {
    use skelcl::{Boundary2D, Matrix, MatrixDistribution};
    use skelcl_imgproc::skelcl_impl::{canny_labels, canny_labels_unfused};

    const LO: f32 = 30.0;
    const HI: f32 = 90.0;
    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let img = Matrix::from_vec(&ctx, rows, cols, skelcl_imgproc::test_image(rows, cols));
    img.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .expect("dist");
    img.ensure_on_devices().expect("upload");
    // Warm both generated program sets so neither path pays build cost.
    canny_labels(&img, Boundary2D::Neumann, LO, HI).expect("warm fused");
    canny_labels_unfused(&img, Boundary2D::Neumann, LO, HI).expect("warm unfused");
    let variant = if fused { "fused" } else { "unfused" };
    time_virtual_reported(
        &platform,
        &format!("fig_fusion canny {rows}x{cols} {variant} x{devices}"),
        || {
            if fused {
                canny_labels(&img, Boundary2D::Neumann, LO, HI).expect("canny fused");
            } else {
                canny_labels_unfused(&img, Boundary2D::Neumann, LO, HI).expect("canny unfused");
            }
        },
    )
}

/// Fig-overlap helper: virtual time of `n` Jacobi heat-relaxation rounds
/// over a `rows × cols` row-block plate across `devices` devices, under
/// either iterate schedule. With `overlapped` the default
/// `Stencil2D::iterate` runs: each round splits into interior and boundary
/// launches and the next round's halo exchange is issued on the copy
/// stream, overlapping the interior kernels; otherwise the serial
/// `iterate_serial` baseline runs (one kernel per part per round,
/// device-serializing exchange). Both schedules are bit-identical in their
/// results (asserted by `prop_overlap`); the figure isolates the modeled
/// timeline difference. Upload and program warm-up are excluded.
pub fn overlap_iterate_virtual_s(
    rows: usize,
    cols: usize,
    devices: usize,
    n: usize,
    overlapped: bool,
) -> f64 {
    overlap_iterate_impl(rows, cols, devices, n, overlapped, false)
}

/// [`overlap_iterate_virtual_s`] with skelcheck's online hazard checker
/// armed for the run (the public API equivalent of `SKELCL_CHECK=1`): the
/// figure's checker-overhead column measures this against the unchecked
/// leg, and the reported summary line proves the checker vetted every
/// enqueue group in the window.
pub fn overlap_iterate_checked_virtual_s(
    rows: usize,
    cols: usize,
    devices: usize,
    n: usize,
    overlapped: bool,
) -> f64 {
    overlap_iterate_impl(rows, cols, devices, n, overlapped, true)
}

fn overlap_iterate_impl(
    rows: usize,
    cols: usize,
    devices: usize,
    n: usize,
    overlapped: bool,
    checked: bool,
) -> f64 {
    use skelcl::{Matrix, MatrixDistribution};

    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    if checked {
        ctx.enable_online_hazard_check();
    }
    let plate = Matrix::from_vec(&ctx, rows, cols, skelcl_iterative::heat_plate(rows, cols));
    plate
        .set_distribution(MatrixDistribution::RowBlock { halo: 1 })
        .expect("dist");
    plate.ensure_on_devices().expect("upload");
    let st = skelcl_iterative::skelcl_impl::heat_skeleton();
    st.iterate(&plate, 1).expect("warm");
    let schedule = if overlapped { "overlapped" } else { "serial" };
    let suffix = if checked { " checked" } else { "" };
    time_virtual_reported_ctx(
        &ctx,
        &format!("fig_overlap iterate {rows}x{cols} n={n} {schedule}{suffix} x{devices}"),
        || {
            if overlapped {
                st.iterate(&plate, n).expect("iterate");
            } else {
                st.iterate_serial(&plate, n).expect("iterate serial");
            }
        },
    )
}

/// The stencil of the fig-overlap upload leg: a 5×5 box mean (radius 2).
/// Its 25-tap read pattern makes the kernel long enough on the modeled
/// hardware that a streamed upload has real compute to hide under — the
/// regime where upload/compute overlap pays on real GPUs.
pub fn upload_stencil(
) -> skelcl::Stencil2D<f32, f32, impl Fn(&skelcl::Stencil2DView<'_, f32>) -> f32 + Clone> {
    let user = skelcl::UserFn::new(
        "box5",
        "float box5(__global float* in, int r, int c, uint nr, uint nc) {\n\
             float acc = 0.0f;\n\
             for (int dr = -2; dr <= 2; ++dr)\n\
                 for (int dc = -2; dc <= 2; ++dc)\n\
                     acc += stencil_at(in, r, c, nr, nc, dr, dc);\n\
             return acc * 0.04f;\n\
         }",
        |v: &skelcl::Stencil2DView<'_, f32>| {
            let mut acc = 0.0f32;
            for dr in -2..=2 {
                for dc in -2..=2 {
                    acc += v.get(dr, dc);
                }
            }
            acc * 0.04
        },
    );
    skelcl::Stencil2D::new(user, 2, skelcl::Boundary2D::Neumann)
}

/// Fig-overlap helper (upload leg): virtual time of one [`upload_stencil`]
/// pass over a *cold* (host-fresh) `rows × cols` plate, upload included.
/// With `streamed` the upload goes out in `chunk_rows`-row chunks on the
/// copy stream and the stencil launches in chunk bands overlapping it
/// (`Stencil2D::apply_streamed`); otherwise the blocking upload completes
/// before the single kernel launches (`Stencil2D::apply`). Bit-identical
/// results; program warm-up excluded.
pub fn overlap_upload_virtual_s(
    rows: usize,
    cols: usize,
    devices: usize,
    chunk_rows: usize,
    streamed: bool,
) -> f64 {
    overlap_upload_impl(rows, cols, devices, chunk_rows, streamed, false)
}

/// [`overlap_upload_virtual_s`] under the online hazard checker — see
/// [`overlap_iterate_checked_virtual_s`].
pub fn overlap_upload_checked_virtual_s(
    rows: usize,
    cols: usize,
    devices: usize,
    chunk_rows: usize,
    streamed: bool,
) -> f64 {
    overlap_upload_impl(rows, cols, devices, chunk_rows, streamed, true)
}

fn overlap_upload_impl(
    rows: usize,
    cols: usize,
    devices: usize,
    chunk_rows: usize,
    streamed: bool,
    checked: bool,
) -> f64 {
    use skelcl::{Matrix, MatrixDistribution};

    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    if checked {
        ctx.enable_online_hazard_check();
    }
    let st = upload_stencil();
    // Warm the generated program with a throwaway matrix.
    st.apply(&Matrix::from_vec(
        &ctx,
        8,
        8,
        skelcl_iterative::heat_plate(8, 8),
    ))
    .expect("warm");
    let data = skelcl_iterative::heat_plate(rows, cols);
    let plate = Matrix::from_vec(&ctx, rows, cols, data);
    plate
        .set_distribution(MatrixDistribution::RowBlock { halo: 2 })
        .expect("dist");
    let schedule = if streamed { "streamed" } else { "blocking" };
    let suffix = if checked { " checked" } else { "" };
    time_virtual_reported_ctx(
        &ctx,
        &format!("fig_overlap upload {rows}x{cols} {schedule}{suffix} x{devices}"),
        || {
            if streamed {
                st.apply_streamed(&plate, chunk_rows).expect("streamed");
            } else {
                st.apply(&plate).expect("blocking");
            }
        },
    )
}

/// Fig-allpairs helper: virtual time of one `C = A·B` square matrix
/// multiplication at `size×size` (inner dimension `size` too) across
/// `devices` devices with the given AllPairs strategy. Uploads — A
/// row-blocked, B replicated — happen before timing, like the stencil
/// figure; the timed region is the skeleton launches alone.
pub fn allpairs_virtual_s(size: usize, devices: usize, strategy: skelcl::AllPairsStrategy) -> f64 {
    use skelcl::{Matrix, MatrixDistribution};

    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let a = Matrix::from_vec(&ctx, size, size, skelcl_linalg::test_matrix(size, size, 1));
    let b = Matrix::from_vec(&ctx, size, size, skelcl_linalg::test_matrix(size, size, 2));
    a.set_distribution(MatrixDistribution::row_block())
        .expect("dist A");
    b.set_distribution(MatrixDistribution::Copy)
        .expect("dist B");
    a.ensure_on_devices().expect("upload A");
    b.ensure_on_devices().expect("upload B");

    // Warm the program cache with a small product of the same generated
    // program (the program hash does not depend on the matrix size).
    let wa = Matrix::from_vec(&ctx, 8, 8, skelcl_linalg::test_matrix(8, 8, 3));
    let wb = Matrix::from_vec(&ctx, 8, 8, skelcl_linalg::test_matrix(8, 8, 4));
    skelcl_linalg::skelcl_impl::matmul_matrices(&wa, &wb, strategy).expect("warm");

    time_virtual_reported(
        &platform,
        &format!("fig_allpairs matmul {size} {strategy:?} x{devices}"),
        || {
            skelcl_linalg::skelcl_impl::matmul_matrices(&a, &b, strategy).expect("matmul");
        },
    )
}

/// Fig-reduce2d helper: virtual time of the 1-NN pipeline (`q` queries ×
/// `p` reference points of dimension `dim`) across `devices` devices.
/// With `device_side` the per-query argmin runs as the device-resident
/// `ReduceRowsArg` row reduction and only two length-`q` vectors are
/// downloaded; otherwise the pre-reduce2d baseline downloads the whole
/// `q×p` distance matrix and scans it on the host. Program warm-up is
/// excluded; both paths produce bit-identical results (asserted in the
/// linalg tests), so the figure isolates the transfer schedule.
pub fn nn_virtual_s(q: usize, p: usize, dim: usize, devices: usize, device_side: bool) -> f64 {
    use skelcl::Matrix;

    let platform = figure_platform(devices);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let strategy = skelcl::AllPairsStrategy::default();
    let mk = || {
        (
            Matrix::from_vec(&ctx, q, dim, skelcl_linalg::test_points(q, dim, 1)),
            Matrix::from_vec(&ctx, p, dim, skelcl_linalg::test_points(p, dim, 2)),
        )
    };
    // Warm both generated program sets (AllPairs + Map + ReduceRowsArg).
    {
        let (qm, pm) = mk();
        skelcl_linalg::skelcl_impl::nearest_neighbors(&qm, &pm, strategy).expect("warm device");
        let (qm, pm) = mk();
        skelcl_linalg::skelcl_impl::nearest_neighbors_host_argmin(&qm, &pm, strategy)
            .expect("warm host");
    }
    let (qm, pm) = mk();
    let argmin = if device_side { "device" } else { "host" };
    time_virtual_reported(
        &platform,
        &format!("fig_reduce2d nn q={q} p={p} dim={dim} {argmin}-argmin x{devices}"),
        || {
            if device_side {
                skelcl_linalg::skelcl_impl::nearest_neighbors(&qm, &pm, strategy).expect("nn");
            } else {
                skelcl_linalg::skelcl_impl::nearest_neighbors_host_argmin(&qm, &pm, strategy)
                    .expect("nn baseline");
            }
        },
    )
}

/// E6 (Stencil2D variant): kernel binary cache behaviour of a generated
/// Stencil2D program — cold source build vs the on-disk cache hit a second
/// context gets.
pub fn run_stencil_cache_experiment() -> CacheResult {
    let platform = figure_platform(1);
    platform.compiler().clear_cache().expect("clear cache");
    let queue = platform.queue(0, DriverProfile::opencl());
    let program = skelcl::codegen::stencil2d_program(
        "gauss3",
        "float gauss3(__global float* in, int r, int c, uint nr, uint nc) { /* 3x3 blur */ }",
        "float",
        "float",
        1,
        "neumann",
    );
    let body: vgpu::KernelBody = std::sync::Arc::new(|_wg: &vgpu::WorkGroup| {});

    let (_, first) = queue
        .build_kernel_traced(&program, body.clone())
        .expect("build");
    assert!(!first.from_cache);
    let (_, second) = queue.build_kernel_traced(&program, body).expect("rebuild");
    assert!(second.from_cache);
    platform.compiler().clear_cache().expect("clear cache");
    CacheResult {
        compile_virtual_s: first.virtual_s,
        load_virtual_s: second.virtual_s,
        compile_wall_s: first.wall_s,
        load_wall_s: second.wall_s,
    }
}

/// Sanity anchor used by tests: OpenCL-vs-CUDA and SkelCL-vs-OpenCL
/// relations the paper reports, checked at bench scale.
pub fn paper_shape_holds(f1: &Fig1Runtimes) -> bool {
    f1.cuda_s < f1.opencl_s && f1.opencl_s <= f1.skelcl_s
}

/// The generated source of a Program a SkelCL Map would build — exposed so
/// benches can measure compilation costs against realistic sizes.
pub fn representative_program() -> Program {
    skelcl::codegen::map_program(
        "mandelbrot",
        skelcl_mandel::skelcl_impl::KERNEL_SOURCE,
        "Complex",
        "uint",
        0,
    )
}

/// Quick OSEM parameters for Criterion benches.
pub fn osem_bench_params() -> OsemParams {
    OsemParams {
        volume: Volume::new(24, 24, 24, 8.0),
        total_events: 60_000,
        n_subsets: 4,
        seed: 7,
    }
}

// ---------------------------------------------------------------------------
// fig_executor: multi-tenant serving throughput, coalescing and fairness
// ---------------------------------------------------------------------------

use skelcl_executor::{Executor, ExecutorConfig, Job, JobHandle, JobOutput, SchedulingMode};

/// The deterministic per-client job stream of the executor figure: client
/// `t` always submits the same `a·x + b` kernel (its own generated
/// program) over its own `vlen`-element vector, varied per job index `j`.
pub fn executor_client_job(t: usize, j: usize, vlen: usize) -> Job {
    let seed = (t as u32).wrapping_mul(131).wrapping_add(j as u32);
    let data = (0..vlen)
        .map(|i| {
            ((((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) % 4000) as f32) / 16.0
                - 125.0
        })
        .collect();
    Job::Axpb {
        a: 0.5 + t as f32 * 0.25,
        b: t as f32 * 0.125,
        data,
    }
}

/// One measured executor run for the throughput leg of `fig_executor`.
pub struct ExecutorLeg {
    /// Modeled seconds from first dispatch to last device idle, builds
    /// excluded (programs are warmed before the measured window).
    pub makespan_s: f64,
    /// Jobs served per modeled second.
    pub jobs_per_s: f64,
    /// End-to-end (queueing + service) latency distribution.
    pub latency: skelcl::HistogramSnapshot,
    /// Every job's output, in submission order — legs are compared
    /// bitwise against each other and against serial execution.
    pub outputs: Vec<JobOutput>,
    /// Launches issued inside the measured window.
    pub batches: u64,
}

/// Run `tenants × jobs_per_tenant` synthetic clients through a fresh
/// executor and measure the virtual makespan: queues fill while the
/// dispatcher is paused, then the whole backlog races through at once.
/// `coalesced` toggles batch fusion (`max_batch` 16 vs 1) — everything
/// else, including the job stream, is identical between the two settings.
pub fn run_executor_throughput_leg(
    devices: usize,
    tenants: usize,
    jobs_per_tenant: usize,
    coalesced: bool,
) -> ExecutorLeg {
    let vlen = 512usize;
    let label = if coalesced {
        "fig_executor/coalesced"
    } else {
        "fig_executor/uncoalesced"
    };
    let platform = Platform::new(
        PlatformConfig::default()
            .devices(devices)
            .cache_tag("fig-executor"),
    );
    let exec = Executor::from_platform(
        platform,
        ExecutorConfig::default()
            .devices(devices)
            .max_batch(if coalesced { 16 } else { 1 })
            .queue_depth(jobs_per_tenant)
            // Generous internal latency target: the figure isn't an SLO
            // study, but running under a target exercises the deadline-miss
            // accounting so the summary line and ledger carry an SLO block.
            .latency_slo(1.0)
            .paused(),
    );
    let ids: Vec<_> = (0..tenants)
        .map(|t| exec.add_tenant(format!("client{t:02}"), 1))
        .collect();

    // Warm every client's generated program so the coalescing comparison
    // prices launches and queueing, not one-time codegen.
    let warm: Vec<_> = ids
        .iter()
        .enumerate()
        .map(|(t, &id)| exec.submit(id, executor_client_job(t, 0, vlen)).unwrap())
        .collect();
    exec.drain();
    for h in warm {
        h.wait().unwrap();
    }

    exec.pause();
    let platform = exec.context().platform();
    platform.enable_timeline_trace();
    platform.reset_clocks();
    let checked_before = exec.context().hazards_checked();
    let before = platform.stats_snapshot();
    let batches_before = exec
        .metrics()
        .counter_value("executor.batches")
        .unwrap_or(0);
    let mut handles: Vec<JobHandle> = Vec::with_capacity(tenants * jobs_per_tenant);
    for j in 0..jobs_per_tenant {
        for (t, &id) in ids.iter().enumerate() {
            handles.push(exec.submit(id, executor_client_job(t, j, vlen)).unwrap());
        }
    }
    exec.drain();
    platform.sync_all();

    let delta = platform.stats_snapshot() - before;
    let window_s = platform.host_now_s();
    let trace = platform.take_timeline_trace();
    let hist = skelcl::Histogram::default();
    let outputs: Vec<JobOutput> = handles
        .into_iter()
        .map(|h| {
            let (out, report) = h.wait().unwrap();
            hist.observe(report.latency_s());
            out
        })
        .collect();
    let makespan_s = window_s - delta.build_virtual_ns as f64 * 1e-9;
    let mut report = RunReport::collect(
        label,
        platform,
        DriverProfile::skelcl().compute_efficiency,
        delta,
        &trace,
        window_s,
    )
    .with_latency(hist.snapshot());
    let checked = exec.context().hazards_checked() - checked_before;
    if checked > 0 {
        report = report.with_hazards_checked(checked);
    }
    if let Some(slo) = exec.slo_summary() {
        report = report.with_slo(slo);
    }
    println!("{}", report.summary_line());
    ledger::record_report(&report, makespan_s);
    ExecutorLeg {
        makespan_s,
        jobs_per_s: outputs.len() as f64 / makespan_s,
        latency: hist.snapshot(),
        outputs,
        batches: exec
            .metrics()
            .counter_value("executor.batches")
            .unwrap_or(0)
            - batches_before,
    }
}

/// One measured run of the fairness leg: a saturating tenant floods one
/// device while three polite tenants each trickle small jobs.
pub struct FairnessLeg {
    /// p99 end-to-end latency over the polite tenants' jobs.
    pub polite_p99_s: f64,
    /// p99 end-to-end latency over the hog's jobs.
    pub hog_p99_s: f64,
    /// Jobs completed by each side (all submissions must finish).
    pub polite_done: usize,
    pub hog_done: usize,
}

/// Fairness leg of `fig_executor` on one shared device: the hog pre-loads
/// `256` large jobs, then three polite tenants submit `16` small jobs
/// each — the worst arrival order for a FIFO dispatcher. Under weighted
/// round-robin the polite tenants' p99 must stay bounded by a handful of
/// hog service times; under FIFO they wait out the whole flood.
pub fn run_executor_fairness_leg(mode: SchedulingMode) -> FairnessLeg {
    let (hog_jobs, polite_tenants, polite_jobs) = (256usize, 3usize, 16usize);
    let platform = Platform::new(
        PlatformConfig::default()
            .devices(1)
            .cache_tag("fig-executor"),
    );
    let exec = Executor::from_platform(
        platform,
        ExecutorConfig::default()
            .devices(1)
            .max_batch(1)
            .queue_depth(hog_jobs)
            .scheduling(mode)
            .paused(),
    );
    let hog = exec.add_tenant("hog", 1);
    let polite: Vec<_> = (0..polite_tenants)
        .map(|i| exec.add_tenant(format!("polite{i}"), 1))
        .collect();
    let rowsum = |seed: usize, len: usize| Job::RowSum {
        data: (0..len)
            .map(|i| {
                ((((i + seed * 31) as u32).wrapping_mul(2654435761)) % 4000) as f32 / 16.0 - 125.0
            })
            .collect(),
    };

    let w = exec.submit(hog, rowsum(0, 2048)).unwrap();
    exec.drain();
    w.wait().unwrap();
    exec.pause();
    exec.context().platform().reset_clocks();

    let hog_handles: Vec<_> = (0..hog_jobs)
        .map(|j| exec.submit(hog, rowsum(j, 2048)).unwrap())
        .collect();
    let polite_handles: Vec<_> = polite
        .iter()
        .enumerate()
        .flat_map(|(i, &id)| {
            (0..polite_jobs)
                .map(move |j| (id, i * polite_jobs + j))
                .collect::<Vec<_>>()
        })
        .map(|(id, seed)| exec.submit(id, rowsum(seed, 256)).unwrap())
        .collect();
    exec.drain();

    let quantile = |handles: Vec<JobHandle>| {
        let hist = skelcl::Histogram::default();
        let n = handles.len();
        for h in handles {
            let (_, report) = h.wait().unwrap();
            hist.observe(report.latency_s());
        }
        (hist.quantile(0.99), n)
    };
    let (hog_p99_s, hog_done) = quantile(hog_handles);
    let (polite_p99_s, polite_done) = quantile(polite_handles);
    FairnessLeg {
        polite_p99_s,
        hog_p99_s,
        polite_done,
        hog_done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_loc_shape_matches_the_paper() {
        // Paper: OpenCL total is the largest by far; CUDA and SkelCL are
        // close to each other.
        let rows = fig1_loc();
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().loc;
        let (cuda, opencl, skelcl) = (get("CUDA"), get("OpenCL"), get("SkelCL"));
        assert!(opencl.total() > cuda.total());
        assert!(opencl.total() > skelcl.total());
        assert!(
            opencl.host > 2 * skelcl.host,
            "OpenCL host boilerplate dominates"
        );
    }

    #[test]
    fn fig2_loc_shape_matches_the_paper() {
        // Paper: SkelCL 232 < CUDA 329 < OpenCL 436; SkelCL's host share is
        // by far the smallest (32 vs 130 vs 243).
        let rows = fig2_loc();
        let get = |v: &str| rows.iter().find(|r| r.variant == v).unwrap().loc;
        let (skelcl, cuda, opencl) = (get("SkelCL"), get("CUDA"), get("OpenCL"));
        assert!(skelcl.total() < cuda.total());
        assert!(cuda.total() < opencl.total());
        assert!(skelcl.host < cuda.host);
        assert!(cuda.host < opencl.host);
    }

    #[test]
    fn cache_experiment_reproduces_the_5x_claim() {
        let r = run_cache_experiment();
        assert!(
            r.virtual_speedup() >= 5.0,
            "cache speedup {} below the paper's >=5x",
            r.virtual_speedup()
        );
        assert!(
            r.compile_wall_s > r.load_wall_s,
            "real wall time should agree"
        );
    }

    #[test]
    fn stencil2d_program_hits_the_kernel_cache_on_second_compile() {
        // run_stencil_cache_experiment asserts the second build is served
        // from the on-disk cache; here we also pin down that the cached
        // load is meaningfully cheaper, as for the 1D skeleton programs.
        let r = run_stencil_cache_experiment();
        assert!(
            r.virtual_speedup() >= 5.0,
            "stencil cache speedup {} below the >=5x bar",
            r.virtual_speedup()
        );
    }

    #[test]
    fn stencil_pipeline_scales_with_devices() {
        // Row-block scaling: past the crossover where per-launch overhead
        // and halo exchange are amortised (~700² on the modeled hardware),
        // 4 virtual devices must beat 1 on the same virtual hardware.
        let t1 = stencil_scaling_virtual_s(768, 768, 1);
        let t4 = stencil_scaling_virtual_s(768, 768, 4);
        assert!(
            t4 < t1,
            "4-device stencil ({t4}s) must beat 1-device ({t1}s)"
        );
    }

    #[test]
    fn batched_iterate_beats_chained_applies() {
        // The fig_iterate relation at a test-friendly size: the batched
        // schedule exchanges strictly less (no wrapped edge rows under the
        // heat stencil's Neumann boundary) and never re-synchronises the
        // host between rounds, so it must model faster on multiple
        // devices. (The full 1024² sweep runs in the fig_iterate bench.)
        let chained = stencil_iterate_virtual_s(256, 256, 4, 50, false);
        let batched = stencil_iterate_virtual_s(256, 256, 4, 50, true);
        assert!(
            batched < chained,
            "batched iterate ({batched}s) must beat chained applies ({chained}s)"
        );
    }

    #[test]
    fn single_device_iterate_is_no_slower_than_chained_applies() {
        // No halos, no exchanges: the two schedules collapse to the same
        // launch sequence.
        let chained = stencil_iterate_virtual_s(128, 128, 1, 20, false);
        let batched = stencil_iterate_virtual_s(128, 128, 1, 20, true);
        assert!(
            batched <= chained,
            "batched iterate ({batched}s) must not lose to chained applies ({chained}s)"
        );
    }

    #[test]
    fn tiled_allpairs_beats_naive_at_bench_scale() {
        // The fig_allpairs relation at a test-friendly size: local-memory
        // tiling cuts global traffic ~tile-fold, so the memory-bound naive
        // kernel must model slower (the full 1024² check runs in the
        // fig_allpairs bench itself).
        let naive = allpairs_virtual_s(384, 1, skelcl::AllPairsStrategy::Naive);
        let tiled = allpairs_virtual_s(384, 1, skelcl::AllPairsStrategy::Tiled { tile: 16 });
        assert!(
            tiled < naive,
            "tiled allpairs ({tiled}s) must beat naive ({naive}s)"
        );
    }

    #[test]
    fn allpairs_scales_with_devices() {
        let t1 = allpairs_virtual_s(512, 1, skelcl::AllPairsStrategy::Tiled { tile: 16 });
        let t4 = allpairs_virtual_s(512, 4, skelcl::AllPairsStrategy::Tiled { tile: 16 });
        assert!(
            t4 < t1,
            "4-device allpairs ({t4}s) must beat 1-device ({t1}s)"
        );
    }

    #[test]
    fn device_side_argmin_beats_matrix_download() {
        // The fig_reduce2d relation at a test-friendly size: the baseline
        // ships the whole q×p distance matrix over PCIe, the device-side
        // ReduceRowsArg ships two length-q vectors (the full sweep runs in
        // the fig_reduce2d bench itself).
        let host = nn_virtual_s(512, 512, 16, 1, false);
        let device = nn_virtual_s(512, 512, 16, 1, true);
        assert!(
            device < host,
            "device-side 1-NN ({device}s) must beat download-and-host-argmin ({host}s)"
        );
    }

    #[test]
    fn overlapped_iterate_keeps_copy_engines_busy_under_kernels() {
        // The fig_overlap metric at a test-friendly size: the overlapped
        // schedule must show strictly positive copy-engine time concurrent
        // with compute on the same device.
        let overlap_s = overlap_copy_busy_during_kernels_s(256, 256, 4, 20);
        assert!(
            overlap_s > 0.0,
            "no copy-under-compute overlap in the overlapped iterate schedule"
        );
    }

    #[test]
    fn lazy_copying_saves_transfers() {
        let r = run_lazy_copy_experiment(1 << 14);
        assert!(r.lazy_transfers < r.eager_transfers);
        assert!(r.lazy_bytes < r.eager_bytes);
        assert!(r.lazy_virtual_s < r.eager_virtual_s);
    }

    #[test]
    fn ablations_point_the_right_way() {
        let n = 1 << 16;
        assert!(
            reduce_virtual_s(n, ReduceStrategy::GlobalNaive)
                > reduce_virtual_s(n, ReduceStrategy::LocalTree)
        );
        assert!(
            scan_virtual_s(n, ScanStrategy::Conflicting)
                > scan_virtual_s(n, ScanStrategy::BankAware)
        );
    }
}
