//! `benchdiff` — the perf-ledger regression gate.
//!
//! ```text
//! benchdiff [--threshold 0.20] <old BENCH_*.json> <new BENCH_*.json>
//! ```
//!
//! Loads two ledgers written by `skelcl_bench::ledger::write_fig`, prints
//! a per-leg delta table of modeled (virtual) seconds, and exits with:
//!
//! * `0` — every matched leg is within the threshold and no baseline leg
//!   disappeared;
//! * `1` — at least one leg regressed past the threshold, or a leg from
//!   the baseline is missing in the new ledger (coverage loss);
//! * `2` — usage, IO, or parse error (including an unknown schema
//!   version).
//!
//! The threshold is a fractional slowdown: `--threshold 0.20` fails legs
//! that got ≥ 20 % slower in virtual seconds. Because the ledger records
//! deterministic modeled time, there is no noise floor to tune around —
//! any delta is a real behaviour change.

use skelcl_bench::ledger::{diff_ledgers, Ledger};
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: benchdiff [--threshold <fraction>] <old.json> <new.json>";
const DEFAULT_THRESHOLD: f64 = 0.20;

fn run() -> Result<bool, String> {
    let mut threshold = DEFAULT_THRESHOLD;
    let mut paths: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                let v = args.next().ok_or("--threshold needs a value")?;
                threshold = v
                    .parse::<f64>()
                    .map_err(|e| format!("bad --threshold `{v}`: {e}"))?;
                if !threshold.is_finite() || threshold < 0.0 {
                    return Err(format!(
                        "--threshold must be a finite fraction ≥ 0, got {v}"
                    ));
                }
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => paths.push(other.to_string()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        return Err(USAGE.to_string());
    };
    let old = Ledger::load(Path::new(old_path))?;
    let new = Ledger::load(Path::new(new_path))?;
    if old.fig != new.fig {
        return Err(format!(
            "ledger mismatch: `{old_path}` is {} but `{new_path}` is {}",
            old.fig, new.fig
        ));
    }

    let diff = diff_ledgers(&old, &new, threshold);
    println!(
        "benchdiff {}: {} (run {}) vs {} (run {}), threshold {:.0}%",
        old.fig,
        old_path,
        old.run_id,
        new_path,
        new.run_id,
        threshold * 100.0
    );
    print!("{}", diff.render());
    if diff.failed() {
        println!(
            "FAIL: {} leg(s) regressed past {:.0}%, {} baseline leg(s) missing",
            diff.regressions().len(),
            threshold * 100.0,
            diff.only_old.len()
        );
    } else {
        println!("OK: {} leg(s) within threshold", diff.deltas.len());
    }
    Ok(diff.failed())
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(msg) => {
            eprintln!("benchdiff: {msg}");
            ExitCode::from(2)
        }
    }
}
