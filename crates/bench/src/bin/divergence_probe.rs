// Quick divergence probe: compare warp-max sums for 32x1 vs 16x2 warps.
use skelcl_mandel::{escape_iterations, MandelParams};

fn main() {
    let p = MandelParams {
        max_iter: 4096,
        ..MandelParams::bench_scale()
    };
    let (w, h) = (p.width, p.height);
    let iters: Vec<u64> = (0..w * h)
        .map(|i| {
            let (x, y) = (i % w, i / w);
            escape_iterations(p.pixel_to_complex(x, y), p.max_iter) as u64
        })
        .collect();
    let total: u64 = iters.iter().sum();

    // 1D groups of 256: warp = 32 consecutive x in a row
    let mut warp_1d = 0u64;
    for start in (0..w * h).step_by(32) {
        let m = iters[start..(start + 32).min(w * h)].iter().max().unwrap();
        warp_1d += m * 32;
    }
    // 2D 16x16 groups: warp = rows pairs within tile: lanes = ly*16+lx, warp k covers ly in {2k, 2k+1}
    let mut warp_2d = 0u64;
    for ty in (0..h).step_by(16) {
        for tx in (0..w).step_by(16) {
            for wy in (0..16).step_by(2) {
                let mut m = 0u64;
                for ly in wy..wy + 2 {
                    for lx in 0..16 {
                        let (x, y) = (tx + lx, ty + ly);
                        if x < w && y < h {
                            m = m.max(iters[y * w + x]);
                        }
                    }
                }
                warp_2d += m * 32;
            }
        }
    }
    println!("sum iters        = {total}");
    println!(
        "warp cost 32x1   = {warp_1d}  (overhead {:.2}x)",
        warp_1d as f64 / total as f64
    );
    println!(
        "warp cost 16x2   = {warp_2d}  (overhead {:.2}x)",
        warp_2d as f64 / total as f64
    );
}
