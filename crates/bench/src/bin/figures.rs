//! Regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p skelcl-bench --bin figures -- all
//! cargo run --release -p skelcl-bench --bin figures -- fig1 [--paper-scale]
//! cargo run --release -p skelcl-bench --bin figures -- fig2 [--paper-scale|--quick]
//! cargo run --release -p skelcl-bench --bin figures -- dot | cache | lazy | overhead
//! ```
//!
//! Virtual (modeled) seconds are reported; see DESIGN.md section 2 for why
//! absolute values differ from the paper's wall-clock numbers while the
//! comparative shapes are expected to match.

use skelcl_bench::*;
use skelcl_loc::render_table;
use skelcl_mandel::MandelParams;
use skelcl_osem::{OsemParams, Volume};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let paper_scale = args.iter().any(|a| a == "--paper-scale");
    let quick = args.iter().any(|a| a == "--quick");

    match what {
        "fig1" => fig1(paper_scale),
        "fig2" => fig2(paper_scale, quick),
        "dot" => dot(),
        "cache" => cache(),
        "lazy" => lazy(),
        "overhead" => overhead(paper_scale, quick),
        "all" => {
            fig1(paper_scale);
            fig2(paper_scale, quick);
            dot();
            cache();
            lazy();
        }
        other => {
            eprintln!("unknown figure '{other}' (use fig1|fig2|dot|cache|lazy|overhead|all)");
            std::process::exit(2);
        }
    }
}

fn fig1_params(paper_scale: bool) -> MandelParams {
    if paper_scale {
        MandelParams::paper_scale()
    } else {
        fig1_default_params()
    }
}

fn fig1(paper_scale: bool) {
    let p = fig1_params(paper_scale);
    println!(
        "== Figure 1: Mandelbrot ({}x{}, max_iter {}) ==",
        p.width, p.height, p.max_iter
    );
    println!("{}", render_table("program size (LoC)", &fig1_loc()));
    let r = run_fig1(&p);
    println!("runtime (virtual seconds, 1 GPU)");
    println!("{:<10} {:>12}", "variant", "seconds");
    println!("{:<10} {:>12.4}", "SkelCL", r.skelcl_s);
    println!("{:<10} {:>12.4}", "OpenCL", r.opencl_s);
    println!("{:<10} {:>12.4}", "CUDA", r.cuda_s);
    println!(
        "OpenCL faster than SkelCL by {:5.1} %   (paper:  4 %)",
        100.0 * r.opencl_vs_skelcl()
    );
    println!(
        "CUDA   faster than SkelCL by {:5.1} %   (paper: 31 %)",
        100.0 * r.cuda_vs_skelcl()
    );
    println!();
}

fn fig2_params(paper_scale: bool, quick: bool) -> OsemParams {
    if paper_scale {
        OsemParams::paper_scale()
    } else if quick {
        OsemParams {
            volume: Volume::new(32, 32, 32, 6.0),
            total_events: 200_000,
            n_subsets: 10,
            seed: 2011,
        }
    } else {
        OsemParams::bench_scale()
    }
}

fn fig2(paper_scale: bool, quick: bool) {
    let p = fig2_params(paper_scale, quick);
    println!(
        "== Figure 2: list-mode OSEM (volume {:?}, {} events, {} subsets) ==",
        p.volume.dims(),
        p.total_events,
        p.n_subsets
    );
    println!("{}", render_table("program size (LoC)", &fig2_loc()));
    println!("generating events...");
    let rows = run_fig2(&p, &[1, 2, 4]);
    println!("runtime (virtual seconds)");
    println!(
        "{:<10} {:>6} {:>12} {:>9}",
        "variant", "GPUs", "seconds", "speedup"
    );
    for variant in ["SkelCL", "OpenCL", "CUDA"] {
        let t1 = rows
            .iter()
            .find(|r| r.variant == variant && r.n_gpus == 1)
            .map(|r| r.seconds)
            .unwrap_or(f64::NAN);
        for r in rows.iter().filter(|r| r.variant == variant) {
            println!(
                "{:<10} {:>6} {:>12.4} {:>9.2}",
                r.variant,
                r.n_gpus,
                r.seconds,
                t1 / r.seconds
            );
        }
    }
    let get = |v: &str, n: usize| {
        rows.iter()
            .find(|r| r.variant == v && r.n_gpus == n)
            .map(|r| r.seconds)
            .unwrap_or(f64::NAN)
    };
    println!(
        "1 GPU: CUDA faster than OpenCL by {:4.1} %   (paper: ~17-21 %)",
        100.0 * (get("OpenCL", 1) - get("CUDA", 1)) / get("OpenCL", 1)
    );
    println!(
        "SkelCL 4-GPU vs CUDA 1-GPU: {:4.2}x   (paper: 2.56x)",
        get("CUDA", 1) / get("SkelCL", 4)
    );
    println!();
}

fn dot() {
    println!("== Dot product (paper Listing 1 / Section III intro) ==");
    println!(
        "{}",
        render_table(
            "program size (LoC)  [paper: NVIDIA OpenCL ~68 = 9 kernel + 59 host]",
            &dot_product_loc()
        )
    );
    // Correctness cross-check of the two programs on the same platform.
    let platform = figure_platform(1);
    let ctx = skelcl::Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let a: Vec<f32> = (0..1 << 16)
        .map(|i| ((i * 13) % 31) as f32 * 0.25)
        .collect();
    let b: Vec<f32> = (0..1 << 16).map(|i| ((i * 7) % 17) as f32 * 0.5).collect();
    let mult = skelcl::Zip::new(skelcl::skel_fn!(
        fn mult(x: f32, y: f32) -> f32 {
            x * y
        }
    ));
    let sum = skelcl::Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    let va = skelcl::Vector::from_slice(&ctx, &a);
    let vb = skelcl::Vector::from_slice(&ctx, &b);
    let skelcl_dot = sum
        .apply(&mult.apply(&va, &vb).expect("zip"))
        .expect("reduce")
        .get_value();
    let opencl_dot = dot_opencl::dot_product(&platform, &a, &b).expect("opencl dot");
    println!("SkelCL result = {skelcl_dot}, OpenCL result = {opencl_dot}");
    assert!((skelcl_dot - opencl_dot).abs() <= skelcl_dot.abs() * 1e-5);
    println!();
}

fn cache() {
    println!("== Kernel binary cache (paper Section III-B) ==");
    let r = run_cache_experiment();
    println!(
        "build from source: {:8.2} ms (virtual), {:8.3} ms (wall)",
        r.compile_virtual_s * 1e3,
        r.compile_wall_s * 1e3
    );
    println!(
        "load from cache:   {:8.2} ms (virtual), {:8.3} ms (wall)",
        r.load_virtual_s * 1e3,
        r.load_wall_s * 1e3
    );
    println!(
        "speedup: {:4.1}x   (paper: \"at least five times faster\")",
        r.virtual_speedup()
    );
    println!();
}

fn lazy() {
    println!("== Lazy copying (paper Section III-A) ==");
    let r = run_lazy_copy_experiment(1 << 20);
    println!("chained sum(mult(A,B)) on 2^20 floats:");
    println!(
        "  lazy  (SkelCL):      {:3} transfers, {:9} bytes, {:8.3} ms",
        r.lazy_transfers,
        r.lazy_bytes,
        r.lazy_virtual_s * 1e3
    );
    println!(
        "  eager (round trip):  {:3} transfers, {:9} bytes, {:8.3} ms",
        r.eager_transfers,
        r.eager_bytes,
        r.eager_virtual_s * 1e3
    );
    println!();
}

fn overhead(paper_scale: bool, quick: bool) {
    println!("== SkelCL overhead vs OpenCL (paper: < 5 % on both applications) ==");
    let f1 = run_fig1(&fig1_params(paper_scale));
    println!(
        "Mandelbrot: SkelCL/OpenCL = {:5.3} ({:+.1} %)",
        f1.skelcl_s / f1.opencl_s,
        100.0 * (f1.skelcl_s / f1.opencl_s - 1.0)
    );
    let rows = run_fig2(&fig2_params(paper_scale, quick), &[1]);
    let get = |v: &str| {
        rows.iter()
            .find(|r| r.variant == v)
            .map(|r| r.seconds)
            .unwrap_or(f64::NAN)
    };
    println!(
        "OSEM (1 GPU): SkelCL/OpenCL = {:5.3} ({:+.1} %)",
        get("SkelCL") / get("OpenCL"),
        100.0 * (get("SkelCL") / get("OpenCL") - 1.0)
    );
    println!();
}
