//! The perf ledger: machine-readable `BENCH_<fig>.json` artifacts.
//!
//! Every `fig_*` bench leg that routes through the harness timers
//! ([`crate::time_virtual_reported_with`] and friends) deposits a
//! [`LedgerEntry`] into a process-global sink; at the end of its sweep the
//! figure calls [`write_fig`], which — when `SKELCL_LEDGER_DIR` is set —
//! serializes the figure's legs into one schema-versioned JSON document.
//! CI uploads those documents as artifacts and feeds two of them (the
//! checked-in seed and the fresh run) to the `benchdiff` binary, which
//! exits non-zero when any leg regressed past the threshold
//! ([`diff_ledgers`]).
//!
//! Because every modeled quantity in this repository is *virtual* —
//! deterministic functions of the workload and the device model, not of
//! host wall-clock — a ledger diff is noise-free: any delta is a real
//! behaviour change in the runtime or the model, which is what makes a
//! hard-failing CI gate viable where wall-clock benchmarks would flake.
//!
//! # Environment contract
//!
//! * `SKELCL_LEDGER_DIR` — directory to write `BENCH_<fig>.json` into.
//!   Unset ⇒ [`write_fig`] is a no-op (normal local bench runs stay
//!   artifact-free).
//! * `SKELCL_RUN_ID` — identifier stamped into the document (CI passes the
//!   commit SHA). Unset ⇒ `"local"`.
//!
//! # Schema
//!
//! `{"schema_version":1,"fig":…,"run_id":…,"legs":[…]}` where each leg is
//! `{"label","config","virtual_s","pct_of_peak","bound","latency"}`.
//! `config` is parsed from the leg label's tokens ([`config_from_label`])
//! so diffs can explain *what* a leg is without re-deriving it from free
//! text; `latency` reuses the telemetry histogram object (`null` for
//! figure legs without a serving latency distribution). The version bumps
//! on renames/removals/meaning changes, not on additions — the same
//! contract as [`skelcl::telemetry`].

use skelcl::report::json::{self, Json};
use skelcl::report::RunReport;
use skelcl::telemetry::histogram_json;
use skelcl::HistogramSnapshot;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;

/// Version of the `BENCH_*.json` layout (see *Schema* in the module docs).
pub const LEDGER_SCHEMA_VERSION: u64 = 1;

/// One measured bench leg, keyed by its report label.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerEntry {
    /// The leg's report label, e.g. `fig_overlap iterate 64x64 n=3
    /// overlapped x2` — unique within a figure and stable across runs.
    pub label: String,
    /// Structured configuration parsed from the label tokens.
    pub config: Vec<(String, String)>,
    /// Modeled seconds of the leg, build time excluded — the quantity the
    /// figures report and the regression gate compares.
    pub virtual_s: f64,
    /// Roofline verdict: achieved % of the modeled peak of the bound
    /// resource.
    pub pct_of_peak: f64,
    /// Which resource bounds the leg (`compute` / `memory` / `transfer`).
    pub bound: String,
    /// End-to-end latency distribution for serving legs; `None` for plain
    /// kernel figures.
    pub latency: Option<HistogramSnapshot>,
}

/// Structured config from a leg label: `x<N>` tokens become `devices`,
/// `<R>x<C>` tokens become `shape`, `k=v` tokens pass through, and the
/// remaining words join into `workload`. Pairs are key-sorted so the
/// serialized object (whose parse is key-ordered) round-trips exactly.
pub fn config_from_label(label: &str) -> Vec<(String, String)> {
    let all_digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    let mut cfg = Vec::new();
    let mut words = Vec::new();
    for tok in label.split([' ', '/']).filter(|t| !t.is_empty()) {
        if let Some(n) = tok.strip_prefix('x').filter(|n| all_digits(n)) {
            cfg.push(("devices".to_string(), n.to_string()));
        } else if let Some((k, v)) = tok.split_once('=') {
            cfg.push((k.to_string(), v.to_string()));
        } else if tok
            .split_once('x')
            .is_some_and(|(r, c)| all_digits(r) && all_digits(c))
        {
            cfg.push(("shape".to_string(), tok.to_string()));
        } else {
            words.push(tok);
        }
    }
    if !words.is_empty() {
        cfg.push(("workload".to_string(), words.join(" ")));
    }
    cfg.sort();
    cfg
}

/// The process-global sink the harness timers deposit legs into.
static SINK: Mutex<Vec<LedgerEntry>> = Mutex::new(Vec::new());

/// Record one leg; a later leg with the same label replaces the earlier
/// one (sweeps may re-run a configuration — last measurement wins).
pub fn record_leg(entry: LedgerEntry) {
    let mut sink = SINK.lock().unwrap();
    match sink.iter_mut().find(|e| e.label == entry.label) {
        Some(slot) => *slot = entry,
        None => sink.push(entry),
    }
}

/// Record a leg straight from its [`RunReport`] and measured
/// (build-excluded) virtual seconds — the hook the harness timers call.
pub fn record_report(report: &RunReport, virtual_s: f64) {
    record_leg(LedgerEntry {
        label: report.label.clone(),
        config: config_from_label(&report.label),
        virtual_s,
        pct_of_peak: report.roofline.pct_of_modeled_peak(),
        bound: report.roofline.bound().to_string(),
        latency: report.latency,
    });
}

/// Snapshot of the sink's legs whose label starts with `fig` (in first
/// recording order).
pub fn legs_for(fig: &str) -> Vec<LedgerEntry> {
    SINK.lock()
        .unwrap()
        .iter()
        .filter(|e| e.label.starts_with(fig))
        .cloned()
        .collect()
}

/// One figure's ledger document: the unit `benchdiff` compares.
#[derive(Debug, Clone, PartialEq)]
pub struct Ledger {
    pub schema_version: u64,
    /// Figure name, e.g. `fig_overlap`.
    pub fig: String,
    /// Run identifier (commit SHA in CI, `local` otherwise).
    pub run_id: String,
    pub legs: Vec<LedgerEntry>,
}

impl Ledger {
    /// Assemble a ledger for `fig` from the process-global sink.
    pub fn collect(fig: &str, run_id: &str) -> Ledger {
        Ledger {
            schema_version: LEDGER_SCHEMA_VERSION,
            fig: fig.to_string(),
            run_id: run_id.to_string(),
            legs: legs_for(fig),
        }
    }

    /// Serialize into the `BENCH_*.json` document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema_version\":{},\"fig\":\"{}\",\"run_id\":\"{}\",\"legs\":[",
            self.schema_version,
            skelcl::report::json_escape(&self.fig),
            skelcl::report::json_escape(&self.run_id),
        );
        for (i, leg) in self.legs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let cfg: Vec<String> = leg
                .config
                .iter()
                .map(|(k, v)| {
                    format!(
                        "\"{}\":\"{}\"",
                        skelcl::report::json_escape(k),
                        skelcl::report::json_escape(v)
                    )
                })
                .collect();
            let _ = write!(
                out,
                "{{\"label\":\"{}\",\"config\":{{{}}},\"virtual_s\":{},\
                 \"pct_of_peak\":{},\"bound\":\"{}\",\"latency\":{}}}",
                skelcl::report::json_escape(&leg.label),
                cfg.join(","),
                skelcl::report::json_num(leg.virtual_s),
                skelcl::report::json_num(leg.pct_of_peak),
                leg.bound,
                match &leg.latency {
                    Some(h) => histogram_json(h),
                    None => "null".to_string(),
                },
            );
        }
        out.push_str("]}");
        out
    }

    /// Parse a `BENCH_*.json` document; rejects unknown schema versions.
    pub fn parse(text: &str) -> Result<Ledger, String> {
        let doc = json::parse(text)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_num)
            .ok_or("missing schema_version")? as u64;
        if version != LEDGER_SCHEMA_VERSION {
            return Err(format!(
                "unknown ledger schema version {version} (this build understands \
                 {LEDGER_SCHEMA_VERSION})"
            ));
        }
        let str_field = |j: &Json, key: &str| -> Result<String, String> {
            j.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field `{key}`"))
        };
        let num_field = |j: &Json, key: &str| -> Result<f64, String> {
            j.get(key)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("missing numeric field `{key}`"))
        };
        let mut legs = Vec::new();
        for leg in doc
            .get("legs")
            .and_then(Json::as_arr)
            .ok_or("missing legs array")?
        {
            let config = leg
                .get("config")
                .and_then(Json::as_obj)
                .map(|o| {
                    o.iter()
                        .filter_map(|(k, v)| Some((k.clone(), v.as_str()?.to_string())))
                        .collect()
                })
                .unwrap_or_default();
            let latency = match leg.get("latency") {
                None | Some(Json::Null) => None,
                Some(h) => Some(parse_histogram(h)?),
            };
            legs.push(LedgerEntry {
                label: str_field(leg, "label")?,
                config,
                virtual_s: num_field(leg, "virtual_s")?,
                pct_of_peak: num_field(leg, "pct_of_peak")?,
                bound: str_field(leg, "bound")?,
                latency,
            });
        }
        Ok(Ledger {
            schema_version: version,
            fig: str_field(&doc, "fig")?,
            run_id: str_field(&doc, "run_id")?,
            legs,
        })
    }

    /// Load and parse a ledger file.
    pub fn load(path: &std::path::Path) -> Result<Ledger, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Ledger::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn parse_histogram(h: &Json) -> Result<HistogramSnapshot, String> {
    let opt = |key: &str| h.get(key).and_then(Json::as_num);
    Ok(HistogramSnapshot {
        count: opt("count").ok_or("latency missing count")? as u64,
        sum: opt("sum").ok_or("latency missing sum")?,
        min: opt("min"),
        max: opt("max"),
        p50: opt("p50"),
        p90: opt("p90"),
        p99: opt("p99"),
        dropped: opt("dropped").unwrap_or(0.0) as u64,
    })
}

/// Write `BENCH_<fig>.json` for `fig` into `$SKELCL_LEDGER_DIR`, stamped
/// with `$SKELCL_RUN_ID`. No-op (returns `None`) when the directory
/// variable is unset — plain bench runs produce no artifacts. Panics on IO
/// failure: a requested artifact that can't be written must fail the run,
/// not silently vanish from CI.
pub fn write_fig(fig: &str) -> Option<PathBuf> {
    let dir = std::env::var("SKELCL_LEDGER_DIR").ok()?;
    let run_id = std::env::var("SKELCL_RUN_ID").unwrap_or_else(|_| "local".to_string());
    let ledger = Ledger::collect(fig, &run_id);
    let path = PathBuf::from(dir).join(format!("BENCH_{fig}.json"));
    std::fs::create_dir_all(path.parent().unwrap())
        .unwrap_or_else(|e| panic!("create ledger dir for {}: {e}", path.display()));
    std::fs::write(&path, ledger.to_json())
        .unwrap_or_else(|e| panic!("write ledger {}: {e}", path.display()));
    println!(
        "ledger: wrote {} ({} leg(s), run {run_id})",
        path.display(),
        ledger.legs.len()
    );
    Some(path)
}

/// One leg's old-vs-new comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct LegDelta {
    pub label: String,
    pub old_s: f64,
    pub new_s: f64,
}

impl LegDelta {
    /// Fractional change in virtual seconds: `+0.25` = 25 % slower.
    pub fn change(&self) -> f64 {
        if self.old_s > 0.0 {
            self.new_s / self.old_s - 1.0
        } else if self.new_s > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

/// The result of diffing two ledgers under a regression threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Fractional slowdown above which a leg counts as regressed
    /// (`0.20` = fail legs that got ≥ 20 % slower).
    pub threshold: f64,
    /// Legs present in both ledgers, in the new ledger's order.
    pub deltas: Vec<LegDelta>,
    /// Labels only in the old ledger (leg disappeared).
    pub only_old: Vec<String>,
    /// Labels only in the new ledger (leg appeared).
    pub only_new: Vec<String>,
}

impl DiffReport {
    /// The deltas whose slowdown exceeds the threshold.
    pub fn regressions(&self) -> Vec<&LegDelta> {
        self.deltas
            .iter()
            .filter(|d| d.change() > self.threshold)
            .collect()
    }

    /// True when the diff should fail a CI gate: any leg regressed past
    /// the threshold, or a previously-measured leg vanished (a silent
    /// coverage loss must not read as a pass).
    pub fn failed(&self) -> bool {
        !self.regressions().is_empty() || !self.only_old.is_empty()
    }

    /// Human-readable per-leg table (one line each), regressions marked.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.deltas {
            let pct = d.change() * 100.0;
            let mark = if d.change() > self.threshold {
                "  REGRESSED"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "{:<56} {:>12.6e} -> {:>12.6e}  {:>+8.2}%{}",
                d.label, d.old_s, d.new_s, pct, mark
            );
        }
        for l in &self.only_old {
            let _ = writeln!(out, "{l:<56} MISSING from new ledger");
        }
        for l in &self.only_new {
            let _ = writeln!(out, "{l:<56} new leg (no baseline)");
        }
        out
    }
}

/// Compare `new` against the `old` baseline: legs are matched by label.
pub fn diff_ledgers(old: &Ledger, new: &Ledger, threshold: f64) -> DiffReport {
    let mut deltas = Vec::new();
    let mut only_new = Vec::new();
    for leg in &new.legs {
        match old.legs.iter().find(|o| o.label == leg.label) {
            Some(o) => deltas.push(LegDelta {
                label: leg.label.clone(),
                old_s: o.virtual_s,
                new_s: leg.virtual_s,
            }),
            None => only_new.push(leg.label.clone()),
        }
    }
    let only_old = old
        .legs
        .iter()
        .filter(|o| !new.legs.iter().any(|n| n.label == o.label))
        .map(|o| o.label.clone())
        .collect();
    DiffReport {
        threshold,
        deltas,
        only_old,
        only_new,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(label: &str, virtual_s: f64) -> LedgerEntry {
        LedgerEntry {
            label: label.to_string(),
            config: config_from_label(label),
            virtual_s,
            pct_of_peak: 61.5,
            bound: "compute".to_string(),
            latency: None,
        }
    }

    fn ledger(legs: Vec<LedgerEntry>) -> Ledger {
        Ledger {
            schema_version: LEDGER_SCHEMA_VERSION,
            fig: "fig_test".to_string(),
            run_id: "deadbeef".to_string(),
            legs,
        }
    }

    #[test]
    fn label_tokens_become_structured_config() {
        let cfg = config_from_label("fig_overlap iterate 512x512 n=3 overlapped x2");
        assert_eq!(
            cfg,
            vec![
                ("devices".into(), "2".into()),
                ("n".into(), "3".into()),
                ("shape".into(), "512x512".into()),
                ("workload".into(), "fig_overlap iterate overlapped".into()),
            ]
        );
        // Slash-separated variant labels split too.
        let cfg = config_from_label("fig_executor/coalesced");
        assert_eq!(
            cfg,
            vec![("workload".into(), "fig_executor coalesced".into())]
        );
    }

    #[test]
    fn ledger_json_round_trips() {
        let mut with_latency = entry("fig_test serving x2", 0.5);
        let h = skelcl::Histogram::default();
        h.observe(1e-3);
        with_latency.latency = Some(h.snapshot());
        let before = ledger(vec![entry("fig_test plain 64x64 x1", 1.25), with_latency]);
        let after = Ledger::parse(&before.to_json()).expect("round trip");
        assert_eq!(before, after);
    }

    #[test]
    fn unknown_schema_version_is_rejected() {
        let text = ledger(vec![])
            .to_json()
            .replace("\"schema_version\":1", "\"schema_version\":99");
        let err = Ledger::parse(&text).unwrap_err();
        assert!(err.contains("schema version 99"), "{err}");
    }

    #[test]
    fn diff_flags_regressions_and_vanished_legs() {
        let old = ledger(vec![entry("a", 1.0), entry("b", 1.0), entry("gone", 1.0)]);
        let new = ledger(vec![entry("a", 1.1), entry("b", 1.3), entry("fresh", 1.0)]);
        let diff = diff_ledgers(&old, &new, 0.20);
        assert_eq!(diff.deltas.len(), 2);
        let regressed: Vec<&str> = diff
            .regressions()
            .iter()
            .map(|d| d.label.as_str())
            .collect();
        assert_eq!(regressed, ["b"], "only the ≥20% slowdown regresses");
        assert_eq!(diff.only_old, ["gone"]);
        assert_eq!(diff.only_new, ["fresh"]);
        assert!(diff.failed(), "regression + vanished leg fail the gate");

        // Inside the threshold and with full coverage, the gate passes.
        let ok = diff_ledgers(
            &old,
            &ledger(vec![entry("a", 1.1), entry("b", 1.15), entry("gone", 0.9)]),
            0.20,
        );
        assert!(!ok.failed(), "{:?}", ok.regressions());
    }

    #[test]
    fn sink_dedupes_by_label_last_wins() {
        // Use labels no real figure produces so parallel tests can't collide.
        record_leg(entry("ledger_selftest leg_a", 1.0));
        record_leg(entry("ledger_selftest leg_a", 2.0));
        record_leg(entry("ledger_selftest leg_b", 3.0));
        let legs = legs_for("ledger_selftest");
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[0].virtual_s, 2.0, "last measurement wins");
        assert_eq!(legs[1].virtual_s, 3.0);
    }
}
