// Dot-product partial-sum kernel for the raw-OpenCL comparison program
// (the paper's "NVIDIA sample" counterpart): per-group tree reduction in
// local memory; the host sums the per-group partials.
__kernel void dot_partial(__global const float* restrict a,
                          __global const float* restrict b,
                          __global float* restrict partial,
                          const uint n,
                          __local float* scratch) {
    uint gid = get_global_id(0);
    uint lid = get_local_id(0);
    uint lsize = get_local_size(0);
    scratch[lid] = (gid < n) ? a[gid] * b[gid] : 0.0f;
    barrier(CLK_LOCAL_MEM_FENCE);
    for (uint s = lsize / 2; s > 0; s >>= 1) {
        if (lid < s) {
            scratch[lid] += scratch[lid + s];
        }
        barrier(CLK_LOCAL_MEM_FENCE);
    }
    if (lid == 0) {
        partial[get_group_id(0)] = scratch[0];
    }
}
