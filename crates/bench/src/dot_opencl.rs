//! The dot product written against the raw OpenCL host API — the
//! counterpart of the paper's "OpenCL-based implementation of a dot product
//! computation provided by NVIDIA \[which\] requires approximately 68 lines
//! of code (kernel function: 9 lines, host program: 59 lines)".
//!
//! Compare with `examples/quickstart.rs`, the SkelCL version.

use skelcl_baselines::opencl::*;
use std::sync::Arc;
use vgpu::{Platform, Result, WorkGroup};

/// Compute `Σ a[i] * b[i]` through the OpenCL host API.
pub fn dot_product(platform: &Platform, a: &[f32], b: &[f32]) -> Result<f32> {
    assert_eq!(a.len(), b.len());
    let n = a.len();
    let local = 256usize;

    // context / queue creation
    let device_ids = cl_get_device_ids(platform);
    let context = cl_create_context(platform, &device_ids)?;
    let queue = cl_create_command_queue(&context, 0)?;

    // allocate and upload input buffers
    let a_mem = cl_create_buffer::<f32>(&context, 0, n)?;
    let b_mem = cl_create_buffer::<f32>(&context, 0, n)?;
    cl_enqueue_write_buffer(&queue, &a_mem, a)?;
    cl_enqueue_write_buffer(&queue, &b_mem, b)?;

    // partial-sum buffer, one slot per work-group
    let n_groups = n.div_ceil(local);
    let partial_mem = cl_create_buffer::<f32>(&context, 0, n_groups)?;

    // build the program and create the kernel
    let program = cl_create_program_with_source(&context, "dot_partial", crate::DOT_OPENCL_KERNEL);
    cl_build_program(&queue, &program)?;
    let kernel = cl_create_kernel(
        &program,
        // >>> kernel
        Arc::new(move |wg: &WorkGroup, args: &ClArgs| {
            let a = args.buf::<f32>(0);
            let b = args.buf::<f32>(1);
            let partial = args.buf::<f32>(2);
            let n = args.scalar::<u32>(3) as usize;
            let lsize = wg.local_size(0);
            let scratch = wg.local_buf::<f32>(lsize);
            wg.for_each_item(|it| {
                let gid = it.global_id(0);
                let lid = it.local_id(0);
                let v = if gid < n {
                    it.work(1);
                    it.read(a, gid) * it.read(b, gid)
                } else {
                    0.0
                };
                scratch.set(lid, v);
            });
            wg.barrier();
            let mut s = lsize / 2;
            while s > 0 {
                wg.for_each_item(|it| {
                    let lid = it.local_id(0);
                    if lid < s {
                        scratch.set(lid, scratch.get(lid) + scratch.get(lid + s));
                        it.work(1);
                    }
                });
                wg.barrier();
                s /= 2;
            }
            wg.for_each_item(|it| {
                if it.local_id(0) == 0 {
                    it.write(partial, wg.group_id(0), scratch.get(0));
                }
            });
        }),
        // <<< kernel
    )?;

    // bind arguments and launch
    cl_set_kernel_arg_mem(&kernel, 0, &a_mem);
    cl_set_kernel_arg_mem(&kernel, 1, &b_mem);
    cl_set_kernel_arg_mem(&kernel, 2, &partial_mem);
    cl_set_kernel_arg_scalar(&kernel, 3, n as u32);
    cl_enqueue_nd_range_kernel(&queue, &kernel, n_groups * local, local)?;
    cl_finish(&queue);

    // download the partial sums and finish on the host
    let mut partials = vec![0.0f32; n_groups];
    cl_enqueue_read_buffer(&queue, &partial_mem, &mut partials)?;
    Ok(partials.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vgpu::{DeviceSpec, PlatformConfig};

    #[test]
    fn opencl_dot_matches_host_math() {
        let platform = Platform::new(
            PlatformConfig::default()
                .spec(DeviceSpec::tiny())
                .cache_tag("bench-dot-test"),
        );
        let a: Vec<f32> = (0..1000).map(|i| (i % 7) as f32).collect();
        let b: Vec<f32> = (0..1000).map(|i| (i % 3) as f32).collect();
        let want: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = dot_product(&platform, &a, &b).unwrap();
        assert!((got - want).abs() < want.abs() * 1e-5);
    }
}
