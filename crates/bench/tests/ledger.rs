//! End-to-end pin of the perf-ledger contract: `write_fig` produces a
//! parseable schema-versioned `BENCH_*.json`, and the `benchdiff` binary
//! honours its documented exit codes (0 within threshold / 1 regression
//! or coverage loss / 2 usage-IO-parse error) against real files.

use skelcl_bench::ledger::{
    config_from_label, diff_ledgers, record_leg, Ledger, LedgerEntry, LEDGER_SCHEMA_VERSION,
};
use std::path::PathBuf;
use std::process::Command;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("skelcl-ledger-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn entry(label: &str, virtual_s: f64) -> LedgerEntry {
    LedgerEntry {
        label: label.to_string(),
        config: config_from_label(label),
        virtual_s,
        pct_of_peak: 50.0,
        bound: "compute".to_string(),
        latency: None,
    }
}

fn ledger(fig: &str, run_id: &str, legs: Vec<LedgerEntry>) -> Ledger {
    Ledger {
        schema_version: LEDGER_SCHEMA_VERSION,
        fig: fig.to_string(),
        run_id: run_id.to_string(),
        legs,
    }
}

fn write(dir: &std::path::Path, name: &str, l: &Ledger) -> PathBuf {
    let path = dir.join(name);
    std::fs::write(&path, l.to_json()).unwrap();
    path
}

fn benchdiff(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_benchdiff"))
        .args(args)
        .output()
        .expect("benchdiff binary runs");
    (
        out.status.code().expect("benchdiff exits normally"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn benchdiff_exit_codes_match_the_documented_contract() {
    let dir = scratch_dir("exitcodes");
    let base = ledger(
        "fig_demo",
        "seed",
        vec![
            entry("fig_demo alpha 64x64 x1", 1.0),
            entry("fig_demo beta n=3 x2", 2.0),
        ],
    );
    let ok = ledger(
        "fig_demo",
        "head",
        vec![
            // 10% slower: inside the default 20% threshold.
            entry("fig_demo alpha 64x64 x1", 1.1),
            entry("fig_demo beta n=3 x2", 1.9),
        ],
    );
    let regressed = ledger(
        "fig_demo",
        "head",
        vec![
            // 25% slower: an injected regression past the 20% threshold.
            entry("fig_demo alpha 64x64 x1", 1.25),
            entry("fig_demo beta n=3 x2", 2.0),
        ],
    );
    let old_p = write(&dir, "old.json", &base);
    let ok_p = write(&dir, "ok.json", &ok);
    let bad_p = write(&dir, "bad.json", &regressed);

    let (code, stdout, _) = benchdiff(&[old_p.to_str().unwrap(), ok_p.to_str().unwrap()]);
    assert_eq!(code, 0, "within threshold must exit 0:\n{stdout}");
    assert!(stdout.contains("OK: 2 leg(s)"), "{stdout}");

    let (code, stdout, _) = benchdiff(&[old_p.to_str().unwrap(), bad_p.to_str().unwrap()]);
    assert_eq!(code, 1, "injected 25% regression must exit 1:\n{stdout}");
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("FAIL: 1 leg(s)"), "{stdout}");

    // A looser threshold lets the same pair pass.
    let (code, _, _) = benchdiff(&[
        "--threshold",
        "0.30",
        old_p.to_str().unwrap(),
        bad_p.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "25% slowdown passes a 30% threshold");

    // Usage / IO / parse errors all exit 2.
    let (code, _, stderr) = benchdiff(&[old_p.to_str().unwrap()]);
    assert_eq!(code, 2, "missing operand is a usage error");
    assert!(stderr.contains("usage:"), "{stderr}");
    let (code, _, _) = benchdiff(&[old_p.to_str().unwrap(), "/nonexistent/ledger.json"]);
    assert_eq!(code, 2, "unreadable file is an IO error");
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{not json").unwrap();
    let (code, _, _) = benchdiff(&[old_p.to_str().unwrap(), garbage.to_str().unwrap()]);
    assert_eq!(code, 2, "parse failure is an error, not a pass");
}

#[test]
fn vanished_baseline_leg_fails_the_gate() {
    let dir = scratch_dir("vanished");
    let old = ledger("fig_demo", "seed", vec![entry("a", 1.0), entry("b", 1.0)]);
    let new = ledger("fig_demo", "head", vec![entry("a", 1.0)]);
    let old_p = write(&dir, "old.json", &old);
    let new_p = write(&dir, "new.json", &new);
    let (code, stdout, _) = benchdiff(&[old_p.to_str().unwrap(), new_p.to_str().unwrap()]);
    assert_eq!(code, 1, "losing a measured leg must not read as a pass");
    assert!(stdout.contains("MISSING from new ledger"), "{stdout}");
}

#[test]
fn write_fig_persists_recorded_legs_when_dir_is_set() {
    // Env mutation is confined to this one test; the label prefix is
    // unique so parallel tests recording into the shared sink can't leak
    // into the written figure.
    let dir = scratch_dir("writefig");
    record_leg(entry("fig_writetest warm 128x128 x2", 0.125));
    record_leg(entry("fig_writetest/served", 0.25));
    std::env::set_var("SKELCL_LEDGER_DIR", &dir);
    std::env::set_var("SKELCL_RUN_ID", "cafe1234");
    let path = skelcl_bench::ledger::write_fig("fig_writetest").expect("dir set => writes");
    std::env::remove_var("SKELCL_LEDGER_DIR");
    std::env::remove_var("SKELCL_RUN_ID");

    assert_eq!(path, dir.join("BENCH_fig_writetest.json"));
    let loaded = Ledger::load(&path).expect("written ledger parses");
    assert_eq!(loaded.schema_version, LEDGER_SCHEMA_VERSION);
    assert_eq!(loaded.fig, "fig_writetest");
    assert_eq!(loaded.run_id, "cafe1234");
    assert_eq!(loaded.legs.len(), 2);
    assert_eq!(loaded.legs[0].virtual_s, 0.125);
    assert_eq!(
        loaded.legs[0].config,
        vec![
            ("devices".to_string(), "2".to_string()),
            ("shape".to_string(), "128x128".to_string()),
            ("workload".to_string(), "fig_writetest warm".to_string()),
        ]
    );

    // Diffing a ledger against itself is clean at any threshold.
    assert!(!diff_ledgers(&loaded, &loaded, 0.0).failed());
}
