#[test]
fn checked_overlap_leg_does_not_panic() {
    std::env::set_var("SKELCL_CHECK", "1");
    let s = skelcl_bench::overlap_iterate_virtual_s(64, 64, 2, 3, true);
    let s2 = skelcl_bench::overlap_upload_virtual_s(64, 64, 2, true);
    std::env::remove_var("SKELCL_CHECK");
    assert!(s > 0.0 && s2 > 0.0);
}
