//! The overlap legs under skelcheck's online hazard checker, armed
//! through the public per-context API (`*_checked_virtual_s`) instead of
//! process-wide `SKELCL_CHECK` environment mutation. The checker is a
//! host-side happens-before analysis: it must vet every enqueue without
//! perturbing the modeled timeline, so the checked legs' virtual seconds
//! are asserted *identical* to the unchecked legs — a stronger guarantee
//! than the smoke positivity check it replaces.

use skelcl_bench::{
    overlap_iterate_checked_virtual_s, overlap_iterate_virtual_s, overlap_upload_checked_virtual_s,
    overlap_upload_virtual_s,
};

#[test]
fn checked_iterate_leg_runs_and_matches_the_unchecked_timeline() {
    let plain = overlap_iterate_virtual_s(64, 64, 2, 3, true);
    let checked = overlap_iterate_checked_virtual_s(64, 64, 2, 3, true);
    assert!(plain > 0.0);
    assert_eq!(
        checked, plain,
        "the online checker must not perturb modeled time"
    );
}

#[test]
fn checked_upload_leg_runs_and_matches_the_unchecked_timeline() {
    let plain = overlap_upload_virtual_s(64, 64, 2, 16, true);
    let checked = overlap_upload_checked_virtual_s(64, 64, 2, 16, true);
    assert!(plain > 0.0);
    assert_eq!(
        checked, plain,
        "the online checker must not perturb modeled time"
    );
}
