//! AllPairs matrix multiplication: naive vs local-memory tiled, swept over
//! 1 → 4 virtual devices and matrix sizes. Reports virtual (modeled)
//! seconds; at ≥1024² the tiled strategy must beat naive on every device
//! count (asserted below — the dense-linalg acceptance bar).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl::AllPairsStrategy;
use skelcl_bench::allpairs_virtual_s;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Duration;

fn bench_allpairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_allpairs_virtual");
    // One iteration per configuration: virtual-time samples have zero
    // variance, and a 1024³ product simulates ~1G inner-loop steps.
    group.sample_size(1);
    // Virtual seconds per (size, devices, strategy), recorded while the
    // sweep runs so the acceptance check below reuses them instead of
    // recomputing the expensive 1024³ configurations.
    let recorded: RefCell<HashMap<(usize, usize, &str), f64>> = RefCell::new(HashMap::new());
    for size in [256usize, 512, 1024] {
        for devices in [1usize, 2, 4] {
            for (name, strategy) in [
                ("naive", AllPairsStrategy::Naive),
                ("tiled16", AllPairsStrategy::Tiled { tile: 16 }),
            ] {
                group.bench_with_input(
                    BenchmarkId::new(format!("matmul_{name}_{size}"), devices),
                    &devices,
                    |b, &devices| {
                        b.iter_custom(|iters| {
                            let mut total = 0.0;
                            for _ in 0..iters.max(1) {
                                let t = allpairs_virtual_s(size, devices, strategy);
                                recorded.borrow_mut().insert((size, devices, name), t);
                                total += t;
                            }
                            Duration::from_secs_f64(total)
                        })
                    },
                );
            }
        }
    }
    group.finish();

    // The acceptance relation the figure exists to show: local-memory
    // tiling wins the virtual timeline at 1024² on every device count.
    let recorded = recorded.borrow();
    for devices in [1usize, 2, 4] {
        let naive = recorded[&(1024, devices, "naive")];
        let tiled = recorded[&(1024, devices, "tiled16")];
        assert!(
            tiled < naive,
            "tiled ({tiled}s) must beat naive ({naive}s) at 1024^2 on {devices} device(s)"
        );
        println!(
            "fig_allpairs check: 1024^2 x{devices} devices: naive {naive:.4}s, \
             tiled {tiled:.4}s ({:.1}x)",
            naive / tiled
        );
    }
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the plotting
    // backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_allpairs
}
criterion_main!(benches);
