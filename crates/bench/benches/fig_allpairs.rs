//! AllPairs matrix multiplication: naive vs local-memory tiled, swept over
//! 1 → 4 virtual devices and matrix sizes. Reports virtual (modeled)
//! seconds; at ≥1024² the tiled strategy must beat naive on every device
//! count (asserted below — the dense-linalg acceptance bar).

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl::AllPairsStrategy;
use skelcl_bench::{allpairs_virtual_s, VirtualSweep};

fn bench_allpairs(c: &mut Criterion) {
    let sweep = VirtualSweep::new();
    let mut group = VirtualSweep::group(c, "fig_allpairs_virtual");
    for size in [256usize, 512, 1024] {
        for devices in [1usize, 2, 4] {
            for (name, strategy) in [
                ("naive", AllPairsStrategy::Naive),
                ("tiled16", AllPairsStrategy::Tiled { tile: 16 }),
            ] {
                sweep.bench(
                    &mut group,
                    format!("matmul_{name}_{size}"),
                    devices,
                    (size, devices, name),
                    move || allpairs_virtual_s(size, devices, strategy),
                );
            }
        }
    }
    group.finish();

    // The acceptance relation the figure exists to show: local-memory
    // tiling wins the virtual timeline at 1024² on every device count.
    for devices in [1usize, 2, 4] {
        let naive = sweep.get((1024, devices, "naive"));
        let tiled = sweep.get((1024, devices, "tiled16"));
        assert!(
            tiled < naive,
            "tiled ({tiled}s) must beat naive ({naive}s) at 1024^2 on {devices} device(s)"
        );
        println!(
            "fig_allpairs check: 1024^2 x{devices} devices: naive {naive:.4}s, \
             tiled {tiled:.4}s ({:.1}x)",
            naive / tiled
        );
    }

    // Perf ledger: persist this figure's measured legs when
    // SKELCL_LEDGER_DIR is set (see skelcl_bench::ledger).
    skelcl_bench::ledger::write_fig("fig_allpairs");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the plotting
    // backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_allpairs
}
criterion_main!(benches);
