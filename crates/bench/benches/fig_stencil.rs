//! Multi-GPU scaling of the Stencil2D image pipeline (Gaussian blur →
//! Sobel gradient) over a row-block-distributed matrix with halo exchange.
//! Sweeps 1 → 4 virtual devices; reports virtual (modeled) seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl_bench::stencil_scaling_virtual_s;
use std::time::Duration;

fn bench_stencil_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_stencil_virtual");
    group.sample_size(10);
    let (rows, cols) = (1024usize, 1024usize);
    for devices in [1usize, 2, 3, 4] {
        group.bench_with_input(
            BenchmarkId::new("gauss_sobel_rowblock", devices),
            &devices,
            |b, &devices| {
                b.iter_custom(|iters| {
                    let mut total = 0.0;
                    for _ in 0..iters {
                        total += stencil_scaling_virtual_s(rows, cols, devices);
                    }
                    Duration::from_secs_f64(total)
                })
            },
        );
    }
    group.finish();

    // Perf ledger: persist this figure's measured legs when
    // SKELCL_LEDGER_DIR is set (see skelcl_bench::ledger).
    skelcl_bench::ledger::write_fig("fig_stencil");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the
    // plotting backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_stencil_scaling
}
criterion_main!(benches);
