//! Criterion bench regenerating Figure 2's runtime comparison
//! (virtual seconds; reduced problem size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl_bench::{figure_platform, osem_bench_params, time_virtual};
use skelcl_osem::{cuda_impl, opencl_impl, skelcl_impl};
use std::time::Duration;

fn bench_fig2(c: &mut Criterion) {
    let params = osem_bench_params();
    let subsets = params.generate_subsets();
    let vol = params.volume;

    let mut group = c.benchmark_group("fig2_osem_virtual");
    group.sample_size(10);

    for n_gpus in [1usize, 2, 4] {
        let platform = figure_platform(n_gpus);
        let ctx = skelcl::Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
        skelcl_impl::reconstruct(&ctx, &vol, &subsets[..1]).unwrap();
        opencl_impl::reconstruct(&platform, &vol, &subsets[..1]).unwrap();
        cuda_impl::reconstruct(&platform, &vol, &subsets[..1]).unwrap();

        group.bench_with_input(BenchmarkId::new("skelcl", n_gpus), &n_gpus, |b, _| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        skelcl_impl::reconstruct(&ctx, &vol, &subsets).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("opencl", n_gpus), &n_gpus, |b, _| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        opencl_impl::reconstruct(&platform, &vol, &subsets).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("cuda", n_gpus), &n_gpus, |b, _| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        cuda_impl::reconstruct(&platform, &vol, &subsets).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
    }
    group.finish();

    // Perf ledger: persist this figure's measured legs when
    // SKELCL_LEDGER_DIR is set (see skelcl_bench::ledger).
    skelcl_bench::ledger::write_fig("fig2");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the
    // plotting backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_fig2
}
criterion_main!(benches);
