//! Pipeline-fusion figure: the lazy-`Pipeline` canny label chain
//! (gauss → sobel → non-maximum suppression → double threshold), fused
//! into three stencil launches with zero intermediate matrices, vs the
//! unfused six-skeleton chain with five materialised intermediates —
//! swept over image sizes and 1 → 4 virtual devices. Reports virtual
//! (modeled) seconds with `RunReport` % of modeled-peak lines; both paths
//! are bit-identical (imgproc tests + `prop_fusion`). The fused chain must
//! win by at least 1.3× everywhere (asserted below — the fusion
//! acceptance bar).

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl_bench::{canny_virtual_s, VirtualSweep};

fn bench_fusion(c: &mut Criterion) {
    let sweep = VirtualSweep::new();
    let mut group = VirtualSweep::group(c, "fig_fusion_virtual");
    for (rows, cols) in [(256usize, 256usize), (384, 384), (512, 512)] {
        for devices in [1usize, 2, 4] {
            for (name, fused) in [("unfused", false), ("fused", true)] {
                sweep.bench(
                    &mut group,
                    format!("canny_{name}_{rows}x{cols}"),
                    devices,
                    (rows, devices, name),
                    move || canny_virtual_s(rows, cols, devices, fused),
                );
            }
        }
    }
    group.finish();

    // The acceptance relation the figure exists to show: fusing the
    // elementwise stages into the stencil kernels and eliding every
    // intermediate matrix beats the launch-per-skeleton chain by ≥ 1.3×
    // at every swept size and device count.
    for (rows, cols) in [(256usize, 256usize), (384, 384), (512, 512)] {
        for devices in [1usize, 2, 4] {
            let unfused = sweep.get((rows, devices, "unfused"));
            let fused = sweep.get((rows, devices, "fused"));
            let speedup = unfused / fused;
            assert!(
                speedup >= 1.3,
                "fused canny ({fused}s) must beat the unfused chain ({unfused}s) \
                 by >= 1.3x at {rows}x{cols} on {devices} device(s), got {speedup:.3}x"
            );
            println!(
                "fig_fusion check: {rows}x{cols} x{devices} device(s): unfused {unfused:.6}s, \
                 fused {fused:.6}s ({speedup:.3}x)"
            );
        }
    }

    // Perf ledger: persist this figure's measured legs when
    // SKELCL_LEDGER_DIR is set (see skelcl_bench::ledger).
    skelcl_bench::ledger::write_fig("fig_fusion");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the plotting
    // backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_fusion
}
criterion_main!(benches);
