//! Criterion bench for the kernel binary cache (paper Section III-B):
//! building a skeleton program from source vs loading the cached binary.
//! This one measures *wall* time — the simulated compile performs real
//! deterministic work, so the ≥5x claim is observable on the host clock
//! too (the modeled virtual costs are asserted in the test suite).

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl_bench::representative_program;
use std::sync::Arc;
use vgpu::{DriverProfile, KernelBody, Platform, PlatformConfig, WorkGroup};

fn bench_cache(c: &mut Criterion) {
    let platform = Platform::new(PlatformConfig::default().cache_tag("bench-kernel-cache"));
    let queue = platform.queue(0, DriverProfile::opencl());
    let program = representative_program();
    let body: KernelBody = Arc::new(|_wg: &WorkGroup| {});

    let mut group = c.benchmark_group("kernel_cache_wall");

    group.bench_function("build_from_source", |b| {
        b.iter(|| {
            platform.compiler().clear_cache().unwrap();
            let (k, outcome) = queue.build_kernel_traced(&program, body.clone()).unwrap();
            assert!(!outcome.from_cache);
            k
        })
    });

    // Populate once, then measure pure cache loads.
    platform.compiler().clear_cache().unwrap();
    queue.build_kernel_traced(&program, body.clone()).unwrap();
    group.bench_function("load_from_cache", |b| {
        b.iter(|| {
            let (k, outcome) = queue.build_kernel_traced(&program, body.clone()).unwrap();
            assert!(outcome.from_cache);
            k
        })
    });
    group.finish();

    platform.compiler().clear_cache().unwrap();
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the
    // plotting backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_cache
}
criterion_main!(benches);
