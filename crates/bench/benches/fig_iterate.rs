//! Iterative stencil workloads: `Stencil2D::iterate(n)`'s batched halo
//! exchange vs `n` chained `apply` calls, swept over n ∈ {1, 10, 100}
//! iterations and 1 → 4 virtual devices on the Jacobi heat-relaxation
//! stencil. Reports virtual (modeled) seconds; on multiple devices at
//! n ≥ 10 the batched schedule must win (asserted below — the iterative
//! acceptance bar).

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl_bench::{stencil_iterate_virtual_s, VirtualSweep};

fn bench_iterate(c: &mut Criterion) {
    let sweep = VirtualSweep::new();
    let mut group = VirtualSweep::group(c, "fig_iterate_virtual");
    let (rows, cols) = (1024usize, 1024usize);
    for n in [1usize, 10, 100] {
        for devices in [1usize, 2, 3, 4] {
            for (name, batched) in [("chained_apply", false), ("batched_iterate", true)] {
                sweep.bench(
                    &mut group,
                    format!("heat_{name}_n{n}"),
                    devices,
                    (n, devices, name),
                    || stencil_iterate_virtual_s(rows, cols, devices, n, batched),
                );
            }
        }
    }
    group.finish();

    // The acceptance relation the figure exists to show: the batched
    // per-iteration exchange beats the per-apply exchange in the virtual
    // timeline wherever exchanges happen at all (2+ devices), and never
    // loses elsewhere.
    for n in [1usize, 10, 100] {
        for devices in [1usize, 2, 3, 4] {
            let chained = sweep.get((n, devices, "chained_apply"));
            let batched = sweep.get((n, devices, "batched_iterate"));
            assert!(
                batched <= chained,
                "batched iterate ({batched}s) must never lose to chained applies \
                 ({chained}s) at n={n} x{devices} device(s)"
            );
            if devices >= 2 && n >= 10 {
                assert!(
                    batched < chained,
                    "batched iterate ({batched}s) must strictly beat chained applies \
                     ({chained}s) at n={n} x{devices} device(s)"
                );
            }
            println!(
                "fig_iterate check: n={n} x{devices} device(s): chained {chained:.6}s, \
                 batched {batched:.6}s ({:.3}x)",
                chained / batched
            );
        }
    }

    // Perf ledger: persist this figure's measured legs when
    // SKELCL_LEDGER_DIR is set (see skelcl_bench::ledger).
    skelcl_bench::ledger::write_fig("fig_iterate");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the plotting
    // backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_iterate
}
criterion_main!(benches);
