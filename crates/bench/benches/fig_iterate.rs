//! Iterative stencil workloads: `Stencil2D::iterate(n)`'s batched halo
//! exchange vs `n` chained `apply` calls, swept over n ∈ {1, 10, 100}
//! iterations and 1 → 4 virtual devices on the Jacobi heat-relaxation
//! stencil. Reports virtual (modeled) seconds; on multiple devices at
//! n ≥ 10 the batched schedule must win (asserted below — the iterative
//! acceptance bar).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl_bench::stencil_iterate_virtual_s;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Duration;

fn bench_iterate(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig_iterate_virtual");
    // Virtual-time samples have zero variance; one iteration per config.
    group.sample_size(1);
    let (rows, cols) = (1024usize, 1024usize);
    // Virtual seconds per (n, devices, schedule), recorded while the sweep
    // runs so the acceptance check reuses them instead of recomputing.
    let recorded: RefCell<HashMap<(usize, usize, &str), f64>> = RefCell::new(HashMap::new());
    for n in [1usize, 10, 100] {
        for devices in [1usize, 2, 3, 4] {
            for (name, batched) in [("chained_apply", false), ("batched_iterate", true)] {
                group.bench_with_input(
                    BenchmarkId::new(format!("heat_{name}_n{n}"), devices),
                    &devices,
                    |b, &devices| {
                        b.iter_custom(|iters| {
                            let mut total = 0.0;
                            for _ in 0..iters.max(1) {
                                let t = stencil_iterate_virtual_s(rows, cols, devices, n, batched);
                                recorded.borrow_mut().insert((n, devices, name), t);
                                total += t;
                            }
                            Duration::from_secs_f64(total)
                        })
                    },
                );
            }
        }
    }
    group.finish();

    // The acceptance relation the figure exists to show: the batched
    // per-iteration exchange beats the per-apply exchange in the virtual
    // timeline wherever exchanges happen at all (2+ devices), and never
    // loses elsewhere.
    let recorded = recorded.borrow();
    for n in [1usize, 10, 100] {
        for devices in [1usize, 2, 3, 4] {
            let chained = recorded[&(n, devices, "chained_apply")];
            let batched = recorded[&(n, devices, "batched_iterate")];
            assert!(
                batched <= chained,
                "batched iterate ({batched}s) must never lose to chained applies \
                 ({chained}s) at n={n} x{devices} device(s)"
            );
            if devices >= 2 && n >= 10 {
                assert!(
                    batched < chained,
                    "batched iterate ({batched}s) must strictly beat chained applies \
                     ({chained}s) at n={n} x{devices} device(s)"
                );
            }
            println!(
                "fig_iterate check: n={n} x{devices} device(s): chained {chained:.6}s, \
                 batched {batched:.6}s ({:.3}x)",
                chained / batched
            );
        }
    }
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the plotting
    // backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_iterate
}
criterion_main!(benches);
