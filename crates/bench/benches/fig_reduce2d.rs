//! 2D reduction workloads: the device-resident 1-NN pipeline (distance
//! matrix + `ReduceRowsArg` per-query argmin, two length-`q` downloads)
//! vs the download-and-host-argmin baseline (the whole `q×p` distance
//! matrix crosses PCIe), swept over problem sizes and 1 → 4 virtual
//! devices. Reports virtual (modeled) seconds; the device-side schedule
//! must win wherever the matrix download dominates (asserted below — the
//! reduce2d acceptance bar). Both paths are bit-identical (linalg tests).

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl_bench::{nn_virtual_s, VirtualSweep};

fn bench_reduce2d(c: &mut Criterion) {
    let sweep = VirtualSweep::new();
    let mut group = VirtualSweep::group(c, "fig_reduce2d_virtual");
    let dim = 16usize;
    for size in [512usize, 768, 1024] {
        for devices in [1usize, 2, 3, 4] {
            for (name, device_side) in [("host_argmin", false), ("device_argmin", true)] {
                sweep.bench(
                    &mut group,
                    format!("nn_{name}_{size}"),
                    devices,
                    (size, devices, name),
                    move || nn_virtual_s(size, size, dim, devices, device_side),
                );
            }
        }
    }
    group.finish();

    // The acceptance relation the figure exists to show: keeping the
    // distance matrix on the devices beats downloading it for the host
    // argmin, at every swept size and device count.
    for size in [512usize, 768, 1024] {
        for devices in [1usize, 2, 3, 4] {
            let host = sweep.get((size, devices, "host_argmin"));
            let device = sweep.get((size, devices, "device_argmin"));
            assert!(
                device < host,
                "device-side 1-NN ({device}s) must beat download-and-host-argmin \
                 ({host}s) at {size}x{size} on {devices} device(s)"
            );
            println!(
                "fig_reduce2d check: {size}x{size} x{devices} device(s): host {host:.6}s, \
                 device {device:.6}s ({:.3}x)",
                host / device
            );
        }
    }

    // Perf ledger: persist this figure's measured legs when
    // SKELCL_LEDGER_DIR is set (see skelcl_bench::ledger).
    skelcl_bench::ledger::write_fig("fig_reduce2d");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the plotting
    // backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_reduce2d
}
criterion_main!(benches);
