//! Criterion bench regenerating Figure 1's runtime comparison.
//!
//! `iter_custom` reports **virtual** (modeled) seconds, so results are
//! independent of the host machine — exactly what the cost model produces.

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl_bench::{figure_platform, time_virtual};
use skelcl_mandel::{cuda_impl, opencl_impl, skelcl_impl, MandelParams};
use std::time::Duration;

fn params() -> MandelParams {
    // Small enough for quick Criterion runs; ratios are scale-stable.
    MandelParams {
        width: 256,
        height: 192,
        max_iter: 1024,
        ..MandelParams::default()
    }
}

fn bench_fig1(c: &mut Criterion) {
    let p = params();
    let platform = figure_platform(1);
    let ctx = skelcl::Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);

    // Warm builds so the binary cache isn't measured here (see the
    // kernel_cache bench for that).
    skelcl_impl::run(&ctx, &p).unwrap();
    opencl_impl::run(&platform, &p).unwrap();
    cuda_impl::run(&platform, &p).unwrap();

    let mut group = c.benchmark_group("fig1_mandelbrot_virtual");
    group.sample_size(10);

    group.bench_function("skelcl", |b| {
        b.iter_custom(|iters| {
            let mut total = 0.0;
            for _ in 0..iters {
                total += time_virtual(&platform, || {
                    skelcl_impl::run(&ctx, &p).unwrap();
                });
            }
            Duration::from_secs_f64(total)
        })
    });
    group.bench_function("opencl", |b| {
        b.iter_custom(|iters| {
            let mut total = 0.0;
            for _ in 0..iters {
                total += time_virtual(&platform, || {
                    opencl_impl::run(&platform, &p).unwrap();
                });
            }
            Duration::from_secs_f64(total)
        })
    });
    group.bench_function("cuda", |b| {
        b.iter_custom(|iters| {
            let mut total = 0.0;
            for _ in 0..iters {
                total += time_virtual(&platform, || {
                    cuda_impl::run(&platform, &p).unwrap();
                });
            }
            Duration::from_secs_f64(total)
        })
    });
    group.finish();

    // Perf ledger: persist this figure's measured legs when
    // SKELCL_LEDGER_DIR is set (see skelcl_bench::ledger).
    skelcl_bench::ledger::write_fig("fig1");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the
    // plotting backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_fig1
}
criterion_main!(benches);
