//! The async-overlap figure: what the multi-queue subsystem buys on the
//! two rebuilt hot paths.
//!
//! * **Iterate leg** — `Stencil2D::iterate` (interior/boundary split, halo
//!   exchange on the copy stream under the interior kernels) vs the serial
//!   schedule (`iterate_serial`), heat relaxation at 1024², n ∈ {10, 100}
//!   × 1/2/4 devices. The overlapped schedule must never lose, and at
//!   n=100 × 4 devices it must win ≥ 1.2× (the acceptance bar).
//! * **Upload leg** — `Stencil2D::apply_streamed` (row-chunked upload on
//!   the copy stream, banded kernels overlapping it) vs the blocking
//!   upload + single kernel, 5×5 box stencil at 1024² × 1/2/4 devices.
//!   Streamed must beat blocking at every device count.
//!
//! Both legs are bit-identical to their serial twins — re-verified below
//! across 1/2/4 devices on top of the `prop_overlap` suite — so the figure
//! isolates the modeled-timeline difference. Reports virtual seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl::{Matrix, MatrixDistribution};
use skelcl_bench::{
    ledger, overlap_copy_busy_during_kernels_s, overlap_iterate_checked_virtual_s,
    overlap_iterate_virtual_s, overlap_upload_virtual_s, upload_stencil, VirtualSweep,
};

/// Overlapped results must equal serial results bit for bit on every
/// device count — the figure compares schedules, not computations.
fn assert_bit_identity() {
    for devices in [1usize, 2, 4] {
        let ctx = skelcl::Context::new(
            skelcl::ContextConfig::default()
                .devices(devices)
                .cache_tag("fig-overlap-identity"),
        );
        let (rows, cols) = (96usize, 64usize);
        let data = skelcl_iterative::heat_plate(rows, cols);
        let st = skelcl_iterative::skelcl_impl::heat_skeleton();
        let mk = || {
            let m = Matrix::from_vec(&ctx, rows, cols, data.clone());
            m.set_distribution(MatrixDistribution::RowBlock { halo: 1 })
                .unwrap();
            m
        };
        let serial = st.iterate_serial(&mk(), 10).unwrap().to_vec().unwrap();
        let overlapped = st.iterate(&mk(), 10).unwrap().to_vec().unwrap();
        assert_eq!(
            overlapped.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "overlapped iterate diverged on {devices} device(s)"
        );

        let box5 = upload_stencil();
        let blocking = box5.apply(&mk()).unwrap().to_vec().unwrap();
        let streamed = box5.apply_streamed(&mk(), 16).unwrap().to_vec().unwrap();
        assert_eq!(
            streamed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            blocking.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "streamed upload diverged on {devices} device(s)"
        );
    }
}

fn bench_overlap(c: &mut Criterion) {
    assert_bit_identity();

    let sweep = VirtualSweep::new();
    let mut group = VirtualSweep::group(c, "fig_overlap_virtual");
    let (rows, cols) = (1024usize, 1024usize);
    let chunk_rows = 64usize;

    for n in [10usize, 100] {
        for devices in [1usize, 2, 4] {
            for (name, overlapped) in [("serial_iterate", false), ("overlapped_iterate", true)] {
                sweep.bench(
                    &mut group,
                    format!("heat_{name}_n{n}"),
                    devices,
                    (n, devices, name),
                    || overlap_iterate_virtual_s(rows, cols, devices, n, overlapped),
                );
            }
        }
    }
    for devices in [1usize, 2, 4] {
        for (name, streamed) in [("blocking_upload", false), ("streamed_upload", true)] {
            sweep.bench(
                &mut group,
                format!("box5_{name}_{rows}"),
                devices,
                (rows, devices, name),
                || overlap_upload_virtual_s(rows, cols, devices, chunk_rows, streamed),
            );
        }
    }
    group.finish();

    // The acceptance relations the figure exists to show.
    for n in [10usize, 100] {
        for devices in [1usize, 2, 4] {
            let serial = sweep.get((n, devices, "serial_iterate"));
            let overlapped = sweep.get((n, devices, "overlapped_iterate"));
            assert!(
                overlapped <= serial + 1e-12,
                "overlapped iterate ({overlapped}s) must never lose to serial \
                 ({serial}s) at n={n} x{devices} device(s)"
            );
            if n == 100 && devices == 4 {
                assert!(
                    serial / overlapped >= 1.2,
                    "overlap win {:.3}x below the 1.2x bar at n=100 x4 devices",
                    serial / overlapped
                );
            }
            println!(
                "fig_overlap check: iterate n={n} x{devices} device(s): serial {serial:.6}s, \
                 overlapped {overlapped:.6}s ({:.3}x)",
                serial / overlapped
            );
        }
    }
    // The copies-under-kernels claim, from engine-utilization metrics:
    // during the overlapped schedule the copy engines must be busy while
    // the same device's compute engine is — strictly positive overlap.
    let copy_under_kernels = overlap_copy_busy_during_kernels_s(rows, cols, 4, 100);
    assert!(
        copy_under_kernels > 0.0,
        "overlapped iterate shows no copy-engine busy time under kernels"
    );
    println!(
        "fig_overlap check: copy-engine busy under kernels at n=100 x4 device(s): \
         {copy_under_kernels:.6}s"
    );

    for devices in [1usize, 2, 4] {
        let blocking = sweep.get((rows, devices, "blocking_upload"));
        let streamed = sweep.get((rows, devices, "streamed_upload"));
        assert!(
            streamed < blocking,
            "streamed upload ({streamed}s) must beat blocking ({blocking}s) \
             at {rows}x{cols} on {devices} device(s)"
        );
        println!(
            "fig_overlap check: upload {rows}x{cols} x{devices} device(s): blocking \
             {blocking:.6}s, streamed {streamed:.6}s ({:.3}x)",
            blocking / streamed
        );
    }

    // The online hazard checker prices every enqueue through the
    // incremental happens-before graph; measure its wall-clock cost on
    // the heaviest leg (n=100 × 4 devices). The hard budget is 2× — the
    // assert guards against algorithmic blowups in the checker, while
    // percent-level drift on a shared runner is noise (the deterministic
    // guarantee that checking never perturbs *modeled* time lives in
    // tests/checked_legs.rs, which asserts exact equality). The checked
    // leg arms the checker through the public per-context API
    // (`overlap_iterate_checked_virtual_s`) rather than mutating the
    // process environment under a possibly-threaded harness.
    let wall = |checked: bool| {
        let t0 = std::time::Instant::now();
        if checked {
            overlap_iterate_checked_virtual_s(rows, cols, 4, 100, true);
        } else {
            overlap_iterate_virtual_s(rows, cols, 4, 100, true);
        }
        t0.elapsed().as_secs_f64()
    };
    // Interleave the repetitions so ambient machine load drifts both
    // minima equally instead of biasing whichever side ran last.
    let mut unchecked_s = f64::INFINITY;
    let mut checked_s = f64::INFINITY;
    for _ in 0..3 {
        unchecked_s = unchecked_s.min(wall(false));
        checked_s = checked_s.min(wall(true));
    }
    println!(
        "fig_overlap check: online hazard checker overhead at n=100 x4 device(s): \
         {:+.1}% wall-clock (unchecked {unchecked_s:.3}s, checked {checked_s:.3}s)",
        100.0 * (checked_s / unchecked_s - 1.0)
    );
    assert!(
        checked_s <= unchecked_s * 2.0,
        "online checker overhead {:.1}% exceeds the 2x wall-clock budget \
         (algorithmic regression in the checker?)",
        100.0 * (checked_s / unchecked_s - 1.0)
    );

    // Perf ledger: when SKELCL_LEDGER_DIR is set, persist every measured
    // leg of this figure as BENCH_fig_overlap.json for the CI gate.
    ledger::write_fig("fig_overlap");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the plotting
    // backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_overlap
}
criterion_main!(benches);
