//! Criterion bench for lazy copying (paper Section III-A): the chained
//! dot product with the intermediate kept on the device vs a forced host
//! round trip (virtual seconds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl::{Context, Reduce, Vector, Zip};
use skelcl_bench::{figure_platform, time_virtual};
use std::time::Duration;

fn bench_lazy(c: &mut Criterion) {
    let platform = figure_platform(1);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);
    let mult = Zip::new(skelcl::skel_fn!(
        fn mult(x: f32, y: f32) -> f32 {
            x * y
        }
    ));
    let sum = Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );

    let mut group = c.benchmark_group("lazy_copy_virtual");
    group.sample_size(10);
    for pow in [16usize, 20] {
        let n = 1usize << pow;
        let a_data: Vec<f32> = (0..n).map(|i| (i % 17) as f32).collect();
        let b_data: Vec<f32> = (0..n).map(|i| (i % 5) as f32).collect();
        // Warm builds.
        {
            let a = Vector::from_slice(&ctx, &a_data);
            let b = Vector::from_slice(&ctx, &b_data);
            sum.apply(&mult.apply(&a, &b).unwrap()).unwrap();
        }

        group.bench_with_input(BenchmarkId::new("lazy_chain", n), &n, |bench, _| {
            bench.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        let a = Vector::from_slice(&ctx, &a_data);
                        let b = Vector::from_slice(&ctx, &b_data);
                        let ab = mult.apply(&a, &b).unwrap();
                        sum.apply(&ab).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("eager_roundtrip", n), &n, |bench, _| {
            bench.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        let a = Vector::from_slice(&ctx, &a_data);
                        let b = Vector::from_slice(&ctx, &b_data);
                        let ab = mult.apply(&a, &b).unwrap();
                        let host = ab.to_vec().unwrap();
                        let ab2 = Vector::from_vec(&ctx, host);
                        sum.apply(&ab2).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the
    // plotting backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_lazy
}
criterion_main!(benches);
