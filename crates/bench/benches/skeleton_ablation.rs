//! Ablation benches (experiment E9): the design choices the paper calls
//! out for Reduce ("saves the intermediate results in the device's fast
//! local memory") and Scan ("tries to avoid memory bank conflicts") against
//! their naive counterparts. Virtual seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl::{ReduceStrategy, ScanStrategy};
use skelcl_bench::{reduce_virtual_s, scan_virtual_s};
use std::time::Duration;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("skeleton_ablation_virtual");
    group.sample_size(10);

    for pow in [18usize, 21] {
        let n = 1usize << pow;
        group.bench_with_input(BenchmarkId::new("reduce_local_tree", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += reduce_virtual_s(n, ReduceStrategy::LocalTree);
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("reduce_global_naive", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += reduce_virtual_s(n, ReduceStrategy::GlobalNaive);
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("scan_bank_aware", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += scan_virtual_s(n, ScanStrategy::BankAware);
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("scan_conflicting", n), &n, |b, &n| {
            b.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += scan_virtual_s(n, ScanStrategy::Conflicting);
                }
                Duration::from_secs_f64(total)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the
    // plotting backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_ablation
}
criterion_main!(benches);
