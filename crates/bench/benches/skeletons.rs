//! Throughput of the four basic skeletons across input sizes (virtual
//! seconds on one device) — the library-level microbenchmark suite.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use skelcl::{Context, Map, Reduce, Scan, Vector, Zip};
use skelcl_bench::{figure_platform, time_virtual};
use std::time::Duration;

fn bench_skeletons(c: &mut Criterion) {
    let platform = figure_platform(1);
    let ctx = Context::from_platform(platform.clone(), skelcl::DEFAULT_WORK_GROUP);

    let map = Map::new(skelcl::skel_fn!(
        fn square(x: f32) -> f32 {
            x * x
        }
    ));
    let zip = Zip::new(skelcl::skel_fn!(
        fn mult(x: f32, y: f32) -> f32 {
            x * y
        }
    ));
    let reduce = Reduce::new(
        skelcl::skel_fn!(
            fn sum(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );
    let scan = Scan::new(
        skelcl::skel_fn!(
            fn sum2(x: f32, y: f32) -> f32 {
                x + y
            }
        ),
        0.0,
    );

    let mut group = c.benchmark_group("skeletons_virtual");
    group.sample_size(10);
    for pow in [16usize, 20] {
        let n = 1usize << pow;
        group.throughput(Throughput::Elements(n as u64));
        let data: Vec<f32> = (0..n).map(|i| (i % 9) as f32).collect();
        let a = Vector::from_slice(&ctx, &data);
        let b = Vector::from_slice(&ctx, &data);
        a.ensure_on_devices().unwrap();
        b.ensure_on_devices().unwrap();
        // Warm program builds.
        map.apply(&a).unwrap();
        zip.apply(&a, &b).unwrap();
        reduce.apply(&a).unwrap();
        scan.apply(&a).unwrap();

        group.bench_with_input(BenchmarkId::new("map", n), &n, |bench, _| {
            bench.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        map.apply(&a).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("zip", n), &n, |bench, _| {
            bench.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        zip.apply(&a, &b).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("reduce", n), &n, |bench, _| {
            bench.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        reduce.apply(&a).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |bench, _| {
            bench.iter_custom(|iters| {
                let mut total = 0.0;
                for _ in 0..iters {
                    total += time_virtual(&platform, || {
                        scan.apply(&a).unwrap();
                    });
                }
                Duration::from_secs_f64(total)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the
    // plotting backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_skeletons
}
criterion_main!(benches);
