//! Multi-GPU scaling of the skeletons over block-distributed vectors
//! (experiment E10; the paper's Section III-D machinery). Virtual seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skelcl_bench::map_scaling_virtual_s;
use std::time::Duration;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_gpu_map_virtual");
    group.sample_size(10);
    let n = 1usize << 22;
    for devices in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("block_map", devices),
            &devices,
            |b, &devices| {
                b.iter_custom(|iters| {
                    let mut total = 0.0;
                    for _ in 0..iters {
                        total += map_scaling_virtual_s(n, devices);
                    }
                    Duration::from_secs_f64(total)
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the
    // plotting backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_scaling
}
criterion_main!(benches);
