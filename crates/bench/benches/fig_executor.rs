//! The executor-service figure: what the multi-tenant layer buys — and
//! costs — when 10³ synthetic clients share four devices.
//!
//! * **Throughput leg** — 16 tenants × 64 jobs = 1024 concurrent client
//!   submissions of small per-client `a·x + b` kernels, dispatched with
//!   batch coalescing (`max_batch` 16) vs without (`max_batch` 1) on
//!   otherwise identical executors. Coalescing must win on jobs/sec, and
//!   both dispatch modes must return outputs bit-identical to each other
//!   and to serial single-job execution.
//! * **Fairness leg** — one device, a saturating tenant pre-loads 256
//!   large jobs ahead of three polite tenants' 16 small jobs each (the
//!   worst arrival order for FIFO). Weighted round-robin must keep the
//!   polite tenants' p99 latency a small multiple of a service time while
//!   FIFO makes them wait out the flood — the saturating tenant cannot
//!   starve others.
//!
//! Each measured run prints a `RunReport` summary line (utilization,
//! % of modeled peak, p50/p99 latency). Reports virtual seconds.

use criterion::{criterion_group, criterion_main, Criterion};
use skelcl_bench::{
    executor_client_job, run_executor_fairness_leg, run_executor_throughput_leg, ExecutorLeg,
    VirtualSweep,
};
use skelcl_executor::{run_job, JobOutput, SchedulingMode};
use std::cell::RefCell;
use std::collections::HashMap;

const DEVICES: usize = 4;
const TENANTS: usize = 16;
const JOBS_PER_TENANT: usize = 64;

fn bits(out: &JobOutput) -> Vec<u32> {
    match out {
        JobOutput::Scalar(s) => vec![s.to_bits()],
        JobOutput::Vector(v) => v.iter().map(|x| x.to_bits()).collect(),
        JobOutput::Matrix { data, .. } => data.iter().map(|x| x.to_bits()).collect(),
    }
}

/// Every job of the throughput workload, re-run alone on a private
/// context, must match the served output bit for bit.
fn assert_serial_bit_identity(leg: &ExecutorLeg) {
    let ctx = skelcl::Context::new(
        skelcl::ContextConfig::default()
            .devices(DEVICES)
            .cache_tag("fig-executor-serial"),
    );
    let mut i = 0;
    for j in 0..JOBS_PER_TENANT {
        for t in 0..TENANTS {
            let job = executor_client_job(t, j, 512);
            let (expect, _) = run_job(&ctx, t % DEVICES, &job).unwrap();
            assert_eq!(
                bits(&leg.outputs[i]),
                bits(&expect),
                "served output for client {t} job {j} diverged from serial execution"
            );
            i += 1;
        }
    }
}

fn bench_executor(c: &mut Criterion) {
    let sweep = VirtualSweep::new();
    let legs: RefCell<HashMap<&'static str, ExecutorLeg>> = RefCell::new(HashMap::new());
    let mut group = VirtualSweep::group(c, "fig_executor_virtual");

    for (name, coalesced) in [("uncoalesced", false), ("coalesced", true)] {
        sweep.bench(
            &mut group,
            format!("serve_{TENANTS}x{JOBS_PER_TENANT}_{name}"),
            DEVICES,
            (TENANTS * JOBS_PER_TENANT, DEVICES, name),
            || {
                let leg = run_executor_throughput_leg(DEVICES, TENANTS, JOBS_PER_TENANT, coalesced);
                let makespan = leg.makespan_s;
                legs.borrow_mut().insert(name, leg);
                makespan
            },
        );
    }
    for (name, mode) in [
        ("fifo", SchedulingMode::Fifo),
        ("wrr", SchedulingMode::WeightedRoundRobin),
    ] {
        sweep.bench(
            &mut group,
            format!("fairness_polite_p99_{name}"),
            1,
            (256, 1, name),
            || run_executor_fairness_leg(mode).polite_p99_s,
        );
    }
    group.finish();

    // --- acceptance: coalescing wins on throughput -----------------------
    let legs = legs.into_inner();
    let (unc, coa) = (&legs["uncoalesced"], &legs["coalesced"]);
    let n_jobs = TENANTS * JOBS_PER_TENANT;
    assert!(
        coa.jobs_per_s > unc.jobs_per_s,
        "coalescing must raise throughput: {:.1} vs {:.1} jobs/s",
        coa.jobs_per_s,
        unc.jobs_per_s
    );
    assert!(
        coa.batches < unc.batches,
        "coalescing must reduce launches: {} vs {} batches for {n_jobs} jobs",
        coa.batches,
        unc.batches
    );
    assert_eq!(
        unc.batches as usize, n_jobs,
        "max_batch=1 launches every job alone"
    );
    println!(
        "fig_executor check: {n_jobs} jobs x{DEVICES} device(s): uncoalesced {:.1} jobs/s \
         (p99 {:.3e} s), coalesced {:.1} jobs/s (p99 {:.3e} s), {:.2}x throughput in {} launches",
        unc.jobs_per_s,
        unc.latency.p99.unwrap_or(0.0),
        coa.jobs_per_s,
        coa.latency.p99.unwrap_or(0.0),
        coa.jobs_per_s / unc.jobs_per_s,
        coa.batches,
    );

    // --- acceptance: serving is bit-transparent --------------------------
    assert_eq!(coa.outputs.len(), n_jobs);
    assert_eq!(unc.outputs.len(), n_jobs);
    for (i, (a, b)) in coa.outputs.iter().zip(&unc.outputs).enumerate() {
        assert_eq!(
            bits(a),
            bits(b),
            "coalesced and uncoalesced outputs diverged at job {i}"
        );
    }
    assert_serial_bit_identity(coa);
    println!("fig_executor check: all {n_jobs} outputs bit-identical across coalesced, uncoalesced and serial execution");

    // --- acceptance: a saturating tenant cannot starve others ------------
    let fifo = run_executor_fairness_leg(SchedulingMode::Fifo);
    let wrr = run_executor_fairness_leg(SchedulingMode::WeightedRoundRobin);
    assert_eq!(wrr.polite_done, fifo.polite_done);
    assert_eq!(
        wrr.hog_done, 256,
        "the hog itself must not be starved either"
    );
    assert!(
        wrr.polite_p99_s < fifo.polite_p99_s / 2.0,
        "round-robin must bound polite-tenant p99 under a flood: wrr {:.3e} s vs fifo {:.3e} s",
        wrr.polite_p99_s,
        fifo.polite_p99_s
    );
    println!(
        "fig_executor check: polite p99 under 256-job flood: fifo {:.3e} s, wrr {:.3e} s \
         ({:.1}x isolation); hog p99 fifo {:.3e} s, wrr {:.3e} s",
        fifo.polite_p99_s,
        wrr.polite_p99_s,
        fifo.polite_p99_s / wrr.polite_p99_s,
        fifo.hog_p99_s,
        wrr.hog_p99_s,
    );

    // Perf ledger: persist the throughput legs when SKELCL_LEDGER_DIR is
    // set (the fairness legs measure per-tenant latency, not makespan, and
    // route around the reporting timers).
    skelcl_bench::ledger::write_fig("fig_executor");
}

criterion_group! {
    name = benches;
    // Virtual-time samples have zero variance, which breaks the plotting
    // backend; plots add nothing here anyway.
    config = Criterion::default().without_plots();
    targets = bench_executor
}
criterion_main!(benches);
