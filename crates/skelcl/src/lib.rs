//! # skelcl — a Rust reproduction of the SkelCL skeleton library
//!
//! Reproduces Steuwer, Kegel & Gorlatch, *SkelCL — A Portable Skeleton
//! Library for High-Level GPU Programming* (IPDPS 2011) on top of the
//! [`vgpu`] virtual OpenCL-like platform:
//!
//! * [`Vector`] — the abstract vector spanning host and device memory with
//!   **lazy, implicit transfers** (Section III-A),
//! * the four basic skeletons [`Map`], [`Zip`], [`Reduce`], [`Scan`]
//!   (Section III-B), customized by [`UserFn`]s created with [`skel_fn!`],
//! * [`Arguments`] — passing additional scalars and vectors to the
//!   customizing function (Section III-C),
//! * multi-GPU [`Distribution`]s — `Single`, `Copy`, `Block` — with
//!   automatic inter-device exchange on redistribution, including
//!   redistribution with a combine operator (Section III-D),
//! * plus the [`MapOverlap`] stencil and the with-arguments Map/Zip
//!   variants the paper's applications rely on,
//! * the 2D subsystem SkelCL grew next: the [`Matrix`] container with
//!   [`MatrixDistribution::RowBlock`] halo distribution and the
//!   [`Stencil2D`] skeleton behind the image-processing benchmark suite
//!   (Gaussian blur, Sobel, Canny — see the `skelcl-imgproc` crate),
//! * the [`AllPairs`] skeleton with the column-block
//!   [`MatrixDistribution::ColBlock`] distribution behind the dense
//!   linear-algebra workloads (matrix multiplication, pairwise distances —
//!   see the `skelcl-linalg` crate),
//! * the iterative form [`Stencil2D::iterate`] — `n` stencil passes
//!   ping-ponging two device-resident buffers with one batched halo
//!   exchange per iteration — behind the simulation workloads (heat
//!   relaxation, game of life — see the `skelcl-iterative` crate),
//! * the lazy **[`Pipeline`] fusion subsystem**: skeleton calls compose
//!   into a deferred expression that fuses adjacent element-wise stages
//!   into their neighbouring stencil/reduce kernels at launch time —
//!   eliding every intermediate matrix — behind the fused Canny edge
//!   detector (see *Pipelines and fusion* below),
//! * and the **async overlap subsystem**: per-device copy streams with
//!   event-ordered transfers, so the overlapped `iterate` schedule runs
//!   halo exchanges *under* interior kernels and streamed uploads
//!   ([`Stencil2D::apply_streamed`], [`Map::apply_streamed`]) overlap PCIe
//!   with the first dependent kernels (see *Streams and events* below).
//!
//! ## Skeleton overview
//!
//! | Skeleton        | Containers            | Customizing function            | Distributions of the primary input        |
//! |-----------------|-----------------------|---------------------------------|-------------------------------------------|
//! | [`Map`]         | [`Vector`], [`Matrix`]| `U f(T)`                        | `Single`, `Copy`, `Block` / any matrix    |
//! | [`Zip`]         | [`Vector`], [`Matrix`]| `U f(T1, T2)`                   | `Single`, `Copy`, `Block` / any matrix    |
//! | [`Reduce`]      | [`Vector`]            | associative `T f(T, T)` + id    | `Single`, `Copy`, `Block`                 |
//! | [`Scan`]        | [`Vector`]            | associative `T f(T, T)` + id    | `Single`, `Copy`, `Block`                 |
//! | [`MapOverlap`]  | [`Vector`]            | `T f(view)` over a radius       | `Single`, `Copy`, `Block`                 |
//! | [`Stencil2D`]   | [`Matrix`]            | `U f(view)` over a 2D radius    | `Single`, `Copy`, `RowBlock { halo }`     |
//! | [`Stencil2D::iterate`] | [`Matrix`]     | same, applied `n` times         | `Single`, `Copy`, `RowBlock { halo }`     |
//! | [`AllPairs`]    | [`Matrix`]            | zip `U f(T, T)` + reduce + id   | A: row-based; B: `Copy` / `ColBlock` / …  |
//! | [`ReduceRows`]  | [`Matrix`] → [`Vector`] | associative `T f(T, T)` + id  | any matrix                                |
//! | [`ReduceCols`]  | [`Matrix`] → [`Vector`] | associative `T f(T, T)` + id  | any matrix                                |
//! | [`ReduceRowsArg`] | [`Matrix`] → value + index [`Vector`]s | strict `bool f(T, T)` | any matrix                  |
//! | [`ReduceColsArg`] | [`Matrix`] → value + index [`Vector`]s | strict `bool f(T, T)` | any matrix                  |
//! | [`Pipeline`]    | [`Matrix`]            | lazy `map`/`zip_with`/`stencil` chain, fused per stencil anchor | any matrix |
//! | Canny (`skelcl-imgproc`) | [`Matrix`] → labels + host hysteresis | gauss → sobel → nms → threshold via [`Pipeline`] (3 fused launches) | `Single`, `Copy`, `RowBlock { halo }` |
//!
//! (Plus the composed [`MapReduce`]/[`MapIndex`] fusions and the
//! with-arguments variants [`MapArgs`], [`MapVoid`], [`ZipArgs`].)
//! Every program family in this table — including the fused pipeline
//! variants — is vetted by the `skelcheck` kernel lint pass in CI; see
//! *Static analysis* below.
//! Element-wise skeletons accept every distribution; `Stencil2D` widens a
//! too-narrow `RowBlock` halo automatically and re-lays out a `ColBlock`
//! input; `AllPairs` replicates its `B` operand device-to-device when it
//! is not already everywhere. The 2D reductions fold in canonical
//! ascending row/column order, so their results are bit-identical to a
//! sequential host fold on every device count and distribution; under the
//! distribution that keeps the reduced dimension intact (`RowBlock` for
//! rows, `ColBlock` for columns) the output simply concatenates the
//! per-device results with zero inter-device transfers.
//!
//! **Which paths overlap:** [`Stencil2D::iterate`] (halo exchange on the
//! copy stream under interior compute; `iterate_serial` keeps the serial
//! schedule), [`Stencil2D::apply_streamed`] and [`Map::apply_streamed`]
//! (chunked uploads overlapping the first dependent kernels). Every other
//! path is device-serializing, exactly as before the subsystem existed.
//!
//! ## Streams and events
//!
//! Every [`Context`] drives each device through **two in-order command
//! queues over one shared device timeline**: the main queue carrying
//! kernels, and a dedicated *copy stream* ([`Context::copy_queue`])
//! carrying asynchronous transfers. The underlying [`vgpu`] platform
//! models a separate copy (DMA) engine and compute engine per device, and
//! schedules every asynchronous command at
//!
//! ```text
//! start = max(queue-ready, dependency-ready, engine-availability, enqueue time)
//! ```
//!
//! with first-class events (`wait_for: &[vgpu::Event]`) expressing
//! cross-stream dependencies — OpenCL's own answer to transfer/compute
//! overlap, expressed through events and multiple command queues. A halo
//! exchange issued on the copy stream therefore genuinely runs *under* an
//! independent kernel, while two kernels (or two transfers) on one device
//! still serialize on their engine.
//!
//! The overlapped paths are **bit-identical to their serial twins** —
//! same generated programs, same per-element arithmetic, only the modeled
//! timeline changes — and the simulator's timeline trace
//! (`vgpu::Platform::enable_timeline_trace`) lets tests assert that no
//! engine ever runs two commands at once (see the `prop_overlap` suite
//! and the `fig_overlap` bench, which measures the overlap win).
//!
//! ## Observability
//!
//! Three layers, cheapest first, all off until asked for:
//!
//! 1. **Metrics** ([`Context::metrics`], the [`metrics`] module) — a named
//!    registry of counters/gauges/histograms. The long-standing one-off
//!    counters (halo exchanges, program-cache hits/misses) are thin
//!    wrappers over registry counters now; [`Context::metrics_snapshot`]
//!    merges them with the platform's transfer/kernel/build counters under
//!    `vgpu.*` names into one sorted map.
//! 2. **Spans** ([`Context::enable_spans`], the [`trace`] module) — every
//!    skeleton entry point (`Map::apply`, `Stencil2D::iterate`, uploads,
//!    halo exchanges, …) records a [`SpanRecord`]: skeleton kind, shape,
//!    distribution, device count, virtual start/end, and exact counter
//!    deltas (bytes by direction, kernel launches, cache hits). Spans
//!    nest — a halo exchange inside `iterate` is a child span — and link
//!    to the engine-level `vgpu::CommandRecord` trace by index range.
//! 3. **Reports** (the [`report`] module) — [`chrome_trace_json`] merges
//!    both layers into a Perfetto-loadable Chrome trace (see
//!    `examples/trace_export.rs`), [`RunReport`] distills a run into
//!    per-device engine utilization, copy-under-compute overlap, and a
//!    roofline verdict (achieved vs. the [`vgpu::timing`] cost model's
//!    peak rates), and [`text_report`] renders it for humans.
//! 4. **Telemetry export** (the [`telemetry`] module) — everything above
//!    in machine-readable form: [`export_json`] writes a schema-versioned
//!    JSON document (version [`telemetry::SCHEMA_VERSION`]) carrying the
//!    full [`Context::metrics_snapshot`] plus any number of
//!    [`RunReport`]s — roofline %, engine utilization, overlap
//!    efficiency, exact latency quantiles (`null` for empty
//!    distributions, never a fabricated 0), skelcheck counters, and SLO
//!    accounting ([`SloSummary`]) — and [`render_prometheus`] emits the
//!    metrics snapshot in Prometheus text exposition format (histograms
//!    as summaries with nearest-rank quantile series). The bench perf
//!    ledger (`skelcl-bench`'s `BENCH_<fig>.json` artifacts and the
//!    `benchdiff` regression gate) is built on this serializer; see
//!    `examples/telemetry_export.rs`.
//!
//! The executor's serving layer feeds the same pipeline: every job emits
//! queue-wait and service spans into the Chrome trace (one lane per
//! tenant), and per-tenant SLO gauges (deadline misses against a
//! configured latency target, shed rate) ride [`RunReport`] and the JSON
//! export.
//!
//! Clock-epoch hygiene: `vgpu::Platform::reset_clocks` starts a new epoch;
//! spans that straddle a reset are discarded, while metrics (monotonic
//! counters) deliberately survive it — see the [`trace`] module docs.
//!
//! ## Static analysis (the `skelcheck` layer)
//!
//! The companion `skelcheck` crate (re-exported here as [`check`]) vets the
//! two artifacts this library produces that nothing else type-checks:
//!
//! * **Command timelines** — [`check::verify_no_buffer_hazards`]
//!   reconstructs the happens-before relation of a recorded trace (stream
//!   program order, event dependencies, device serialization, host
//!   synchronization) and flags RAW/WAR/WAW pairs on overlapping bytes of
//!   one device buffer with no ordering path: races the virtual timeline
//!   happened to order this run but nothing forced. The **online mode**
//!   ([`Context::enable_online_hazard_check`], or `SKELCL_CHECK=1` in the
//!   environment) installs the same analysis as a command observer and
//!   panics at the exact enqueue that completes a race; each vetted
//!   command bumps the `skelcheck.hazards_checked` counter.
//! * **Generated kernel sources** — [`Context::lint_registry`] runs
//!   [`check::lint_program`] over every program resident in the
//!   [`ProgramRegistry`]: barriers under thread-divergent control flow,
//!   `__local` declarations over the device budget, host/kernel
//!   argument-count mismatches ([`Error::KernelArgMismatch`] is the
//!   runtime twin of that lint), and thread-id-indexed global accesses
//!   outside any bounds guard. Findings land in the
//!   `skelcheck.lint_findings` counter; a healthy codegen layer lints
//!   clean (the skeleton table above is covered end-to-end in CI).
//!
//! ## Executor service
//!
//! The `skelcl-executor` crate turns the library into a multi-tenant
//! serving layer: many concurrent clients submit typed skeleton jobs
//! (`Job::{Axpb, RowSum, Jacobi, MatMul}`) against shared devices and get
//! back futures with per-job latency reports. The pieces it builds on
//! live here:
//!
//! * [`Context::fork_streams`] — a sibling context per tenant with fresh
//!   in-order main+copy streams per device. Tenants share the platform,
//!   the device engines, the metrics registry and the span collector, but
//!   each tenant's commands are ordered only among themselves, so one
//!   tenant's backlog never orders another's work.
//! * [`ProgramRegistry`] — the compiled-program cache, shareable across
//!   contexts and optionally admission-controlled
//!   ([`ProgramRegistry::with_limits`]): a per-owner quota evicts the
//!   flooding tenant's *own* LRU programs first, then a global capacity
//!   bound evicts the global LRU. Evictions surface as the
//!   `skelcl.program_cache.evictions` counter.
//! * [`Matrix::read_back_async`] / [`Vector::read_back_async`] — download
//!   results on the copy stream *without* syncing the host clock, and
//!   report the virtual completion time. The executor derives end-to-end
//!   job latency from it, so concurrent tenants' timelines keep
//!   overlapping where a blocking `to_vec` would serialize them.
//! * [`Histogram`] quantiles ([`metrics::Histogram::quantile`],
//!   `HistogramSnapshot::{p50, p90, p99}`) and the [`RunReport`] latency
//!   line ([`RunReport::with_latency`]) — the `fig_executor` bench reports
//!   jobs/sec with p50/p99 against the modeled peak.
//!
//! On top, the executor adds bounded per-tenant queues with shed-on-full
//! backpressure, weighted round-robin dispatch, and coalescing of
//! consecutive same-kernel/same-shape jobs into one fused launch (a
//! single job *is* a batch of one, so coalescing is bit-transparent).
//!
//! ## Dot product (the paper's Listing 1)
//!
//! ```
//! use skelcl::{Context, ContextConfig, Reduce, Vector, Zip};
//!
//! let ctx = Context::new(ContextConfig::default().cache_tag("doc-dot"));
//!
//! // create skeletons (customizing functions written once, used as both
//! // source string and executable code)
//! let sum  = Reduce::new(skelcl::skel_fn!(fn sum(x: f32, y: f32) -> f32 { x + y }), 0.0);
//! let mult = Zip::new(skelcl::skel_fn!(fn mult(x: f32, y: f32) -> f32 { x * y }));
//!
//! // create input vectors
//! let a = Vector::from_vec(&ctx, vec![1.0f32; 1024]);
//! let b = Vector::from_vec(&ctx, vec![2.0f32; 1024]);
//!
//! // execute skeletons: C = sum(mult(A, B))
//! let c = sum.apply(&mult.apply(&a, &b).unwrap()).unwrap();
//!
//! // fetch result
//! assert_eq!(c.get_value(), 2048.0);
//! ```
//!
//! ## Matrix + Stencil2D (2D containers, multi-GPU halo exchange)
//!
//! A [`Matrix`] distributes *rows* across devices; under
//! [`MatrixDistribution::RowBlock`] each device also stores `halo` overlap
//! rows that [`Stencil2D`] keeps coherent by automatic device-to-device
//! exchange. Element-wise skeletons compose with matrices through
//! [`Map::apply_matrix`]/[`Zip::apply_matrix`] without host round trips.
//!
//! ```
//! use skelcl::{
//!     Boundary2D, Context, ContextConfig, Matrix, MatrixDistribution, Stencil2D,
//!     Stencil2DView, UserFn,
//! };
//!
//! let ctx = Context::new(ContextConfig::default().devices(2).cache_tag("doc-stencil"));
//!
//! // A 2D stencil is customized like any skeleton: source string + twin.
//! let blur = Stencil2D::new(
//!     UserFn::new(
//!         "blur5",
//!         "float blur5(__global float* in, int r, int c, uint nr, uint nc) {\n\
//!              return 0.25f * (stencil_at(in,r,c,nr,nc,-1,0) + stencil_at(in,r,c,nr,nc,1,0)\n\
//!                            + stencil_at(in,r,c,nr,nc,0,-1) + stencil_at(in,r,c,nr,nc,0,1));\n\
//!          }",
//!         |v: &Stencil2DView<'_, f32>| {
//!             0.25 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1))
//!         },
//!     ),
//!     1,                  // radius
//!     Boundary2D::Neumann, // out-of-matrix reads clamp to the edge
//! );
//!
//! // Rows split across both devices with 1 halo row of overlap each way.
//! let img = Matrix::from_fn(&ctx, 64, 64, |r, c| (r + c) as f32);
//! img.set_distribution(MatrixDistribution::RowBlock { halo: 1 }).unwrap();
//!
//! // Chaining stencils stays on the devices; stale halo rows are refreshed
//! // by automatic inter-device exchange before the second pass.
//! let once = blur.apply(&img).unwrap();
//! let twice = blur.apply(&once).unwrap();
//! assert_eq!(twice.dims(), (64, 64));
//! # let _ = twice.to_vec().unwrap();
//! ```
//!
//! ## Iterated stencils (heat relaxation, Jacobi sweeps, game of life)
//!
//! Iterative simulations apply the *same* stencil hundreds of times.
//! [`Stencil2D::iterate`] keeps the whole run on the devices: two buffers
//! per device ping-pong roles each round, one **batched halo exchange per
//! iteration** refreshes exactly the rows the stencil will read (under
//! `Neumann`/`Zero` boundaries the wrapped matrix-edge rows are skipped),
//! and a single cached kernel serves all `n` launches. The result is
//! bit-identical to `n` chained [`Stencil2D::apply`] calls on every device
//! count.
//!
//! ```
//! use skelcl::{
//!     Boundary2D, Context, ContextConfig, Matrix, MatrixDistribution, Stencil2D,
//!     Stencil2DView, UserFn,
//! };
//!
//! let ctx = Context::new(ContextConfig::default().devices(2).cache_tag("doc-iterate"));
//!
//! // Jacobi heat relaxation: each cell moves to the mean of its neighbours.
//! let relax = Stencil2D::new(
//!     UserFn::new(
//!         "relax",
//!         "float relax(__global float* in, int r, int c, uint nr, uint nc) {\n\
//!              return 0.25f * (stencil_at(in,r,c,nr,nc,-1,0) + stencil_at(in,r,c,nr,nc,1,0)\n\
//!                            + stencil_at(in,r,c,nr,nc,0,-1) + stencil_at(in,r,c,nr,nc,0,1));\n\
//!          }",
//!         |v: &Stencil2DView<'_, f32>| {
//!             0.25 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1))
//!         },
//!     ),
//!     1,                   // radius
//!     Boundary2D::Neumann, // insulated edges
//! );
//!
//! // A hot top row diffusing into a cold plate, split across both devices.
//! let plate = Matrix::from_fn(&ctx, 32, 32, |r, _| if r == 0 { 100.0 } else { 0.0 });
//! plate.set_distribution(MatrixDistribution::RowBlock { halo: 1 }).unwrap();
//!
//! // 50 passes, entirely device-resident — and bit-identical to chaining.
//! let relaxed = relax.iterate(&plate, 50).unwrap();
//! let chained = {
//!     let mut cur = relax.apply(&plate).unwrap();
//!     for _ in 1..50 {
//!         cur = relax.apply(&cur).unwrap();
//!     }
//!     cur
//! };
//! assert_eq!(relaxed.to_vec().unwrap(), chained.to_vec().unwrap());
//! ```
//!
//! ## 2D reductions (row/column folds, device-resident argmin)
//!
//! [`ReduceRows`]/[`ReduceCols`] fold a [`Matrix`] to a device-resident
//! [`Vector`] — one element per row or column — and [`ReduceRowsArg`]
//! additionally carries the winning column index (lowest index wins ties),
//! which moves per-row argmin pipelines like 1-NN fully onto the devices:
//! the matrix is never downloaded, only the tiny result vectors are.
//!
//! ```
//! use skelcl::{Context, ContextConfig, Matrix, ReduceRows, ReduceRowsArg};
//!
//! let ctx = Context::new(ContextConfig::default().devices(2).cache_tag("doc-reduce2d"));
//!
//! // Row sums: Matrix (4×3) → Vector (4), folded in ascending column
//! // order from the identity — bit-identical on any device count.
//! let sums = ReduceRows::new(
//!     skelcl::skel_fn!(fn sum(x: f32, y: f32) -> f32 { x + y }),
//!     0.0,
//! );
//! let m = Matrix::from_fn(&ctx, 4, 3, |r, c| (r * 3 + c) as f32);
//! assert_eq!(sums.apply(&m).unwrap().to_vec().unwrap(), vec![3.0, 12.0, 21.0, 30.0]);
//!
//! // Per-row argmin: the strictly-less scan keeps the lowest index on
//! // ties — the row reduction behind the 1-NN pipeline.
//! let argmin = ReduceRowsArg::new(
//!     skelcl::skel_fn!(fn less(x: f32, y: f32) -> bool { x < y }),
//! );
//! let d = Matrix::from_fn(&ctx, 2, 3, |r, c| if c == r { 0.5 } else { 2.0 });
//! let (vals, idxs) = argmin.apply(&d).unwrap();
//! assert_eq!(vals.to_vec().unwrap(), vec![0.5, 0.5]);
//! assert_eq!(idxs.to_vec().unwrap(), vec![0, 1]);
//! ```
//!
//! ## AllPairs (dense linear algebra: matrix multiplication)
//!
//! [`AllPairs`] computes `C[i][j] = reduce(zip(row_i(A), col_j(B)))` — with
//! `zip = ×` and `reduce = +` that is the matrix product. `A`'s rows are
//! partitioned across the devices; `B` is replicated (device-to-device when
//! already resident, e.g. from a [`MatrixDistribution::ColBlock`] layout).
//! The default strategy stages local-memory tiles; naive and tiled results
//! are bit-identical.
//!
//! ```
//! use skelcl::{AllPairs, Context, ContextConfig, Matrix};
//!
//! let ctx = Context::new(ContextConfig::default().devices(2).cache_tag("doc-allpairs"));
//!
//! let matmul = AllPairs::new(
//!     skelcl::skel_fn!(fn mult(x: f32, y: f32) -> f32 { x * y }),
//!     skelcl::skel_fn!(fn sum(x: f32, y: f32) -> f32 { x + y }),
//!     0.0,
//! );
//!
//! // A (4×3) · B (3×2) = C (4×2): rows of C split across both devices.
//! let a = Matrix::from_fn(&ctx, 4, 3, |r, c| (r * 3 + c) as f32);
//! let b = Matrix::from_fn(&ctx, 3, 2, |r, c| if r == c { 1.0 } else { 0.0 });
//! let c = matmul.apply(&a, &b).unwrap();
//! assert_eq!(c.dims(), (4, 2));
//! // B is the leading 3×2 slice of the identity, so C is A's first 2 columns.
//! assert_eq!(c.to_vec().unwrap()[0..2], [0.0, 1.0]);
//! ```
//!
//! ## Pipelines and fusion (lazy skeleton chains)
//!
//! Chained skeleton calls each launch a kernel and materialise a full
//! intermediate matrix — for a chain of cheap element-wise stages the
//! intermediates dominate the memory traffic. [`Pipeline`] makes the
//! chain *lazy*: [`Pipeline::start`] opens a deferred expression, each
//! [`PipelineExpr::map`] / [`PipelineExpr::zip_with`] /
//! [`PipelineExpr::stencil`] records a stage without executing anything,
//! and the terminal [`PipelineExpr::run`] (or
//! [`PipelineExpr::reduce_rows`]) plans the whole chain at once:
//! element-wise stages fold into the *reads* of the next stencil (or the
//! k-fold of a reduction) and into the *writes* of the previous one, so
//! each stencil anchor becomes exactly one fused launch and no
//! intermediate matrix ever exists. The fused OpenCL programs come from
//! dedicated [`codegen`] builders and are cached in the
//! [`ProgramRegistry`] under a key derived from the exact stage chain —
//! same chain, same program. Results are **bit-identical** to the unfused
//! skeleton chain on every device count, boundary mode and distribution
//! (the `prop_fusion` suite), and the launch count is observable as the
//! `skelcl.pipeline.groups` counter. The `skelcl-imgproc` Canny detector
//! is the flagship user: gauss → sobel → non-maximum suppression →
//! threshold compiles to three fused launches (the `fig_fusion` bench
//! measures the win over the six-launch unfused chain).
//!
//! ```
//! use skelcl::{
//!     Boundary2D, Context, ContextConfig, Map, Matrix, PipeView, Pipeline, PipelineExpr,
//!     Stencil2D, Stencil2DView, UserFn,
//! };
//!
//! let ctx = Context::new(ContextConfig::default().devices(2).cache_tag("doc-pipeline"));
//! let img = Matrix::from_fn(&ctx, 32, 32, |r, c| (r * c) as f32);
//!
//! const CROSS_SRC: &str =
//!     "float cross4(__global float* in, int r, int c, uint nr, uint nc) {\n\
//!          return 0.25f * (stencil_at(in,r,c,nr,nc,-1,0) + stencil_at(in,r,c,nr,nc,1,0)\n\
//!                        + stencil_at(in,r,c,nr,nc,0,-1) + stencil_at(in,r,c,nr,nc,0,1));\n\
//!      }";
//!
//! // scale → blur → square: one fused kernel launch, zero intermediates.
//! let fused = Pipeline::start::<f32>()
//!     .map(skelcl::skel_fn!(fn scale(x: f32) -> f32 { x * 0.5 }))
//!     .stencil(
//!         UserFn::new("cross4", CROSS_SRC,
//!             |v: &PipeView<'_, f32>| {
//!                 0.25 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1))
//!             }),
//!         1,
//!         Boundary2D::Neumann,
//!     )
//!     .map(skelcl::skel_fn!(fn square(x: f32) -> f32 { x * x }))
//!     .run(&img)
//!     .unwrap();
//!
//! // The eager three-skeleton chain: three launches, two intermediates —
//! // and exactly the same bits.
//! let blur = Stencil2D::new(
//!     UserFn::new("cross4", CROSS_SRC, |v: &Stencil2DView<'_, f32>| {
//!         0.25 * (v.get(-1, 0) + v.get(1, 0) + v.get(0, -1) + v.get(0, 1))
//!     }),
//!     1,
//!     Boundary2D::Neumann,
//! );
//! let step1 = Map::new(skelcl::skel_fn!(fn scale(x: f32) -> f32 { x * 0.5 }))
//!     .apply_matrix(&img).unwrap();
//! let step2 = blur.apply(&step1).unwrap();
//! let unfused = Map::new(skelcl::skel_fn!(fn square(x: f32) -> f32 { x * x }))
//!     .apply_matrix(&step2).unwrap();
//! assert_eq!(fused.to_vec().unwrap(), unfused.to_vec().unwrap());
//! ```

pub mod algorithms;
pub mod arguments;
pub mod codegen;
pub mod context;
pub mod error;
pub mod matrix;
pub mod meter;
pub mod metrics;
pub mod report;
pub mod scalar;
pub mod skeletons;
pub mod telemetry;
pub mod trace;
pub mod vector;

pub use arguments::{ArgMat, ArgVec, Arguments, KernelEnv};
pub use codegen::UserFn;
pub use context::{Context, ContextConfig, ProgramRegistry, DEFAULT_WORK_GROUP};
pub use error::{Error, Result};
pub use matrix::{Matrix, MatrixDistribution};
pub use meter::work;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry};
pub use report::{
    chrome_trace_json, roofline_report, text_report, RooflineReport, RunReport, SloSummary,
};
pub use scalar::Scalar;
pub use skeletons::{AllPairs, AllPairsStrategy};
pub use skeletons::{Boundary, Map, MapArgs, MapOverlap, MapVoid, Reduce, Scan, Zip, ZipArgs};
pub use skeletons::{Boundary2D, Stencil2D, Stencil2DView};
pub use skeletons::{MapIndex, MapReduce, ReduceStrategy, ScanStrategy};
pub use skeletons::{PipeView, Pipeline, PipelineExpr};
pub use skeletons::{ReduceCols, ReduceColsArg, ReduceRows, ReduceRowsArg};
pub use telemetry::{export_json, render_prometheus, run_report_json};
pub use trace::{verify_span_nesting, SpanGuard, SpanRecord};
pub use vector::{Distribution, Vector};

/// The `skelcheck` analysis layer: buffer-hazard detection over command
/// timelines and the generated-kernel lint pass (see *Static analysis* in
/// the crate docs).
pub use skelcheck as check;

/// The element trait vectors are generic over (re-exported from the
/// platform; the name `Scalar` is taken by the paper's reduce-result type).
pub use vgpu::Scalar as Element;

/// Commonly used items for glob import.
pub mod prelude {
    pub use crate::skel_fn;
    pub use crate::{
        Arguments, Boundary, Context, ContextConfig, Distribution, Element, Error, KernelEnv, Map,
        MapArgs, MapOverlap, MapVoid, Reduce, Result, Scalar, Scan, UserFn, Vector, Zip, ZipArgs,
    };
}
