//! # skelcl — a Rust reproduction of the SkelCL skeleton library
//!
//! Reproduces Steuwer, Kegel & Gorlatch, *SkelCL — A Portable Skeleton
//! Library for High-Level GPU Programming* (IPDPS 2011) on top of the
//! [`vgpu`] virtual OpenCL-like platform:
//!
//! * [`Vector`] — the abstract vector spanning host and device memory with
//!   **lazy, implicit transfers** (Section III-A),
//! * the four basic skeletons [`Map`], [`Zip`], [`Reduce`], [`Scan`]
//!   (Section III-B), customized by [`UserFn`]s created with [`skel_fn!`],
//! * [`Arguments`] — passing additional scalars and vectors to the
//!   customizing function (Section III-C),
//! * multi-GPU [`Distribution`]s — `Single`, `Copy`, `Block` — with
//!   automatic inter-device exchange on redistribution, including
//!   redistribution with a combine operator (Section III-D),
//! * plus the [`MapOverlap`] stencil and the with-arguments Map/Zip
//!   variants the paper's applications rely on.
//!
//! ## Dot product (the paper's Listing 1)
//!
//! ```
//! use skelcl::{Context, ContextConfig, Reduce, Vector, Zip};
//!
//! let ctx = Context::new(ContextConfig::default().cache_tag("doc-dot"));
//!
//! // create skeletons (customizing functions written once, used as both
//! // source string and executable code)
//! let sum  = Reduce::new(skelcl::skel_fn!(fn sum(x: f32, y: f32) -> f32 { x + y }), 0.0);
//! let mult = Zip::new(skelcl::skel_fn!(fn mult(x: f32, y: f32) -> f32 { x * y }));
//!
//! // create input vectors
//! let a = Vector::from_vec(&ctx, vec![1.0f32; 1024]);
//! let b = Vector::from_vec(&ctx, vec![2.0f32; 1024]);
//!
//! // execute skeletons: C = sum(mult(A, B))
//! let c = sum.apply(&mult.apply(&a, &b).unwrap()).unwrap();
//!
//! // fetch result
//! assert_eq!(c.get_value(), 2048.0);
//! ```

pub mod algorithms;
pub mod arguments;
pub mod codegen;
pub mod context;
pub mod error;
pub mod meter;
pub mod scalar;
pub mod skeletons;
pub mod vector;

pub use arguments::{ArgVec, Arguments, KernelEnv};
pub use codegen::UserFn;
pub use context::{Context, ContextConfig, DEFAULT_WORK_GROUP};
pub use error::{Error, Result};
pub use meter::work;
pub use scalar::Scalar;
pub use skeletons::{Boundary, Map, MapArgs, MapOverlap, MapVoid, Reduce, Scan, Zip, ZipArgs};
pub use skeletons::{MapIndex, MapReduce, ReduceStrategy, ScanStrategy};
pub use vector::{Distribution, Vector};

/// The element trait vectors are generic over (re-exported from the
/// platform; the name `Scalar` is taken by the paper's reduce-result type).
pub use vgpu::Scalar as Element;

/// Commonly used items for glob import.
pub mod prelude {
    pub use crate::skel_fn;
    pub use crate::{
        Arguments, Boundary, Context, ContextConfig, Distribution, Element, Error, KernelEnv,
        Map, MapArgs, MapOverlap, MapVoid, Reduce, Result, Scalar, Scan, UserFn, Vector, Zip,
        ZipArgs,
    };
}
