//! Scan-based algorithms the paper names (Section III-B): *"Possible
//! applications of the Scan skeleton are stream compaction or a radix sort
//! implementation."* Both are provided here as library-level algorithms
//! composed entirely from the public skeletons.

use crate::codegen::UserFn;
use crate::context::Context;
use crate::error::Result;
use crate::skeletons::{Map, Scan};
use crate::vector::Vector;
use vgpu::Scalar as Element;

/// Keep the elements satisfying `keep`, preserving order.
///
/// Pipeline: Map (predicate flags) → exclusive Scan (output positions) →
/// host scatter. Returns the compacted elements.
pub fn compact<T, P>(ctx: &Context, input: &[T], keep: P) -> Result<Vec<T>>
where
    T: Element,
    P: Fn(T) -> bool + Send + Sync + Clone + 'static,
{
    if input.is_empty() {
        return Ok(Vec::new());
    }
    let v = Vector::from_slice(ctx, input);
    let keep2 = keep.clone();
    let flag = Map::new(UserFn::new(
        "compact_flag",
        format!(
            "uint compact_flag({} x) {{ return KEEP(x) ? 1u : 0u; }}",
            T::TYPE_NAME
        ),
        move |x: T| u32::from(keep2(x)),
    ));
    let scan = Scan::new(
        UserFn::new(
            "u32_add",
            "uint u32_add(uint x, uint y) { return x + y; }",
            |x: u32, y: u32| x + y,
        ),
        0u32,
    );
    let flags = flag.apply(&v)?;
    let (positions, total) = scan.apply_with_total(&flags)?;

    let flags = flags.to_vec()?;
    let positions = positions.to_vec()?;
    let mut out = vec![T::default(); total as usize];
    for (i, &x) in input.iter().enumerate() {
        if flags[i] == 1 {
            out[positions[i] as usize] = x;
        }
    }
    Ok(out)
}

/// Stable LSD radix sort of `u32` keys, one bit per pass, positions from
/// the exclusive Scan (the split primitive of Blelloch/Harris).
pub fn radix_sort_u32(ctx: &Context, input: &[u32]) -> Result<Vec<u32>> {
    let scan = Scan::new(
        UserFn::new(
            "u32_add",
            "uint u32_add(uint x, uint y) { return x + y; }",
            |x: u32, y: u32| x + y,
        ),
        0u32,
    );
    let mut data = input.to_vec();
    if data.len() <= 1 {
        return Ok(data);
    }
    let max = data.iter().copied().max().unwrap_or(0);
    let bits = 32 - max.leading_zeros();
    for bit in 0..bits {
        let v = Vector::from_slice(ctx, &data);
        let is_zero = Map::new(UserFn::new(
            "radix_is_zero",
            "uint radix_is_zero(uint x) { return ((x >> BIT) & 1u) == 0u ? 1u : 0u; }",
            move |x: u32| u32::from((x >> bit) & 1 == 0),
        ));
        let zeros = is_zero.apply(&v)?;
        let (zero_pos, n_zeros) = scan.apply_with_total(&zeros)?;

        let zeros = zeros.to_vec()?;
        let zero_pos = zero_pos.to_vec()?;
        let mut next = vec![0u32; data.len()];
        let mut one_cursor = n_zeros as usize;
        for (i, &x) in data.iter().enumerate() {
            if zeros[i] == 1 {
                next[zero_pos[i] as usize] = x;
            } else {
                next[one_cursor] = x;
                one_cursor += 1;
            }
        }
        data = next;
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::ContextConfig;

    fn ctx(n: usize) -> Context {
        Context::new(
            ContextConfig::default()
                .devices(n)
                .spec(vgpu::DeviceSpec::tiny())
                .work_group(64)
                .cache_tag("skelcl-algorithms-tests"),
        )
    }

    fn pseudo_random(n: usize) -> Vec<u32> {
        (0..n as u32)
            .map(|i| i.wrapping_mul(2654435761) ^ (i << 7))
            .collect()
    }

    #[test]
    fn compact_keeps_order_and_elements() {
        let c = ctx(2);
        let input = pseudo_random(10_000);
        let got = compact(&c, &input, |x: u32| x.is_multiple_of(3)).unwrap();
        let want: Vec<u32> = input
            .iter()
            .copied()
            .filter(|x| x.is_multiple_of(3))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn compact_edge_cases() {
        let c = ctx(1);
        assert!(compact(&c, &[] as &[u32], |_| true).unwrap().is_empty());
        let all = compact(&c, &[1u32, 2, 3], |_| true).unwrap();
        assert_eq!(all, vec![1, 2, 3]);
        let none = compact(&c, &[1u32, 2, 3], |_| false).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn radix_sort_sorts() {
        let c = ctx(2);
        let input = pseudo_random(5_000);
        let got = radix_sort_u32(&c, &input).unwrap();
        let mut want = input.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn radix_sort_small_and_degenerate() {
        let c = ctx(1);
        assert!(radix_sort_u32(&c, &[]).unwrap().is_empty());
        assert_eq!(radix_sort_u32(&c, &[42]).unwrap(), vec![42]);
        assert_eq!(radix_sort_u32(&c, &[0, 0, 0]).unwrap(), vec![0, 0, 0]);
        assert_eq!(radix_sort_u32(&c, &[3, 1, 2, 1]).unwrap(), vec![1, 1, 2, 3]);
    }

    #[test]
    fn radix_sort_is_stable_for_equal_keys() {
        // Stability is observable only through payloads; encode payload in
        // the low bits and sort by high bits only... simpler: sorted output
        // of equal keys preserves multiplicity.
        let c = ctx(1);
        let input = vec![5u32, 5, 5, 1, 1, 9];
        let got = radix_sort_u32(&c, &input).unwrap();
        assert_eq!(got, vec![1, 1, 5, 5, 5, 9]);
    }
}
