//! OpenCL-C source generation: merging user functions into skeleton
//! templates.
//!
//! The paper (Section III): *"SkelCL generates OpenCL code (kernel
//! functions) from skeletons which is then compiled by OpenCL at runtime.
//! User-defined customizing functions passed to the skeletons are merged
//! with pre-implemented skeleton code during code generation. Since OpenCL
//! is not able to pass function pointers to GPU functions, user-defined
//! functions are passed as strings in SkelCL."*
//!
//! In this Rust reproduction every customizing function is a **twin**: an
//! OpenCL-C-style source string (driving code generation, the binary cache
//! and the LoC experiments) plus a Rust closure (driving execution). The
//! [`crate::skel_fn!`] macro produces both from a single definition, so user
//! code still writes the function exactly once, as in the paper's Listing 1.

use vgpu::Program;

/// A customizing function: name + source string + executable twin.
///
/// `F` is the Rust closure type; its call signature is fixed by the
/// skeleton that consumes the function (unary for Map, binary for
/// Zip/Reduce/Scan, ...).
#[derive(Clone)]
pub struct UserFn<F> {
    name: String,
    source: String,
    /// Issue-cost estimate for one call, derived from the source text.
    static_ops: u64,
    f: F,
}

impl<F> UserFn<F> {
    /// Build from an explicit name, source string and closure — the direct
    /// analogue of SkelCL's plain-string constructor:
    /// `Zip<float> mult("float mult(float x,float y){return x*y;}")`.
    pub fn new(name: impl Into<String>, source: impl Into<String>, f: F) -> Self {
        let name = name.into();
        let source = source.into();
        let static_ops = estimate_static_ops(&source);
        UserFn {
            name,
            source,
            static_ops,
            f,
        }
    }

    /// The function's name, spliced into kernel templates as the call site.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function's source string.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Static per-call cost estimate (see [`estimate_static_ops`]).
    pub fn static_ops(&self) -> u64 {
        self.static_ops
    }

    /// The executable twin.
    pub fn func(&self) -> &F {
        &self.f
    }

    /// Override the static cost estimate (for user functions whose source
    /// text poorly predicts their cost; loops should instead report
    /// dynamically via [`crate::work`]).
    pub fn with_static_ops(mut self, ops: u64) -> Self {
        self.static_ops = ops;
        self
    }
}

impl<F> std::fmt::Debug for UserFn<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UserFn")
            .field("name", &self.name)
            .field("static_ops", &self.static_ops)
            .field("source_len", &self.source.len())
            .finish()
    }
}

/// Defines a customizing function once, yielding both its executable Rust
/// form and its source string (the paper passes the latter to the skeleton
/// constructors).
///
/// ```
/// let mult = skelcl::skel_fn!(fn mult(x: f32, y: f32) -> f32 { x * y });
/// assert_eq!(mult.name(), "mult");
/// assert!(mult.source().contains("x * y"));
/// assert_eq!((mult.func())(3.0, 4.0), 12.0);
/// ```
#[macro_export]
macro_rules! skel_fn {
    (fn $name:ident ( $($arg:ident : $at:ty),* $(,)? ) -> $rt:ty $body:block) => {{
        fn $name($($arg: $at),*) -> $rt $body
        $crate::UserFn::new(
            stringify!($name),
            stringify!(fn $name($($arg: $at),*) -> $rt $body),
            $name as fn($($at),*) -> $rt,
        )
    }};
}

/// Estimate the issue cost of one call of a user function from its source:
/// one unit per arithmetic/comparison token, with a floor of 1. Loops must
/// report their dynamic cost through [`crate::work`]; this static estimate
/// covers straight-line bodies like `x * y` or a saturation clamp.
pub fn estimate_static_ops(source: &str) -> u64 {
    let mut ops = 0u64;
    let mut chars = source.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '-' if chars.peek() == Some(&'>') => {
                // Return-type arrow, not a subtraction.
                chars.next();
            }
            '/' if chars.peek() == Some(&'/') || chars.peek() == Some(&'*') => {
                // Comment opener, not a division.
                chars.next();
            }
            '+' | '-' | '*' | '/' | '%' => ops += 1,
            _ => {}
        }
    }
    ops.max(1)
}

/// Names a generated program uniquely: skeleton kind + user function name +
/// element types.
fn program_name(skeleton: &str, fn_name: &str, types: &[&str]) -> String {
    format!("skelcl_{}_{}_{}", skeleton, fn_name, types.join("_"))
}

/// Generate the Map skeleton program for a user function `U f(T)`.
///
/// The emitted source mirrors SkelCL's real template: the user function is
/// pasted verbatim above a wrapper kernel that applies it per work-item.
pub fn map_program(
    fn_name: &str,
    fn_source: &str,
    in_t: &str,
    out_t: &str,
    extra_args: usize,
) -> Program {
    let extras: String = (0..extra_args)
        .map(|i| format!(", __global const char* restrict arg{i}"))
        .collect();
    let source = format!(
        "// generated by SkelCL codegen: Map skeleton\n\
         {fn_source}\n\
         __kernel void skelcl_map(__global const {in_t}* restrict in,\n\
                                  __global {out_t}* restrict out,\n\
                                  const uint n{extras}) {{\n\
             uint gid = get_global_id(0);\n\
             if (gid < n) {{\n\
                 out[gid] = {fn_name}(in[gid]);\n\
             }}\n\
         }}\n"
    );
    Program::from_source(program_name("map", fn_name, &[in_t, out_t]), source)
        .with_arg_count(3 + extra_args)
}

/// Generate the Zip skeleton program for `U f(T1, T2)`.
pub fn zip_program(
    fn_name: &str,
    fn_source: &str,
    in1_t: &str,
    in2_t: &str,
    out_t: &str,
    extra_args: usize,
) -> Program {
    let extras: String = (0..extra_args)
        .map(|i| format!(", __global const char* restrict arg{i}"))
        .collect();
    let source = format!(
        "// generated by SkelCL codegen: Zip skeleton\n\
         {fn_source}\n\
         __kernel void skelcl_zip(__global const {in1_t}* restrict lhs,\n\
                                  __global const {in2_t}* restrict rhs,\n\
                                  __global {out_t}* restrict out,\n\
                                  const uint n{extras}) {{\n\
             uint gid = get_global_id(0);\n\
             if (gid < n) {{\n\
                 out[gid] = {fn_name}(lhs[gid], rhs[gid]);\n\
             }}\n\
         }}\n"
    );
    Program::from_source(program_name("zip", fn_name, &[in1_t, in2_t, out_t]), source)
        .with_arg_count(4 + extra_args)
}

/// Generate the two-level Reduce skeleton program for an associative
/// `T f(T, T)` (paper Section III-B: intermediate results in local memory).
pub fn reduce_program(fn_name: &str, fn_source: &str, t: &str) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: Reduce skeleton (local-memory tree)\n\
         {fn_source}\n\
         __kernel void skelcl_reduce(__global const {t}* restrict in,\n\
                                     __global {t}* restrict partials,\n\
                                     const uint n,\n\
                                     __local {t}* scratch) {{\n\
             uint gid = get_global_id(0);\n\
             uint lid = get_local_id(0);\n\
             uint group = get_group_id(0);\n\
             uint lsize = get_local_size(0);\n\
             scratch[lid] = (gid < n) ? in[gid] : ({t})0;\n\
             barrier(CLK_LOCAL_MEM_FENCE);\n\
             for (uint s = lsize / 2; s > 0; s >>= 1) {{\n\
                 if (lid < s) {{\n\
                     scratch[lid] = {fn_name}(scratch[lid], scratch[lid + s]);\n\
                 }}\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
             }}\n\
             if (lid == 0) partials[group] = scratch[0];\n\
         }}\n"
    );
    Program::from_source(program_name("reduce", fn_name, &[t]), source).with_arg_count(4)
}

/// Generate the Scan skeleton program: work-efficient Blelloch scan with
/// bank-conflict-avoiding padding (modified from Harris et al., GPU Gems 3
/// ch. 39, as the paper states).
pub fn scan_program(fn_name: &str, fn_source: &str, t: &str) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: Scan skeleton (Blelloch, CONFLICT_FREE_OFFSET)\n\
         #define CONFLICT_FREE_OFFSET(i) ((i) + ((i) >> 4))\n\
         {fn_source}\n\
         __kernel void skelcl_scan_block(__global const {t}* restrict in,\n\
                                         __global {t}* restrict out,\n\
                                         __global {t}* restrict block_sums,\n\
                                         const uint n,\n\
                                         const {t} identity,\n\
                                         __local {t}* temp) {{\n\
             uint lid = get_local_id(0);\n\
             uint group = get_group_id(0);\n\
             uint lsize = get_local_size(0);\n\
             uint base = group * lsize * 2;\n\
             uint ai = lid, bi = lid + lsize;\n\
             temp[CONFLICT_FREE_OFFSET(ai)] = (base + ai < n) ? in[base + ai] : identity;\n\
             temp[CONFLICT_FREE_OFFSET(bi)] = (base + bi < n) ? in[base + bi] : identity;\n\
             uint offset = 1;\n\
             for (uint d = lsize; d > 0; d >>= 1) {{ // up-sweep\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
                 if (lid < d) {{\n\
                     uint i = offset * (2 * lid + 1) - 1;\n\
                     uint j = offset * (2 * lid + 2) - 1;\n\
                     temp[CONFLICT_FREE_OFFSET(j)] = {fn_name}(temp[CONFLICT_FREE_OFFSET(i)], temp[CONFLICT_FREE_OFFSET(j)]);\n\
                 }}\n\
                 offset <<= 1;\n\
             }}\n\
             if (lid == 0) {{\n\
                 block_sums[group] = temp[CONFLICT_FREE_OFFSET(2 * lsize - 1)];\n\
                 temp[CONFLICT_FREE_OFFSET(2 * lsize - 1)] = identity;\n\
             }}\n\
             for (uint d = 1; d <= lsize; d <<= 1) {{ // down-sweep\n\
                 offset >>= 1;\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
                 if (lid < d) {{\n\
                     uint i = offset * (2 * lid + 1) - 1;\n\
                     uint j = offset * (2 * lid + 2) - 1;\n\
                     {t} tmp = temp[CONFLICT_FREE_OFFSET(i)];\n\
                     temp[CONFLICT_FREE_OFFSET(i)] = temp[CONFLICT_FREE_OFFSET(j)];\n\
                     temp[CONFLICT_FREE_OFFSET(j)] = {fn_name}(tmp, temp[CONFLICT_FREE_OFFSET(j)]);\n\
                 }}\n\
             }}\n\
             barrier(CLK_LOCAL_MEM_FENCE);\n\
             if (base + ai < n) out[base + ai] = temp[CONFLICT_FREE_OFFSET(ai)];\n\
             if (base + bi < n) out[base + bi] = temp[CONFLICT_FREE_OFFSET(bi)];\n\
         }}\n\
         __kernel void skelcl_scan_add_offsets(__global {t}* restrict data,\n\
                                               __global const {t}* restrict offsets,\n\
                                               const uint n) {{\n\
             uint gid = get_global_id(0);\n\
             if (gid < n) data[gid] = {fn_name}(offsets[get_group_id(0) / 2], data[gid]);\n\
         }}\n"
    );
    Program::from_source(program_name("scan", fn_name, &[t]), source).with_arg_count(6)
}

/// Generate the 2D Map skeleton program for `U f(T)` over a row-major
/// matrix: one work-item per element of a 2D NDRange.
pub fn map2d_program(fn_name: &str, fn_source: &str, in_t: &str, out_t: &str) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: Map skeleton (2D NDRange)\n\
         {fn_source}\n\
         __kernel void skelcl_map2d(__global const {in_t}* restrict in,\n\
                                    __global {out_t}* restrict out,\n\
                                    const uint n_rows,\n\
                                    const uint n_cols) {{\n\
             uint col = get_global_id(0);\n\
             uint row = get_global_id(1);\n\
             if (row < n_rows && col < n_cols) {{\n\
                 out[row * n_cols + col] = {fn_name}(in[row * n_cols + col]);\n\
             }}\n\
         }}\n"
    );
    Program::from_source(program_name("map2d", fn_name, &[in_t, out_t]), source).with_arg_count(4)
}

/// Generate the 2D Zip skeleton program for `U f(T1, T2)` over two
/// identically shaped row-major matrices.
pub fn zip2d_program(
    fn_name: &str,
    fn_source: &str,
    in1_t: &str,
    in2_t: &str,
    out_t: &str,
) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: Zip skeleton (2D NDRange)\n\
         {fn_source}\n\
         __kernel void skelcl_zip2d(__global const {in1_t}* restrict lhs,\n\
                                    __global const {in2_t}* restrict rhs,\n\
                                    __global {out_t}* restrict out,\n\
                                    const uint n_rows,\n\
                                    const uint n_cols) {{\n\
             uint col = get_global_id(0);\n\
             uint row = get_global_id(1);\n\
             if (row < n_rows && col < n_cols) {{\n\
                 uint i = row * n_cols + col;\n\
                 out[i] = {fn_name}(lhs[i], rhs[i]);\n\
             }}\n\
         }}\n"
    );
    Program::from_source(
        program_name("zip2d", fn_name, &[in1_t, in2_t, out_t]),
        source,
    )
    .with_arg_count(5)
}

/// The index-resolution snippet of `stencil_at` for one boundary mode:
/// `neumann` clamps, `wrap` is toroidal, `zero` returns the element type's
/// zero before indexing.
fn stencil_boundary_resolve(boundary: &str, in_t: &str) -> String {
    match boundary {
        "neumann" => "int rr = clamp(row + dr, 0, (int)n_rows - 1);\n\
                      int cc = clamp(col + dc, 0, (int)n_cols - 1);"
            .to_string(),
        "wrap" => "int rr = (row + dr + n_rows) % n_rows;\n\
                   int cc = (col + dc + n_cols) % n_cols;"
            .to_string(),
        _ => format!(
            "int rr = row + dr; int cc = col + dc;\n\
             if (rr < 0 || rr >= (int)n_rows || cc < 0 || cc >= (int)n_cols)\n\
                 return ({in_t})0;"
        ),
    }
}

/// Generate the Stencil2D skeleton program: a 2D stencil of the given
/// radius whose out-of-range accesses follow `boundary` (`neumann` clamps,
/// `wrap` is toroidal, `zero` reads 0). The boundary mode changes the
/// emitted index arithmetic, so it is part of the program name and thus the
/// cache key.
pub fn stencil2d_program(
    fn_name: &str,
    fn_source: &str,
    in_t: &str,
    out_t: &str,
    radius: usize,
    boundary: &str,
) -> Program {
    let resolve = stencil_boundary_resolve(boundary, in_t);
    let source = format!(
        "// generated by SkelCL codegen: Stencil2D skeleton, radius {radius}, {boundary} boundary\n\
         inline {in_t} stencil_at(__global const {in_t}* in, int row, int col,\n\
                                  uint n_rows, uint n_cols, int dr, int dc) {{\n\
             {resolve}\n\
             return in[rr * n_cols + cc];\n\
         }}\n\
         {fn_source}\n\
         __kernel void skelcl_stencil2d(__global const {in_t}* restrict in,\n\
                                        __global {out_t}* restrict out,\n\
                                        const uint n_rows,\n\
                                        const uint n_cols,\n\
                                        const uint row_offset) {{\n\
             uint col = get_global_id(0);\n\
             uint row = get_global_id(1) + row_offset;\n\
             if (row < n_rows && col < n_cols) {{\n\
                 out[row * n_cols + col] = {fn_name}(in, row, col, n_rows, n_cols);\n\
             }}\n\
         }}\n"
    );
    Program::from_source(
        program_name(
            &format!("stencil2d_r{radius}_{boundary}"),
            fn_name,
            &[in_t, out_t],
        ),
        source,
    )
    .with_arg_count(5)
}

/// Generate the iteration form of the Stencil2D skeleton program, behind
/// `Stencil2D::iterate(n)`: the same per-element stencil as
/// [`stencil2d_program`], but written against two device-resident buffers
/// `a` (read) and `b` (write) whose roles swap between launches. The host
/// side launches this one compiled kernel `n` times, rebinding `a`/`b`
/// each round and batching one halo exchange per iteration; no intermediate
/// buffer is ever allocated or downloaded. The element type is forced to be
/// the same on both sides (`{t}` → `{t}`) — ping-ponging requires it.
pub fn stencil2d_iter_program(
    fn_name: &str,
    fn_source: &str,
    t: &str,
    radius: usize,
    boundary: &str,
) -> Program {
    let resolve = stencil_boundary_resolve(boundary, t);
    let source = format!(
        "// generated by SkelCL codegen: Stencil2D iteration, radius {radius}, {boundary} boundary\n\
         // a/b ping-pong: launch n swaps the buffers of launch n-1.\n\
         inline {t} stencil_at(__global const {t}* in, int row, int col,\n\
                               uint n_rows, uint n_cols, int dr, int dc) {{\n\
             {resolve}\n\
             return in[rr * n_cols + cc];\n\
         }}\n\
         {fn_source}\n\
         __kernel void skelcl_stencil2d_iter(__global const {t}* restrict a,\n\
                                             __global {t}* restrict b,\n\
                                             const uint n_rows,\n\
                                             const uint n_cols,\n\
                                             const uint row_offset) {{\n\
             uint col = get_global_id(0);\n\
             uint row = get_global_id(1) + row_offset;\n\
             if (row < n_rows && col < n_cols) {{\n\
                 b[row * n_cols + col] = {fn_name}(a, row, col, n_rows, n_cols);\n\
             }}\n\
         }}\n"
    );
    Program::from_source(
        program_name(
            &format!("stencil2d_iter_r{radius}_{boundary}"),
            fn_name,
            &[t],
        ),
        source,
    )
    .with_arg_count(5)
}

/// Generate the row-segmented 2D Reduce program behind
/// [`crate::ReduceRows`]: one work-item per matrix row folds that row's
/// column segment in **ascending column order** from a seed — the identity
/// on the first (or only) segment, the previous segment's per-row partial
/// when column-block parts are chained. The fixed fold order is what makes
/// the result bit-identical across device counts and distributions.
pub fn reduce_rows_program(fn_name: &str, fn_source: &str, t: &str) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: ReduceRows skeleton (row-segmented fold)\n\
         {fn_source}\n\
         __kernel void skelcl_reduce_rows(__global const {t}* restrict in,\n\
                                          __global const {t}* restrict seed,\n\
                                          __global {t}* restrict out,\n\
                                          const uint n_rows,\n\
                                          const uint n_cols,\n\
                                          const uint row_stride,\n\
                                          const uint has_seed,\n\
                                          const {t} identity) {{\n\
             uint row = get_global_id(0);\n\
             if (row < n_rows) {{\n\
                 {t} acc = has_seed ? seed[row] : identity;\n\
                 for (uint c = 0; c < n_cols; ++c) {{\n\
                     acc = {fn_name}(acc, in[row * row_stride + c]);\n\
                 }}\n\
                 out[row] = acc;\n\
             }}\n\
         }}\n"
    );
    Program::from_source(program_name("reduce_rows", fn_name, &[t]), source).with_arg_count(8)
}

/// Generate the column-strided 2D Reduce program behind
/// [`crate::ReduceCols`]: one work-item per matrix column folds that
/// column's row segment in **ascending row order** from a seed (identity,
/// or the previous row-block's per-column partial when parts are chained).
/// Reads stride by the part's row pitch — the column-strided twin of
/// [`reduce_rows_program`], with its own cache key.
pub fn reduce_cols_program(fn_name: &str, fn_source: &str, t: &str) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: ReduceCols skeleton (column-strided fold)\n\
         {fn_source}\n\
         __kernel void skelcl_reduce_cols(__global const {t}* restrict in,\n\
                                          __global const {t}* restrict seed,\n\
                                          __global {t}* restrict out,\n\
                                          const uint n_rows,\n\
                                          const uint n_cols,\n\
                                          const uint row_stride,\n\
                                          const uint has_seed,\n\
                                          const {t} identity) {{\n\
             uint col = get_global_id(0);\n\
             if (col < n_cols) {{\n\
                 {t} acc = has_seed ? seed[col] : identity;\n\
                 for (uint r = 0; r < n_rows; ++r) {{\n\
                     acc = {fn_name}(acc, in[r * row_stride + col]);\n\
                 }}\n\
                 out[col] = acc;\n\
             }}\n\
         }}\n"
    );
    Program::from_source(program_name("reduce_cols", fn_name, &[t]), source).with_arg_count(8)
}

/// Generate the index-carrying row reduction behind
/// [`crate::ReduceRowsArg`]: per row, a strictly-better comparison scan in
/// ascending column order keeps the best value **and its global column
/// index** (lowest index wins ties because only a strict improvement
/// replaces the incumbent). Chained column-block parts seed from the
/// previous segment's (value, index) pair.
pub fn reduce_rows_arg_program(fn_name: &str, fn_source: &str, t: &str) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: ReduceRowsArg skeleton (argbest scan)\n\
         {fn_source}\n\
         __kernel void skelcl_reduce_rows_arg(__global const {t}* restrict in,\n\
                                              __global const {t}* restrict seed_val,\n\
                                              __global const uint* restrict seed_idx,\n\
                                              __global {t}* restrict out_val,\n\
                                              __global uint* restrict out_idx,\n\
                                              const uint n_rows,\n\
                                              const uint n_cols,\n\
                                              const uint row_stride,\n\
                                              const uint col_offset,\n\
                                              const uint has_seed) {{\n\
             uint row = get_global_id(0);\n\
             if (row < n_rows) {{\n\
                 {t} best = has_seed ? seed_val[row] : in[row * row_stride];\n\
                 uint best_i = has_seed ? seed_idx[row] : col_offset;\n\
                 for (uint c = has_seed ? 0 : 1; c < n_cols; ++c) {{\n\
                     {t} x = in[row * row_stride + c];\n\
                     if ({fn_name}(x, best)) {{ best = x; best_i = col_offset + c; }}\n\
                 }}\n\
                 out_val[row] = best;\n\
                 out_idx[row] = best_i;\n\
             }}\n\
         }}\n"
    );
    Program::from_source(program_name("reduce_rows_arg", fn_name, &[t]), source).with_arg_count(10)
}

/// Generate the index-carrying column reduction behind
/// [`crate::ReduceColsArg`]: per column, a strictly-better comparison scan
/// in ascending row order keeps the best value **and its global row
/// index** (lowest index wins ties). Chained row-block parts seed from the
/// previous segment's (value, index) pair — the column-strided twin of
/// [`reduce_rows_arg_program`], with its own cache key.
pub fn reduce_cols_arg_program(fn_name: &str, fn_source: &str, t: &str) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: ReduceColsArg skeleton (argbest scan)\n\
         {fn_source}\n\
         __kernel void skelcl_reduce_cols_arg(__global const {t}* restrict in,\n\
                                              __global const {t}* restrict seed_val,\n\
                                              __global const uint* restrict seed_idx,\n\
                                              __global {t}* restrict out_val,\n\
                                              __global uint* restrict out_idx,\n\
                                              const uint n_rows,\n\
                                              const uint n_cols,\n\
                                              const uint row_stride,\n\
                                              const uint row_offset,\n\
                                              const uint has_seed) {{\n\
             uint col = get_global_id(0);\n\
             if (col < n_cols) {{\n\
                 {t} best = has_seed ? seed_val[col] : in[col];\n\
                 uint best_i = has_seed ? seed_idx[col] : row_offset;\n\
                 for (uint r = has_seed ? 0 : 1; r < n_rows; ++r) {{\n\
                     {t} x = in[r * row_stride + col];\n\
                     if ({fn_name}(x, best)) {{ best = x; best_i = row_offset + r; }}\n\
                 }}\n\
                 out_val[col] = best;\n\
                 out_idx[col] = best_i;\n\
             }}\n\
         }}\n"
    );
    Program::from_source(program_name("reduce_cols_arg", fn_name, &[t]), source).with_arg_count(10)
}

/// Generate the naive AllPairs skeleton program: one work-item per output
/// element, combining `zip(A[i][k], B[k][j])` across the inner dimension
/// with `reduce` (SkelCL's later `AllPairs(M, N)` skeleton restricted to
/// the zip-reduce form that admits the fast tiled implementation).
pub fn allpairs_program(
    zip_name: &str,
    zip_source: &str,
    reduce_name: &str,
    reduce_source: &str,
    in_t: &str,
    out_t: &str,
) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: AllPairs skeleton (naive)\n\
         {zip_source}\n\
         {reduce_source}\n\
         __kernel void skelcl_allpairs(__global const {in_t}* restrict a,\n\
                                       __global const {in_t}* restrict b,\n\
                                       __global {out_t}* restrict c,\n\
                                       const uint m,\n\
                                       const uint k,\n\
                                       const uint n,\n\
                                       const {out_t} identity) {{\n\
             uint col = get_global_id(0);\n\
             uint row = get_global_id(1);\n\
             if (row < m && col < n) {{\n\
                 {out_t} acc = identity;\n\
                 for (uint kk = 0; kk < k; ++kk) {{\n\
                     acc = {reduce_name}(acc, {zip_name}(a[row * k + kk], b[kk * n + col]));\n\
                 }}\n\
                 c[row * n + col] = acc;\n\
             }}\n\
         }}\n"
    );
    Program::from_source(
        program_name(
            "allpairs",
            &format!("{zip_name}_{reduce_name}"),
            &[in_t, out_t],
        ),
        source,
    )
    .with_arg_count(7)
}

/// Generate the tiled AllPairs skeleton program: each `tile × tile`
/// work-group stages an A-row-strip tile and a B-col-strip tile in local
/// memory and every item combines from there, cutting global traffic by a
/// factor of `tile` (the classic blocked matrix-multiply scheme). The tile
/// dimension changes the emitted code — and the local-memory footprint — so
/// it is part of the program name and thus the kernel cache key.
pub fn allpairs_tiled_program(
    zip_name: &str,
    zip_source: &str,
    reduce_name: &str,
    reduce_source: &str,
    in_t: &str,
    out_t: &str,
    tile: usize,
) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: AllPairs skeleton (tiled, {tile}x{tile} local tiles)\n\
         #define TILE {tile}\n\
         {zip_source}\n\
         {reduce_source}\n\
         __kernel void skelcl_allpairs_tiled(__global const {in_t}* restrict a,\n\
                                             __global const {in_t}* restrict b,\n\
                                             __global {out_t}* restrict c,\n\
                                             const uint m,\n\
                                             const uint k,\n\
                                             const uint n,\n\
                                             const {out_t} identity,\n\
                                             __local {in_t}* a_tile,\n\
                                             __local {in_t}* b_tile) {{\n\
             uint col = get_global_id(0);\n\
             uint row = get_global_id(1);\n\
             uint lx = get_local_id(0);\n\
             uint ly = get_local_id(1);\n\
             {out_t} acc = identity;\n\
             for (uint t = 0; t < (k + TILE - 1) / TILE; ++t) {{\n\
                 uint ka = t * TILE + lx;\n\
                 uint kb = t * TILE + ly;\n\
                 a_tile[ly * TILE + lx] = (row < m && ka < k) ? a[row * k + ka] : identity;\n\
                 b_tile[ly * TILE + lx] = (col < n && kb < k) ? b[kb * n + col] : identity;\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
                 uint span = min((uint)TILE, k - t * TILE);\n\
                 for (uint kk = 0; kk < span; ++kk) {{\n\
                     acc = {reduce_name}(acc, {zip_name}(a_tile[ly * TILE + kk], b_tile[kk * TILE + lx]));\n\
                 }}\n\
                 barrier(CLK_LOCAL_MEM_FENCE);\n\
             }}\n\
             if (row < m && col < n) c[row * n + col] = acc;\n\
         }}\n"
    );
    Program::from_source(
        program_name(
            &format!("allpairs_tiled{tile}"),
            &format!("{zip_name}_{reduce_name}"),
            &[in_t, out_t],
        ),
        source,
    )
    .with_arg_count(9)
}

/// Generate the MapOverlap skeleton program (stencil with halo; SkelCL's
/// follow-up extension, announced as future work in Section III-D).
pub fn map_overlap_program(fn_name: &str, fn_source: &str, t: &str, radius: usize) -> Program {
    let source = format!(
        "// generated by SkelCL codegen: MapOverlap skeleton, radius {radius}\n\
         {fn_source}\n\
         __kernel void skelcl_map_overlap(__global const {t}* restrict in,\n\
                                          __global {t}* restrict out,\n\
                                          const uint n) {{\n\
             uint gid = get_global_id(0);\n\
             if (gid < n) {{\n\
                 out[gid] = {fn_name}(in, gid, n);\n\
             }}\n\
         }}\n"
    );
    Program::from_source(
        program_name(&format!("mapoverlap{radius}"), fn_name, &[t]),
        source,
    )
    .with_arg_count(3)
}

// ---------------------------------------------------------------------------
// Fused pipeline programs (expression-template kernel fusion).
//
// A `Pipeline` (see `crate::skeletons::pipeline`) collapses a chain of
// element-wise stages into the body of a neighbouring stencil / reduce /
// map kernel. The builders below generate one program for the whole fused
// group: every stage's user-function source is pasted once and the kernel
// body chains the calls, so no intermediate buffer ever appears in the
// emitted code. The joined stage names (and, for stencils, radius and
// boundary mode) go into the program name — the fused program is cached in
// the `ProgramRegistry` under that key exactly like any single-skeleton
// program.

/// One stage of a fused pipeline group, as codegen sees it.
#[derive(Clone, Debug)]
pub struct FusedStage {
    /// `"map"`, `"zip"`, `"stencil"` or `"stencil_pair"` — determines the
    /// call shape in the emitted chain and the extra kernel arguments
    /// (each `zip` stage threads one more operand buffer).
    pub kind: &'static str,
    /// The user function's name (call site in the chain).
    pub name: String,
    /// The user function's source, pasted above the kernel.
    pub source: String,
    /// Static per-call cost estimate (summed into the fused kernel's
    /// per-item issue cost by the pipeline launcher; codegen ignores it).
    pub static_ops: u64,
}

impl FusedStage {
    pub fn new(
        kind: &'static str,
        name: impl Into<String>,
        source: impl Into<String>,
        static_ops: u64,
    ) -> Self {
        FusedStage {
            kind,
            name: name.into(),
            source: source.into(),
            static_ops,
        }
    }
}

/// The `+`-joined stage names — the structural part of a fused program's
/// cache key (`a+b+c` differs from `a+c+b`: fusion order matters).
fn fused_chain_name(stages: &[FusedStage]) -> String {
    stages
        .iter()
        .map(|s| s.name.as_str())
        .collect::<Vec<_>>()
        .join("+")
}

/// Concatenated user-function sources, one paste per stage.
fn fused_sources(stages: &[FusedStage]) -> String {
    stages
        .iter()
        .map(|s| s.source.as_str())
        .collect::<Vec<_>>()
        .join("\n")
}

/// The nested call chain `s_n(...s_1(s_0(expr))...)` for an element-wise
/// stage run. Each `zip` stage reads its own operand buffer at the same
/// index, so it shows up as a two-argument call.
fn fused_value_chain(stages: &[FusedStage], seed: &str) -> String {
    let mut expr = seed.to_string();
    for (i, s) in stages.iter().enumerate() {
        expr = match s.kind {
            "zip" => format!("{}({expr}, op{i}[i])", s.name),
            _ => format!("{}({expr})", s.name),
        };
    }
    expr
}

/// The extra `__global` operand-buffer parameters a stage list needs: one
/// per `zip` stage (named `op<stage index>`).
fn fused_zip_params(stages: &[FusedStage], elem_t: &str) -> (String, usize) {
    let mut params = String::new();
    let mut count = 0;
    for (i, s) in stages.iter().enumerate() {
        if s.kind == "zip" {
            params.push_str(&format!(
                ",\n                                  __global const {elem_t}* restrict op{i}"
            ));
            count += 1;
        }
    }
    (params, count)
}

/// Generate the fused element-wise program: an N-stage `map`/`zip` chain
/// collapsed into one 2D-NDRange kernel — one launch, zero intermediate
/// buffers, however long the chain.
pub fn fused_map2d_program(stages: &[FusedStage], in_t: &str, out_t: &str) -> Program {
    let chain = fused_value_chain(stages, "in[i]");
    let (zip_params, n_zips) = fused_zip_params(stages, in_t);
    let source = format!(
        "// generated by SkelCL codegen: fused element-wise pipeline ({} stages)\n\
         {}\n\
         __kernel void skelcl_fused_map2d(__global const {in_t}* restrict in,\n\
                                  __global {out_t}* restrict out{zip_params},\n\
                                  const uint n_rows,\n\
                                  const uint n_cols) {{\n\
             uint col = get_global_id(0);\n\
             uint row = get_global_id(1);\n\
             if (row < n_rows && col < n_cols) {{\n\
                 uint i = row * n_cols + col;\n\
                 out[i] = {chain};\n\
             }}\n\
         }}\n",
        stages.len(),
        fused_sources(stages),
    );
    Program::from_source(
        program_name("fused_map2d", &fused_chain_name(stages), &[in_t, out_t]),
        source,
    )
    .with_arg_count(4 + n_zips)
}

/// Generate a fused stencil program: exactly one `stencil`/`stencil_pair`
/// stage whose neighbourhood reads run the *pre* element-wise chain and
/// whose result runs the *post* chain before the single write. `pre`,
/// `stencil` and `post` together are the launch's stage list; the split is
/// positional (stages before/after the stencil stage).
pub fn fused_stencil2d_program(
    stages: &[FusedStage],
    in_t: &str,
    out_t: &str,
    radius: usize,
    boundary: &str,
) -> Program {
    let si = stages
        .iter()
        .position(|s| s.kind.starts_with("stencil"))
        .expect("a fused stencil group contains a stencil stage");
    let (pre, rest) = stages.split_at(si);
    let (stencil, post) = (&rest[0], &rest[1..]);
    let resolve = stencil_boundary_resolve(boundary, in_t);
    let read_chain = fused_value_chain(pre, "in[rr * n_cols + cc]");
    let write_chain = fused_value_chain(
        post,
        &format!("{}(in, row, col, n_rows, n_cols)", stencil.name),
    );
    let (zip_params, n_zips) = fused_zip_params(stages, in_t);
    let source = format!(
        "// generated by SkelCL codegen: fused stencil pipeline, radius {radius}, {boundary} boundary\n\
         // {} pre-stage(s) fused into the neighbourhood reads, {} post-stage(s) into the write.\n\
         inline {in_t} stencil_at(__global const {in_t}* in, int row, int col,\n\
                                  uint n_rows, uint n_cols, int dr, int dc) {{\n\
             {resolve}\n\
             return {read_chain};\n\
         }}\n\
         {}\n\
         __kernel void skelcl_fused_stencil2d(__global const {in_t}* restrict in,\n\
                                  __global {out_t}* restrict out{zip_params},\n\
                                  const uint n_rows,\n\
                                  const uint n_cols,\n\
                                  const uint row_offset) {{\n\
             uint col = get_global_id(0);\n\
             uint row = get_global_id(1) + row_offset;\n\
             if (row < n_rows && col < n_cols) {{\n\
                 out[row * n_cols + col] = {write_chain};\n\
             }}\n\
         }}\n",
        pre.len(),
        post.len(),
        fused_sources(stages),
    );
    Program::from_source(
        program_name(
            &format!("fused_stencil2d_r{radius}_{boundary}"),
            &fused_chain_name(stages),
            &[in_t, out_t],
        ),
        source,
    )
    .with_arg_count(5 + n_zips)
}

/// Generate a fused row-reduction program: the element-wise chain runs on
/// every element *as it is folded*, so the whole map→…→reduce-rows pipeline
/// is one launch with zero intermediate buffers. The fold is the same
/// ascending-column left fold as [`reduce_rows_program`], which keeps the
/// result bit-identical to the unfused chain.
pub fn fused_reduce_rows_program(
    stages: &[FusedStage],
    reduce_name: &str,
    reduce_source: &str,
    in_t: &str,
    out_t: &str,
) -> Program {
    let chain = fused_value_chain(stages, "in[row * n_cols + c]");
    let (zip_params, n_zips) = fused_zip_params(stages, in_t);
    let full_name = if stages.is_empty() {
        reduce_name.to_string()
    } else {
        format!("{}+{reduce_name}", fused_chain_name(stages))
    };
    let source = format!(
        "// generated by SkelCL codegen: fused reduce-rows pipeline ({} fused stages)\n\
         {}\n\
         {reduce_source}\n\
         __kernel void skelcl_fused_reduce_rows(__global const {in_t}* restrict in,\n\
                                  __global {out_t}* restrict out{zip_params},\n\
                                  const uint n_rows,\n\
                                  const uint n_cols,\n\
                                  const {out_t} identity) {{\n\
             uint row = get_global_id(0);\n\
             if (row < n_rows) {{\n\
                 {out_t} acc = identity;\n\
                 for (uint c = 0; c < n_cols; ++c) {{\n\
                     acc = {reduce_name}(acc, {chain});\n\
                 }}\n\
                 out[row] = acc;\n\
             }}\n\
         }}\n",
        stages.len(),
        fused_sources(stages),
    );
    Program::from_source(
        program_name("fused_reduce_rows", &full_name, &[in_t, out_t]),
        source,
    )
    .with_arg_count(5 + n_zips)
}

/// Generate the post-fused AllPairs program: [`allpairs_program`] (or its
/// tiled twin when `tile > 0`) with an element-wise chain applied to each
/// output element before the single write — `AllPairs::with_post` fuses
/// e.g. the square root of a pairwise Euclidean distance into the
/// zip-reduce kernel instead of launching a separate Map over the result.
#[allow(clippy::too_many_arguments)]
pub fn fused_allpairs_program(
    zip_name: &str,
    zip_source: &str,
    reduce_name: &str,
    reduce_source: &str,
    post: &[FusedStage],
    in_t: &str,
    out_t: &str,
    tile: usize,
) -> Program {
    let write_chain = fused_value_chain(post, "acc");
    let post_sources = fused_sources(post);
    let full_name = format!("{zip_name}_{reduce_name}+{}", fused_chain_name(post));
    if tile == 0 {
        let source = format!(
            "// generated by SkelCL codegen: AllPairs skeleton (naive, fused post chain)\n\
             {zip_source}\n\
             {reduce_source}\n\
             {post_sources}\n\
             __kernel void skelcl_fused_allpairs(__global const {in_t}* restrict a,\n\
                                  __global const {in_t}* restrict b,\n\
                                  __global {out_t}* restrict c,\n\
                                  const uint m,\n\
                                  const uint k,\n\
                                  const uint n,\n\
                                  const {out_t} identity) {{\n\
                 uint col = get_global_id(0);\n\
                 uint row = get_global_id(1);\n\
                 if (row < m && col < n) {{\n\
                     {out_t} acc = identity;\n\
                     for (uint kk = 0; kk < k; ++kk) {{\n\
                         acc = {reduce_name}(acc, {zip_name}(a[row * k + kk], b[kk * n + col]));\n\
                     }}\n\
                     c[row * n + col] = {write_chain};\n\
                 }}\n\
             }}\n"
        );
        Program::from_source(
            program_name("fused_allpairs", &full_name, &[in_t, out_t]),
            source,
        )
        .with_arg_count(7)
    } else {
        let source = format!(
            "// generated by SkelCL codegen: AllPairs skeleton (tiled {tile}x{tile}, fused post chain)\n\
             #define TILE {tile}\n\
             {zip_source}\n\
             {reduce_source}\n\
             {post_sources}\n\
             __kernel void skelcl_fused_allpairs_tiled(__global const {in_t}* restrict a,\n\
                                  __global const {in_t}* restrict b,\n\
                                  __global {out_t}* restrict c,\n\
                                  const uint m,\n\
                                  const uint k,\n\
                                  const uint n,\n\
                                  const {out_t} identity,\n\
                                  __local {in_t}* a_tile,\n\
                                  __local {in_t}* b_tile) {{\n\
                 uint col = get_global_id(0);\n\
                 uint row = get_global_id(1);\n\
                 uint lx = get_local_id(0);\n\
                 uint ly = get_local_id(1);\n\
                 {out_t} acc = identity;\n\
                 for (uint t = 0; t < (k + TILE - 1) / TILE; ++t) {{\n\
                     uint ka = t * TILE + lx;\n\
                     uint kb = t * TILE + ly;\n\
                     a_tile[ly * TILE + lx] = (row < m && ka < k) ? a[row * k + ka] : identity;\n\
                     b_tile[ly * TILE + lx] = (col < n && kb < k) ? b[kb * n + col] : identity;\n\
                     barrier(CLK_LOCAL_MEM_FENCE);\n\
                     uint span = min((uint)TILE, k - t * TILE);\n\
                     for (uint kk = 0; kk < span; ++kk) {{\n\
                         acc = {reduce_name}(acc, {zip_name}(a_tile[ly * TILE + kk], b_tile[kk * TILE + lx]));\n\
                     }}\n\
                     barrier(CLK_LOCAL_MEM_FENCE);\n\
                 }}\n\
                 if (row < m && col < n) c[row * n + col] = {write_chain};\n\
             }}\n"
        );
        Program::from_source(
            program_name(
                &format!("fused_allpairs_tiled{tile}"),
                &full_name,
                &[in_t, out_t],
            ),
            source,
        )
        .with_arg_count(9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skel_fn_macro_produces_both_twins() {
        let mult = crate::skel_fn!(
            fn mult(x: f32, y: f32) -> f32 {
                x * y
            }
        );
        assert_eq!(mult.name(), "mult");
        assert!(mult.source().contains("fn mult"));
        assert!(mult.source().contains("x * y"));
        assert_eq!((mult.func())(6.0, 7.0), 42.0);
        assert_eq!(mult.static_ops(), 1);
    }

    #[test]
    fn static_ops_counts_arithmetic() {
        assert_eq!(estimate_static_ops("x * y"), 1);
        assert_eq!(estimate_static_ops("a + b * c - d"), 3);
        // floor of 1 for pure data movement
        assert_eq!(estimate_static_ops("x"), 1);
    }

    #[test]
    fn map_program_embeds_user_source_and_callsite() {
        let p = map_program(
            "square",
            "float square(float x){return x*x;}",
            "float",
            "float",
            0,
        );
        assert!(p.source.contains("float square(float x)"));
        assert!(p.source.contains("square(in[gid])"));
        assert!(p.source.contains("__kernel void skelcl_map"));
        assert_eq!(p.n_args, 3);
    }

    #[test]
    fn extra_args_extend_the_signature() {
        let p = map_program("f", "float f(float x){return x;}", "float", "float", 2);
        assert!(p.source.contains("arg0"));
        assert!(p.source.contains("arg1"));
        assert_eq!(p.n_args, 5);
    }

    #[test]
    fn zip_reduce_scan_programs_are_distinct() {
        let z = zip_program(
            "mult",
            "float mult(float x,float y){return x*y;}",
            "float",
            "float",
            "float",
            0,
        );
        let r = reduce_program("sum", "float sum(float x,float y){return x+y;}", "float");
        let s = scan_program("sum", "float sum(float x,float y){return x+y;}", "float");
        assert_ne!(z.hash(), r.hash());
        assert_ne!(r.hash(), s.hash());
        assert!(r.source.contains("scratch"));
        assert!(s.source.contains("CONFLICT_FREE_OFFSET"));
    }

    #[test]
    fn same_user_fn_same_types_same_program_hash() {
        let a = map_program("f", "float f(float x){return x+1;}", "float", "float", 0);
        let b = map_program("f", "float f(float x){return x+1;}", "float", "float", 0);
        assert_eq!(a.hash(), b.hash());
        // and a different body changes the hash (cache key correctness)
        let c = map_program("f", "float f(float x){return x+2;}", "float", "float", 0);
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn stencil_iter_program_is_distinct_from_the_apply_form() {
        let src = "float f(__global float* in, int r, int c, uint nr, uint nc) { return 0.0f; }";
        let apply = stencil2d_program("f", src, "float", "float", 1, "neumann");
        let iter = stencil2d_iter_program("f", src, "float", 1, "neumann");
        assert_ne!(apply.hash(), iter.hash());
        assert!(iter.source.contains("skelcl_stencil2d_iter"));
        assert!(iter.source.contains("ping-pong"));
        assert_eq!(iter.n_args, 5);
        // Boundary mode is part of the iter cache key too.
        let wrap = stencil2d_iter_program("f", src, "float", 1, "wrap");
        assert_ne!(iter.hash(), wrap.hash());
    }

    #[test]
    fn with_static_ops_overrides_estimate() {
        let f = UserFn::new("g", "loop body", |x: f32| x).with_static_ops(64);
        assert_eq!(f.static_ops(), 64);
    }
}
