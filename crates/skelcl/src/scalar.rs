//! The scalar result wrapper (`SkelCL::Scalar<float> C = sum(...)` in the
//! paper's Listing 1).

use vgpu::Scalar as Element;

/// Result of a full reduction: a single value plus the virtual time at
/// which it became available on the host.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scalar<T: Element> {
    value: T,
    ready_at_s: f64,
}

impl<T: Element> Scalar<T> {
    pub(crate) fn new(value: T, ready_at_s: f64) -> Self {
        Scalar { value, ready_at_s }
    }

    /// The paper's `getValue()`.
    pub fn get_value(&self) -> T {
        self.value
    }

    /// Virtual host time at which the value was available.
    pub fn ready_at_s(&self) -> f64 {
        self.ready_at_s
    }
}

impl<T: Element> From<Scalar<T>> for f64
where
    T: Into<f64>,
{
    fn from(s: Scalar<T>) -> f64 {
        s.value.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_value_returns_the_payload() {
        let s = Scalar::new(42.5f32, 1.0);
        assert_eq!(s.get_value(), 42.5);
        assert_eq!(s.ready_at_s(), 1.0);
        let f: f64 = s.into();
        assert_eq!(f, 42.5);
    }
}
