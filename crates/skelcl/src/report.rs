//! Exporters over the telemetry layer: Chrome trace JSON, plain-text run
//! reports, and the roofline (% of modeled peak) report.
//!
//! Three consumers, three shapes:
//!
//! * [`chrome_trace_json`] merges skeleton [`SpanRecord`]s with the
//!   platform's per-engine [`vgpu::CommandRecord`] timeline into the Chrome
//!   trace-event format — load the file in Perfetto or `chrome://tracing`
//!   and every device shows its compute and copy engine as separate tracks
//!   under the skeleton spans that scheduled the work.
//! * [`RunReport`] (and [`text_report`]) summarises one measured run:
//!   counter deltas, per-device/per-engine utilization, copy-under-compute
//!   overlap, and the roofline verdict.
//! * [`roofline_report`] compares what a run moved and computed against the
//!   cost model's own peaks ([`vgpu::DeviceSpec`] clock/bandwidth,
//!   [`vgpu::topology::Topology`] link bandwidth) — the "% of modeled peak" number
//!   ROADMAP item 3 asks every figure to print.
//!
//! The crate deliberately has no serde dependency; the exporter hand-rolls
//! its JSON and the [`json`] submodule provides the minimal parser the
//! round-trip tests (and CI's validity gate) use.

use crate::metrics::{HistogramSnapshot, MetricsRegistry};
use crate::trace::SpanRecord;
use std::fmt::Write as _;
use vgpu::{
    compute_copy_overlap_s, engine_usage, CommandRecord, EngineKind, Platform, StatsSnapshot,
};

/// Escape a string for inclusion in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an f64 as a JSON number (non-finite values degrade to 0).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Virtual seconds → trace-event microseconds.
fn us(t_s: f64) -> f64 {
    t_s * 1e6
}

/// Process id of the first tenant lane in [`chrome_trace_json`]. Devices
/// occupy `1 + d`, so the base leaves room for 99 devices before a
/// collision — far above any modeled platform.
const TENANT_PID_BASE: usize = 100;

/// Export skeleton spans plus the engine timeline as Chrome trace-event
/// JSON (the `{"traceEvents": [...]}` object form).
///
/// Layout: process 0 is the SkelCL span track (one thread per nesting
/// depth); process `1 + d` is device `d`, with thread 0 the compute engine
/// and thread 1 the copy engine. Executor job spans (name `executor.job*`
/// carrying a `tenant` attr) get one process per tenant starting at pid
/// 100, with thread 0 the whole-job span, thread 1 queue wait, and thread
/// 2 service — so Perfetto shows a serving lane per tenant. All events are
/// `ph: "X"` (complete) events with microsecond timestamps on the virtual
/// clock.
pub fn chrome_trace_json(spans: &[SpanRecord], trace: &[CommandRecord]) -> String {
    let mut events: Vec<String> = Vec::new();

    // Metadata: name the span process/threads.
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
         \"args\":{\"name\":\"skelcl spans\"}}"
            .to_string(),
    );

    fn tenant_of(s: &SpanRecord) -> Option<&str> {
        if !s.name.starts_with("executor.job") {
            return None;
        }
        s.attrs
            .iter()
            .find(|(k, _)| *k == "tenant")
            .map(|(_, v)| v.as_str())
    }

    // Tenant lanes in first-appearance order, so pid assignment is stable
    // across exports of the same run.
    let mut tenants: Vec<&str> = Vec::new();
    for s in spans {
        if let Some(t) = tenant_of(s) {
            if !tenants.contains(&t) {
                tenants.push(t);
            }
        }
    }
    for (i, t) in tenants.iter().enumerate() {
        let pid = TENANT_PID_BASE + i;
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
             \"args\":{{\"name\":\"tenant:{}\"}}}}",
            json_escape(t)
        ));
        for (tid, lane) in [(0, "jobs"), (1, "queue wait"), (2, "service")] {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{lane}\"}}}}"
            ));
        }
    }

    // Span nesting depth = distance to the root through parent links.
    let depth_of = |span: &SpanRecord| -> usize {
        let mut depth = 0;
        let mut cur = span.parent;
        while let Some(pid) = cur {
            depth += 1;
            cur = spans.iter().find(|s| s.id == pid).and_then(|s| s.parent);
            if depth > spans.len() {
                break; // defensive: cycles cannot happen, but never loop
            }
        }
        depth
    };

    for s in spans {
        let mut args = String::new();
        let _ = write!(
            args,
            "\"span_id\":{},\"halo_exchanges\":{},\"program_cache_hits\":{},\
             \"program_cache_misses\":{},\"h2d_bytes\":{},\"d2h_bytes\":{},\
             \"d2d_bytes\":{},\"kernel_launches\":{},\"trace_first\":{},\"trace_len\":{}",
            s.id,
            s.halo_exchanges,
            s.program_cache_hits,
            s.program_cache_misses,
            s.stats.h2d_bytes,
            s.stats.d2h_bytes,
            s.stats.d2d_bytes,
            s.stats.kernel_launches,
            s.trace_first,
            s.trace_len,
        );
        if let Some(p) = s.parent {
            let _ = write!(args, ",\"parent\":{p}");
        }
        for (k, v) in &s.attrs {
            let _ = write!(args, ",\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        // Executor job spans route to their tenant's lane; everything else
        // stacks by nesting depth on the span process.
        let (cat, pid, tid) = match tenant_of(s) {
            Some(t) => {
                let pid = TENANT_PID_BASE + tenants.iter().position(|x| *x == t).unwrap_or(0);
                let tid = match s.name {
                    "executor.job.queue_wait" => 1,
                    "executor.job.service" => 2,
                    _ => 0,
                };
                ("serving", pid, tid)
            }
            None => ("skeleton", 0, depth_of(s)),
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{{}}}}}",
            json_escape(s.name),
            cat,
            json_num(us(s.start_s)),
            json_num(us(s.duration_s())),
            pid,
            tid,
            args,
        ));
    }

    let mut devices: Vec<usize> = trace.iter().map(|r| r.device.0).collect();
    devices.sort_unstable();
    devices.dedup();
    for d in &devices {
        events.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\
             \"args\":{{\"name\":\"gpu{}\"}}}}",
            d + 1,
            d
        ));
        for (tid, engine) in [(0, "compute engine"), (1, "copy engine")] {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                d + 1,
                tid,
                engine
            ));
        }
    }

    for (i, r) in trace.iter().enumerate() {
        let (tid, name) = match r.engine {
            EngineKind::Compute => (0, "compute"),
            EngineKind::Copy => (1, "copy"),
        };
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"engine\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"record\":{},\"device\":{}}}}}",
            name,
            json_num(us(r.start_s)),
            json_num(us((r.end_s - r.start_s).max(0.0))),
            r.device.0 + 1,
            tid,
            i,
            r.device.0,
        ));
    }

    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}",
        events.join(",")
    )
}

/// The roofline verdict for one measured window: what the run computed and
/// moved, against the cost model's own peak rates.
///
/// All "% of peak" numbers are *time floors*: e.g. `compute_floor_s` is how
/// long the window's kernel cycles would take with every device computing
/// at full modeled rate; `pct_peak_compute() = compute_floor_s / window_s`.
/// A run whose dominant floor reaches 100 % is running *at* the model's
/// roofline for that resource.
#[derive(Debug, Clone)]
pub struct RooflineReport {
    /// Measured window (virtual seconds).
    pub window_s: f64,
    pub n_devices: usize,
    /// Busiest-CU cycles summed over all launches in the window.
    pub kernel_cu_cycles: u64,
    /// Device-memory traffic generated by kernels (bytes).
    pub kernel_global_bytes: u64,
    /// Host-link crossings in bytes: h2d + d2h + 2 × d2d (a staged
    /// device-to-device copy crosses the bus twice).
    pub link_bytes: u64,
    /// Time the window's cycles need at full modeled compute rate.
    pub compute_floor_s: f64,
    /// Time the window's kernel memory traffic needs at full device
    /// memory bandwidth.
    pub memory_floor_s: f64,
    /// Time the window's PCIe traffic needs at full host-bus bandwidth.
    pub transfer_floor_s: f64,
    /// Aggregate modeled peak arithmetic rate (ops/s) across devices,
    /// after the driver's achieved-issue efficiency.
    pub peak_ops_s: f64,
    /// Aggregate device-memory bandwidth (bytes/s) across devices.
    pub peak_mem_bytes_s: f64,
    /// Host-bus bandwidth (bytes/s).
    pub peak_link_bytes_s: f64,
}

impl RooflineReport {
    pub fn pct_peak_compute(&self) -> f64 {
        pct(self.compute_floor_s, self.window_s)
    }

    pub fn pct_peak_membw(&self) -> f64 {
        pct(self.memory_floor_s, self.window_s)
    }

    pub fn pct_peak_linkbw(&self) -> f64 {
        pct(self.transfer_floor_s, self.window_s)
    }

    /// Which resource the run is closest to saturating.
    pub fn bound(&self) -> &'static str {
        let c = self.compute_floor_s;
        let m = self.memory_floor_s;
        let t = self.transfer_floor_s;
        if c >= m && c >= t {
            "compute"
        } else if m >= t {
            "memory"
        } else {
            "transfer"
        }
    }

    /// The headline number: how close the run is to the cost model's
    /// roofline bound, i.e. the largest of the three per-resource
    /// percentages. 100 % means the window is fully accounted for by its
    /// dominant resource.
    pub fn pct_of_modeled_peak(&self) -> f64 {
        self.pct_peak_compute()
            .max(self.pct_peak_membw())
            .max(self.pct_peak_linkbw())
    }

    /// Achieved arithmetic rate implied by the window (ops/s estimate).
    pub fn achieved_ops_s(&self) -> f64 {
        self.peak_ops_s * self.pct_peak_compute() / 100.0
    }

    /// Achieved device-memory bandwidth over the window (bytes/s).
    pub fn achieved_mem_bytes_s(&self) -> f64 {
        if self.window_s > 0.0 {
            self.kernel_global_bytes as f64 / self.window_s
        } else {
            0.0
        }
    }

    /// Achieved host-link bandwidth over the window (bytes/s).
    pub fn achieved_link_bytes_s(&self) -> f64 {
        if self.window_s > 0.0 {
            self.link_bytes as f64 / self.window_s
        } else {
            0.0
        }
    }
}

fn pct(part: f64, whole: f64) -> f64 {
    if whole > 0.0 {
        100.0 * part / whole
    } else {
        0.0
    }
}

impl std::fmt::Display for RooflineReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "roofline over {:.3e} s on {} device(s): {} bound, {:.1}% of modeled peak",
            self.window_s,
            self.n_devices,
            self.bound(),
            self.pct_of_modeled_peak()
        )?;
        writeln!(
            f,
            "  compute : {:>6.1}% of peak ({:.3e} of {:.3e} ops/s)",
            self.pct_peak_compute(),
            self.achieved_ops_s(),
            self.peak_ops_s
        )?;
        writeln!(
            f,
            "  mem bw  : {:>6.1}% of peak ({:.3e} of {:.3e} B/s)",
            self.pct_peak_membw(),
            self.achieved_mem_bytes_s(),
            self.peak_mem_bytes_s
        )?;
        write!(
            f,
            "  link bw : {:>6.1}% of peak ({:.3e} of {:.3e} B/s)",
            self.pct_peak_linkbw(),
            self.achieved_link_bytes_s(),
            self.peak_link_bytes_s
        )
    }
}

/// Compute the roofline verdict for a measured window.
///
/// `delta` is the [`StatsSnapshot`] difference over the window and
/// `window_s` its length in virtual seconds; `compute_efficiency` is the
/// driver's achieved issue rate (e.g.
/// `DriverProfile::skelcl().compute_efficiency`). Device spec and topology
/// come from the platform (specs are uniform across devices here, as on
/// the paper's S1070).
pub fn roofline_report(
    platform: &Platform,
    compute_efficiency: f64,
    delta: StatsSnapshot,
    window_s: f64,
) -> RooflineReport {
    let n = platform.n_devices();
    let spec = *platform.device(0).spec();
    let topo = *platform.topology();
    let link_bytes = delta.h2d_bytes + delta.d2h_bytes + 2 * delta.d2d_bytes;
    let cycle_rate = spec.clock_hz * compute_efficiency;
    let compute_floor_s = delta.kernel_cu_cycles as f64 / (cycle_rate * n as f64);
    let memory_floor_s = delta.kernel_global_bytes as f64 / (spec.mem_bandwidth_bytes_s * n as f64);
    let transfer_floor_s = link_bytes as f64 / topo.host_bus_bytes_s;
    RooflineReport {
        window_s,
        n_devices: n,
        kernel_cu_cycles: delta.kernel_cu_cycles,
        kernel_global_bytes: delta.kernel_global_bytes,
        link_bytes,
        compute_floor_s,
        memory_floor_s,
        transfer_floor_s,
        peak_ops_s: spec.peak_ops_s() * compute_efficiency * n as f64,
        peak_mem_bytes_s: spec.mem_bandwidth_bytes_s * n as f64,
        peak_link_bytes_s: topo.host_bus_bytes_s,
    }
}

/// Per-device engine occupancy over one measured window.
#[derive(Debug, Clone, Copy, Default)]
pub struct DeviceUtilization {
    pub device: usize,
    pub compute_busy_s: f64,
    pub copy_busy_s: f64,
    /// Seconds during which both engines were busy at once.
    pub overlap_s: f64,
}

impl DeviceUtilization {
    pub fn compute_util(&self, window_s: f64) -> f64 {
        if window_s > 0.0 {
            self.compute_busy_s / window_s
        } else {
            0.0
        }
    }

    pub fn copy_util(&self, window_s: f64) -> f64 {
        if window_s > 0.0 {
            self.copy_busy_s / window_s
        } else {
            0.0
        }
    }
}

/// Service-level-objective accounting for one serving window: completed
/// jobs judged against a latency target, plus submissions shed at the
/// queue. Attached to a [`RunReport`] via [`RunReport::with_slo`] and
/// carried into the JSON export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// Latency target (virtual seconds) jobs are judged against.
    pub target_s: f64,
    /// Completed jobs whose submit→ready latency exceeded `target_s`.
    pub deadline_misses: u64,
    /// Completed jobs in the window.
    pub jobs: u64,
    /// Submissions rejected at the admission queue (shed).
    pub shed: u64,
}

impl SloSummary {
    /// Fraction of completed jobs that overshot the target (0 when no jobs
    /// completed).
    pub fn miss_rate(&self) -> f64 {
        if self.jobs > 0 {
            self.deadline_misses as f64 / self.jobs as f64
        } else {
            0.0
        }
    }

    /// Fraction of submissions shed at the queue (0 when nothing arrived).
    pub fn shed_rate(&self) -> f64 {
        let total = self.jobs + self.shed;
        if total > 0 {
            self.shed as f64 / total as f64
        } else {
            0.0
        }
    }
}

/// Everything one measured run produced, in reportable form: counter
/// deltas, per-device utilization from the timeline trace, and the
/// roofline verdict.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub label: String,
    pub window_s: f64,
    pub stats: StatsSnapshot,
    /// Per-device engine occupancy (empty when the timeline trace was
    /// disabled for the run).
    pub devices: Vec<DeviceUtilization>,
    pub roofline: RooflineReport,
    /// Optional request-latency distribution for the window (set by serving
    /// benches via [`RunReport::with_latency`]; `None` for plain kernel
    /// figures).
    pub latency: Option<HistogramSnapshot>,
    /// Enqueue groups vetted by the online `skelcheck` hazard checker
    /// during the window (set via [`RunReport::with_hazards_checked`];
    /// `None` when the checker was off).
    pub hazards_checked: Option<u64>,
    /// SLO accounting for serving runs (set via [`RunReport::with_slo`];
    /// `None` for plain kernel figures or when no target was configured).
    pub slo: Option<SloSummary>,
}

impl RunReport {
    /// Build a report from one measured window: the stats delta, the
    /// timeline trace recorded during it (may be empty), and its length in
    /// virtual seconds.
    pub fn collect(
        label: impl Into<String>,
        platform: &Platform,
        compute_efficiency: f64,
        delta: StatsSnapshot,
        trace: &[CommandRecord],
        window_s: f64,
    ) -> RunReport {
        let mut devices: Vec<DeviceUtilization> = (0..platform.n_devices())
            .map(|d| DeviceUtilization {
                device: d,
                ..Default::default()
            })
            .collect();
        for u in engine_usage(trace) {
            if let Some(d) = devices.get_mut(u.device.0) {
                match u.engine {
                    EngineKind::Compute => d.compute_busy_s = u.busy_s,
                    EngineKind::Copy => d.copy_busy_s = u.busy_s,
                }
            }
        }
        for (dev, overlap) in compute_copy_overlap_s(trace) {
            if let Some(d) = devices.get_mut(dev.0) {
                d.overlap_s = overlap;
            }
        }
        if trace.is_empty() {
            devices.clear();
        }
        RunReport {
            label: label.into(),
            window_s,
            stats: delta,
            devices,
            roofline: roofline_report(platform, compute_efficiency, delta, window_s),
            latency: None,
            hazards_checked: None,
            slo: None,
        }
    }

    /// Attach a request-latency distribution (e.g. the executor's per-job
    /// latency histogram) so `summary_line`/`Display`/`publish` include
    /// p50/p99.
    pub fn with_latency(mut self, latency: HistogramSnapshot) -> RunReport {
        self.latency = Some(latency);
        self
    }

    /// Record that the online hazard checker vetted `n` enqueue groups
    /// during the window (the `skelcheck.hazards_checked` counter delta),
    /// so figure output shows the run executed under checking.
    pub fn with_hazards_checked(mut self, n: u64) -> RunReport {
        self.hazards_checked = Some(n);
        self
    }

    /// Attach SLO accounting (deadline misses against a latency target and
    /// queue shed counts) so serving figures report it alongside latency.
    pub fn with_slo(mut self, slo: SloSummary) -> RunReport {
        self.slo = Some(slo);
        self
    }

    /// Seconds of copy-engine work that ran *under* compute, summed over
    /// devices — the quantity the overlap subsystem exists to maximise.
    pub fn total_overlap_s(&self) -> f64 {
        self.devices.iter().map(|d| d.overlap_s).sum()
    }

    /// Fraction of copy-engine busy time hidden under compute (0 when no
    /// copies ran). 1.0 = every transferred byte was free.
    pub fn overlap_efficiency(&self) -> f64 {
        let copy: f64 = self.devices.iter().map(|d| d.copy_busy_s).sum();
        if copy > 0.0 {
            self.total_overlap_s() / copy
        } else {
            0.0
        }
    }

    /// Publish the report into a metrics registry as gauges:
    /// `skelcl.util.gpu<i>.compute.pct`, `…copy.pct`, `…overlap_s`, plus
    /// `skelcl.roofline.pct_of_peak` and `skelcl.overlap.efficiency`.
    pub fn publish(&self, metrics: &MetricsRegistry) {
        for d in &self.devices {
            let base = format!("skelcl.util.gpu{}", d.device);
            metrics
                .gauge(&format!("{base}.compute.pct"))
                .set(100.0 * d.compute_util(self.window_s));
            metrics
                .gauge(&format!("{base}.copy.pct"))
                .set(100.0 * d.copy_util(self.window_s));
            metrics.gauge(&format!("{base}.overlap_s")).set(d.overlap_s);
        }
        metrics
            .gauge("skelcl.roofline.pct_of_peak")
            .set(self.roofline.pct_of_modeled_peak());
        metrics
            .gauge("skelcl.overlap.efficiency")
            .set(self.overlap_efficiency());
        if let Some(lat) = self.latency.filter(|l| l.count > 0) {
            // count > 0 guarantees the quantiles exist.
            metrics
                .gauge("skelcl.latency.p50_s")
                .set(lat.p50.unwrap_or(0.0));
            metrics
                .gauge("skelcl.latency.p90_s")
                .set(lat.p90.unwrap_or(0.0));
            metrics
                .gauge("skelcl.latency.p99_s")
                .set(lat.p99.unwrap_or(0.0));
        }
        if let Some(slo) = &self.slo {
            metrics.gauge("skelcl.slo.target_s").set(slo.target_s);
            metrics.gauge("skelcl.slo.miss_rate").set(slo.miss_rate());
            metrics.gauge("skelcl.slo.shed_rate").set(slo.shed_rate());
        }
    }

    /// One-line summary for bench output: utilization per device and the
    /// roofline headline.
    pub fn summary_line(&self) -> String {
        let mut out = format!("{}: {:.3e} s", self.label, self.window_s);
        if self.devices.is_empty() {
            out.push_str(" | util n/a (trace off)");
        } else {
            for d in &self.devices {
                let _ = write!(
                    out,
                    " | gpu{} c={:.0}% k={:.0}%",
                    d.device,
                    100.0 * d.compute_util(self.window_s),
                    100.0 * d.copy_util(self.window_s),
                );
            }
            let _ = write!(out, " | overlap {:.0}%", 100.0 * self.overlap_efficiency());
        }
        if let Some(lat) = self.latency.filter(|l| l.count > 0) {
            let _ = write!(
                out,
                " | lat p50 {:.2e} s p99 {:.2e} s",
                lat.p50.unwrap_or(0.0),
                lat.p99.unwrap_or(0.0)
            );
        }
        if let Some(slo) = &self.slo {
            let _ = write!(
                out,
                " | slo {:.0e} s miss {}/{} shed {:.0}%",
                slo.target_s,
                slo.deadline_misses,
                slo.jobs,
                100.0 * slo.shed_rate()
            );
        }
        if let Some(n) = self.hazards_checked {
            let _ = write!(out, " | skelcheck {n} enqueues");
        }
        let _ = write!(
            out,
            " | {} bound, {:.0}% of peak",
            self.roofline.bound(),
            self.roofline.pct_of_modeled_peak()
        );
        out
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "run report: {} ({:.3e} virtual s)",
            self.label, self.window_s
        )?;
        let s = &self.stats;
        writeln!(
            f,
            "  transfers: h2d {} ({} B), d2h {} ({} B), d2d {} ({} B)",
            s.h2d_transfers,
            s.h2d_bytes,
            s.d2h_transfers,
            s.d2h_bytes,
            s.d2d_transfers,
            s.d2d_bytes
        )?;
        writeln!(
            f,
            "  kernels  : {} launches, {} CU-cycles, {} B global traffic",
            s.kernel_launches, s.kernel_cu_cycles, s.kernel_global_bytes
        )?;
        writeln!(
            f,
            "  builds   : {} from source, {} from binary cache",
            s.source_builds, s.cache_loads
        )?;
        if self.devices.is_empty() {
            writeln!(f, "  utilization: n/a (timeline trace disabled)")?;
        } else {
            for d in &self.devices {
                writeln!(
                    f,
                    "  gpu{}: compute {:>5.1}% busy, copy {:>5.1}% busy, overlap {:.3e} s",
                    d.device,
                    100.0 * d.compute_util(self.window_s),
                    100.0 * d.copy_util(self.window_s),
                    d.overlap_s
                )?;
            }
            writeln!(
                f,
                "  overlap efficiency: {:.1}% of copy time hidden under compute",
                100.0 * self.overlap_efficiency()
            )?;
        }
        if let Some(lat) = self.latency.filter(|l| l.count > 0) {
            writeln!(
                f,
                "  latency  : n={} p50 {:.3e} s, p90 {:.3e} s, p99 {:.3e} s, max {:.3e} s",
                lat.count,
                lat.p50.unwrap_or(0.0),
                lat.p90.unwrap_or(0.0),
                lat.p99.unwrap_or(0.0),
                lat.max.unwrap_or(0.0)
            )?;
        }
        if let Some(slo) = &self.slo {
            writeln!(
                f,
                "  slo      : target {:.3e} s, {} of {} job(s) missed ({:.1}%), {} shed ({:.1}%)",
                slo.target_s,
                slo.deadline_misses,
                slo.jobs,
                100.0 * slo.miss_rate(),
                slo.shed,
                100.0 * slo.shed_rate()
            )?;
        }
        if let Some(n) = self.hazards_checked {
            writeln!(
                f,
                "  skelcheck: online hazard checker vetted {n} enqueue group(s)"
            )?;
        }
        write!(f, "  {}", self.roofline)
    }
}

/// The plain-text run report as a `String` (convenience over
/// [`RunReport`]'s `Display`).
pub fn text_report(report: &RunReport) -> String {
    report.to_string()
}

/// A minimal JSON parser — just enough for the trace-export round-trip
/// tests and the CI validity gate. No serde in this workspace.
pub mod json {
    use std::collections::BTreeMap;

    /// A parsed JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Json {
        Null,
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        Obj(BTreeMap<String, Json>),
    }

    impl Json {
        pub fn as_arr(&self) -> Option<&[Json]> {
            match self {
                Json::Arr(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
            match self {
                Json::Obj(o) => Some(o),
                _ => None,
            }
        }

        pub fn as_num(&self) -> Option<f64> {
            match self {
                Json::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Json::Str(s) => Some(s),
                _ => None,
            }
        }

        /// Member lookup on objects: `v.get("traceEvents")`.
        pub fn get(&self, key: &str) -> Option<&Json> {
            self.as_obj().and_then(|o| o.get(key))
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl<'a> Parser<'a> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<u8> {
            let b = self.peek()?;
            self.pos += 1;
            Some(b)
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            match self.bump() {
                Some(got) if got == b => Ok(()),
                Some(got) => Err(format!(
                    "expected {:?} at byte {}, got {:?}",
                    b as char,
                    self.pos - 1,
                    got as char
                )),
                None => Err(format!("expected {:?}, got end of input", b as char)),
            }
        }

        fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
            for &b in word.as_bytes() {
                self.expect(b)?;
            }
            Ok(value)
        }

        fn value(&mut self) -> Result<Json, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Json::Str(self.string()?)),
                Some(b't') => self.literal("true", Json::Bool(true)),
                Some(b'f') => self.literal("false", Json::Bool(false)),
                Some(b'n') => self.literal("null", Json::Null),
                Some(b'-' | b'0'..=b'9') => self.number(),
                Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.pos)),
                None => Err("unexpected end of input".to_string()),
            }
        }

        fn object(&mut self) -> Result<Json, String> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                let v = self.value()?;
                map.insert(key, v);
                self.skip_ws();
                match self.bump() {
                    Some(b',') => continue,
                    Some(b'}') => return Ok(Json::Obj(map)),
                    other => return Err(format!("expected ',' or '}}', got {other:?}")),
                }
            }
        }

        fn array(&mut self) -> Result<Json, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(self.value()?);
                self.skip_ws();
                match self.bump() {
                    Some(b',') => continue,
                    Some(b']') => return Ok(Json::Arr(items)),
                    other => return Err(format!("expected ',' or ']', got {other:?}")),
                }
            }
        }

        fn hex4(&mut self) -> Result<u32, String> {
            let mut code = 0u32;
            for _ in 0..4 {
                let d = self
                    .bump()
                    .and_then(|b| (b as char).to_digit(16))
                    .ok_or("bad \\u escape")?;
                code = code * 16 + d;
            }
            Ok(code)
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bump() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => return Ok(out),
                    Some(b'\\') => match self.bump() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let unit = self.hex4()?;
                            // JSON encodes astral code points as a UTF-16
                            // surrogate pair of consecutive \u escapes;
                            // combine them. A lone or mismatched surrogate
                            // degrades to U+FFFD (the second escape, if
                            // any, is re-parsed on its own).
                            let code = if (0xd800..=0xdbff).contains(&unit)
                                && self.peek() == Some(b'\\')
                                && self.bytes.get(self.pos + 1) == Some(&b'u')
                            {
                                let save = self.pos;
                                self.pos += 2;
                                let low = self.hex4()?;
                                if (0xdc00..=0xdfff).contains(&low) {
                                    0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00)
                                } else {
                                    self.pos = save;
                                    unit
                                }
                            } else {
                                unit
                            };
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    },
                    Some(b) if b < 0x80 => out.push(b as char),
                    Some(b) => {
                        // Re-decode the UTF-8 sequence starting at b.
                        let start = self.pos - 1;
                        let len = match b {
                            0xc0..=0xdf => 2,
                            0xe0..=0xef => 3,
                            _ => 4,
                        };
                        let end = (start + len).min(self.bytes.len());
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|e| format!("invalid UTF-8 in string: {e}"))?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }

        fn number(&mut self) -> Result<Json, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(
                self.peek(),
                Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            ) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::json::{parse, Json};
    use super::*;
    use vgpu::DeviceId;

    #[test]
    fn json_parser_round_trips_basics() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":"x\"y\n","c":true,"d":null,"e":{}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("x\"y\n"));
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert!(v.get("e").unwrap().as_obj().unwrap().is_empty());
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} tail").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let round = parse(&format!("\"{}\"", json_escape("q\"\\\n\tz\u{1}"))).unwrap();
        assert_eq!(round.as_str(), Some("q\"\\\n\tz\u{1}"));
    }

    #[test]
    fn string_escapes_round_trip_adversarially() {
        // Control characters across the whole C0 range, quoting/escaping
        // metacharacters, BMP non-ASCII, and non-BMP code points (which
        // the writer emits as raw UTF-8). Every one must survive
        // escape → parse unchanged.
        let adversarial = [
            "\u{1}\u{2}\u{8}\u{b}\u{c}\u{1f}",   // C0 controls incl. \b \f
            "quote\" backslash\\ slash/ \r\n\t", // metacharacters
            "ünïcødé — π ≈ 3.14159",             // BMP non-ASCII
            "emoji 😀 and math 𝕏 and flag 🇩🇪",   // non-BMP (surrogate pairs in UTF-16)
            "mixed \u{1f}😀\"\\\u{0007}end",
        ];
        for s in adversarial {
            let round = parse(&format!("\"{}\"", json_escape(s))).unwrap();
            assert_eq!(round.as_str(), Some(s), "round-trip of {s:?}");
        }
    }

    #[test]
    fn parser_combines_utf16_surrogate_pairs() {
        // Other Chrome-trace producers escape astral characters as
        // \uXXXX\uXXXX surrogate pairs; the parser must combine them
        // rather than yield two replacement characters.
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap().as_str(),
            Some("😀"),
            "U+1F600 from its surrogate pair"
        );
        assert_eq!(
            parse(r#""\uD835\uDD4F""#).unwrap().as_str(),
            Some("𝕏"),
            "upper-case hex digits"
        );
        // Lone surrogates are not representable: degrade to U+FFFD, and a
        // following *non*-surrogate escape is decoded on its own.
        assert_eq!(
            parse(r#""\ud83d""#).unwrap().as_str(),
            Some("\u{fffd}"),
            "lone high surrogate"
        );
        assert_eq!(
            parse(r#""\ud83dx""#).unwrap().as_str(),
            Some("\u{fffd}x"),
            "high surrogate followed by a plain character"
        );
        assert_eq!(
            parse(r#""\ud83d\u0041""#).unwrap().as_str(),
            Some("\u{fffd}A"),
            "high surrogate followed by a non-surrogate escape"
        );
        assert_eq!(
            parse(r#""\ude00""#).unwrap().as_str(),
            Some("\u{fffd}"),
            "unpaired low surrogate"
        );
    }

    fn cmd(dev: usize, engine: EngineKind, start: f64, end: f64) -> CommandRecord {
        CommandRecord::interval(DeviceId(dev), engine, start, end)
    }

    #[test]
    fn chrome_trace_is_valid_json_with_expected_structure() {
        let spans = vec![SpanRecord {
            id: 0,
            parent: None,
            name: "stencil2d.iterate",
            attrs: vec![("shape", "8x8".to_string()), ("weird", "a\"b".to_string())],
            start_s: 0.0,
            end_s: 1e-3,
            epoch: 0,
            stats: StatsSnapshot::default(),
            halo_exchanges: 2,
            program_cache_hits: 1,
            program_cache_misses: 0,
            trace_first: 0,
            trace_len: 2,
        }];
        let trace = vec![
            cmd(0, EngineKind::Compute, 0.0, 5e-4),
            cmd(0, EngineKind::Copy, 1e-4, 3e-4),
        ];
        let out = chrome_trace_json(&spans, &trace);
        let v = parse(&out).expect("exporter must emit valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 span process meta + 1 span + 1 device process meta + 2 thread
        // metas + 2 engine events.
        assert_eq!(events.len(), 7);
        let span_ev = events
            .iter()
            .find(|e| e.get("cat").and_then(|c| c.as_str()) == Some("skeleton"))
            .unwrap();
        assert_eq!(span_ev.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span_ev.get("dur").unwrap().as_num(), Some(1e3));
        assert_eq!(
            span_ev.get("args").unwrap().get("weird").unwrap().as_str(),
            Some("a\"b")
        );
        let engine_events: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("engine"))
            .collect();
        assert_eq!(engine_events.len(), 2);
        assert_eq!(engine_events[0].get("pid").unwrap().as_num(), Some(1.0));
    }

    #[test]
    fn roofline_pcts_follow_the_floors() {
        let platform = Platform::new(
            vgpu::PlatformConfig::default()
                .devices(2)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("report-roofline-test"),
        );
        let spec = vgpu::DeviceSpec::tiny();
        // Exactly 1 ms of aggregate compute across 2 devices at eff=1.0.
        let delta = StatsSnapshot {
            kernel_cu_cycles: (2.0 * spec.clock_hz * 1e-3) as u64,
            ..Default::default()
        };
        let r = roofline_report(&platform, 1.0, delta, 2e-3);
        assert!((r.pct_peak_compute() - 50.0).abs() < 0.1, "{r:?}");
        assert_eq!(r.bound(), "compute");
        assert!((r.pct_of_modeled_peak() - 50.0).abs() < 0.1);
        // Display renders without panicking.
        assert!(r.to_string().contains("% of modeled peak"));
    }

    #[test]
    fn run_report_summarises_trace_and_publishes_gauges() {
        let platform = Platform::new(
            vgpu::PlatformConfig::default()
                .devices(1)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("report-run-test"),
        );
        let trace = vec![
            cmd(0, EngineKind::Compute, 0.0, 8e-4),
            cmd(0, EngineKind::Copy, 2e-4, 6e-4),
        ];
        let report = RunReport::collect(
            "test",
            &platform,
            1.0,
            StatsSnapshot::default(),
            &trace,
            1e-3,
        );
        assert_eq!(report.devices.len(), 1);
        let d = &report.devices[0];
        assert!((d.compute_util(report.window_s) - 0.8).abs() < 1e-9);
        assert!((d.copy_util(report.window_s) - 0.4).abs() < 1e-9);
        assert!((d.overlap_s - 4e-4).abs() < 1e-12);
        assert!((report.overlap_efficiency() - 1.0).abs() < 1e-9);

        let metrics = MetricsRegistry::default();
        report.publish(&metrics);
        let snap = metrics.snapshot();
        let util = snap["skelcl.util.gpu0.compute.pct"].as_gauge().unwrap();
        assert!((util - 80.0).abs() < 1e-6);
        assert!(snap.contains_key("skelcl.roofline.pct_of_peak"));

        let text = text_report(&report);
        assert!(text.contains("gpu0"), "{text}");
        assert!(text.contains("overlap efficiency"), "{text}");
        assert!(report.summary_line().contains("of peak"));
    }

    #[test]
    fn latency_histogram_rides_the_summary_and_gauges() {
        let platform = Platform::new(
            vgpu::PlatformConfig::default()
                .devices(1)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("report-latency-test"),
        );
        let hist = crate::metrics::Histogram::default();
        for i in 1..=100 {
            hist.observe(i as f64 * 1e-6);
        }
        let report = RunReport::collect("svc", &platform, 1.0, StatsSnapshot::default(), &[], 1e-3)
            .with_latency(hist.snapshot());

        let line = report.summary_line();
        assert!(line.contains("lat p50"), "{line}");
        assert!(line.contains("p99"), "{line}");
        let text = text_report(&report);
        assert!(text.contains("latency  : n=100"), "{text}");

        let metrics = MetricsRegistry::default();
        report.publish(&metrics);
        let snap = metrics.snapshot();
        let p99 = snap["skelcl.latency.p99_s"].as_gauge().unwrap();
        assert!((p99 - 99e-6).abs() < 1e-12, "p99={p99}");

        // Without latency attached the line stays clean.
        let plain = RunReport::collect("k", &platform, 1.0, StatsSnapshot::default(), &[], 1e-3);
        assert!(!plain.summary_line().contains("lat p50"));
    }

    #[test]
    fn slo_summary_rides_the_summary_and_gauges() {
        let platform = Platform::new(
            vgpu::PlatformConfig::default()
                .devices(1)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("report-slo-test"),
        );
        let slo = SloSummary {
            target_s: 1e-3,
            deadline_misses: 3,
            jobs: 60,
            shed: 20,
        };
        assert!((slo.miss_rate() - 0.05).abs() < 1e-12);
        assert!((slo.shed_rate() - 0.25).abs() < 1e-12);
        let report = RunReport::collect("svc", &platform, 1.0, StatsSnapshot::default(), &[], 1e-3)
            .with_slo(slo);
        let line = report.summary_line();
        assert!(line.contains("slo"), "{line}");
        assert!(line.contains("miss 3/60"), "{line}");
        assert!(
            text_report(&report).contains("3 of 60 job(s) missed"),
            "{report}"
        );

        let metrics = MetricsRegistry::default();
        report.publish(&metrics);
        let snap = metrics.snapshot();
        assert!((snap["skelcl.slo.miss_rate"].as_gauge().unwrap() - 0.05).abs() < 1e-12);
        assert!((snap["skelcl.slo.shed_rate"].as_gauge().unwrap() - 0.25).abs() < 1e-12);

        // Without SLO accounting the line stays clean.
        let plain = RunReport::collect("k", &platform, 1.0, StatsSnapshot::default(), &[], 1e-3);
        assert!(!plain.summary_line().contains("slo"));
    }

    #[test]
    fn executor_job_spans_get_tenant_lanes() {
        let mk = |id, name: &'static str, tenant: &str, start: f64, end: f64| SpanRecord {
            id,
            parent: None,
            name,
            attrs: vec![("tenant", tenant.to_string()), ("kind", "axpb".to_string())],
            start_s: start,
            end_s: end,
            epoch: 0,
            stats: StatsSnapshot::default(),
            halo_exchanges: 0,
            program_cache_hits: 0,
            program_cache_misses: 0,
            trace_first: 0,
            trace_len: 0,
        };
        let spans = vec![
            mk(0, "executor.job", "alice", 0.0, 3e-3),
            mk(1, "executor.job.queue_wait", "alice", 0.0, 1e-3),
            mk(2, "executor.job.service", "alice", 1e-3, 3e-3),
            mk(3, "executor.job", "bob\"quoted", 1e-3, 4e-3),
        ];
        let out = chrome_trace_json(&spans, &[]);
        let v = parse(&out).expect("valid JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let serving: Vec<_> = events
            .iter()
            .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("serving"))
            .collect();
        assert_eq!(serving.len(), 4);
        // All of alice's spans share one pid; lanes split by tid.
        let pid_of = |name: &str, tenant_pid: f64| {
            serving
                .iter()
                .find(|e| e.get("name").unwrap().as_str() == Some(name))
                .map(|e| {
                    assert_eq!(e.get("pid").unwrap().as_num(), Some(tenant_pid));
                    e.get("tid").unwrap().as_num().unwrap()
                })
                .unwrap()
        };
        assert_eq!(pid_of("executor.job", 100.0), 0.0);
        assert_eq!(pid_of("executor.job.queue_wait", 100.0), 1.0);
        assert_eq!(pid_of("executor.job.service", 100.0), 2.0);
        // Second tenant gets the next pid, with its name escaped in the meta.
        let bob_meta = events
            .iter()
            .find(|e| {
                e.get("name").unwrap().as_str() == Some("process_name")
                    && e.get("pid").unwrap().as_num() == Some(101.0)
            })
            .expect("tenant process meta");
        assert_eq!(
            bob_meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("tenant:bob\"quoted")
        );
        // No serving span leaked onto the depth-stacked pid-0 track.
        assert!(
            events
                .iter()
                .filter(|e| e.get("cat").and_then(|c| c.as_str()) == Some("skeleton"))
                .count()
                == 0
        );
    }

    #[test]
    fn hazard_checker_activity_rides_the_summary() {
        let platform = Platform::new(
            vgpu::PlatformConfig::default()
                .devices(1)
                .spec(vgpu::DeviceSpec::tiny())
                .cache_tag("report-skelcheck-test"),
        );
        let report = RunReport::collect("chk", &platform, 1.0, StatsSnapshot::default(), &[], 1e-3)
            .with_hazards_checked(42);
        let line = report.summary_line();
        assert!(line.contains("skelcheck 42 enqueues"), "{line}");
        assert!(
            text_report(&report).contains("vetted 42 enqueue group(s)"),
            "{report}"
        );

        // With the checker off the line stays clean.
        let plain = RunReport::collect("k", &platform, 1.0, StatsSnapshot::default(), &[], 1e-3);
        assert!(!plain.summary_line().contains("skelcheck"));
    }
}
